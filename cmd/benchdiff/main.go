// Command benchdiff compares two BENCH_*.json performance snapshots and
// reports per-cell deltas against the regression tolerances (events/s
// within 25%, allocs/event within +0.5, micro allocs within +0.5).
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_new.json [-json diff.json] [-strict]
//
// The exit status is 0 even when regressions are found, so callers can
// treat the diff as advisory; -strict exits 1 on any regression, which is
// how CI turns the step red while continue-on-error keeps it warn-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"drill/internal/experiments"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "baseline snapshot to compare against")
		current  = flag.String("current", "", "fresh drillbench snapshot to judge")
		jsonOut  = flag.String("json", "", "also write the diff as JSON to this file")
		strict   = flag.Bool("strict", false, "exit 1 when any tolerance is exceeded")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := experiments.ReadBenchReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := experiments.ReadBenchReport(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}

	d := experiments.DiffBench(base, cur)
	fmt.Print(d.Format())
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
	}
	if *strict && d.Regressions > 0 {
		os.Exit(1)
	}
}
