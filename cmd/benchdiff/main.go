// Command benchdiff compares two BENCH_*.json performance snapshots and
// reports per-cell deltas against the regression tolerances (events/s
// within 10%, allocs/event within +0.1, micro allocs within +0.1).
//
// Usage:
//
//	benchdiff -baseline BENCH_shard.json -current BENCH_new.json [-json diff.json] [-md summary.md] [-strict]
//
// Without -strict the exit status is 0 even when regressions are found,
// so callers can treat the diff as advisory; -strict exits 1 on any
// regression, which is how the blocking bench-regress CI job turns the
// build red. -md appends the diff as a markdown table to the given file
// (pass $GITHUB_STEP_SUMMARY in CI). Snapshots from machines with
// different CPU counts are compared anyway, with a warning row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"drill/internal/experiments"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "baseline snapshot to compare against")
		current  = flag.String("current", "", "fresh drillbench snapshot to judge")
		jsonOut  = flag.String("json", "", "also write the diff as JSON to this file")
		mdOut    = flag.String("md", "", "append the diff as a markdown table to this file")
		strict   = flag.Bool("strict", false, "exit 1 when any tolerance is exceeded")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := experiments.ReadBenchReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := experiments.ReadBenchReport(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}

	d := experiments.DiffBench(base, cur)
	fmt.Print(d.Format())
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
	}
	if *mdOut != "" {
		f, err := os.OpenFile(*mdOut, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		if _, err := f.WriteString(d.FormatMarkdown()); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *strict && d.Regressions > 0 {
		os.Exit(1)
	}
}
