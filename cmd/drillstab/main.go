// Command drillstab demonstrates the §3.2.4 stability results on the
// standalone M×N switch model: Theorem 1 (DRILL(d,0) is unstable for
// admissible traffic with heterogeneous service rates) and Theorem 2
// (DRILL(d,m≥1) is stable with 100% throughput). It prints a queue-growth
// trace so the divergence is visible, not just asserted.
//
// Usage:
//
//	drillstab [-m 4] [-n 8] [-load 0.2] [-slots 200000] [-d 1] [-mem 1]
//	drillstab -compare      # run the memoryless and memory policies side by side
package main

import (
	"flag"
	"fmt"

	"drill/internal/queueing"
)

func main() {
	var (
		m       = flag.Int("m", 4, "forwarding engines")
		n       = flag.Int("n", 8, "output queues")
		load    = flag.Float64("load", 0.2, "per-engine arrival probability per slot")
		slots   = flag.Int("slots", 200_000, "time slots to simulate")
		d       = flag.Int("d", 1, "random samples per decision")
		mem     = flag.Int("mem", 1, "memory units per engine")
		seed    = flag.Int64("seed", 1, "random seed")
		compare = flag.Bool("compare", false, "run DRILL(d,0) and DRILL(d,mem) side by side")
	)
	flag.Parse()

	arr, svc := queueing.Theorem1Rates(*m, *n, *load)
	fmt.Printf("M=%d engines, N=%d queues, Theorem-1 adversarial rates (admissible)\n", *m, *n)
	fmt.Printf("arrivals: %.3v\nservice:  %.3v\n\n", arr, svc)

	run := func(dd, mm int) {
		s := queueing.New(*m, *n, dd, mm, arr, svc, *seed)
		fmt.Printf("DRILL(%d,%d):\n  %-10s %-12s %-12s %-10s\n", dd, mm,
			"slots", "total queue", "throughput", "Lyapunov V")
		step := *slots / 10
		for i := 0; i < 10; i++ {
			s.Run(step)
			thr := float64(s.TotalServed) / float64(s.TotalArrived)
			fmt.Printf("  %-10d %-12d %-12.4f %-10.3g\n",
				s.Slots, s.TotalQueue(), thr, s.Lyapunov())
		}
		fmt.Println()
	}

	if *compare {
		run(*d, 0)
		run(*d, *mem)
		fmt.Println("Theorem 1: without memory the queue grows linearly — unstable.")
		fmt.Println("Theorem 2: one memory unit keeps it bounded at ~100% throughput.")
		return
	}
	run(*d, *mem)
}
