// Drillvet is the repo's custom static-analysis suite, enforcing the
// determinism, hot-path, simulated-time, units, shard-confinement, and
// allocation-budget invariants that the DRILL reproduction's results
// rest on (see internal/lint).
//
// It is a go vet tool: build it once, then hand it to the vet driver,
// which runs each analyzer per compilation unit with full type
// information and composes with the standard checks:
//
//	go build -o bin/drillvet ./cmd/drillvet
//	go vet -vettool=bin/drillvet ./...
//
// Findings are suppressed site-by-site with a justified pragma:
//
//	//drill:allow <analyzer> <reason>
//
// and nonzero hot-path allocation budgets are declared with one:
//
//	//drill:allocs <n> <reason>
//
// Stale pragmas (suppressing nothing, or budgeting more allocation
// sites than the function has) are themselves findings.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"drill/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
