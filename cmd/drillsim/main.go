// Command drillsim runs the DRILL paper's evaluation experiments and
// prints the tables/series each figure reports.
//
// Usage:
//
//	drillsim -list
//	drillsim -exp fig6a [-scale 0.25] [-seed 7] [-loads 0.1,0.5,0.8] [-workers 4] [-q]
//	drillsim -exp fig6a -shards 4   (sharded parallel engine; output is byte-identical)
//	drillsim -exp fig6a -campaign flapstorm   (scripted mid-run fail/restore; also @file.json)
//	drillsim -exp qtrace -trace events.csv [-trace-sample 10us]
//	drillsim -exp fig6a -cpuprofile cpu.pprof -memprofile mem.pprof
//	drillsim -exp fig11 -metrics-addr :9137 -progress -manifest fig11.manifest.json
//	drillsim -exp all
//
// -metrics-addr serves the live metrics registry while experiments run:
// Prometheus text exposition at /metrics, the same snapshot as JSON at
// /metrics.json, the retained snapshot ring at /snapshots.json. -progress
// prints a one-line heartbeat (sim time, events/s, cells done, ETA) to
// stderr each wall second; it is forced off for sequential runs so
// -workers 1 output stays the determinism reference. -manifest writes a
// provenance record (build info, git revision, seed, per-cell config
// hashes and counters) next to the experiment output. None of these touch
// the simulation: metrics observe, never steer, and reports stay
// byte-identical with them on or off.
//
// Sweep cells fan out across -workers goroutines; reports are
// byte-identical for a fixed seed at any worker count, and -workers 1
// reproduces the fully sequential behavior.
//
// -trace streams every run's packet-lifecycle and queue-sample events to a
// file (CSV, or JSON-lines with a .jsonl/.json extension; see
// internal/trace for the schema). Tracing forces -workers 1 so the shared
// file sees runs whole and in order; with tracing off the data plane runs
// its zero-allocation fast path.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"drill/internal/experiments"
	"drill/internal/obs"
	"drill/internal/obs/obshttp"
	"drill/internal/trace"
	"drill/internal/units"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.Float64("scale", 0, "0 = quick single-core defaults, 1 = paper parameters")
		seed     = flag.Int64("seed", 1, "base random seed")
		loads    = flag.String("loads", "", "comma-separated load override, e.g. 0.1,0.5,0.8")
		reps     = flag.Int("reps", 1, "replications per sweep cell (pooled samples)")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent simulation runs (1 = sequential)")
		shards   = flag.Int("shards", 0, "shards per simulation run on the parallel engine (0 = sequential engine); results are byte-identical at any value")
		campaign = flag.String("campaign", "", "scripted fail/restore campaign for every sweep cell: a preset (flapstorm, podfail, rollingdrain) or @file.json (see EXPERIMENTS.md for the format)")
		format   = flag.String("format", "table", "output format: table | csv | json")
		quiet    = flag.Bool("q", false, "suppress per-run progress lines")

		traceOut    = flag.String("trace", "", "write per-event trace to this file (.csv, or .jsonl/.json for JSON-lines)")
		traceSample = flag.Duration("trace-sample", 10*time.Microsecond, "queue-depth/utilization sampling period when -trace is set")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")

		progressHB    = flag.Bool("progress", false, "print a sweep heartbeat line to stderr every wall second (forced off at -workers 1)")
		metricsAddr   = flag.String("metrics-addr", "", "serve live metrics on this address (Prometheus text at /metrics, JSON at /metrics.json, engine report at /engine.json; :0 picks a free port)")
		metricsSample = flag.Duration("metrics-sample", 100*time.Microsecond, "sim-time snapshot interval when live metrics are enabled")
		manifestOut   = flag.String("manifest", "", "write a provenance manifest (build info, seed, per-cell config hashes) to this JSON file")
		engineReport  = flag.Bool("engine-report", false, "print each cell's engine observatory report (per-shard ev/s, stall %, window-size quantiles, scheduler internals) to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "drillsim: -reps must be >= 1 (got %d)\n", *reps)
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "drillsim: -workers must be >= 1 (got %d); omit the flag to use all %d CPUs\n",
			*workers, runtime.NumCPU())
		os.Exit(2)
	}
	// Sim runs are CPU-bound, so more workers than cores only adds
	// scheduling churn.
	resolved := *workers
	if n := runtime.NumCPU(); resolved > n {
		resolved = n
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drillsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "drillsim: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: heap profile: %v\n", err)
			}
		}()
	}

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "drillsim: -shards must be >= 0 (got %d)\n", *shards)
		os.Exit(2)
	}
	if *shards > 0 && *traceOut != "" {
		// Full-kind tracing is a sequential-engine feature; a sharded run
		// only admits the sampler kinds (see RunCfg.Shards).
		fmt.Fprintf(os.Stderr, "drillsim: -shards is ignored with -trace (traced runs use the sequential engine)\n")
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Reps: *reps, Workers: resolved, Shards: *shards}
	if *campaign != "" {
		var c *experiments.Campaign
		if name, ok := strings.CutPrefix(*campaign, "@"); ok {
			var err error
			if c, err = experiments.LoadCampaign(name); err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: -campaign: %v\n", err)
				os.Exit(2)
			}
		} else if c, ok = experiments.CampaignByName(*campaign); !ok {
			fmt.Fprintf(os.Stderr, "drillsim: unknown campaign %q (presets: flapstorm, podfail, rollingdrain; or @file.json)\n", *campaign)
			os.Exit(2)
		}
		opts.Campaign = c
		if !*quiet {
			fmt.Fprintf(os.Stderr, "drillsim: campaign %s: %d set(s), %d action(s)\n",
				c.Name, len(c.Sets), len(c.Timeline))
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drillsim: -trace: %v\n", err)
			os.Exit(1)
		}
		var sink trace.Sink
		if strings.HasSuffix(*traceOut, ".jsonl") || strings.HasSuffix(*traceOut, ".json") {
			sink = trace.NewJSONL(f)
		} else {
			sink = trace.NewCSV(f)
		}
		opts.TraceSink = sink
		opts.TraceSample = units.Time(traceSample.Nanoseconds())
		if resolved > 1 && !*quiet {
			fmt.Fprintf(os.Stderr, "drillsim: -trace forces sequential runs (-workers 1)\n")
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: trace: %v\n", err)
			}
			f.Close()
		}()
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "drillsim: %d worker(s) (%d CPUs), seed %d, scale %g, reps %d\n",
			resolved, runtime.NumCPU(), *seed, *scale, *reps)
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	// The heartbeat exists for watching multi-worker sweeps; sequential
	// (-workers 1) invocations are how determinism is checked and compared,
	// so they stay heartbeat-free by construction. Tracing forces workers=1
	// and is covered by the same rule.
	if *progressHB && (resolved == 1 || *traceOut != "") {
		fmt.Fprintf(os.Stderr, "drillsim: -progress is forced off for sequential runs (-workers 1 or -trace)\n")
		*progressHB = false
	}
	var reg *obs.Registry
	if *metricsAddr != "" || *progressHB {
		reg = obs.NewRegistry(32)
		opts.Obs = reg
		opts.ObsSample = units.Time(metricsSample.Nanoseconds())
		// Metrics on means the engine observatory is on: the drill_shard_*
		// / drill_window_* / drill_sched_* families ride the same registry
		// and the same observe-never-steer contract.
		opts.EngineObs = true
	}
	// The latest completed cell's engine report, published to /engine.json
	// and (with -engine-report) printed per cell. The sink runs on the
	// fan-out pool's serialized done callbacks; scrapes read the atomic
	// pointer, never the running simulation.
	var engineRep atomic.Pointer[obs.EngineReport]
	if *engineReport || *metricsAddr != "" {
		opts.EngineSink = func(cell int, rep *obs.EngineReport) {
			if rep == nil {
				return
			}
			engineRep.Store(rep)
			if *engineReport {
				fmt.Fprintf(os.Stderr, "engine report (cell %d): %s", cell, rep.Format())
			}
		}
	}
	if *metricsAddr != "" {
		srv, err := obshttp.ServeConfig(*metricsAddr, obshttp.Config{
			Reg:    reg,
			Engine: engineRep.Load,
			OnWriteError: func(endpoint string, err error) {
				fmt.Fprintf(os.Stderr, "drillsim: metrics scrape %s: %v\n", endpoint, err)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "drillsim: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "drillsim: serving metrics at %s/metrics (JSON at /metrics.json, engine report at /engine.json)\n", srv.URL())
		defer srv.Close()
	}
	var man *obs.Manifest
	if *manifestOut != "" {
		man = obs.NewManifest(strings.Join(os.Args, " "), *seed)
		man.StartedAt = time.Now().UTC().Format(time.RFC3339) //drill:allow simtime manifest start stamp is wall provenance, never a sim timestamp
		opts.Manifest = man
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: bad load %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Loads = append(opts.Loads, v)
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	var hb *heartbeat
	if *progressHB {
		hb = startHeartbeat(reg, os.Stderr, 1*time.Second)
	}
	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fmt.Fprintf(os.Stderr, "drillsim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		opts.ExpID = e.ID
		start := time.Now() //drill:allow simtime wall timing of the experiment for the stderr progress line
		rep := e.Run(opts)
		// Wall-clock timing goes to stderr: stdout is byte-identical for a
		// fixed seed regardless of worker count or machine speed.
		fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", e.ID, time.Since(start).Seconds()) //drill:allow simtime wall timing of the experiment for the stderr progress line
		switch *format {
		case "table":
			fmt.Print(rep.Format())
			fmt.Println()
		case "csv":
			out, err := rep.CSV()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		case "json":
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: json: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		default:
			fmt.Fprintf(os.Stderr, "drillsim: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if hb != nil {
		hb.Stop()
	}
	if man != nil {
		f, err := os.Create(*manifestOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drillsim: -manifest: %v\n", err)
			os.Exit(1)
		}
		werr := man.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "drillsim: -manifest: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "drillsim: wrote %s %s\n", *manifestOut, man)
	}
}
