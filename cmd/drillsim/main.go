// Command drillsim runs the DRILL paper's evaluation experiments and
// prints the tables/series each figure reports.
//
// Usage:
//
//	drillsim -list
//	drillsim -exp fig6a [-scale 0.25] [-seed 7] [-loads 0.1,0.5,0.8] [-q]
//	drillsim -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"drill/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.Float64("scale", 0, "0 = quick single-core defaults, 1 = paper parameters")
		seed   = flag.Int64("seed", 1, "base random seed")
		loads  = flag.String("loads", "", "comma-separated load override, e.g. 0.1,0.5,0.8")
		reps   = flag.Int("reps", 1, "replications per sweep cell (pooled samples)")
		format = flag.String("format", "table", "output format: table | csv | json")
		quiet  = flag.Bool("q", false, "suppress per-run progress lines")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Reps: *reps}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: bad load %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Loads = append(opts.Loads, v)
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fmt.Fprintf(os.Stderr, "drillsim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := e.Run(opts)
		switch *format {
		case "table":
			fmt.Print(rep.Format())
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		case "csv":
			out, err := rep.CSV()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		case "json":
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: json: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		default:
			fmt.Fprintf(os.Stderr, "drillsim: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
