// Command drillsim runs the DRILL paper's evaluation experiments and
// prints the tables/series each figure reports.
//
// Usage:
//
//	drillsim -list
//	drillsim -exp fig6a [-scale 0.25] [-seed 7] [-loads 0.1,0.5,0.8] [-workers 4] [-q]
//	drillsim -exp all
//
// Sweep cells fan out across -workers goroutines; reports are
// byte-identical for a fixed seed at any worker count, and -workers 1
// reproduces the fully sequential behavior.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"drill/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 0, "0 = quick single-core defaults, 1 = paper parameters")
		seed    = flag.Int64("seed", 1, "base random seed")
		loads   = flag.String("loads", "", "comma-separated load override, e.g. 0.1,0.5,0.8")
		reps    = flag.Int("reps", 1, "replications per sweep cell (pooled samples)")
		workers = flag.Int("workers", runtime.NumCPU(), "concurrent simulation runs (1 = sequential)")
		format  = flag.String("format", "table", "output format: table | csv | json")
		quiet   = flag.Bool("q", false, "suppress per-run progress lines")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "drillsim: -reps must be >= 1 (got %d)\n", *reps)
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "drillsim: -workers must be >= 1 (got %d); omit the flag to use all %d CPUs\n",
			*workers, runtime.NumCPU())
		os.Exit(2)
	}
	// Sim runs are CPU-bound, so more workers than cores only adds
	// scheduling churn.
	resolved := *workers
	if n := runtime.NumCPU(); resolved > n {
		resolved = n
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Reps: *reps, Workers: resolved}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "drillsim: %d worker(s) (%d CPUs), seed %d, scale %g, reps %d\n",
			resolved, runtime.NumCPU(), *seed, *scale, *reps)
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: bad load %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Loads = append(opts.Loads, v)
		}
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		e := experiments.Get(strings.TrimSpace(id))
		if e == nil {
			fmt.Fprintf(os.Stderr, "drillsim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := e.Run(opts)
		// Wall-clock timing goes to stderr: stdout is byte-identical for a
		// fixed seed regardless of worker count or machine speed.
		fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		switch *format {
		case "table":
			fmt.Print(rep.Format())
			fmt.Println()
		case "csv":
			out, err := rep.CSV()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		case "json":
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "drillsim: json: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		default:
			fmt.Fprintf(os.Stderr, "drillsim: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
