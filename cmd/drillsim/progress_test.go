package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"drill/internal/obs"
	"drill/internal/units"
)

// syncBuffer serializes writes: the heartbeat goroutine writes while the
// test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestHeartbeatLines drives the heartbeat against a hand-populated
// registry playing the part of a mid-flight sweep (2 of 4 cells done, one
// run at 1.5ms sim time) and checks the emitted lines carry every field
// the flag promises: sim time, events/s, cells done/total, and an ETA.
func TestHeartbeatLines(t *testing.T) {
	reg := obs.NewRegistry(4)
	runEv := reg.Gauge("drill_run_events", `exp="x",cell="0"`, "test")
	runEv.Set(5e6)
	reg.Gauge("drill_run_events", `exp="x",cell="1"`, "test").Set(3e6)
	reg.Counter("drill_runner_cells_done_total", `exp="x"`, "test").Add(2)
	reg.Gauge("drill_runner_cells_total", `exp="x"`, "test").Set(4)
	reg.Snapshot(1500 * units.Microsecond)

	var out syncBuffer
	hb := startHeartbeat(reg, &out, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "progress:") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	runEv.Set(6e6) // events advance between ticks → non-trivial rate on later lines
	time.Sleep(15 * time.Millisecond)
	hb.Stop()
	got := out.String()

	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], "progress:") {
		t.Fatalf("no heartbeat lines emitted; output: %q", got)
	}
	want := regexp.MustCompile(`progress: sim=1\.50ms ev/s=\S+ cells=2/4 eta=(~\S+|\?)`)
	if !want.MatchString(lines[0]) {
		t.Errorf("heartbeat line %q does not match %v", lines[0], want)
	}

	// Stop must be terminal: no further lines after it returns.
	settled := out.String()
	time.Sleep(20 * time.Millisecond)
	if out.String() != settled {
		t.Error("heartbeat kept writing after Stop")
	}
}

// TestShardSuffix pins the sharded-engine heartbeat tail: aggregate
// barrier stall percentage plus the min..max per-shard event rate across
// every (cell, shard) series — and an empty string when the sweep runs
// the sequential engine and registers no drill_shard_* families at all.
func TestShardSuffix(t *testing.T) {
	reg := obs.NewRegistry(4)
	if got := shardSuffix(reg.Capture(0)); got != "" {
		t.Errorf("suffix without shard families = %q, want empty", got)
	}

	// Two shards of one cell: 2e6 events in 1s busy + 1s stalled, and
	// 8e6 events in 1s busy + 3s stalled → stall = 4/6 = 67%, rates
	// 2e6..8e6.
	set := func(name, shard string, v float64) {
		reg.Gauge(name, `exp="x",cell="0",shard="`+shard+`"`, "test").Set(v)
	}
	set("drill_shard_events_total", "0", 2e6)
	set("drill_shard_busy_seconds_total", "0", 1)
	set("drill_shard_stall_seconds_total", "0", 1)
	set("drill_shard_events_total", "1", 8e6)
	set("drill_shard_busy_seconds_total", "1", 1)
	set("drill_shard_stall_seconds_total", "1", 3)
	got := shardSuffix(reg.Capture(0))
	want := " stall=67% shard-ev/s=2e+06..8e+06"
	if got != want {
		t.Errorf("shardSuffix = %q, want %q", got, want)
	}
}

// TestHeartbeatShardLine drives the full heartbeat against a registry
// carrying shard families and checks the emitted line ends with the
// sharded tail, alongside the usual fields.
func TestHeartbeatShardLine(t *testing.T) {
	reg := obs.NewRegistry(4)
	reg.Gauge("drill_run_events", `exp="x",cell="0"`, "test").Set(1e6)
	reg.Counter("drill_runner_cells_done_total", `exp="x"`, "test").Add(1)
	reg.Gauge("drill_runner_cells_total", `exp="x"`, "test").Set(2)
	reg.Gauge("drill_shard_events_total", `exp="x",cell="0",shard="0"`, "test").Set(4e6)
	reg.Gauge("drill_shard_busy_seconds_total", `exp="x",cell="0",shard="0"`, "test").Set(2)
	reg.Gauge("drill_shard_stall_seconds_total", `exp="x",cell="0",shard="0"`, "test").Set(2)
	reg.Snapshot(500 * units.Microsecond)

	var out syncBuffer
	hb := startHeartbeat(reg, &out, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "progress:") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	hb.Stop()
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatalf("no heartbeat lines emitted; output: %q", out.String())
	}
	want := regexp.MustCompile(`progress: sim=\S+ ev/s=\S+ cells=1/2 eta=\S+ stall=50% shard-ev/s=2e\+06\.\.2e\+06$`)
	if !want.MatchString(lines[0]) {
		t.Errorf("heartbeat line %q does not match %v", lines[0], want)
	}
}

// TestSumFamily pins the helper: sums across label sets of one family,
// ignores other families.
func TestSumFamily(t *testing.T) {
	reg := obs.NewRegistry(2)
	reg.Gauge("a", `cell="0"`, "t").Set(1)
	reg.Gauge("a", `cell="1"`, "t").Set(2)
	reg.Gauge("b", ``, "t").Set(40)
	s := reg.Capture(0)
	if got := sumFamily(s, "a"); got != 3 {
		t.Errorf("sumFamily(a) = %v, want 3", got)
	}
	if got := sumFamily(s, "nope"); got != 0 {
		t.Errorf("sumFamily(nope) = %v, want 0", got)
	}
}
