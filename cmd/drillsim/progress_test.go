package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"drill/internal/obs"
	"drill/internal/units"
)

// syncBuffer serializes writes: the heartbeat goroutine writes while the
// test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestHeartbeatLines drives the heartbeat against a hand-populated
// registry playing the part of a mid-flight sweep (2 of 4 cells done, one
// run at 1.5ms sim time) and checks the emitted lines carry every field
// the flag promises: sim time, events/s, cells done/total, and an ETA.
func TestHeartbeatLines(t *testing.T) {
	reg := obs.NewRegistry(4)
	runEv := reg.Gauge("drill_run_events", `exp="x",cell="0"`, "test")
	runEv.Set(5e6)
	reg.Gauge("drill_run_events", `exp="x",cell="1"`, "test").Set(3e6)
	reg.Counter("drill_runner_cells_done_total", `exp="x"`, "test").Add(2)
	reg.Gauge("drill_runner_cells_total", `exp="x"`, "test").Set(4)
	reg.Snapshot(1500 * units.Microsecond)

	var out syncBuffer
	hb := startHeartbeat(reg, &out, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "progress:") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	runEv.Set(6e6) // events advance between ticks → non-trivial rate on later lines
	time.Sleep(15 * time.Millisecond)
	hb.Stop()
	got := out.String()

	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], "progress:") {
		t.Fatalf("no heartbeat lines emitted; output: %q", got)
	}
	want := regexp.MustCompile(`progress: sim=1\.50ms ev/s=\S+ cells=2/4 eta=(~\S+|\?)`)
	if !want.MatchString(lines[0]) {
		t.Errorf("heartbeat line %q does not match %v", lines[0], want)
	}

	// Stop must be terminal: no further lines after it returns.
	settled := out.String()
	time.Sleep(20 * time.Millisecond)
	if out.String() != settled {
		t.Error("heartbeat kept writing after Stop")
	}
}

// TestSumFamily pins the helper: sums across label sets of one family,
// ignores other families.
func TestSumFamily(t *testing.T) {
	reg := obs.NewRegistry(2)
	reg.Gauge("a", `cell="0"`, "t").Set(1)
	reg.Gauge("a", `cell="1"`, "t").Set(2)
	reg.Gauge("b", ``, "t").Set(40)
	s := reg.Capture(0)
	if got := sumFamily(s, "a"); got != 3 {
		t.Errorf("sumFamily(a) = %v, want 3", got)
	}
	if got := sumFamily(s, "nope"); got != 0 {
		t.Errorf("sumFamily(nope) = %v, want 0", got)
	}
}
