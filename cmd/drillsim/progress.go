package main

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"drill/internal/obs"
)

// heartbeat prints one sweep-progress line per wall interval, driven
// entirely by the shared metrics registry: the sim time of the most
// recently published snapshot, live events/s summed across running cells,
// cells done/total, and an ETA extrapolated from the completed-cell rate.
// It reads only atomics and immutable published snapshots, so it can never
// perturb a run — and main refuses to start it at -workers 1, keeping
// sequential determinism runs byte-for-byte silent on the sim side.
type heartbeat struct {
	reg  *obs.Registry
	out  io.Writer
	stop chan struct{}
	done chan struct{}
}

// startHeartbeat emits a progress line to out every `every` (1s in main;
// tests shrink it).
func startHeartbeat(reg *obs.Registry, out io.Writer, every time.Duration) *heartbeat {
	hb := &heartbeat{reg: reg, out: out, stop: make(chan struct{}), done: make(chan struct{})}
	go hb.loop(every)
	return hb
}

// Stop ends the heartbeat and waits for its goroutine, so no line can
// interleave with the final report.
func (hb *heartbeat) Stop() {
	close(hb.stop)
	<-hb.done
}

func (hb *heartbeat) loop(every time.Duration) {
	defer close(hb.done)
	tick := time.NewTicker(every) //drill:allow simtime wall-clock heartbeat cadence, never a sim timestamp
	defer tick.Stop()
	start := time.Now() //drill:allow simtime wall-clock ETA baseline, never a sim timestamp
	last := start
	var lastEvents float64
	for {
		select {
		case <-hb.stop:
			return
		case now := <-tick.C:
			snap := hb.reg.Capture(0)
			events := sumFamily(snap, "drill_run_events")
			rate := 0.0
			if dt := now.Sub(last).Seconds(); dt > 0 {
				rate = (events - lastEvents) / dt
			}
			last, lastEvents = now, events

			done := sumFamily(snap, "drill_runner_cells_done_total")
			total := sumFamily(snap, "drill_runner_cells_total")
			simT := "-"
			if l := hb.reg.Latest(); l != nil {
				simT = fmt.Sprintf("%.2fms", l.SimTime.Millis())
			}
			eta := "?"
			if elapsed := now.Sub(start); done > 0 && total > done {
				left := time.Duration(float64(elapsed) / done * (total - done))
				eta = "~" + left.Round(time.Second).String()
			} else if total > 0 && done >= total {
				eta = "0s"
			}
			fmt.Fprintf(hb.out, "  progress: sim=%s ev/s=%.3g cells=%.0f/%.0f eta=%s%s\n",
				simT, rate, done, total, eta, shardSuffix(snap))
		}
	}
}

// sumFamily totals a metric family across every label set in the snapshot,
// e.g. per-cell run-event gauges or per-experiment runner counters.
func sumFamily(s *obs.Snapshot, name string) float64 {
	var sum float64
	for i := range s.Points {
		if s.Points[i].Name == name {
			sum += s.Points[i].Value
		}
	}
	return sum
}

// shardSuffix renders the sharded-engine tail of a heartbeat line from the
// drill_shard_* families: aggregate barrier stall %% and the min..max
// per-shard event rate across every (cell, shard) series. Sequential
// sweeps register none of these families, so the suffix is empty and the
// heartbeat line is unchanged.
func shardSuffix(s *obs.Snapshot) string {
	type row struct{ events, busy, stall float64 }
	rows := map[string]*row{}
	get := func(labels string) *row {
		r := rows[labels]
		if r == nil {
			r = &row{}
			rows[labels] = r
		}
		return r
	}
	for i := range s.Points {
		p := &s.Points[i]
		switch p.Name {
		case "drill_shard_events_total":
			get(p.Labels).events = p.Value
		case "drill_shard_busy_seconds_total":
			get(p.Labels).busy = p.Value
		case "drill_shard_stall_seconds_total":
			get(p.Labels).stall = p.Value
		}
	}
	if len(rows) == 0 {
		return ""
	}
	// Aggregates only — min, max, sums — so the map's iteration order
	// cannot show through.
	var busy, stall float64
	minRate, maxRate := math.Inf(1), 0.0
	for _, r := range rows {
		busy += r.busy
		stall += r.stall
		if r.busy > 0 {
			rate := r.events / r.busy
			minRate = math.Min(minRate, rate)
			maxRate = math.Max(maxRate, rate)
		}
	}
	var b strings.Builder
	if busy+stall > 0 {
		fmt.Fprintf(&b, " stall=%.0f%%", 100*stall/(busy+stall))
	}
	if maxRate > 0 {
		fmt.Fprintf(&b, " shard-ev/s=%.3g..%.3g", minRate, maxRate)
	}
	return b.String()
}
