// Command drillbench runs the canonical performance cells and writes a
// BENCH_*.json snapshot — one point of the repo's performance trajectory.
//
// Usage:
//
//	drillbench -out BENCH_baseline.json [-seed 1] [-q]
//
// Each cell reports events/sec, ns/event, allocs and bytes per event, peak
// heap, and packet-pool traffic; the micro section reports allocs/op for
// the timer re-arm, packet recycle, and send→deliver paths (the first two
// are pinned at zero by alloc-ceiling tests). Event counts and pool
// traffic are deterministic per seed; wall-clock-derived rates vary with
// the machine, so compare BENCH files from the same hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"drill/internal/experiments"
)

func main() {
	var (
		out   = flag.String("out", "", "write the JSON report to this file (default stdout)")
		seed  = flag.Int64("seed", 1, "base random seed for the bench cells")
		quiet = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	var progress func(format string, args ...any)
	if !*quiet {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}
	rep := experiments.RunBench(*seed, progress)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "drillbench: encode: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "drillbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "drillbench: wrote %s\n", *out)
}
