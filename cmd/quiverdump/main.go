// Command quiverdump builds a Clos topology, optionally fails links, and
// prints the Quiver decomposition of §3.4: per source/destination leaf
// pair, the symmetric path components with their weights and capacities —
// the control-plane state DRILL's data plane consumes. It is the runnable
// version of the paper's Figure 4/5 walk-through.
//
// Usage:
//
//	quiverdump [-spines 3] [-leaves 4] [-fail L0-S0,L2-S1] [-pair L3-L1]
//	quiverdump -topo hetero -spines 4 -leaves 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drill/internal/quiver"
	"drill/internal/topo"
	"drill/internal/units"
)

func main() {
	var (
		kind   = flag.String("topo", "leafspine", "topology: leafspine | hetero")
		spines = flag.Int("spines", 3, "spine count")
		leaves = flag.Int("leaves", 4, "leaf count")
		fails  = flag.String("fail", "", "links to fail, e.g. L0-S0,L2-S1")
		pair   = flag.String("pair", "", "only show this src-dst leaf pair, e.g. L3-L1")
	)
	flag.Parse()

	var t *topo.Topology
	switch *kind {
	case "leafspine":
		t = topo.LeafSpine(topo.LeafSpineConfig{Spines: *spines, Leaves: *leaves,
			HostsPerLeaf: 1, HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	case "hetero":
		t = topo.Heterogeneous(topo.HeterogeneousConfig{Spines: *spines, Leaves: *leaves,
			HostsPerLeaf: 1})
	default:
		fmt.Fprintf(os.Stderr, "quiverdump: unknown topology %q\n", *kind)
		os.Exit(2)
	}

	spineIDs := map[int]topo.NodeID{}
	i := 0
	for _, n := range t.Nodes {
		if n.Kind == topo.Spine {
			spineIDs[i] = n.ID
			i++
		}
	}
	leafAt := func(i int) topo.NodeID {
		if i < 0 || i >= len(t.Leaves) {
			fmt.Fprintf(os.Stderr, "quiverdump: leaf L%d out of range\n", i)
			os.Exit(2)
		}
		return t.Leaves[i]
	}

	if *fails != "" {
		for _, f := range strings.Split(*fails, ",") {
			parts := strings.SplitN(strings.TrimSpace(f), "-", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				fmt.Fprintf(os.Stderr, "quiverdump: bad -fail entry %q (want L0-S0)\n", f)
				os.Exit(2)
			}
			li, err1 := strconv.Atoi(strings.TrimPrefix(parts[0], "L"))
			si, err2 := strconv.Atoi(strings.TrimPrefix(parts[1], "S"))
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "quiverdump: bad -fail entry %q\n", f)
				os.Exit(2)
			}
			links := t.LinkBetween(leafAt(li), spineIDs[si])
			if len(links) == 0 {
				fmt.Fprintf(os.Stderr, "quiverdump: no up link L%d-S%d\n", li, si)
				os.Exit(2)
			}
			t.FailLink(links[0])
			fmt.Printf("failed L%d-S%d\n", li, si)
		}
	}

	r := topo.ComputeRoutes(t)
	q := quiver.Build(r)

	show := func(src, dst topo.NodeID) {
		comps := q.Decompose(src, dst)
		fmt.Printf("\n%s -> %s: %d symmetric component(s)\n",
			t.Nodes[src].Name, t.Nodes[dst].Name, len(comps))
		for ci, c := range comps {
			fmt.Printf("  component %d  weight=%d  capacity=%v\n", ci, c.Weight, c.Capacity)
			for _, p := range c.Paths {
				names := make([]string, 0, len(p)+1)
				for _, nid := range r.PathNodes(src, p) {
					names = append(names, t.Nodes[nid].Name)
				}
				fmt.Printf("    %s\n", strings.Join(names, " -> "))
			}
		}
	}

	if *pair != "" {
		parts := strings.SplitN(*pair, "-", 2)
		si, err1 := strconv.Atoi(strings.TrimPrefix(parts[0], "L"))
		di, err2 := strconv.Atoi(strings.TrimPrefix(parts[1], "L"))
		if len(parts) != 2 || err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "quiverdump: bad -pair (want L3-L1)\n")
			os.Exit(2)
		}
		show(leafAt(si), leafAt(di))
		return
	}
	for _, src := range t.Leaves {
		for _, dst := range t.Leaves {
			if src != dst {
				show(src, dst)
			}
		}
	}
}
