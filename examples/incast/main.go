// Incast: the paper's Fig. 14 scenario via the public API. A bursty
// many-to-few request pattern (10% of hosts answer 10KB to 10% of hosts,
// simultaneously) rides on background traffic; DRILL's microsecond
// reactions divert the microburst at the first hop, cutting the incast
// flows' tail latency relative to ECMP and Presto.
package main

import (
	"fmt"

	"drill"
)

func main() {
	const (
		bgLoad  = 0.2
		period  = 1 * drill.Millisecond
		horizon = 5 * drill.Millisecond
	)
	fmt.Printf("incast every %v over %.0f%% background load\n\n", period, bgLoad*100)
	fmt.Printf("%-8s %8s %12s %12s %12s %14s\n",
		"scheme", "incasts", "mean[ms]", "p99[ms]", "p99.99[ms]", "hop1 queue[us]")

	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"ECMP", drill.ECMP(), 0},
		{"Presto", drill.Presto(), 100 * drill.Microsecond},
		{"CONGA", drill.CONGA(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		c := drill.NewCluster(drill.LeafSpine(4, 8, 20), drill.Options{
			Balancer: cfg.bal, Seed: 7, ShimTimeout: cfg.shim, QueueCap: 128,
		})
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(bgLoad, drill.FacebookCache, horizon)
		c.StartIncast(period, horizon)
		c.Run(horizon + 20*drill.Millisecond)

		inc := c.Stats().FCT("incast")
		fmt.Printf("%-8s %8d %12.3f %12.3f %12.3f %14.2f\n",
			cfg.name, inc.Count(), inc.Mean(), inc.Percentile(99),
			inc.Percentile(99.99), c.Stats().MeanHopQueueing(1))
	}
}
