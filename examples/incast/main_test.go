package main

import (
	"testing"

	"drill"
)

// TestIncastSmoke runs the example's many-to-few scenario at a short
// horizon for every scheme the example compares, and asserts packets are
// delivered and incast flows complete.
func TestIncastSmoke(t *testing.T) {
	const horizon = 2 * drill.Millisecond
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"ECMP", drill.ECMP(), 0},
		{"Presto", drill.Presto(), 100 * drill.Microsecond},
		{"CONGA", drill.CONGA(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		c := drill.NewCluster(drill.LeafSpine(4, 8, 20), drill.Options{
			Balancer: cfg.bal, Seed: 7, ShimTimeout: cfg.shim, QueueCap: 128,
		})
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(0.2, drill.FacebookCache, horizon)
		c.StartIncast(1*drill.Millisecond, horizon)
		c.Run(horizon + 2*drill.Millisecond)
		if d := c.Stats().Delivered(); d == 0 {
			t.Errorf("%s: no packets delivered", cfg.name)
		}
		if n := c.Stats().FCT("incast").Count(); n == 0 {
			t.Errorf("%s: no incast flows completed", cfg.name)
		}
	}
}
