package main

import (
	"testing"

	"drill"
	"drill/internal/quiver"
	"drill/internal/topo"
)

// TestFailoverSmoke exercises both halves of the example: the quiver
// decomposition of the asymmetric topology, and traffic over a fabric
// with a pre-failed core link, asserting packets still flow around the
// failure under every scheme.
func TestFailoverSmoke(t *testing.T) {
	tp := drill.LeafSpine(3, 4, 1)
	var s0 drill.NodeID
	for _, n := range tp.Nodes {
		if n.Kind == topo.Spine {
			s0 = n.ID
			break
		}
	}
	tp.FailLink(tp.LinkBetween(tp.Leaves[0], s0)[0])
	q := quiver.Build(topo.ComputeRoutes(tp))
	if comps := q.Decompose(tp.Leaves[3], tp.Leaves[1]); len(comps) == 0 {
		t.Fatal("quiver decomposition produced no components")
	}

	const horizon = 1 * drill.Millisecond
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
	}{
		{"ECMP", drill.ECMP()},
		{"DRILL naive", drill.DRILLdm(2, 1)},
		{"DRILL", drill.DRILL()},
	} {
		fabric := drill.LeafSpine(4, 8, 20)
		c := drill.NewCluster(fabric, drill.Options{
			Balancer: cfg.bal, Seed: 9,
			ShimTimeout: 100 * drill.Microsecond,
			RouteDelay:  1 * drill.Millisecond,
		})
		var spine drill.NodeID
		for _, n := range fabric.Nodes {
			if n.Kind == topo.Spine {
				spine = n.ID
				break
			}
		}
		c.FailLink(fabric.LinkBetween(fabric.Leaves[0], spine)[0], true)
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(0.7, drill.FacebookCache, horizon)
		c.Run(horizon + 2*drill.Millisecond)
		if d := c.Stats().Delivered(); d == 0 {
			t.Errorf("%s: no packets delivered around the failed link", cfg.name)
		}
	}
}
