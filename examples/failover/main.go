// Failover: what §3.4 is about. A leaf–spine link fails mid-run, making
// the topology asymmetric; DRILL's control plane decomposes the surviving
// paths into symmetric components (the Quiver) and re-weights them, so
// flows keep their bandwidth instead of being capped by the congested
// side's rate. Compare against naive per-packet DRILL without the
// decomposition, and ECMP.
package main

import (
	"fmt"

	"drill"
	"drill/internal/quiver"
	"drill/internal/topo"
)

func main() {
	// First, show the control-plane view: the Fig. 4 decomposition.
	t := drill.LeafSpine(3, 4, 1)
	var s0 drill.NodeID
	for _, n := range t.Nodes {
		if n.Kind == topo.Spine {
			s0 = n.ID
			break
		}
	}
	link := t.LinkBetween(t.Leaves[0], s0)[0]
	t.FailLink(link)
	q := quiver.Build(topo.ComputeRoutes(t))
	comps := q.Decompose(t.Leaves[3], t.Leaves[1])
	fmt.Printf("after failing L0-S0, L3→L1 decomposes into %d symmetric components:\n", len(comps))
	for i, c := range comps {
		fmt.Printf("  component %d: %d path(s), weight %d, capacity %v\n",
			i, len(c.Paths), c.Weight, c.Capacity)
	}
	fmt.Println()

	// Then the data-plane consequence under load.
	const horizon = 5 * drill.Millisecond
	fmt.Printf("%-22s %10s %10s %12s\n", "scheme", "mean[ms]", "p99[ms]", "retransmits")
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
	}{
		{"ECMP", drill.ECMP()},
		{"DRILL naive (no quiver)", drill.DRILLdm(2, 1)},
		{"DRILL (quiver)", drill.DRILL()},
	} {
		tp := drill.LeafSpine(4, 8, 20)
		c := drill.NewCluster(tp, drill.Options{
			Balancer: cfg.bal, Seed: 9,
			ShimTimeout: 100 * drill.Microsecond,
			RouteDelay:  1 * drill.Millisecond,
		})
		// Fail one core link before traffic (pre-converged asymmetry).
		var spine drill.NodeID
		for _, n := range tp.Nodes {
			if n.Kind == topo.Spine {
				spine = n.ID
				break
			}
		}
		c.FailLink(tp.LinkBetween(tp.Leaves[0], spine)[0], true)
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(0.7, drill.FacebookCache, horizon)
		c.Run(horizon + 20*drill.Millisecond)
		fct := c.Stats().FCT("")
		fmt.Printf("%-22s %10.3f %10.3f %12d\n",
			cfg.name, fct.Mean(), fct.Percentile(99), c.Stats().Retransmits())
	}
}
