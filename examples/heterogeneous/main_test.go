package main

import (
	"testing"

	"drill"
)

// TestHeterogeneousSmoke runs the example's imbalanced-striping fabric at
// a short horizon for every scheme it compares, asserting traffic crosses
// the parallel-link topology under each.
func TestHeterogeneousSmoke(t *testing.T) {
	const horizon = 1 * drill.Millisecond
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"WCMP", drill.WCMP(), 0},
		{"Presto", drill.Presto(), 100 * drill.Microsecond},
		{"CONGA", drill.CONGA(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		c := drill.NewCluster(drill.Heterogeneous(6, 16, 12), drill.Options{
			Balancer: cfg.bal, Seed: 21, ShimTimeout: cfg.shim,
		})
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(0.6, drill.FacebookCache, horizon)
		c.Run(horizon + 2*drill.Millisecond)
		if d := c.Stats().Delivered(); d == 0 {
			t.Errorf("%s: no packets delivered", cfg.name)
		}
	}
}
