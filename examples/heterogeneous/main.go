// Heterogeneous: the Fig. 13 scenario — imbalanced striping, where each
// leaf has two parallel links to its two "near" spines and single links
// elsewhere. Load-oblivious schemes (Presto, WCMP) either over- or
// under-use the parallel links; DRILL's capacity-factor labels (§3.4.3)
// group symmetric paths and weight them by capacity.
package main

import (
	"fmt"

	"drill"
)

func main() {
	const (
		load    = 0.6
		horizon = 4 * drill.Millisecond
	)
	fmt.Printf("16 leaves x 12 hosts, 6 spines, doubled links to near spines; %.0f%% load\n\n", load*100)
	fmt.Printf("%-8s %10s %10s %12s\n", "scheme", "mean[ms]", "p99[ms]", "p99.99[ms]")
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"WCMP", drill.WCMP(), 0},
		{"Presto", drill.Presto(), 100 * drill.Microsecond},
		{"CONGA", drill.CONGA(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		c := drill.NewCluster(drill.Heterogeneous(6, 16, 12), drill.Options{
			Balancer: cfg.bal, Seed: 21, ShimTimeout: cfg.shim,
		})
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(load, drill.FacebookCache, horizon)
		c.Run(horizon + 20*drill.Millisecond)
		fct := c.Stats().FCT("")
		fmt.Printf("%-8s %10.3f %10.3f %12.3f\n",
			cfg.name, fct.Mean(), fct.Percentile(99), fct.Percentile(99.99))
	}
}
