package main

import (
	"testing"

	"drill"
)

// TestQuickstartSmoke runs the example's scenario — both schemes on the
// leaf–spine fabric under offered load — at a short horizon and asserts
// the fabric actually delivered traffic. A broken example would still
// compile; this catches it producing an empty table.
func TestQuickstartSmoke(t *testing.T) {
	const horizon = 1 * drill.Millisecond
	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"ECMP", drill.ECMP(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		c := drill.NewCluster(drill.LeafSpine(4, 8, 20), drill.Options{
			Balancer: cfg.bal, Seed: 42, ShimTimeout: cfg.shim,
		})
		c.MeasureFrom(500 * drill.Microsecond)
		c.OfferLoad(0.8, drill.FacebookCache, horizon)
		c.Run(horizon + 2*drill.Millisecond)
		if d := c.Stats().Delivered(); d == 0 {
			t.Errorf("%s: no packets delivered", cfg.name)
		}
		if n := c.Stats().FlowsFinished(); n == 0 {
			t.Errorf("%s: no flows finished", cfg.name)
		}
	}
}
