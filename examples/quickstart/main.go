// Quickstart: build a leaf–spine fabric, run the same bursty workload
// under ECMP and DRILL, and compare flow completion times — the paper's
// headline comparison in ~40 lines.
package main

import (
	"fmt"

	"drill"
)

func main() {
	const (
		load    = 0.8
		horizon = 5 * drill.Millisecond
	)
	fmt.Printf("leaf-spine 4x8x20, %.0f%% offered core load, %v of traffic\n\n", load*100, horizon)
	fmt.Printf("%-8s %10s %10s %10s %10s %8s\n",
		"scheme", "flows", "mean[ms]", "p99[ms]", "p99.99[ms]", "drops")

	for _, cfg := range []struct {
		name string
		bal  drill.Balancer
		shim drill.Time
	}{
		{"ECMP", drill.ECMP(), 0},
		{"DRILL", drill.DRILL(), 100 * drill.Microsecond},
	} {
		topo := drill.LeafSpine(4, 8, 20)
		c := drill.NewCluster(topo, drill.Options{
			Balancer:    cfg.bal,
			Seed:        42,
			ShimTimeout: cfg.shim,
		})
		c.MeasureFrom(500 * drill.Microsecond) // warm-up excluded
		c.OfferLoad(load, drill.FacebookCache, horizon)
		c.Run(horizon + 20*drill.Millisecond) // let tails drain

		fct := c.Stats().FCT("")
		fmt.Printf("%-8s %10d %10.3f %10.3f %10.3f %8d\n",
			cfg.name, fct.Count(), fct.Mean(),
			fct.Percentile(99), fct.Percentile(99.99), c.Stats().Drops())
	}

	fmt.Println("\nDRILL's per-packet, queue-aware decisions keep upstream queues")
	fmt.Println("balanced, which shows up as lower tail latency under load.")
}
