//go:build tools

// Package tools pins build-time tool dependencies in go.mod so that
// lint results are reproducible across machines: the drillvet analyzers
// are compiled against exactly the golang.org/x/tools version recorded
// here (and vendored under vendor/), never whatever happens to be in a
// local module cache. External linters that cannot be vendored as Go
// imports (staticcheck, govulncheck) are pinned by version in
// .github/workflows/ci.yml instead.
//
// This file is never compiled into a binary; the "tools" build tag is
// set by no build.
package tools

import (
	_ "golang.org/x/tools/go/analysis/unitchecker"
)
