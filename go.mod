module drill

go 1.22
