package drill

import (
	"drill/internal/fabric"
	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/transport"
	"drill/internal/workload"
)

// Options configures a Cluster.
type Options struct {
	// Balancer selects the load-balancing policy (default DRILL()).
	Balancer Balancer
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Engines is the number of parallel forwarding engines per switch.
	Engines int
	// QueueCap is the per-port packet buffer (default 1024).
	QueueCap int
	// ShimTimeout enables the receiver reordering shim (0 = off).
	ShimTimeout Time
	// RouteDelay is the control-plane reconvergence delay after failures.
	RouteDelay Time
	// MinRTO overrides the TCP retransmission-timer floor.
	MinRTO Time
	// TrackGRO enables GRO batching telemetry.
	TrackGRO bool
	// ECNThreshold enables switch ECN marking above that many queued
	// packets; pair with DCTCP (extension — see DESIGN.md).
	ECNThreshold int
	// DCTCP switches senders to DCTCP congestion control.
	DCTCP bool
	// AdaptiveShim upgrades ShimTimeout to the skew-tracking variant.
	AdaptiveShim bool
}

// Cluster is a running simulated data center: topology + switches + host
// TCP stacks on one discrete-event timeline.
type Cluster struct {
	sim *sim.Sim
	net *fabric.Network
	reg *transport.Registry
}

// NewCluster assembles a cluster over the topology.
func NewCluster(t *Topology, o Options) *Cluster {
	if o.Balancer == nil {
		o.Balancer = DRILL()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	s := sim.New(o.Seed)
	net := fabric.New(s, t, fabric.Config{
		Balancer:     o.Balancer,
		Engines:      o.Engines,
		QueueCap:     o.QueueCap,
		RouteDelay:   o.RouteDelay,
		ECNThreshold: o.ECNThreshold,
	})
	reg := transport.NewRegistry(s, net, transport.Config{
		ShimTimeout:  o.ShimTimeout,
		MinRTO:       o.MinRTO,
		TrackGRO:     o.TrackGRO,
		DCTCP:        o.DCTCP,
		AdaptiveShim: o.AdaptiveShim,
	})
	return &Cluster{sim: s, net: net, reg: reg}
}

// Hosts lists the cluster's host node IDs.
func (c *Cluster) Hosts() []NodeID { return c.net.Topo.Hosts }

// Topology returns the underlying fabric graph.
func (c *Cluster) Topology() *Topology { return c.net.Topo }

// Now returns the current simulated time.
func (c *Cluster) Now() Time { return c.sim.Now() }

// StartFlow begins a TCP transfer of size bytes (size < 0 = open-ended;
// read progress via Flow.AckedBytes). Class tags the flow for per-class
// statistics.
func (c *Cluster) StartFlow(src, dst NodeID, size int64, class string) *Flow {
	return c.reg.StartFlow(src, dst, size, class)
}

// At schedules fn at an absolute simulated time (before or during Run).
func (c *Cluster) At(t Time, fn func()) { c.sim.At(t, fn) }

// Run advances the simulation by d (processing all traffic due in that
// window, plus whatever it spawns inside the window).
func (c *Cluster) Run(d Time) { c.sim.RunUntil(c.sim.Now() + d) }

// RunToCompletion processes events until all traffic drains.
func (c *Cluster) RunToCompletion() { c.sim.Run() }

// OfferLoad starts background traffic: Poisson/bursty flow arrivals with
// sizes drawn from dist, calibrated so aggregate demand equals load (0..1)
// of the fabric's core capacity, until the given time.
func (c *Cluster) OfferLoad(load float64, dist *SizeDist, until Time) {
	g := workload.NewGenerator(c.reg, dist, workload.Load(load), until)
	g.Start()
}

// StartIncast runs the paper's incast application: every period, 10% of
// hosts each send a 10KB flow to hosts drawn from a random 10% subset.
func (c *Cluster) StartIncast(period, until Time) {
	workload.NewIncast(c.reg, period, until).Start()
}

// MeasureFrom excludes flows started before t from statistics (warm-up).
func (c *Cluster) MeasureFrom(t Time) { c.reg.MeasureFrom = t }

// FailLink takes a link out of service; routing reconverges after the
// cluster's RouteDelay (or immediately if instant). Failing a link that is
// already down is a no-op.
func (c *Cluster) FailLink(id LinkID, instant bool) { c.net.FailLink(id, instant) }

// RestoreLink returns a failed link to service: both directions carry
// traffic again immediately, and routing reconverges onto the revived
// capacity after the cluster's RouteDelay (or immediately if instant).
// Restoring a link that is already up is a no-op.
func (c *Cluster) RestoreLink(id LinkID, instant bool) { c.net.RestoreLink(id, instant) }

// LinksBetween returns the up links directly connecting two nodes.
func (c *Cluster) LinksBetween(a, b NodeID) []LinkID { return c.net.Topo.LinkBetween(a, b) }

// LeafOf returns the leaf switch a host attaches to.
func (c *Cluster) LeafOf(h NodeID) NodeID { return c.net.Topo.LeafOf(h) }

// Stats exposes the cluster's transport-level measurements.
func (c *Cluster) Stats() *ClusterStats {
	return &ClusterStats{c: c}
}

// ClusterStats reads measurements out of a cluster.
type ClusterStats struct {
	c *Cluster
}

// FCT returns the flow-completion-time distribution (milliseconds),
// optionally restricted to a class ("" = all flows).
func (s *ClusterStats) FCT(class string) *FCTStats {
	if class == "" {
		return &s.c.reg.Stats.FCT
	}
	return s.c.reg.Stats.ClassDist(class)
}

// FlowsStarted and FlowsFinished report flow counts.
func (s *ClusterStats) FlowsStarted() int64  { return s.c.reg.Stats.FlowsStarted }
func (s *ClusterStats) FlowsFinished() int64 { return s.c.reg.Stats.FlowsFinished }

// Retransmits reports total TCP segment retransmissions.
func (s *ClusterStats) Retransmits() int64 { return s.c.reg.Stats.Retransmits }

// Delivered reports total packets handed to destination hosts.
func (s *ClusterStats) Delivered() int64 { return s.c.net.Delivered }

// Drops reports total packets dropped in the fabric.
func (s *ClusterStats) Drops() int64 { return s.c.net.Hops.TotalDrops() }

// DupAckFlowFraction reports the fraction of finished flows that generated
// at least n duplicate ACKs (the paper's reordering metric).
func (s *ClusterStats) DupAckFlowFraction(n int) float64 {
	return s.c.reg.Stats.DupAcks.FracAtLeast(n)
}

// MeanHopQueueing reports mean queueing (µs) at a hop class 0..5
// (host-NIC, leaf-up, agg-up, core-down, spine-down, leaf-to-host).
func (s *ClusterStats) MeanHopQueueing(hop int) float64 {
	return s.c.net.Hops.MeanQueueing(metrics.HopClass(hop))
}

// QueueImbalance samples the current standard deviation of each leaf's
// uplink queue lengths, averaged over leaves — an instantaneous view of
// the §3.2.3 balance metric.
func (s *ClusterStats) QueueImbalance() float64 {
	var w metrics.Welford
	for _, leaf := range s.c.net.Topo.Leaves {
		ups := s.c.net.LeafUplinks(leaf)
		if len(ups) < 2 {
			continue
		}
		lens := make([]int32, len(ups))
		for i, p := range ups {
			lens[i] = p.QueueLen()
		}
		w.Add(metrics.StdDevInt32(lens))
	}
	return w.Mean()
}

// Internal returns the underlying simulator, network and transport
// registry for advanced use (custom instrumentation, custom traffic).
func (c *Cluster) Internal() (*sim.Sim, *fabric.Network, *transport.Registry) {
	return c.sim, c.net, c.reg
}
