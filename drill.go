// Package drill is a faithful, simulation-backed implementation of DRILL
// (Distributed Randomized In-network Localized Load-balancing), the
// micro-load-balancing fabric for Clos data center networks from
// Ghorbani et al., SIGCOMM 2017 — together with every substrate its
// evaluation needs: a discrete-event network simulator with a detailed
// multi-engine switch model, TCP NewReno host stacks, the Quiver
// control-plane decomposition for asymmetric fabrics, and the baseline
// load balancers the paper compares against (ECMP, per-packet Random and
// Round-Robin, WCMP, Presto, CONGA).
//
// # Quick start
//
//	topo := drill.LeafSpine(4, 8, 20)          // 4 spines, 8 leaves, 20 hosts/leaf
//	c := drill.NewCluster(topo, drill.Options{Balancer: drill.DRILL()})
//	f := c.StartFlow(c.Hosts()[0], c.Hosts()[100], 1<<20, "")
//	c.Run(50 * drill.Millisecond)
//	fmt.Println(f.Done(), f.FCT())
//
// The algorithm itself — the DRILL(d,m) selector — is also available
// standalone via NewSelector for use outside the simulator.
//
// The cmd/drillsim binary regenerates every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package drill

import (
	"math/rand"

	"drill/internal/core"
	"drill/internal/fabric"
	"drill/internal/lb"
	"drill/internal/metrics"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// Re-exported value types.
type (
	// Time is simulated time in nanoseconds.
	Time = units.Time
	// Rate is a link rate in bits per second.
	Rate = units.Rate
	// ByteSize is a data size in bytes.
	ByteSize = units.ByteSize

	// Topology is a fabric graph of hosts, switches and links.
	Topology = topo.Topology
	// NodeID identifies a host or switch in a Topology.
	NodeID = topo.NodeID
	// LinkID identifies an undirected link.
	LinkID = topo.LinkID

	// Balancer is a pluggable per-packet load-balancing policy.
	Balancer = fabric.Balancer
	// Flow is a TCP transfer handle.
	Flow = transport.Sender
	// FCTStats is a sample distribution with exact percentiles.
	FCTStats = metrics.Dist
	// SizeDist is an empirical flow-size distribution.
	SizeDist = workload.SizeDist
)

// Common durations and rates.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps

	KB = units.KB
	MB = units.MB
	GB = units.GB
)

// Workload distributions fitted to published datacenter measurements.
var (
	FacebookWeb   = workload.FacebookWeb
	FacebookCache = workload.FacebookCache
	WebSearch     = workload.WebSearch
	DataMining    = workload.DataMining
)

// NewSelector returns a standalone DRILL(d,m) scheduler: each Pick samples
// d random queues, compares them with the m remembered least-loaded ones,
// and returns the least loaded. This is the paper's core algorithm,
// reusable outside the simulator (e.g. to spread work across workers).
func NewSelector(d, m int, rng *rand.Rand) *core.Selector {
	return core.NewSelector(d, m, rng)
}

// LeafSpine builds a symmetric two-stage Clos with 40G core and 10G host
// links. Use LeafSpineConfig via the topology package for full control.
func LeafSpine(spines, leaves, hostsPerLeaf int) *Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf,
		HostRate: 10 * Gbps, CoreRate: 40 * Gbps,
	})
}

// LeafSpineRates builds a two-stage Clos with explicit link rates.
func LeafSpineRates(spines, leaves, hostsPerLeaf int, hostRate, coreRate Rate) *Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf,
		HostRate: hostRate, CoreRate: coreRate,
	})
}

// VL2 builds the three-stage VL2-style Clos of the paper's Fig. 10.
func VL2(tors, aggs, ints, hostsPerToR int) *Topology {
	return topo.VL2(topo.VL2Config{ToRs: tors, Aggs: aggs, Ints: ints, HostsPerToR: hostsPerToR})
}

// FatTree builds a k-ary fat-tree.
func FatTree(k int, linkRate Rate) *Topology {
	return topo.FatTree(topo.FatTreeConfig{K: k, LinkRate: linkRate})
}

// Heterogeneous builds the imbalanced-striping fabric of Fig. 13: every
// leaf has two parallel links to its two "near" spines.
func Heterogeneous(spines, leaves, hostsPerLeaf int) *Topology {
	return topo.Heterogeneous(topo.HeterogeneousConfig{
		Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf,
	})
}

// Balancer constructors.

// DRILL returns the paper's DRILL(2,1) with Quiver-based asymmetry
// handling (a no-op on symmetric fabrics).
func DRILL() Balancer { return lb.NewDRILLAsym() }

// DRILLdm returns DRILL with explicit sample and memory counts, without
// the asymmetry control plane (for parameter studies).
func DRILLdm(d, m int) Balancer { return &lb.DRILL{D: d, M: m} }

// ECMP returns per-flow hashing, the datacenter default.
func ECMP() Balancer { return lb.ECMP{} }

// Random returns per-packet uniform spraying.
func Random() Balancer { return lb.Random{} }

// RoundRobin returns per-packet round-robin spraying.
func RoundRobin() Balancer { return lb.RoundRobin{} }

// WCMP returns capacity-weighted per-flow hashing.
func WCMP() Balancer { return lb.WCMP{} }

// Presto returns edge-based 64KB-flowcell source routing; pair it with
// Options.ShimTimeout to restore order at receivers as Presto does.
func Presto() Balancer { return lb.NewPresto() }

// CONGA returns the flowlet-based, congestion-feedback balancer.
func CONGA() Balancer { return lb.NewCONGA() }
