package drill_test

import (
	"math/rand"
	"testing"

	"drill"
)

func TestQuickstartFlow(t *testing.T) {
	topo := drill.LeafSpine(2, 2, 4)
	c := drill.NewCluster(topo, drill.Options{Balancer: drill.DRILL()})
	hosts := c.Hosts()
	f := c.StartFlow(hosts[0], hosts[4], 100*1460, "")
	c.RunToCompletion()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if f.FCT() <= 0 {
		t.Fatal("zero FCT")
	}
	if c.Stats().FlowsFinished() != 1 {
		t.Fatalf("finished = %d", c.Stats().FlowsFinished())
	}
}

func TestAllPublicBalancersRun(t *testing.T) {
	for _, b := range []struct {
		name string
		mk   func() drill.Balancer
	}{
		{"DRILL", drill.DRILL},
		{"DRILLdm", func() drill.Balancer { return drill.DRILLdm(3, 2) }},
		{"ECMP", drill.ECMP},
		{"Random", drill.Random},
		{"RoundRobin", drill.RoundRobin},
		{"WCMP", drill.WCMP},
		{"Presto", drill.Presto},
		{"CONGA", drill.CONGA},
	} {
		b := b
		t.Run(b.name, func(t *testing.T) {
			c := drill.NewCluster(drill.LeafSpine(2, 2, 4), drill.Options{Balancer: b.mk()})
			hosts := c.Hosts()
			var flows []*drill.Flow
			for i := 0; i < 4; i++ {
				flows = append(flows, c.StartFlow(hosts[i%4], hosts[4+i%4], 20*1460, ""))
			}
			c.RunToCompletion()
			for i, f := range flows {
				if !f.Done() {
					t.Fatalf("flow %d incomplete under %s", i, b.name)
				}
			}
		})
	}
}

func TestOfferLoadAndMeasureWindow(t *testing.T) {
	c := drill.NewCluster(drill.LeafSpine(2, 4, 8), drill.Options{Seed: 3})
	c.MeasureFrom(1 * drill.Millisecond)
	c.OfferLoad(0.3, drill.FacebookWeb, 4*drill.Millisecond)
	c.Run(10 * drill.Millisecond)
	st := c.Stats()
	if st.FlowsStarted() < 10 {
		t.Fatalf("too few flows: %d", st.FlowsStarted())
	}
	if st.FCT("").Count() == 0 {
		t.Fatal("no measured FCTs")
	}
}

func TestIncastTagging(t *testing.T) {
	c := drill.NewCluster(drill.LeafSpine(2, 4, 8), drill.Options{})
	c.StartIncast(500*drill.Microsecond, 3*drill.Millisecond)
	c.Run(10 * drill.Millisecond)
	if c.Stats().FCT("incast").Count() == 0 {
		t.Fatal("no incast flows measured")
	}
}

func TestFailLinkPublicAPI(t *testing.T) {
	topo := drill.LeafSpine(2, 2, 4)
	c := drill.NewCluster(topo, drill.Options{RouteDelay: 50 * drill.Microsecond})
	hosts := c.Hosts()
	leaf := c.LeafOf(hosts[0])
	var spine drill.NodeID = -1
	for _, n := range topo.Nodes {
		if n.Kind == 2 { // topo.Spine
			spine = n.ID
			break
		}
	}
	links := c.LinksBetween(leaf, spine)
	if len(links) != 1 {
		t.Fatalf("links = %d", len(links))
	}
	c.At(100*drill.Microsecond, func() { c.FailLink(links[0], false) })
	f := c.StartFlow(hosts[0], hosts[4], 500*1460, "")
	c.RunToCompletion()
	if !f.Done() {
		t.Fatal("flow did not survive the failure")
	}
}

func TestRestoreLinkPublicAPI(t *testing.T) {
	topo := drill.LeafSpine(2, 2, 4)
	c := drill.NewCluster(topo, drill.Options{RouteDelay: 50 * drill.Microsecond})
	hosts := c.Hosts()
	leaf := c.LeafOf(hosts[0])
	var spine drill.NodeID = -1
	for _, n := range topo.Nodes {
		if n.Kind == 2 { // topo.Spine
			spine = n.ID
			break
		}
	}
	links := c.LinksBetween(leaf, spine)
	if len(links) != 1 {
		t.Fatalf("links = %d", len(links))
	}
	l := links[0]
	c.At(100*drill.Microsecond, func() { c.FailLink(l, false) })
	c.At(300*drill.Microsecond, func() { c.RestoreLink(l, false) })
	f := c.StartFlow(hosts[0], hosts[4], 500*1460, "")
	c.RunToCompletion()
	if !f.Done() {
		t.Fatal("flow did not survive the flap cycle")
	}
	if !topo.Links[l].Up {
		t.Fatal("link still marked down after RestoreLink")
	}
	if got := len(c.LinksBetween(leaf, spine)); got != 1 {
		t.Fatalf("restored link not listed by LinksBetween (got %d)", got)
	}
}

func TestSelectorPublicAPI(t *testing.T) {
	s := drill.NewSelector(2, 1, rand.New(rand.NewSource(1)))
	loads := []int64{9, 1, 5, 7}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[s.Pick(4, func(q int) int64 { return loads[q] })]++
	}
	if counts[1] < 200 {
		t.Fatalf("selector ignored the least-loaded queue: %v", counts)
	}
}

func TestQueueImbalanceReads(t *testing.T) {
	c := drill.NewCluster(drill.LeafSpine(4, 4, 8), drill.Options{})
	c.OfferLoad(0.5, drill.FacebookWeb, 2*drill.Millisecond)
	c.Run(1 * drill.Millisecond)
	// Just exercise the read path; value may legitimately be 0 at a quiet instant.
	_ = c.Stats().QueueImbalance()
	if q := c.Stats().MeanHopQueueing(1); q < 0 {
		t.Fatalf("negative queueing %v", q)
	}
}

func TestTopologyBuildersPublic(t *testing.T) {
	if got := len(drill.VL2(4, 4, 2, 5).Hosts); got != 20 {
		t.Errorf("VL2 hosts = %d", got)
	}
	if got := len(drill.FatTree(4, 10*drill.Gbps).Hosts); got != 16 {
		t.Errorf("FatTree hosts = %d", got)
	}
	if got := len(drill.Heterogeneous(4, 4, 6).Hosts); got != 24 {
		t.Errorf("Heterogeneous hosts = %d", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		c := drill.NewCluster(drill.LeafSpine(2, 4, 8), drill.Options{Seed: 11})
		c.OfferLoad(0.4, drill.FacebookWeb, 3*drill.Millisecond)
		c.Run(15 * drill.Millisecond)
		return c.Stats().FCT("").Mean()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}
