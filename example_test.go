package drill_test

import (
	"fmt"
	"math/rand"

	"drill"
)

// ExampleNewSelector shows the DRILL(d,m) algorithm standalone: spreading
// items across workers by sampled load.
func ExampleNewSelector() {
	sel := drill.NewSelector(2, 1, rand.New(rand.NewSource(1)))
	load := []int64{90, 10, 90, 90} // worker 1 is nearly idle
	counts := make([]int, 4)
	for i := 0; i < 100; i++ {
		counts[sel.Pick(4, func(w int) int64 { return load[w] })]++
	}
	fmt.Println(counts[1] > 60)
	// Output: true
}

// ExampleNewCluster runs one TCP flow across a simulated leaf-spine Clos
// balanced by DRILL.
func ExampleNewCluster() {
	topo := drill.LeafSpine(2, 2, 2)
	c := drill.NewCluster(topo, drill.Options{Balancer: drill.DRILL()})
	hosts := c.Hosts()
	f := c.StartFlow(hosts[0], hosts[2], 50*1460, "")
	c.RunToCompletion()
	fmt.Println(f.Done(), f.AckedBytes())
	// Output: true 73000
}
