// Benchmarks regenerating (scaled-down) versions of every table and figure
// in the DRILL paper's evaluation, plus the hot-path cost of the DRILL(d,m)
// selector itself. Each benchmark runs one experiment configuration per
// iteration and reports the figure's headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a smoke regeneration of the
// evaluation. Full-size regeneration is cmd/drillsim's job.
package drill_test

import (
	"fmt"
	"math/rand"
	"testing"

	"drill"
	"drill/internal/experiments"
	"drill/internal/queueing"
	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// benchRun executes one scaled-down experiment run and reports metrics.
func benchRun(b *testing.B, cfg experiments.RunCfg, metric func(*experiments.RunResult) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res := experiments.Run(cfg)
		name, v := metric(res)
		b.ReportMetric(v, name)
	}
}

func tinyFCT(topoF func() *drill.Topology, scheme string, load float64) experiments.RunCfg {
	sc, ok := experiments.SchemeByName(scheme)
	if !ok {
		panic("unknown scheme " + scheme)
	}
	return experiments.RunCfg{
		Topo:    topoF,
		Scheme:  sc,
		Load:    load,
		Warmup:  200 * units.Microsecond,
		Measure: 1 * units.Millisecond,
	}
}

func tinyClos() *drill.Topology  { return drill.LeafSpine(4, 4, 16) }
func tinyClos8() *drill.Topology { return drill.LeafSpine(8, 4, 8) }

func meanFCTMetric(res *experiments.RunResult) (string, float64) {
	return "meanFCT_ms", res.FCT.Mean()
}

func tailFCTMetric(res *experiments.RunResult) (string, float64) {
	return "p9999FCT_ms", res.FCT.Percentile(99.99)
}

// BenchmarkDrillSelect measures the per-packet cost of the core algorithm —
// the software analogue of the paper's hardware-feasibility result (§4):
// O(d+m) work and no allocation per decision.
func BenchmarkDrillSelect(b *testing.B) {
	for _, cfg := range []struct{ d, m int }{{1, 1}, {2, 1}, {12, 1}, {2, 11}} {
		b.Run(drillName(cfg.d, cfg.m), func(b *testing.B) {
			s := drill.NewSelector(cfg.d, cfg.m, rand.New(rand.NewSource(1)))
			loads := make([]int64, 48)
			load := func(q int) int64 { return loads[q] }
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := s.Pick(48, load)
				loads[q] += 1500
				if loads[q] > 64000 {
					loads[q] = 0
				}
			}
		})
	}
}

func drillName(d, m int) string { return fmt.Sprintf("DRILL_%d_%d", d, m) }

// BenchmarkFig2QueueSTDV regenerates the Fig. 2 metric: mean queue-length
// STDV under DRILL(2,1) vs per-packet Random at 80% load.
func BenchmarkFig2QueueSTDV(b *testing.B) {
	for _, scheme := range []string{"Random", "RR", "DRILL(2,1)"} {
		sc, ok := experiments.SchemeByName(scheme)
		if !ok {
			// Raw DRILL(d,m) schemes are built ad hoc.
			sc = experiments.Scheme{Name: scheme, New: func() drill.Balancer { return drill.DRILLdm(2, 1) }}
		}
		b.Run(scheme, func(b *testing.B) {
			cfg := experiments.RunCfg{
				Topo:         tinyClos8,
				Scheme:       sc,
				Load:         0.8,
				Warmup:       200 * units.Microsecond,
				Measure:      1 * units.Millisecond,
				SampleQueues: true,
				DrainLimit:   500 * units.Microsecond,
			}
			benchRun(b, cfg, func(r *experiments.RunResult) (string, float64) {
				return "upSTDV_pkts", r.UplinkSTDV
			})
		})
	}
}

// BenchmarkFig3SyncEffect regenerates Fig. 3's sweep point: DRILL(1,20)
// with 48 engines, where excessive choices herd engines together.
func BenchmarkFig3SyncEffect(b *testing.B) {
	for _, cfg := range []struct{ d, m int }{{1, 1}, {1, 20}} {
		cfg := cfg
		b.Run(drillName(cfg.d, cfg.m), func(b *testing.B) {
			rc := experiments.RunCfg{
				Topo: tinyClos8,
				Scheme: experiments.Scheme{Name: "drill",
					New: func() drill.Balancer { return drill.DRILLdm(cfg.d, cfg.m) }},
				Load:         0.8,
				Engines:      48,
				Warmup:       200 * units.Microsecond,
				Measure:      1 * units.Millisecond,
				SampleQueues: true,
				DrainLimit:   500 * units.Microsecond,
			}
			benchRun(b, rc, func(r *experiments.RunResult) (string, float64) {
				return "upSTDV_pkts", r.UplinkSTDV
			})
		})
	}
}

// BenchmarkFig6SymmetricClos regenerates Fig. 6(a,b): FCT at 80% load in
// the symmetric Clos, per scheme.
func BenchmarkFig6SymmetricClos(b *testing.B) {
	for _, scheme := range []string{"ECMP", "CONGA", "Presto", "DRILL w/o shim", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(tinyClos, scheme, 0.8), meanFCTMetric)
		})
	}
}

// BenchmarkFig7ScaleOut regenerates Fig. 7: the all-10G scale-out fabric.
func BenchmarkFig7ScaleOut(b *testing.B) {
	scaleOut := func() *drill.Topology {
		return drill.LeafSpineRates(8, 4, 10, 10*drill.Gbps, 10*drill.Gbps)
	}
	for _, scheme := range []string{"ECMP", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(scaleOut, scheme, 0.8), meanFCTMetric)
		})
	}
}

// BenchmarkFig8CDF regenerates Fig. 8's inputs (FCT distribution at 80% in
// the scale-out fabric) and reports the median.
func BenchmarkFig8CDF(b *testing.B) {
	scaleOut := func() *drill.Topology {
		return drill.LeafSpineRates(8, 4, 10, 10*drill.Gbps, 10*drill.Gbps)
	}
	for _, scheme := range []string{"ECMP", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(scaleOut, scheme, 0.8),
				func(r *experiments.RunResult) (string, float64) {
					return "p50FCT_ms", r.FCT.Percentile(50)
				})
		})
	}
}

// BenchmarkFig9Oversubscription regenerates Fig. 9: 5:3 oversubscribed.
func BenchmarkFig9Oversubscription(b *testing.B) {
	oversub := func() *drill.Topology {
		return drill.LeafSpineRates(6, 4, 10, 10*drill.Gbps, 10*drill.Gbps)
	}
	for _, scheme := range []string{"ECMP", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(oversub, scheme, 0.8), meanFCTMetric)
		})
	}
}

// BenchmarkFig10VL2 regenerates Fig. 10: the three-stage VL2 fabric.
func BenchmarkFig10VL2(b *testing.B) {
	vl2 := func() *drill.Topology { return drill.VL2(8, 4, 2, 10) }
	for _, scheme := range []string{"ECMP", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := tinyFCT(vl2, scheme, 0.7)
			cfg.Measure = 2 * units.Millisecond // 1G hosts need longer windows
			benchRun(b, cfg, meanFCTMetric)
		})
	}
}

// BenchmarkFig11Reordering regenerates Fig. 11(a): the fraction of flows
// that generate duplicate ACKs at 80% load.
func BenchmarkFig11Reordering(b *testing.B) {
	for _, scheme := range []string{"Random", "RR", "Presto before shim", "DRILL w/o shim"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(tinyClos, scheme, 0.8),
				func(r *experiments.RunResult) (string, float64) {
					return "dupAckFlows_pct", 100 * r.DupAcks.FracAtLeast(1)
				})
		})
	}
}

// BenchmarkFig11Failure regenerates Fig. 11(b,c): one failed link.
func BenchmarkFig11Failure(b *testing.B) {
	for _, scheme := range []string{"ECMP", "Presto", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := tinyFCT(tinyClos, scheme, 0.7)
			cfg.FailLinks = 1
			benchRun(b, cfg, meanFCTMetric)
		})
	}
}

// BenchmarkFig12MultiFailure regenerates Fig. 12: several failed links.
func BenchmarkFig12MultiFailure(b *testing.B) {
	for _, scheme := range []string{"ECMP", "CONGA", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := tinyFCT(tinyClos, scheme, 0.7)
			cfg.FailLinks = 4
			benchRun(b, cfg, meanFCTMetric)
		})
	}
}

// BenchmarkFig13Heterogeneous regenerates Fig. 13: imbalanced striping.
func BenchmarkFig13Heterogeneous(b *testing.B) {
	hetero := func() *drill.Topology { return drill.Heterogeneous(4, 4, 8) }
	for _, scheme := range []string{"WCMP", "Presto", "CONGA", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			benchRun(b, tinyFCT(hetero, scheme, 0.6), meanFCTMetric)
		})
	}
}

// BenchmarkFig14Incast regenerates Fig. 14: synchronized reads over
// background load; reports the incast flows' tail FCT.
func BenchmarkFig14Incast(b *testing.B) {
	for _, scheme := range []string{"ECMP", "CONGA", "Presto", "DRILL"} {
		b.Run(scheme, func(b *testing.B) {
			cfg := tinyFCT(tinyClos, scheme, 0.2)
			cfg.IncastPeriod = 300 * units.Microsecond
			cfg.QueueCap = 128
			benchRun(b, cfg, func(r *experiments.RunResult) (string, float64) {
				inc := r.Classes["incast"]
				if inc == nil {
					return "incast_p99_ms", 0
				}
				return "incast_p99_ms", inc.Percentile(99)
			})
		})
	}
}

// BenchmarkTable1Synthetic regenerates Table 1's Stride(8) row.
func BenchmarkTable1Synthetic(b *testing.B) {
	for _, scheme := range []string{"ECMP", "DRILL"} {
		sc, _ := experiments.SchemeByName(scheme)
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.Run(experiments.RunCfg{
					Topo: func() *drill.Topology {
						return drill.LeafSpineRates(4, 4, 8, 1*drill.Gbps, 1*drill.Gbps)
					},
					Scheme:  sc,
					Seed:    int64(i + 1),
					Warmup:  200 * units.Microsecond,
					Measure: 3 * units.Millisecond,
					Synthetic: func(reg *transport.Registry, until units.Time) *workload.Synthetic {
						syn := workload.NewSynthetic(reg, 300*units.Microsecond, until)
						syn.Run(workload.Stride(reg.Net.Topo, 8))
						return syn
					},
				})
				b.ReportMetric(res.ElephantGbps, "elephant_gbps")
				if mice := res.Classes["mice"]; mice != nil {
					b.ReportMetric(mice.Mean(), "mice_meanFCT_ms")
				}
			}
		})
	}
}

// BenchmarkStability regenerates the §3.2.4 result: slots/sec of the M×N
// model plus the end-state queue of stable vs unstable policies.
func BenchmarkStability(b *testing.B) {
	arr, svc := queueing.Theorem1Rates(4, 8, 0.2)
	for _, cfg := range []struct {
		name string
		d, m int
	}{{"DRILL_1_0_unstable", 1, 0}, {"DRILL_1_1_stable", 1, 1}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			s := queueing.New(4, 8, cfg.d, cfg.m, arr, svc, 1)
			b.ResetTimer()
			s.Run(b.N)
			b.ReportMetric(float64(s.TotalQueue()), "final_queue_pkts")
		})
	}
}

// BenchmarkSimulatorCore measures raw fabric event throughput: packets
// delivered per second of wall time at 80% load under DRILL.
func BenchmarkSimulatorCore(b *testing.B) {
	cfg := tinyFCT(tinyClos, "DRILL", 0.8)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res := experiments.Run(cfg)
		b.ReportMetric(float64(res.Events), "events/run")
	}
}
