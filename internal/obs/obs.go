// Package obs is the simulator's live-metrics substrate: a typed registry
// of counters, gauges, and log-bucketed mergeable histograms with
// zero-allocation hot-path updates, plus sim-time snapshots that expose a
// running experiment's state to the serving layer (obshttp) without
// perturbing the simulation.
//
// The design mirrors internal/trace's zero-overhead discipline and adds
// one invariant on top of it: metrics observe, never steer. Instruments
// are updated with plain atomic scalar operations (no locks, no
// allocation, no RNG draws, no event scheduling), snapshots are captured
// on the simulator goroutine by an observer ticker whose events are
// excluded from event accounting (sim.NewObserverTicker), and the HTTP
// server only ever reads immutable published snapshots. Enabling the
// whole stack therefore changes no result byte — a determinism test holds
// runs with metrics on and off to identical fingerprints.
//
// Concurrency: instrument updates are atomic, so one registry may be
// shared by concurrent simulation runs (sweep fan-out) and scraped from a
// server goroutine at any time. Registration is mutex-guarded and
// idempotent: asking for an existing (name, labels) series returns the
// same instrument, so repeated sweeps reuse series instead of colliding.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"drill/internal/units"
)

// Kind distinguishes instrument types in snapshots and exposition.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "kind(?)"
}

// Counter is a monotonically increasing integer. The zero value is ready
// to use; updates are a single atomic add — zero allocations, safe from
// any goroutine.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//drill:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone).
//
//drill:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value. The zero value is ready to
// use; Set is a single atomic store, Add a CAS loop — zero allocations.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
//
//drill:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the value.
//
//drill:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// instrument is one registered series.
type instrument struct {
	name   string
	labels string // pre-rendered `k="v",k2="v2"` body, "" for none
	help   string
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of named instruments and a ring of published
// snapshots. Registration is cheap but not hot-path: call it at setup,
// keep the returned pointers, and update those on the hot path behind a
// nil check on the owning metrics struct.
type Registry struct {
	mu    sync.Mutex
	insts []instrument
	index map[string]int

	ring    []*Snapshot // newest-last, capped at ringCap
	ringCap int
	seq     int64
	latest  atomic.Pointer[Snapshot]
}

// NewRegistry builds an empty registry keeping the last ringCap snapshots
// (<= 0 selects the default of 16).
func NewRegistry(ringCap int) *Registry {
	if ringCap <= 0 {
		ringCap = 16
	}
	return &Registry{index: map[string]int{}, ringCap: ringCap}
}

// seriesKey identifies a series; \xff cannot occur in metric names.
func seriesKey(name, labels string) string { return name + "\xff" + labels }

// lookup returns the existing instrument index for the series, or -1.
// Callers hold r.mu.
func (r *Registry) lookup(name, labels string, kind Kind) int {
	i, ok := r.index[seriesKey(name, labels)]
	if !ok {
		return -1
	}
	if r.insts[i].kind != kind {
		panic(fmt.Sprintf("obs: series %s{%s} re-registered as %v, was %v",
			name, labels, kind, r.insts[i].kind))
	}
	return i
}

func (r *Registry) add(inst instrument) {
	r.index[seriesKey(inst.name, inst.labels)] = len(r.insts)
	r.insts = append(r.insts, inst)
}

// Counter returns the counter series (name, labels), creating it if
// needed. labels is a pre-rendered Prometheus label body such as
// `port="3",hop="hop1-up"`, or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := r.lookup(name, labels, KindCounter); i >= 0 {
		return r.insts[i].c
	}
	c := &Counter{}
	r.add(instrument{name: name, labels: labels, help: help, kind: KindCounter, c: c})
	return c
}

// Gauge returns the gauge series (name, labels), creating it if needed.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := r.lookup(name, labels, KindGauge); i >= 0 {
		return r.insts[i].g
	}
	g := &Gauge{}
	r.add(instrument{name: name, labels: labels, help: help, kind: KindGauge, g: g})
	return g
}

// Histogram returns the histogram series (name, labels), creating it if
// needed.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i := r.lookup(name, labels, KindHistogram); i >= 0 {
		return r.insts[i].h
	}
	h := &Histogram{}
	r.add(instrument{name: name, labels: labels, help: help, kind: KindHistogram, h: h})
	return h
}

// Point is one series' value in a snapshot. Exactly one of Value (counter
// and gauge) or Hist (histogram) is meaningful, per Kind.
type Point struct {
	Name   string
	Labels string
	Help   string
	Kind   Kind
	Value  float64
	Hist   *HistogramData
}

// Snapshot is an immutable copy of every registered series at one moment
// of simulated time. Snapshots are value copies: once published they are
// never written again, so any goroutine may read them freely.
type Snapshot struct {
	Seq     int64      // publication sequence number, 1-based
	SimTime units.Time // simulated capture time of the snapshotting run
	Points  []Point
}

// Capture copies the current value of every series without publishing.
func (r *Registry) Capture(now units.Time) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{SimTime: now, Points: make([]Point, 0, len(r.insts))}
	for _, in := range r.insts {
		p := Point{Name: in.name, Labels: in.labels, Help: in.help, Kind: in.kind}
		switch in.kind {
		case KindCounter:
			p.Value = float64(in.c.Value())
		case KindGauge:
			p.Value = in.g.Value()
		case KindHistogram:
			p.Hist = in.h.Data()
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// Snapshot captures the current state, appends it to the ring, and
// publishes it as the latest. It returns the published snapshot.
func (r *Registry) Snapshot(now units.Time) *Snapshot {
	s := r.Capture(now)
	r.mu.Lock()
	r.seq++
	s.Seq = r.seq
	r.ring = append(r.ring, s)
	if len(r.ring) > r.ringCap {
		copy(r.ring, r.ring[len(r.ring)-r.ringCap:])
		r.ring = r.ring[:r.ringCap]
	}
	r.mu.Unlock()
	r.latest.Store(s)
	return s
}

// Latest returns the most recently published snapshot, or nil before the
// first Snapshot call.
func (r *Registry) Latest() *Snapshot { return r.latest.Load() }

// Ring returns the retained snapshots, oldest first.
func (r *Registry) Ring() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Snapshot, len(r.ring))
	copy(out, r.ring)
	return out
}

// Series reports how many series are registered.
func (r *Registry) Series() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.insts)
}
