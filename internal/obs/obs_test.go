package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"drill/internal/sim"
	"drill/internal/units"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("drill_test_total", `cell="0"`, "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("drill_test_total", `cell="0"`, "help"); again != c {
		t.Fatal("re-registering the same series returned a different counter")
	}
	g := r.Gauge("drill_test_depth", "", "help")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
	if r.Series() != 2 {
		t.Fatalf("series = %d, want 2", r.Series())
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch for the same series")
		}
	}()
	r := NewRegistry(0)
	r.Counter("drill_test_total", "", "")
	r.Gauge("drill_test_total", "", "")
}

func TestSnapshotRingAndLatest(t *testing.T) {
	r := NewRegistry(3)
	c := r.Counter("drill_test_total", "", "")
	if r.Latest() != nil {
		t.Fatal("Latest non-nil before any snapshot")
	}
	for i := 1; i <= 5; i++ {
		c.Inc()
		r.Snapshot(units.Time(i) * units.Microsecond)
	}
	ring := r.Ring()
	if len(ring) != 3 {
		t.Fatalf("ring holds %d snapshots, want cap 3", len(ring))
	}
	if ring[0].Seq != 3 || ring[2].Seq != 5 {
		t.Fatalf("ring seqs = %d..%d, want 3..5", ring[0].Seq, ring[2].Seq)
	}
	last := r.Latest()
	if last == nil || last.Seq != 5 || last.SimTime != 5*units.Microsecond {
		t.Fatalf("latest = %+v, want seq 5 at 5us", last)
	}
	if got := last.Points[0].Value; got != 5 {
		t.Fatalf("latest counter point = %v, want 5", got)
	}
	// Published snapshots are immutable: later increments don't leak in.
	c.Add(100)
	if got := r.Latest().Points[0].Value; got != 5 {
		t.Fatalf("snapshot mutated after publication: %v", got)
	}
}

// TestHotPathUpdatesAllocateNothing is the AllocsPerRun proof the issue
// demands: every instrument update used from //drill:hotpath code is
// 0 allocs/op.
func TestHotPathUpdatesAllocateNothing(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("drill_test_total", "", "")
	g := r.Gauge("drill_test_depth", "", "")
	h := r.Histogram("drill_test_hist", "", "")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(1.5) }},
		{"Histogram.Observe", func() { h.Observe(123.4) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestSnapshotterPublishesOnSimTime(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(0)
	c := r.Counter("drill_test_total", "", "")
	var refreshed int
	sn := StartSnapshotter(s, r, 10*units.Microsecond, func(units.Time) { refreshed++ })

	// Real workload: bump the counter every 3µs for 50µs.
	var tick func()
	next := units.Time(0)
	tick = func() {
		c.Inc()
		next += 3 * units.Microsecond
		if next <= 50*units.Microsecond {
			s.After(3*units.Microsecond, tick)
		}
	}
	s.After(3*units.Microsecond, tick)
	s.RunUntil(55 * units.Microsecond)

	if r.Latest() == nil || r.Latest().Seq != 5 {
		t.Fatalf("latest seq = %+v, want 5 snapshots over 55us", r.Latest())
	}
	if refreshed != 5 {
		t.Fatalf("refresh hook ran %d times, want 5", refreshed)
	}
	fin := sn.Final(s.Now())
	if fin.Seq != 6 || fin.SimTime != 55*units.Microsecond {
		t.Fatalf("final snapshot = seq %d at %v, want 6 at 55us", fin.Seq, fin.SimTime)
	}
	sn.Stop()
}

// TestObserverSnapshotterInvisible pins the observe-never-steer contract
// at the sim level: attaching a snapshotter changes neither the executed
// event count nor when the event loop drains.
func TestObserverSnapshotterInvisible(t *testing.T) {
	run := func(attach bool) (uint64, units.Time) {
		s := sim.New(7)
		r := NewRegistry(0)
		if attach {
			StartSnapshotter(s, r, 5*units.Microsecond)
		}
		for i := 1; i <= 20; i++ {
			s.After(units.Time(i)*7*units.Microsecond, func() {})
		}
		s.Run()
		return s.Executed, s.Now()
	}
	e0, t0 := run(false)
	e1, t1 := run(true)
	if e0 != e1 || t0 != t1 {
		t.Fatalf("snapshotter perturbed the run: events %d vs %d, end %v vs %v", e0, e1, t0, t1)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("drill_drops_total", `exp="fig6a",cell="0"`, "Packets dropped.").Add(7)
	r.Gauge("drill_queue_depth_packets", `port="3"`, "Queue depth.").Set(2)
	h := r.Histogram("drill_cwnd_bytes", "", "Congestion window.")
	h.Observe(3000)
	h.Observe(3000)
	h.Observe(96000)
	s := r.Snapshot(42 * units.Microsecond)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE drill_snapshot_seq counter",
		"drill_snapshot_sim_time_seconds 4.2e-05",
		"# HELP drill_drops_total Packets dropped.",
		"# TYPE drill_drops_total counter",
		`drill_drops_total{exp="fig6a",cell="0"} 7`,
		`drill_queue_depth_packets{port="3"} 2`,
		"# TYPE drill_cwnd_bytes histogram",
		`drill_cwnd_bytes_bucket{le="+Inf"} 3`,
		"drill_cwnd_bytes_sum 102000",
		"drill_cwnd_bytes_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
	// Cumulative bucket counts must be nondecreasing and end at count.
	var lastCum int64 = -1
	for _, ln := range strings.Split(text, "\n") {
		if !strings.HasPrefix(ln, "drill_cwnd_bytes_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscan(ln, &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", ln, err)
		}
		if v < lastCum {
			t.Fatalf("bucket counts not cumulative: %q after %d", ln, lastCum)
		}
		lastCum = v
	}
	if lastCum != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", lastCum)
	}
}

func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return 1, json.Unmarshal([]byte(line[i+1:]), v)
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("drill_drops_total", `cell="1"`, "").Add(3)
	r.Histogram("drill_fct_us", "", "").Observe(150)
	s := r.Snapshot(units.Microsecond)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seq       int64 `json:"seq"`
		SimTimeNs int64 `json:"sim_time_ns"`
		Points    []struct {
			Name  string         `json:"name"`
			Kind  string         `json:"kind"`
			Value float64        `json:"value"`
			Hist  *HistogramData `json:"hist"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Seq != 1 || doc.SimTimeNs != 1000 || len(doc.Points) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Points[0].Kind != "counter" || doc.Points[0].Value != 3 {
		t.Fatalf("counter point = %+v", doc.Points[0])
	}
	if doc.Points[1].Kind != "histogram" || doc.Points[1].Hist == nil || doc.Points[1].Hist.Count != 1 {
		t.Fatalf("histogram point = %+v", doc.Points[1])
	}
}

func TestProvenance(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.GOOS == "" {
		t.Fatalf("build info incomplete: %+v", b)
	}
	h1 := ConfigHash(map[string]int{"a": 1})
	h2 := ConfigHash(map[string]int{"a": 2})
	if h1 == h2 || len(h1) != 32 {
		t.Fatalf("config hashes broken: %q vs %q", h1, h2)
	}
	m := NewManifest("drillsim -exp fig6a", 42)
	m.Add(CellSummary{Exp: "fig6a", Cell: "0", Seed: 42, ConfigHash: h1, Events: 10})
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest round trip: %v", err)
	}
	if back.Schema != ManifestSchemaVersion || back.Seed != 42 || len(back.Cells) != 1 {
		t.Fatalf("manifest round trip lost data: %+v", back)
	}
}
