// Package obshttp serves obs registry snapshots over HTTP: Prometheus
// text exposition at /metrics, the same snapshot as JSON at
// /metrics.json, the retained snapshot ring at /snapshots.json, and the
// engine observatory report at /engine.json. It lives outside the
// simulation packages on purpose — the simulator never imports it,
// drillvet's wall-clock and nondeterminism analyzers don't apply to it,
// and a scrape can never reach back into a run: handlers read only
// immutable published snapshots (or an atomic live capture before the
// first publication).
package obshttp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"drill/internal/obs"
)

// Config wires a handler: the registry to expose, an optional engine
// report source for /engine.json, and an optional write-error callback.
type Config struct {
	// Reg is the registry behind /metrics, /metrics.json, /snapshots.json.
	Reg *obs.Registry
	// Engine, when non-nil, backs /engine.json; it is called per request
	// and may return nil (served as JSON null) while no report exists
	// yet. When Engine itself is nil the endpoint answers 404.
	Engine func() *obs.EngineReport
	// OnWriteError receives errors from writing a fully-rendered response
	// body to the client — almost always a scraper hanging up mid-body.
	// The response cannot be repaired at that point (the status line is
	// gone), so surfacing is all that remains; nil means drop silently.
	OnWriteError func(endpoint string, err error)
}

// Handler returns an http.Handler exposing reg, with no engine endpoint.
// It is the common case; use NewHandler to wire /engine.json or to
// observe write errors.
func Handler(reg *obs.Registry) http.Handler {
	return NewHandler(Config{Reg: reg})
}

// NewHandler returns an http.Handler for the full configuration.
func NewHandler(cfg Config) http.Handler {
	reg := cfg.Reg
	mux := http.NewServeMux()
	latest := func() *obs.Snapshot {
		if s := reg.Latest(); s != nil {
			return s
		}
		// Before the first sim-time snapshot (or with no snapshotter at
		// all), serve a live capture so scrapes always see the registry.
		return reg.Capture(0)
	}
	// Responses are rendered into a buffer before any byte hits the wire:
	// snapshots are small, an encoding error still gets a clean 500, and a
	// scraper hanging up mid-body cannot provoke a half-written exposition
	// (or the superfluous-WriteHeader log noise that comes with one). The
	// buffered write's own error — the hang-up case — is reported through
	// OnWriteError instead of being swallowed.
	send := func(w http.ResponseWriter, endpoint string, buf *bytes.Buffer) {
		if _, err := w.Write(buf.Bytes()); err != nil && cfg.OnWriteError != nil {
			cfg.OnWriteError(endpoint, err)
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, latest()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		send(w, "/metrics", &buf)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := obs.WriteJSON(&buf, latest()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		send(w, "/metrics.json", &buf)
	})
	mux.HandleFunc("/snapshots.json", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.WriteByte('[')
		for i, s := range reg.Ring() {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := obs.WriteJSON(&buf, s); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		buf.WriteByte(']')
		w.Header().Set("Content-Type", "application/json")
		send(w, "/snapshots.json", &buf)
	})
	mux.HandleFunc("/engine.json", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Engine == nil {
			http.NotFound(w, r)
			return
		}
		buf, err := json.Marshal(cfg.Engine())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b := bytes.NewBuffer(buf)
		send(w, "/engine.json", b)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var buf bytes.Buffer
		fmt.Fprintln(&buf, "ok")
		send(w, "/healthz", &buf)
	})
	return mux
}

// Server is a live metrics endpoint bound to a TCP address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// shutdownTimeout bounds how long Close waits for in-flight scrapes.
const shutdownTimeout = 2 * time.Second

// Serve binds addr (e.g. "localhost:9137"; ":0" picks a free port) and
// serves the registry in a background goroutine until Close.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	return ServeConfig(addr, Config{Reg: reg})
}

// ServeConfig is Serve with the full handler configuration.
func ServeConfig(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewHandler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the served base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server gracefully: the listener closes immediately, but
// in-flight scrapes get up to shutdownTimeout to finish their bodies
// before the remaining connections are hard-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Stragglers outlived the grace period (or the context was
		// cancelled): fall back to the hard close so the port is freed.
		closeErr := s.srv.Close()
		if closeErr != nil {
			return closeErr
		}
		return err
	}
	return nil
}
