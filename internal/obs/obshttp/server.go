// Package obshttp serves obs registry snapshots over HTTP: Prometheus
// text exposition at /metrics, the same snapshot as JSON at
// /metrics.json, and the retained snapshot ring at /snapshots.json. It
// lives outside the simulation packages on purpose — the simulator never
// imports it, drillvet's wall-clock and nondeterminism analyzers don't
// apply to it, and a scrape can never reach back into a run: handlers
// read only immutable published snapshots (or an atomic live capture
// before the first publication).
package obshttp

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"time"

	"drill/internal/obs"
)

// Handler returns an http.Handler exposing reg.
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	latest := func() *obs.Snapshot {
		if s := reg.Latest(); s != nil {
			return s
		}
		// Before the first sim-time snapshot (or with no snapshotter at
		// all), serve a live capture so scrapes always see the registry.
		return reg.Capture(0)
	}
	// Responses are rendered into a buffer before any byte hits the wire:
	// snapshots are small, an encoding error still gets a clean 500, and a
	// scraper hanging up mid-body cannot provoke a half-written exposition
	// (or the superfluous-WriteHeader log noise that comes with one).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, latest()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := obs.WriteJSON(&buf, latest()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/snapshots.json", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.WriteByte('[')
		for i, s := range reg.Ring() {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := obs.WriteJSON(&buf, s); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		buf.WriteByte(']')
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a live metrics endpoint bound to a TCP address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "localhost:9137"; ":0" picks a free port) and
// serves the registry in a background goroutine until Close.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the served base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
