package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"drill/internal/obs"
	"drill/internal/units"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerServesSnapshots(t *testing.T) {
	reg := obs.NewRegistry(4)
	c := reg.Counter("drill_cells_done_total", `exp="fig6a"`, "Cells completed.")
	h := reg.Histogram("drill_fct_us", "", "Flow completion times.")

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Before any publication /metrics serves a live capture.
	code, body := scrape(t, srv.URL()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "drill_cells_done_total") {
		t.Fatalf("pre-snapshot scrape: code %d body:\n%s", code, body)
	}

	c.Add(3)
	h.Observe(120)
	h.Observe(4500)
	reg.Snapshot(250 * units.Microsecond)

	code, body = scrape(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("scrape code %d", code)
	}
	for _, want := range []string{
		"drill_snapshot_seq 1",
		"drill_snapshot_sim_time_seconds 0.00025",
		`drill_cells_done_total{exp="fig6a"} 3`,
		"# TYPE drill_fct_us histogram",
		`drill_fct_us_bucket{le="+Inf"} 2`,
		"drill_fct_us_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}

	code, body = scrape(t, srv.URL()+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("json scrape code %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v\n%s", err, body)
	}
	if doc["sim_time_ns"].(float64) != 250000 {
		t.Fatalf("json sim_time_ns = %v", doc["sim_time_ns"])
	}

	reg.Snapshot(500 * units.Microsecond)
	code, body = scrape(t, srv.URL()+"/snapshots.json")
	if code != http.StatusOK {
		t.Fatalf("ring scrape code %d", code)
	}
	var ring []map[string]any
	if err := json.Unmarshal([]byte(body), &ring); err != nil {
		t.Fatalf("/snapshots.json invalid: %v\n%s", err, body)
	}
	if len(ring) != 2 {
		t.Fatalf("ring has %d snapshots, want 2", len(ring))
	}

	if code, body = scrape(t, srv.URL()+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}
