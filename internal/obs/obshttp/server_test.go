package obshttp

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"drill/internal/obs"
	"drill/internal/units"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerServesSnapshots(t *testing.T) {
	reg := obs.NewRegistry(4)
	c := reg.Counter("drill_cells_done_total", `exp="fig6a"`, "Cells completed.")
	h := reg.Histogram("drill_fct_us", "", "Flow completion times.")

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Before any publication /metrics serves a live capture.
	code, body := scrape(t, srv.URL()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "drill_cells_done_total") {
		t.Fatalf("pre-snapshot scrape: code %d body:\n%s", code, body)
	}

	c.Add(3)
	h.Observe(120)
	h.Observe(4500)
	reg.Snapshot(250 * units.Microsecond)

	code, body = scrape(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("scrape code %d", code)
	}
	for _, want := range []string{
		"drill_snapshot_seq 1",
		"drill_snapshot_sim_time_seconds 0.00025",
		`drill_cells_done_total{exp="fig6a"} 3`,
		"# TYPE drill_fct_us histogram",
		`drill_fct_us_bucket{le="+Inf"} 2`,
		"drill_fct_us_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}

	code, body = scrape(t, srv.URL()+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("json scrape code %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v\n%s", err, body)
	}
	if doc["sim_time_ns"].(float64) != 250000 {
		t.Fatalf("json sim_time_ns = %v", doc["sim_time_ns"])
	}

	reg.Snapshot(500 * units.Microsecond)
	code, body = scrape(t, srv.URL()+"/snapshots.json")
	if code != http.StatusOK {
		t.Fatalf("ring scrape code %d", code)
	}
	var ring []map[string]any
	if err := json.Unmarshal([]byte(body), &ring); err != nil {
		t.Fatalf("/snapshots.json invalid: %v\n%s", err, body)
	}
	if len(ring) != 2 {
		t.Fatalf("ring has %d snapshots, want 2", len(ring))
	}

	if code, body = scrape(t, srv.URL()+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestEndpointStatusAndContentType pins every endpoint's status code and
// Content-Type header, with and without an engine source wired.
func TestEndpointStatusAndContentType(t *testing.T) {
	reg := obs.NewRegistry(4)
	reg.Counter("drill_x_total", "", "test").Add(1)

	// Without an engine source /engine.json is 404; everything else serves.
	plain := NewHandler(Config{Reg: reg})
	get := func(h http.Handler, path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get(plain, "/engine.json"); w.Code != http.StatusNotFound {
		t.Errorf("/engine.json without source: code %d, want 404", w.Code)
	}

	var rep *obs.EngineReport
	full := NewHandler(Config{Reg: reg, Engine: func() *obs.EngineReport { return rep }})
	cases := []struct {
		path, ctype string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics.json", "application/json"},
		{"/snapshots.json", "application/json"},
		{"/engine.json", "application/json"},
		{"/healthz", "text/plain; charset=utf-8"},
	}
	for _, c := range cases {
		w := get(full, c.path)
		if w.Code != http.StatusOK {
			t.Errorf("%s: code %d, want 200", c.path, w.Code)
		}
		if got := w.Header().Get("Content-Type"); got != c.ctype {
			t.Errorf("%s: Content-Type %q, want %q", c.path, got, c.ctype)
		}
	}

	// A wired source with no report yet serves JSON null, not an error...
	if w := get(full, "/engine.json"); strings.TrimSpace(w.Body.String()) != "null" {
		t.Errorf("/engine.json before first report: body %q, want null", w.Body.String())
	}
	// ...and a published report round-trips.
	rep = &obs.EngineReport{
		Engine:   "sharded/2",
		Barriers: 7,
		Shards:   []obs.EngineShard{{Shard: 0, Events: 10}, {Shard: 1, Events: 30}},
	}
	var got obs.EngineReport
	if err := json.Unmarshal(get(full, "/engine.json").Body.Bytes(), &got); err != nil {
		t.Fatalf("/engine.json invalid: %v", err)
	}
	if got.Engine != "sharded/2" || got.Barriers != 7 || len(got.Shards) != 2 || got.Shards[1].Events != 30 {
		t.Errorf("/engine.json round-trip mismatch: %+v", got)
	}
}

// brokenWriter fails every body write, playing a scraper that hung up
// after the response headers went out.
type brokenWriter struct {
	httptest.ResponseRecorder
}

func (b *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("peer hung up") }

// TestOnWriteError checks the buffered-write error surfaces through the
// callback — per endpoint — instead of vanishing.
func TestOnWriteError(t *testing.T) {
	reg := obs.NewRegistry(4)
	var mu sync.Mutex
	var seen []string
	h := NewHandler(Config{
		Reg:    reg,
		Engine: func() *obs.EngineReport { return &obs.EngineReport{Engine: "wheel"} },
		OnWriteError: func(endpoint string, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				t.Errorf("%s: OnWriteError called with nil error", endpoint)
			}
			seen = append(seen, endpoint)
		},
	})
	for _, path := range []string{"/metrics", "/metrics.json", "/snapshots.json", "/engine.json", "/healthz"} {
		w := &brokenWriter{ResponseRecorder: *httptest.NewRecorder()}
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	}
	mu.Lock()
	defer mu.Unlock()
	if got := strings.Join(seen, " "); got != "/metrics /metrics.json /snapshots.json /engine.json /healthz" {
		t.Errorf("OnWriteError endpoints = %q", got)
	}
}

// TestConcurrentScrapes hammers every endpoint from several goroutines
// while the registry keeps publishing snapshots — the data-race proof for
// scrape-during-run, meaningful under -race.
func TestConcurrentScrapes(t *testing.T) {
	reg := obs.NewRegistry(8)
	c := reg.Counter("drill_x_total", "", "test")
	srv, err := ServeConfig("127.0.0.1:0", Config{
		Reg:    reg,
		Engine: func() *obs.EngineReport { return &obs.EngineReport{Engine: "wheel"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := units.Time(1); ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Add(1)
				reg.Snapshot(i * units.Microsecond)
			}
		}
	}()

	var scrapers sync.WaitGroup
	for _, path := range []string{"/metrics", "/metrics.json", "/snapshots.json", "/engine.json", "/healthz"} {
		for g := 0; g < 2; g++ {
			scrapers.Add(1)
			go func(path string) {
				defer scrapers.Done()
				for i := 0; i < 25; i++ {
					// t.Fatalf is off-limits in a goroutine, so no scrape().
					resp, err := http.Get(srv.URL() + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("%s: code %d read err %v", path, resp.StatusCode, rerr)
						return
					}
				}
			}(path)
		}
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}
