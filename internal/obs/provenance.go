package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// Provenance makes committed results self-describing: every experiment
// output and BENCH_*.json gains a manifest naming the exact binary, git
// revision, seed, and configuration that produced it, so a number in the
// repo can always be traced back to a reproducible run. Build identity
// comes from runtime/debug.ReadBuildInfo, which the Go linker stamps with
// VCS metadata when building from a git checkout; `go test` binaries and
// dirty trees degrade gracefully to empty/flagged fields.

// BuildInfo identifies the running binary.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Main        string `json:"main,omitempty"`        // main module path
	Revision    string `json:"revision,omitempty"`    // vcs.revision
	CommitTime  string `json:"commit_time,omitempty"` // vcs.time
	Modified    bool   `json:"dirty,omitempty"`       // vcs.modified
	BuildGoFlag string `json:"gcflags_etc,omitempty"` // -gcflags/-ldflags if stamped
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, computed once per process.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Main = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.CommitTime = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			case "-gcflags", "-ldflags":
				if buildInfo.BuildGoFlag != "" {
					buildInfo.BuildGoFlag += " "
				}
				buildInfo.BuildGoFlag += s.Key + "=" + s.Value
			}
		}
	})
	return buildInfo
}

// ConfigHash returns sha256 over the canonical JSON encoding of cfg,
// hex-encoded and truncated to 16 bytes' worth. Two runs share a hash iff
// their JSON-visible configuration is identical, which is what makes the
// manifest usable as a dedup/repro key.
func ConfigHash(cfg any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Configs are plain structs; marshal only fails on exotic types.
		// A degraded hash still distinguishes "unhashable" from real ones.
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// CellSummary is the per-cell slice of a manifest: enough to sanity-check
// which cell produced which headline numbers without re-reading the full
// report.
type CellSummary struct {
	Exp    string  `json:"exp,omitempty"`
	Cell   string  `json:"cell,omitempty"`
	Scheme string  `json:"scheme,omitempty"`
	Seed   int64   `json:"seed"`
	Load   float64 `json:"load,omitempty"`

	ConfigHash string `json:"config_hash"`

	// Engine records which engine actually executed the cell —
	// "sequential", or "sharded/N" with the effective shard count. A cell
	// requested sharded can land on "sequential" (ShardUnsafe balancer);
	// the manifest keeps the truth.
	Engine string `json:"engine,omitempty"`

	Events      uint64  `json:"events"`
	Flows       int64   `json:"flows"`
	Drops       int64   `json:"drops"`
	Retransmits int64   `json:"retransmits"`
	Timeouts    int64   `json:"timeouts"`
	OutOfOrder  int64   `json:"out_of_order"`
	FCTMeanUs   float64 `json:"fct_mean_us,omitempty"`
	FCTP99Us    float64 `json:"fct_p99_us,omitempty"`
	WallNs      int64   `json:"wall_ns,omitempty"`

	// Engine observatory summary (sharded cells only). Windows and
	// Imbalance (max/mean per-shard events) are deterministic per seed
	// and partition; StallNs is wall-derived like WallNs and excluded
	// from determinism comparisons.
	Windows   uint64  `json:"windows,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
	StallNs   int64   `json:"stall_ns,omitempty"`
}

// Manifest is the provenance document written next to experiment output.
type Manifest struct {
	Schema    string        `json:"schema"`
	Build     BuildInfo     `json:"build"`
	Command   string        `json:"command,omitempty"`
	StartedAt string        `json:"started_at,omitempty"` // RFC3339 wall time, set by the caller
	Seed      int64         `json:"seed"`
	Cells     []CellSummary `json:"cells,omitempty"`
}

// ManifestSchemaVersion identifies the manifest layout.
const ManifestSchemaVersion = "drill-manifest/v1"

// NewManifest starts a manifest for a run rooted at seed.
func NewManifest(command string, seed int64) *Manifest {
	return &Manifest{Schema: ManifestSchemaVersion, Build: Build(), Command: command, Seed: seed}
}

// Add appends a cell summary; safe to call from serialized done callbacks.
func (m *Manifest) Add(c CellSummary) { m.Cells = append(m.Cells, c) }

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// String renders the manifest for error messages and logs.
func (m *Manifest) String() string {
	return fmt.Sprintf("manifest(seed=%d rev=%.12s cells=%d)", m.Seed, m.Build.Revision, len(m.Cells))
}
