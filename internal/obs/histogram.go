package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a log-bucketed distribution: base-2 octaves split into 8
// linear sub-buckets (3 mantissa bits), the layout HDR-style recorders
// use. Observe is branch-light bit arithmetic plus three atomic adds —
// zero allocations — and the integer bucket layout makes merged data
// exactly associative, so per-cell histograms can be combined across
// sweep replicas in any order.
//
// Accuracy: a finite bucket spans [2^e·(1+s/8), 2^e·(1+(s+1)/8)), so its
// midpoint representative is off from any member value by at most half
// the bucket's relative width: 1/16 / (1+(s+0.5)/8) ≤ 1/16 = 6.25%
// relative error. Quantile estimates inherit that bound (plus the usual
// half-rank discretization at tiny sample counts); histogram_test.go
// checks it against exact metrics.Dist on fixed distributions.
//
// Range: values in [2^-16, 2^48) ≈ [1.5e-5, 2.8e14) land in finite
// buckets — queue depths, cwnd bytes, and nanosecond sim durations all
// fit. Zero, negatives, NaN, and smaller values count in a dedicated
// underflow bucket (represented as 0); larger ones in an overflow bucket.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	buckets [numBuckets]atomic.Int64
}

const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // linear sub-buckets per octave
	histMinExp   = -16
	histMaxExp   = 47
	numOctaves   = histMaxExp - histMinExp + 1
	numBuckets   = numOctaves*histSubCount + 2 // + underflow, + overflow

	underflowBucket = 0
	overflowBucket  = numBuckets - 1
)

// bucketIndex maps a value to its bucket. Zero, negative, NaN, and
// subnormal-small values underflow (their IEEE exponent is below
// histMinExp); +Inf and huge values overflow.
//
//drill:hotpath
func bucketIndex(v float64) int {
	bits := math.Float64bits(v)
	if bits == 0 || bits>>63 != 0 || v != v { // +0, negative (incl. -0), NaN
		return underflowBucket
	}
	exp := int(bits>>52&0x7ff) - 1023
	if exp < histMinExp {
		return underflowBucket
	}
	if exp > histMaxExp {
		return overflowBucket
	}
	sub := int(bits >> (52 - histSubBits) & (histSubCount - 1))
	return 1 + (exp-histMinExp)*histSubCount + sub
}

// BucketUpper returns the exclusive upper bound of bucket i:
// 0 has bound 2^histMinExp, the overflow bucket +Inf.
func BucketUpper(i int) float64 {
	if i <= underflowBucket {
		return math.Ldexp(1, histMinExp)
	}
	if i >= overflowBucket {
		return math.Inf(1)
	}
	o, s := (i-1)/histSubCount+histMinExp, (i-1)%histSubCount
	return math.Ldexp(1+float64(s+1)/histSubCount, o)
}

// BucketRep returns the representative value reported for bucket i: the
// bucket midpoint for finite buckets, 0 for underflow (exact for the
// common zero observation), and the overflow bucket's lower bound.
func BucketRep(i int) float64 {
	if i <= underflowBucket {
		return 0
	}
	if i >= overflowBucket {
		return math.Ldexp(1, histMaxExp+1)
	}
	o, s := (i-1)/histSubCount+histMinExp, (i-1)%histSubCount
	return math.Ldexp(1+(float64(s)+0.5)/histSubCount, o)
}

// Observe records one value.
//
//drill:hotpath
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount is one occupied bucket in a HistogramData snapshot.
type BucketCount struct {
	Index int   `json:"i"`
	Count int64 `json:"n"`
}

// HistogramData is an immutable, sparse snapshot of a Histogram: only
// occupied buckets are retained, sorted by index.
type HistogramData struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Data snapshots the histogram. Buckets emptied concurrently with the
// copy may read slightly staler than count/sum; within the simulator's
// single writer thread the copy is exact.
func (h *Histogram) Data() *HistogramData {
	d := &HistogramData{Count: h.count.Load(), Sum: h.Sum()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			d.Buckets = append(d.Buckets, BucketCount{Index: i, Count: n})
		}
	}
	return d
}

// Merge returns the combination of d and o as a new snapshot; neither
// input is modified. Bucket counts are integers, so merging is exactly
// associative and commutative (the float Sum is associative up to
// rounding).
func (d *HistogramData) Merge(o *HistogramData) *HistogramData {
	if o == nil {
		o = &HistogramData{}
	}
	out := &HistogramData{Count: d.Count + o.Count, Sum: d.Sum + o.Sum}
	i, j := 0, 0
	for i < len(d.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(d.Buckets) && d.Buckets[i].Index < o.Buckets[j].Index):
			out.Buckets = append(out.Buckets, d.Buckets[i])
			i++
		case i >= len(d.Buckets) || o.Buckets[j].Index < d.Buckets[i].Index:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, BucketCount{
				Index: d.Buckets[i].Index,
				Count: d.Buckets[i].Count + o.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) as the representative of
// the bucket holding the ceil(q·count)-th observation. Empty data returns
// 0; q outside [0,1] is clamped.
func (d *HistogramData) Quantile(q float64) float64 {
	if d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(d.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range d.Buckets {
		seen += b.Count
		if seen >= rank {
			return BucketRep(b.Index)
		}
	}
	return BucketRep(overflowBucket)
}

// Mean returns Sum/Count, or 0 when empty.
func (d *HistogramData) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}
