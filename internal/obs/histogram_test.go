package obs

import (
	"math"
	"math/rand"
	"testing"

	"drill/internal/metrics"
)

// The histogram's documented accuracy contract: every finite bucket's
// midpoint representative is within 1/16 (6.25%) relative error of any
// value in the bucket. Quantile estimates add rank discretization on top
// (the estimator returns the ceil(q·n)-th order statistic's bucket, the
// exact baseline may round the rank differently), so the tests allow 10%
// — comfortably above 6.25% plus adjacent-order-statistic jitter, and
// tight enough that an off-by-one in the bucket math fails immediately.
const quantileRelTol = 0.10

func quantileCase(t *testing.T, name string, samples []float64) {
	t.Helper()
	var h Histogram
	var exact metrics.Dist
	for _, v := range samples {
		h.Observe(v)
		exact.Add(v)
	}
	d := h.Data()
	if d.Count != int64(len(samples)) {
		t.Fatalf("%s: count = %d, want %d", name, d.Count, len(samples))
	}
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		got := d.Quantile(q)
		want := exact.Percentile(q * 100)
		if want == 0 {
			if got != 0 {
				t.Errorf("%s p%g: got %g, want 0", name, q*100, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > quantileRelTol {
			t.Errorf("%s p%g: hist %g vs exact %g (rel err %.3f > %.3f)",
				name, q*100, got, want, rel, quantileRelTol)
		}
	}
	// Mean is exact up to float rounding: the sum is carried, not bucketed.
	if want := exact.Mean(); math.Abs(d.Mean()-want) > 1e-9*math.Abs(want) {
		t.Errorf("%s: mean %g, want %g", name, d.Mean(), want)
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = 10 + 990*rng.Float64() // uniform on [10, 1000)
	}
	quantileCase(t, "uniform", samples)
}

func TestQuantileExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = 50e3 * rng.ExpFloat64() // mean 50µs in ns, heavy tail
	}
	quantileCase(t, "exponential", samples)
}

func TestQuantileBimodal(t *testing.T) {
	// Mice-and-elephants: 70% short FCTs near 100, 30% long near 1e6,
	// each mode jittered ±5% so multiple buckets per mode are occupied.
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 20000)
	for i := range samples {
		mode := 100.0
		if rng.Float64() < 0.3 {
			mode = 1e6
		}
		samples[i] = mode * (0.95 + 0.1*rng.Float64())
	}
	quantileCase(t, "bimodal", samples)
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every representative must land back in its own bucket, and bucket
	// bounds must tile the finite range without gaps.
	for i := 1; i < overflowBucket; i++ {
		rep := BucketRep(i)
		if got := bucketIndex(rep); got != i {
			t.Fatalf("bucket %d: representative %g maps to bucket %d", i, rep, got)
		}
		if upper := BucketUpper(i); bucketIndex(upper) != i+1 {
			t.Fatalf("bucket %d: upper bound %g not the next bucket's floor", i, upper)
		}
	}
	for _, v := range []float64{0, -1, math.NaN(), 1e-30} {
		if got := bucketIndex(v); got != underflowBucket {
			t.Fatalf("bucketIndex(%v) = %d, want underflow", v, got)
		}
	}
	if got := bucketIndex(math.Inf(1)); got != overflowBucket {
		t.Fatalf("bucketIndex(+Inf) = %d, want overflow", got)
	}
	if got := bucketIndex(1e15); got != overflowBucket {
		t.Fatalf("bucketIndex(1e15) = %d, want overflow", got)
	}
}

func TestBucketRelativeErrorBound(t *testing.T) {
	// Sweep values across the finite range and confirm the representative
	// of each value's bucket is within the documented 6.25% bound.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		v := math.Ldexp(1+rng.Float64(), histMinExp+rng.Intn(numOctaves))
		if bucketIndex(v) == overflowBucket { // 2·2^maxExp rolls over
			continue
		}
		rep := BucketRep(bucketIndex(v))
		if rel := math.Abs(rep-v) / v; rel > 1.0/16 {
			t.Fatalf("value %g: representative %g off by %.4f > 1/16", v, rep, rel)
		}
	}
}

// randomHistData builds a snapshot from a random workload chunk.
func randomHistData(rng *rand.Rand, n int) *HistogramData {
	var h Histogram
	for i := 0; i < n; i++ {
		h.Observe(math.Ldexp(1+rng.Float64(), rng.Intn(40)-10))
	}
	return h.Data()
}

// TestMergeAssociativity is the property test: merging integer bucket
// counts is exactly associative and commutative regardless of chunk
// order, so sweep replicas can be combined in any reduction tree.
func TestMergeAssociativity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randomHistData(rng, 1+rng.Intn(2000))
		b := randomHistData(rng, 1+rng.Intn(2000))
		c := randomHistData(rng, 1+rng.Intn(2000))

		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		swapped := c.Merge(a).Merge(b)

		for _, pair := range []struct {
			name string
			got  *HistogramData
		}{{"right-assoc", right}, {"commuted", swapped}} {
			if pair.got.Count != left.Count {
				t.Fatalf("seed %d %s: count %d vs %d", seed, pair.name, pair.got.Count, left.Count)
			}
			if len(pair.got.Buckets) != len(left.Buckets) {
				t.Fatalf("seed %d %s: %d buckets vs %d", seed, pair.name, len(pair.got.Buckets), len(left.Buckets))
			}
			for i := range left.Buckets {
				if pair.got.Buckets[i] != left.Buckets[i] {
					t.Fatalf("seed %d %s: bucket %d = %+v vs %+v",
						seed, pair.name, i, pair.got.Buckets[i], left.Buckets[i])
				}
			}
			// The float sum is associative only up to rounding.
			if diff := math.Abs(pair.got.Sum - left.Sum); diff > 1e-6*math.Abs(left.Sum) {
				t.Fatalf("seed %d %s: sum %g vs %g", seed, pair.name, pair.got.Sum, left.Sum)
			}
		}
		// Quantiles of the merged data equal quantiles of the one-shot
		// histogram over the union (merge loses nothing buckets had).
		if q1, q2 := left.Quantile(0.9), right.Quantile(0.9); q1 != q2 {
			t.Fatalf("seed %d: merged p90 differs: %g vs %g", seed, q1, q2)
		}
	}
	// Merging with empty/nil is the identity.
	rng := rand.New(rand.NewSource(99))
	a := randomHistData(rng, 500)
	for _, got := range []*HistogramData{a.Merge(&HistogramData{}), a.Merge(nil)} {
		if got.Count != a.Count || len(got.Buckets) != len(a.Buckets) {
			t.Fatal("merge with empty is not the identity")
		}
	}
}
