package obs

import (
	"fmt"
	"strings"
)

// Engine observatory report: a plain-data summary of the execution
// substrate — per-shard window/barrier counters, the window-width
// distribution, the cross-shard exchange matrix, and per-scheduler
// internals — assembled by the experiment runner after a run drains (or
// at an observer barrier, for live exposure over /engine.json). The
// struct deliberately holds no pointers into the engine: it is a
// snapshot, safe to marshal, ship, or retain after the run is gone.
//
// Two kinds of numbers coexist here, and consumers must not conflate
// them: counters derived from the event stream (windows, events,
// critical attribution, window widths, exchange traffic, scheduler
// routing) are deterministic — identical across runs of the same seed
// and shard count — while the *Ns wall-clock fields (busy, stall) vary
// with the machine and are for attribution only.

// EngineShard is one shard's row of the report.
type EngineShard struct {
	Shard    int    `json:"shard"`
	Windows  uint64 `json:"windows"`          // windows in which the shard ran events
	Events   uint64 `json:"events"`           // events dispatched by the shard
	Critical uint64 `json:"critical_windows"` // windows this shard's earliest event bounded
	BusyNs   int64  `json:"busy_ns"`          // wall time running windows
	StallNs  int64  `json:"stall_ns"`         // wall time parked at barriers
}

// EngineSched is one scheduler's internals row: tier routing, dispatch
// sources, cursor-advancement work, and live occupancy.
type EngineSched struct {
	Sched          string `json:"sched"` // "seq", "global", "shard0", ...
	Near           uint64 `json:"near_total"`
	Wheel          uint64 `json:"wheel_total"`
	Far            uint64 `json:"far_total"`
	DispatchList   uint64 `json:"dispatch_list_total"`
	DispatchHeap   uint64 `json:"dispatch_heap_total"`
	Cascades       uint64 `json:"cascades_total"`
	Pours          uint64 `json:"pours_total"`
	PouredEvents   uint64 `json:"poured_events_total"`
	WheelOccupancy int    `json:"wheel_occupancy"`
	Pending        int    `json:"pending"`
}

// EngineReport is the full engine observatory snapshot for one run.
type EngineReport struct {
	Engine      string        `json:"engine"` // "wheel" or "sharded/N"
	Barriers    uint64        `json:"barriers,omitempty"`
	Shards      []EngineShard `json:"shards,omitempty"`
	WindowCount uint64        `json:"window_count,omitempty"`
	WindowSumNs uint64        `json:"window_sum_ns,omitempty"`
	WindowP50Ns uint64        `json:"window_p50_ns,omitempty"`
	WindowP90Ns uint64        `json:"window_p90_ns,omitempty"`
	WindowP99Ns uint64        `json:"window_p99_ns,omitempty"`
	// Exchange[src][dst] counts cross-shard messages moved at barriers.
	Exchange [][]uint64    `json:"exchange,omitempty"`
	Sched    []EngineSched `json:"sched,omitempty"`
}

// TotalEvents sums events across the shard rows.
func (r *EngineReport) TotalEvents() uint64 {
	var n uint64
	for _, s := range r.Shards {
		n += s.Events
	}
	return n
}

// StallPct reports parked wall time as a percentage of total shard wall
// time (busy + stall) — the synchronizer's overhead headline. Wall-
// derived: varies run to run.
func (r *EngineReport) StallPct() float64 {
	var busy, stall int64
	for _, s := range r.Shards {
		busy += s.BusyNs
		stall += s.StallNs
	}
	if busy+stall == 0 {
		return 0
	}
	return 100 * float64(stall) / float64(busy+stall)
}

// Imbalance is the max/mean ratio of per-shard event counts — 1.0 is a
// perfectly balanced partition. Deterministic: event counts are a pure
// function of the seed and the partition.
func (r *EngineReport) Imbalance() float64 {
	if len(r.Shards) == 0 {
		return 0
	}
	var max, sum uint64
	for _, s := range r.Shards {
		sum += s.Events
		if s.Events > max {
			max = s.Events
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.Shards))
	return float64(max) / mean
}

// evRate is one shard's events per wall second; 0 when it never ran.
func evRate(s EngineShard) float64 {
	if s.BusyNs <= 0 {
		return 0
	}
	return float64(s.Events) / (float64(s.BusyNs) / 1e9)
}

// Format renders the report as the multi-line text block drillsim's
// -engine-report prints. Deterministic columns (events, windows,
// critical, imbalance, window quantiles, exchange) reproduce exactly per
// seed; the wall columns (ev/s, stall%) depend on the machine.
func (r *EngineReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s", r.Engine)
	if len(r.Shards) > 0 {
		fmt.Fprintf(&b, " barriers=%d windows=%d imbalance=%.3f stall=%.1f%%",
			r.Barriers, r.WindowCount, r.Imbalance(), r.StallPct())
	}
	b.WriteByte('\n')
	if r.WindowCount > 0 {
		mean := float64(r.WindowSumNs) / float64(r.WindowCount)
		fmt.Fprintf(&b, "  window width ns: mean=%.0f p50<=%d p90<=%d p99<=%d\n",
			mean, r.WindowP50Ns, r.WindowP90Ns, r.WindowP99Ns)
	}
	for _, s := range r.Shards {
		total := s.BusyNs + s.StallNs
		stallPct := 0.0
		if total > 0 {
			stallPct = 100 * float64(s.StallNs) / float64(total)
		}
		fmt.Fprintf(&b, "  shard %d: events=%d windows=%d critical=%d ev/s=%.3g stall=%.1f%%\n",
			s.Shard, s.Events, s.Windows, s.Critical, evRate(s), stallPct)
	}
	if len(r.Exchange) > 0 {
		b.WriteString("  exchange:")
		any := false
		for src, row := range r.Exchange {
			for dst, n := range row {
				if n > 0 {
					fmt.Fprintf(&b, " %d->%d=%d", src, dst, n)
					any = true
				}
			}
		}
		if !any {
			b.WriteString(" none")
		}
		b.WriteByte('\n')
	}
	for _, sc := range r.Sched {
		fmt.Fprintf(&b, "  sched %s: near=%d wheel=%d far=%d list=%d heap=%d cascades=%d pours=%d poured=%d occupancy=%d pending=%d\n",
			sc.Sched, sc.Near, sc.Wheel, sc.Far, sc.DispatchList, sc.DispatchHeap,
			sc.Cascades, sc.Pours, sc.PouredEvents, sc.WheelOccupancy, sc.Pending)
	}
	return b.String()
}
