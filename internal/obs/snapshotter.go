package obs

import (
	"drill/internal/sim"
	"drill/internal/units"
)

// Snapshotter periodically publishes registry snapshots on simulated
// time. It rides on sim.NewObserverTicker, so its events neither keep the
// simulation alive nor count toward Executed: a run with a snapshotter
// attached reports the same event totals — and the same every-other-byte
// results — as one without. That is the observe-never-steer contract; the
// refresh hooks it invokes before each capture must honor it too (pure
// reads of simulation state into gauges, nothing more).
type Snapshotter struct {
	reg     *Registry
	ticker  *sim.Ticker
	refresh []func(now units.Time)
}

// StartSnapshotter publishes a snapshot of reg every interval of
// simulated time. Before each capture it runs the refresh hooks in order,
// letting sampled gauges (per-port queue depth, link utilization) pull
// fresh values out of the data plane. The first snapshot fires one
// interval in; Stop cancels future ones.
func StartSnapshotter(s *sim.Sim, reg *Registry, every units.Time, refresh ...func(now units.Time)) *Snapshotter {
	sn := &Snapshotter{reg: reg, refresh: refresh}
	sn.ticker = sim.NewObserverTicker(s, every, sn.capture)
	return sn
}

func (sn *Snapshotter) capture(now units.Time) {
	for _, fn := range sn.refresh {
		fn(now)
	}
	sn.reg.Snapshot(now)
}

// Final publishes one last snapshot at the given time, outside the ticker
// cadence, running the same refresh hooks first. Runs call it after the
// drain phase so the terminal state is visible even if the run ended
// mid-interval.
func (sn *Snapshotter) Final(now units.Time) *Snapshot {
	for _, fn := range sn.refresh {
		fn(now)
	}
	return sn.reg.Snapshot(now)
}

// Stop cancels future snapshots.
func (sn *Snapshotter) Stop() { sn.ticker.Stop() }
