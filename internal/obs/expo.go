package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders snapshots for consumers: Prometheus text exposition
// (format 0.0.4, what `promtool check metrics` and any scraper accept) and
// a JSON document carrying the same points plus the sparse histogram
// buckets. Rendering always works from an immutable Snapshot, never from
// live instruments, so a scrape observes one consistent sim-time cut.

// WritePrometheus renders s in Prometheus text exposition format. Series
// sharing a name must be registered contiguously per kind (the registry's
// insertion order makes families contiguous in practice); HELP/TYPE
// headers are emitted once per name.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	bw := &errWriter{w: w}
	bw.printf("# HELP drill_snapshot_seq Publication sequence number of this snapshot.\n")
	bw.printf("# TYPE drill_snapshot_seq counter\n")
	bw.printf("drill_snapshot_seq %d\n", s.Seq)
	bw.printf("# HELP drill_snapshot_sim_time_seconds Simulated time of this snapshot, in seconds.\n")
	bw.printf("# TYPE drill_snapshot_sim_time_seconds gauge\n")
	bw.printf("drill_snapshot_sim_time_seconds %s\n", formatFloat(s.SimTime.Seconds()))

	lastHeader := ""
	for i := range s.Points {
		p := &s.Points[i]
		if p.Name != lastHeader {
			lastHeader = p.Name
			if p.Help != "" {
				bw.printf("# HELP %s %s\n", p.Name, strings.ReplaceAll(p.Help, "\n", " "))
			}
			bw.printf("# TYPE %s %s\n", p.Name, p.Kind)
		}
		switch p.Kind {
		case KindHistogram:
			writePromHistogram(bw, p)
		default:
			if p.Labels == "" {
				bw.printf("%s %s\n", p.Name, formatFloat(p.Value))
			} else {
				bw.printf("%s{%s} %s\n", p.Name, p.Labels, formatFloat(p.Value))
			}
		}
	}
	return bw.err
}

func writePromHistogram(bw *errWriter, p *Point) {
	d := p.Hist
	if d == nil {
		d = &HistogramData{}
	}
	var cum int64
	for _, b := range d.Buckets {
		cum += b.Count
		bw.printf("%s_bucket{%s} %d\n",
			p.Name, joinLabels(p.Labels, `le="`+formatFloat(BucketUpper(b.Index))+`"`), cum)
	}
	bw.printf("%s_bucket{%s} %d\n", p.Name, joinLabels(p.Labels, `le="+Inf"`), d.Count)
	if p.Labels == "" {
		bw.printf("%s_sum %s\n", p.Name, formatFloat(d.Sum))
		bw.printf("%s_count %d\n", p.Name, d.Count)
	} else {
		bw.printf("%s_sum{%s} %s\n", p.Name, p.Labels, formatFloat(d.Sum))
		bw.printf("%s_count{%s} %d\n", p.Name, p.Labels, d.Count)
	}
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func formatFloat(v float64) string {
	switch {
	case v > 1e308*1.7:
		return "+Inf"
	case v < -1e308*1.7:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// jsonSnapshot is the JSON view of a Snapshot.
type jsonSnapshot struct {
	Seq       int64       `json:"seq"`
	SimTimeNs int64       `json:"sim_time_ns"`
	Points    []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Name   string         `json:"name"`
	Labels string         `json:"labels,omitempty"`
	Kind   string         `json:"kind"`
	Value  float64        `json:"value,omitempty"`
	Hist   *HistogramData `json:"hist,omitempty"`
}

// WriteJSON renders s as an indented JSON document mirroring the
// Prometheus exposition, with histograms kept in sparse-bucket form.
func WriteJSON(w io.Writer, s *Snapshot) error {
	doc := jsonSnapshot{Seq: s.Seq, SimTimeNs: int64(s.SimTime)}
	doc.Points = make([]jsonPoint, 0, len(s.Points))
	for i := range s.Points {
		p := &s.Points[i]
		doc.Points = append(doc.Points, jsonPoint{
			Name: p.Name, Labels: p.Labels, Kind: p.Kind.String(),
			Value: p.Value, Hist: p.Hist,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
