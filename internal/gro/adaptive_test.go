package gro

import (
	"testing"

	"drill/internal/units"
)

func TestAdaptiveShrinkToFastSkew(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	a := NewAdaptiveReorderer(c, 200*units.Microsecond, 10*units.Microsecond,
		500*units.Microsecond, collect(&got))
	// Repeated short reorderings: gap fills after 5µs each time.
	seq := int64(0)
	for round := 0; round < 40; round++ {
		a.Push(seg(seq+100, 100)) // hole at seq
		c.advance(c.now + 5*units.Microsecond)
		a.Push(seg(seq, 100)) // fill
		seq += 200
	}
	if a.CurrentHold() > 60*units.Microsecond {
		t.Fatalf("hold did not adapt down: %v", a.CurrentHold())
	}
	if a.FlushCount() != 0 {
		t.Fatalf("spurious flushes: %d", a.FlushCount())
	}
	if len(got) != 80 {
		t.Fatalf("delivered %d", len(got))
	}
}

func TestAdaptiveClamps(t *testing.T) {
	c := &fakeClock{}
	a := NewAdaptiveReorderer(c, 1*units.Microsecond, 20*units.Microsecond,
		100*units.Microsecond, func(Segment) {})
	if a.CurrentHold() != 20*units.Microsecond {
		t.Fatalf("hold below min: %v", a.CurrentHold())
	}
	a.skewEst = float64(10 * units.Millisecond)
	a.r.timeout = a.hold()
	if a.CurrentHold() != 100*units.Microsecond {
		t.Fatalf("hold above max: %v", a.CurrentHold())
	}
}

func TestAdaptiveLossStillFlushes(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	a := NewAdaptiveReorderer(c, 30*units.Microsecond, 10*units.Microsecond,
		100*units.Microsecond, collect(&got))
	a.Push(seg(0, 100))
	a.Push(seg(200, 100)) // hole at 100 — lost, never fills
	c.advance(c.now + 200*units.Microsecond)
	if a.FlushCount() != 1 {
		t.Fatalf("flushes = %d", a.FlushCount())
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
}

func TestAdaptiveInOrderUntouched(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	a := NewAdaptiveReorderer(c, 30*units.Microsecond, 10*units.Microsecond,
		100*units.Microsecond, collect(&got))
	for i := int64(0); i < 10; i++ {
		a.Push(seg(i*100, 100))
	}
	if len(got) != 10 || a.Held() != 0 {
		t.Fatalf("in-order path broken: %d delivered, %d held", len(got), a.Held())
	}
	if a.Expected() != 1000 {
		t.Fatalf("expected = %d", a.Expected())
	}
}
