package gro

import "drill/internal/units"

// AdaptiveReorderer wraps Reorderer with a Juggler-style adaptive hold
// timeout: it tracks how long genuinely-late packets (gap fills) actually
// took to arrive and sets the hold to a small multiple of that estimate,
// clamped to [Min, Max]. Genuine reordering skew (queueing differences,
// tens of µs) is waited out; losses — which never fill the gap — only
// stall the flow for the current estimate instead of a worst-case constant.
//
// This is the extension the paper's §3.3 alludes to via [35] (Juggler):
// "recent proposals for handling reordering at the end hosts."
type AdaptiveReorderer struct {
	r *Reorderer

	// Min and Max clamp the adaptive hold.
	Min, Max units.Time
	// Mult scales the skew estimate into a hold timeout.
	Mult int

	clock Clock
	// skewEst is an EWMA of observed fill delays.
	skewEst float64

	// holdStart tracks when the current gap opened, to measure fill delay.
	holdStart units.Time
	holding   bool
}

// NewAdaptiveReorderer returns an adaptive shim starting from an initial
// hold of start, clamped to [min, max].
func NewAdaptiveReorderer(clock Clock, start, min, max units.Time, deliver func(Segment)) *AdaptiveReorderer {
	a := &AdaptiveReorderer{
		Min: min, Max: max, Mult: 2,
		clock:   clock,
		skewEst: float64(start),
	}
	a.r = NewReorderer(clock, a.hold(), deliver)
	return a
}

func (a *AdaptiveReorderer) hold() units.Time {
	h := units.Time(a.skewEst) * units.Time(a.Mult)
	if h < a.Min {
		h = a.Min
	}
	if h > a.Max {
		h = a.Max
	}
	return h
}

// Expected returns the next in-order sequence number.
func (a *AdaptiveReorderer) Expected() int64 { return a.r.Expected() }

// Held returns the number of buffered segments.
func (a *AdaptiveReorderer) Held() int { return a.r.Held() }

// FlushCount reports timeout flushes of the underlying shim.
func (a *AdaptiveReorderer) FlushCount() int64 { return a.r.Flushes }

// CurrentHold reports the adaptive hold in effect.
func (a *AdaptiveReorderer) CurrentHold() units.Time { return a.r.timeout }

// Push accepts one segment, adapting the hold from observed fill delays.
func (a *AdaptiveReorderer) Push(s Segment) {
	wasHolding := a.r.Held() > 0
	if !wasHolding {
		a.holdStart = a.clock.Now()
	}
	fillsGap := wasHolding && s.Seq <= a.r.Expected()
	a.r.Push(s)
	if fillsGap && a.r.Held() == 0 {
		// The gap closed: the fill delay is a genuine skew sample.
		delay := float64(a.clock.Now() - a.holdStart)
		a.skewEst += (delay - a.skewEst) / 8
		a.r.timeout = a.hold()
	}
}
