package gro

import (
	"testing"

	"drill/internal/units"
)

// fakeClock runs callbacks manually.
type fakeClock struct {
	now    units.Time
	timers []struct {
		at units.Time
		fn func()
	}
}

func (c *fakeClock) Now() units.Time { return c.now }
func (c *fakeClock) After(d units.Time, fn func()) {
	c.timers = append(c.timers, struct {
		at units.Time
		fn func()
	}{c.now + d, fn})
}

func (c *fakeClock) advance(to units.Time) {
	c.now = to
	for i := range c.timers {
		tm := c.timers[i]
		if tm.fn != nil && tm.at <= to {
			c.timers[i].fn = nil
			tm.fn()
		}
	}
}

func seg(seq int64, l int32) Segment { return Segment{Seq: seq, Len: l} }

func collect(out *[]int64) func(Segment) {
	return func(s Segment) { *out = append(*out, s.Seq) }
}

func TestReordererInOrderPassThrough(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 100, collect(&got))
	for i := int64(0); i < 5; i++ {
		r.Push(seg(i*100, 100))
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
	if r.Held() != 0 || r.Flushes != 0 {
		t.Fatalf("held=%d flushes=%d", r.Held(), r.Flushes)
	}
}

func TestReordererRestoresOrder(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 100, collect(&got))
	r.Push(seg(0, 100))
	r.Push(seg(200, 100)) // gap at 100
	r.Push(seg(300, 100))
	if len(got) != 1 {
		t.Fatalf("delivered early: %v", got)
	}
	r.Push(seg(100, 100)) // gap fills
	want := []int64{0, 100, 200, 300}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if r.Expected() != 400 {
		t.Fatalf("expected = %d", r.Expected())
	}
}

func TestReordererTimeoutFlush(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 50, collect(&got))
	r.Push(seg(0, 100))
	r.Push(seg(300, 100))
	r.Push(seg(200, 100))
	c.advance(49)
	if len(got) != 1 {
		t.Fatalf("flushed early: %v", got)
	}
	c.advance(50)
	// Flushed in order despite the hole at 100.
	want := []int64{0, 200, 300}
	if len(got) != 3 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("got %v, want %v", got, want)
	}
	if r.Flushes != 1 {
		t.Fatalf("flushes = %d", r.Flushes)
	}
	// Late retransmission of the hole is still delivered (as a duplicate
	// below Expected? no — 100 < expected 400, delivered for dup-ACK).
	r.Push(seg(100, 100))
	if len(got) != 4 || got[3] != 100 {
		t.Fatalf("late fill not delivered: %v", got)
	}
}

func TestReordererDuplicatesPassThrough(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 100, collect(&got))
	r.Push(seg(0, 100))
	r.Push(seg(0, 100)) // spurious retransmission
	if len(got) != 2 {
		t.Fatalf("duplicate swallowed: %v", got)
	}
	// Buffered duplicate is dropped (only one copy kept).
	r.Push(seg(200, 100))
	r.Push(seg(200, 100))
	if r.Held() != 1 {
		t.Fatalf("held = %d, want 1", r.Held())
	}
}

func TestReordererZeroTimeoutDisabled(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 0, collect(&got))
	r.Push(seg(200, 100))
	r.Push(seg(0, 100))
	if len(got) != 2 || got[0] != 200 {
		t.Fatalf("pass-through broken: %v", got)
	}
}

func TestReordererTimerRearmsAfterProgress(t *testing.T) {
	var got []int64
	c := &fakeClock{}
	r := NewReorderer(c, 50, collect(&got))
	r.Push(seg(100, 100)) // hole at 0
	c.advance(30)
	r.Push(seg(0, 100)) // fills; drains both
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	r.Push(seg(300, 100)) // new hole at 200
	c.advance(60)         // old timer (armed at 0, due 50) must not flush the new hole early
	if r.Flushes != 0 && len(got) != 2 {
		t.Fatalf("stale timer flushed: flushes=%d got=%v", r.Flushes, got)
	}
	c.advance(80) // new timer due at 30+? — armed at push time 30? no: at 60. due 110.
	c.advance(110)
	if len(got) != 3 {
		t.Fatalf("timeout flush missing: %v", got)
	}
}

func TestBatcherInOrder(t *testing.T) {
	b := NewBatcher()
	// 100 in-order 1460B segments: 64KiB threshold → ceil(146000/65536)=3 batches.
	for i := 0; i < 100; i++ {
		b.Push(int64(i)*1460, 1460)
	}
	b.Close()
	if b.Segments != 100 {
		t.Fatalf("segments = %d", b.Segments)
	}
	want := int64(3)
	if b.Batches != want {
		t.Fatalf("batches = %d, want %d", b.Batches, want)
	}
}

func TestBatcherReorderingIncreasesBatches(t *testing.T) {
	inOrder := NewBatcher()
	for i := 0; i < 40; i++ {
		inOrder.Push(int64(i)*1460, 1460)
	}
	inOrder.Close()

	reordered := NewBatcher()
	for i := 0; i < 40; i += 2 { // swap every pair
		reordered.Push(int64(i+1)*1460, 1460)
		reordered.Push(int64(i)*1460, 1460)
	}
	reordered.Close()
	if reordered.Batches <= inOrder.Batches {
		t.Fatalf("reordering should increase batches: %d vs %d",
			reordered.Batches, inOrder.Batches)
	}
}
