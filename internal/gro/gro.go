// Package gro models the receiver-host mechanisms the paper discusses in
// §3.3: the Generic Receive Offload batching optimization whose efficiency
// packet reordering destroys, and the optional reordering-resilient shim
// layer (as in Presto's vSwitch shim / Juggler) that buffers out-of-order
// packets briefly to restore in-order delivery before TCP sees them.
package gro

import (
	"sort"

	"drill/internal/units"
)

// Clock abstracts the simulator for timer scheduling.
type Clock interface {
	Now() units.Time
	After(d units.Time, fn func())
}

// Segment is the portion of a flow's byte stream one packet carries.
type Segment struct {
	Seq int64
	Len int32
	// Payload carries the packet's send-timestamp echo downstream. It is a
	// concrete type rather than `any` deliberately: one Segment is built
	// per delivered data packet, and boxing a timestamp into an interface
	// is a heap allocation on the hottest receive path.
	Payload units.Time
}

// Reorderer is a per-flow shim buffer: segments are delivered downstream in
// sequence order; a gap is waited out up to Timeout, after which buffered
// segments are flushed in order anyway (letting TCP's own recovery run).
// The zero Timeout flushes immediately (shim disabled ≈ pass-through).
type Reorderer struct {
	clock   Clock
	timeout units.Time
	deliver func(Segment)

	expected int64
	buf      []Segment // sorted by Seq
	timerGen int
	armed    bool

	// Flushes counts timeout-triggered flushes (telemetry).
	Flushes int64
	// HeldPeak is the maximum number of simultaneously buffered segments.
	HeldPeak int
}

// NewReorderer returns a shim for one flow starting at sequence 0.
func NewReorderer(clock Clock, timeout units.Time, deliver func(Segment)) *Reorderer {
	return &Reorderer{clock: clock, timeout: timeout, deliver: deliver}
}

// Expected returns the next in-order sequence number.
func (r *Reorderer) Expected() int64 { return r.expected }

// FlushCount reports timeout-triggered flushes (telemetry accessor shared
// with AdaptiveReorderer).
func (r *Reorderer) FlushCount() int64 { return r.Flushes }

// Held returns the number of buffered out-of-order segments.
func (r *Reorderer) Held() int { return len(r.buf) }

// Push accepts one segment from the wire.
func (r *Reorderer) Push(s Segment) {
	if s.Seq+int64(s.Len) <= r.expected {
		// Entirely duplicate (spurious retransmission): deliver so TCP can
		// generate its duplicate ACK; nothing to reorder.
		r.deliver(s)
		return
	}
	if s.Seq <= r.expected {
		r.deliver(s)
		if end := s.Seq + int64(s.Len); end > r.expected {
			r.expected = end
		}
		r.drain()
		return
	}
	if r.timeout <= 0 {
		// Shim disabled: pass through immediately.
		r.deliver(s)
		if end := s.Seq + int64(s.Len); end > r.expected {
			r.expected = end
		}
		return
	}
	r.insert(s)
	if len(r.buf) > r.HeldPeak {
		r.HeldPeak = len(r.buf)
	}
	if !r.armed {
		r.arm()
	}
}

func (r *Reorderer) insert(s Segment) {
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Seq >= s.Seq })
	if i < len(r.buf) && r.buf[i].Seq == s.Seq {
		return // duplicate of an already-buffered segment; drop the copy
	}
	r.buf = append(r.buf, Segment{})
	copy(r.buf[i+1:], r.buf[i:])
	r.buf[i] = s
}

// drain delivers buffered segments that have become contiguous.
func (r *Reorderer) drain() {
	i := 0
	for i < len(r.buf) && r.buf[i].Seq <= r.expected {
		s := r.buf[i]
		r.deliver(s)
		if end := s.Seq + int64(s.Len); end > r.expected {
			r.expected = end
		}
		i++
	}
	if i > 0 {
		r.buf = append(r.buf[:0], r.buf[i:]...)
	}
	if len(r.buf) == 0 {
		r.timerGen++ // disarm any pending flush
		r.armed = false
	} else if !r.armed {
		r.arm()
	}
}

func (r *Reorderer) arm() {
	r.armed = true
	r.timerGen++
	gen := r.timerGen
	r.clock.After(r.timeout, func() {
		if gen != r.timerGen {
			return
		}
		r.flush()
	})
}

// flush delivers everything buffered, in order, skipping gaps: the hole is
// declared lost and TCP recovery takes over.
func (r *Reorderer) flush() {
	r.Flushes++
	r.armed = false
	for _, s := range r.buf {
		r.deliver(s)
		if end := s.Seq + int64(s.Len); end > r.expected {
			r.expected = end
		}
	}
	r.buf = r.buf[:0]
}

// Batcher models GRO's per-flow packet coalescing (§3.3): consecutive
// in-order segments merge into a batch until a size threshold is exceeded
// or an out-of-order arrival forces a flush. The batch count per delivered
// byte is the CPU-overhead proxy the paper reports ("DRILL increases the
// number of batches by less than 0.5%").
type Batcher struct {
	Threshold units.ByteSize // flush when a batch reaches this size (64KB)

	expected int64
	batchLen int64

	// Batches counts completed batches; Segments counts segments seen.
	Batches  int64
	Segments int64
}

// NewBatcher returns a GRO model with the standard 64KB threshold.
func NewBatcher() *Batcher { return &Batcher{Threshold: 64 * units.KiB} }

// Push folds one arriving segment into the current batch.
func (b *Batcher) Push(seq int64, length int32) {
	b.Segments++
	inOrder := seq == b.expected
	if !inOrder || b.batchLen+int64(length) > int64(b.Threshold) {
		if b.batchLen > 0 {
			b.Batches++
		}
		b.batchLen = 0
	}
	if end := seq + int64(length); end > b.expected {
		b.expected = end
	}
	b.batchLen += int64(length)
}

// Close flushes the final partial batch.
func (b *Batcher) Close() {
	if b.batchLen > 0 {
		b.Batches++
		b.batchLen = 0
	}
}
