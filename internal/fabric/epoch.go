package fabric

import (
	"drill/internal/quiver"
	"drill/internal/topo"
	"drill/internal/units"
)

// Epoch is one immutable generation of control-plane configuration: the
// link up/down vector it was computed for, the routes derived from that
// vector, the balancer's forwarding tables, and (for Quiver-based schemes)
// the symmetric-component decomposition. The data plane never consults an
// Epoch directly — ApplyEpoch installs its contents into the running
// Network in one atomic step — so a built-but-unapplied epoch can be held,
// inspected, or discarded without perturbing the simulation.
//
// Epochs are the reconfiguration unit the ROADMAP's control-plane/dataplane
// split calls for: everything a scheme bakes in at construction time
// (routes, tables, decomposition) lives in the epoch, while per-engine
// scheduler state, queue contents, and counters are runtime state that
// survives a swap (engines restart their per-group state because group IDs
// change meaning across table generations).
type Epoch struct {
	// Seq is the epoch's generation number: 1 for the construction-time
	// epoch, monotonically increasing from there. BuildEpoch assigns it.
	Seq uint64

	// BuiltAt is the sim time the epoch was computed — the moment the
	// control plane snapshotted link state. The reconvergence delay is the
	// gap between the triggering event and the ApplyEpoch that installs it.
	BuiltAt units.Time

	// Scheme is the balancer the tables were built for.
	Scheme string

	// LinkUp is the link up/down vector the epoch was computed from,
	// indexed by topo.LinkID. ApplyEpoch syncs the data plane to it.
	LinkUp []bool

	// Routes is the shortest-path routing state over LinkUp.
	Routes *topo.Routes

	// Quiver is the symmetric-component decomposition, non-nil only when
	// the balancer's table builder decomposes via the Quiver (§3.4).
	Quiver *quiver.Quiver

	// tables holds the per-switch forwarding tables, in the (node-ordered)
	// sequence the builder installed them.
	tables []epochTable
}

// epochTable is one switch's forwarding state within an epoch.
type epochTable struct {
	node       topo.NodeID
	tables     [][]Group
	groupCount int32
}

// Epoch returns the currently applied epoch.
func (n *Network) Epoch() *Epoch { return n.epoch }

// EpochSeq returns the generation number of the applied epoch — a cheap
// "how many reconvergences have happened" probe for tests and telemetry.
func (n *Network) EpochSeq() uint64 {
	if n.epoch == nil {
		return 0
	}
	return n.epoch.Seq
}

// Quiver returns the applied epoch's symmetric-component decomposition,
// nil when the active scheme does not build one.
func (n *Network) Quiver() *quiver.Quiver { return n.quiver }

// BuildEpoch computes a fresh epoch from the topology's current link
// state: routes, the balancer's forwarding tables, and — when the builder
// installs one — the Quiver decomposition. The running network is not
// modified: table installation is captured into the epoch (InstallTables
// and InstallQuiver redirect while n.building is set), and n.Routes is
// restored after the builder runs. Control-plane cost only; never call it
// from the data-plane hot path.
func (n *Network) BuildEpoch() *Epoch {
	e := &Epoch{
		Seq:     n.epochSeq + 1,
		BuiltAt: n.Sim.Now(),
		Scheme:  n.balancer.Name(),
		LinkUp:  make([]bool, len(n.Topo.Links)),
	}
	for i := range n.Topo.Links {
		e.LinkUp[i] = n.Topo.Links[i].Up
	}
	e.Routes = topo.ComputeRoutes(n.Topo)
	// Table builders read net.Routes; point them at the epoch's routes for
	// the duration of the build, and capture their InstallTables calls.
	saved := n.Routes
	n.Routes = e.Routes
	n.building = e
	if tb, ok := n.balancer.(TableBuilder); ok {
		tb.BuildTables(n)
	} else {
		n.BuildDefaultTables()
	}
	n.building = nil
	n.Routes = saved
	return e
}

// ApplyEpoch atomically swaps the network onto epoch e: the link up/down
// vector, routes, Quiver decomposition, and every switch's forwarding
// tables (per-group engine state restarts, as after any table rebuild).
//
// It is a barrier-class operation: call it only from a global-class sim
// event (AtGlobal/AfterGlobal) — sequentially the global class orders it
// ahead of same-instant data-plane events; under the sharded engine
// globals run at a window barrier with every shard parked, so the swap is
// atomic with respect to all shards and touching cross-shard port and
// stat state here is legal.
//
// Syncing a link down drains its ports exactly as FailLink does (packets
// queued on a dead link are lost); syncing a link up kicks transmission if
// anything is waiting. A flap shorter than an in-service packet's
// serialization time is invisible to that packet: its txDone finds the
// port up again and delivers normally.
func (n *Network) ApplyEpoch(e *Epoch) {
	for li := range e.LinkUp {
		up := e.LinkUp[li]
		n.Topo.Links[li].Up = up
		for dir := int32(0); dir < 2; dir++ {
			p := n.Ports[n.chanPort[2*int32(li)+dir]]
			if p.up == up {
				continue
			}
			p.up = up
			if up {
				if !p.busy && !p.queueEmpty() {
					n.transmit(p)
				}
			} else if !p.busy {
				n.drainPort(p)
			}
		}
	}
	n.Routes = e.Routes
	n.quiver = e.Quiver
	for i := range e.tables {
		et := &e.tables[i]
		sw := n.swByNode[et.node]
		sw.tables = et.tables
		sw.groupCount = et.groupCount
		sw.resetEngineState()
	}
	n.epoch = e
	n.epochSeq = e.Seq
}

// ApplyEpochAt schedules an atomic swap onto e at sim time t, as a
// global-class event (a barrier under the sharded engine).
func (n *Network) ApplyEpochAt(t units.Time, e *Epoch) {
	n.Sim.AtGlobal(t, func() { n.ApplyEpoch(e) })
}

// Reconverge recomputes routing and tables from the topology's current
// link state and applies the result immediately — the idealized
// zero-delay control-plane step. It is invoked at construction and by the
// instant variants of FailLink/RestoreLink; the delayed variants go
// through scheduleReconverge. Like ApplyEpoch, mid-run callers must be on
// a global-class event.
func (n *Network) Reconverge() {
	n.ApplyEpoch(n.BuildEpoch())
}

// scheduleReconverge arms one coalesced reconvergence RouteDelay from now.
// Further failure or recovery events inside the window ride the same
// pending epoch build instead of scheduling their own — the control plane
// batches LSAs — so N flaps in a window rebuild every switch's tables
// once, not N times. The epoch is built at fire time, from whatever the
// link vector then is.
func (n *Network) scheduleReconverge() {
	if n.reconvergePending {
		return
	}
	n.reconvergePending = true
	n.Sim.AfterGlobal(n.Cfg.RouteDelay, n.reconvergeFire)
}

func (n *Network) reconvergeFire() {
	n.reconvergePending = false
	n.Reconverge()
}

// FailLink takes a link out of service mid-run: both directions stop
// transmitting, queued packets are lost, and the control plane reconverges
// after Cfg.RouteDelay (coalesced across failures in the same window; pass
// instantReconverge for the idealized variant). Failing an already-down
// link is a no-op — notably it does not drain (and double-count drops on)
// ports that are already dead. Call from a global-class event mid-run.
func (n *Network) FailLink(id topo.LinkID, instantReconverge bool) {
	if !n.Topo.Links[id].Up {
		return
	}
	n.Topo.FailLink(id)
	for dir := int32(0); dir < 2; dir++ {
		p := n.Ports[n.chanPort[2*int32(id)+dir]]
		p.up = false
		// If a packet is mid-transmission its txDone event is in flight;
		// that event drops it and drains the rest. Otherwise drain now.
		if !p.busy {
			n.drainPort(p)
		}
	}
	if instantReconverge {
		n.Reconverge()
	} else {
		n.scheduleReconverge()
	}
}

// RestoreLink is FailLink's missing inverse: it returns a link to service
// mid-run. Both directions come up immediately — the wire is live the
// moment the transceiver is — and transmission kicks off if anything is
// waiting; the control plane reconverges after Cfg.RouteDelay (coalesced,
// like failures), so traffic only shifts back once tables catch up.
// Restoring an already-up link is a no-op. Call from a global-class event
// mid-run.
func (n *Network) RestoreLink(id topo.LinkID, instantReconverge bool) {
	if n.Topo.Links[id].Up {
		return
	}
	n.Topo.RestoreLink(id)
	for dir := int32(0); dir < 2; dir++ {
		p := n.Ports[n.chanPort[2*int32(id)+dir]]
		p.up = true
		if !p.busy && !p.queueEmpty() {
			n.transmit(p)
		}
	}
	if instantReconverge {
		n.Reconverge()
	} else {
		n.scheduleReconverge()
	}
}

// InstallQuiver records the decomposition a table builder computed, so the
// epoch (and Network.Quiver) expose it for inspection and experiments.
// DRILLAsym calls it from BuildTables.
func (n *Network) InstallQuiver(q *quiver.Quiver) {
	if n.building != nil {
		n.building.Quiver = q
		return
	}
	n.quiver = q
}
