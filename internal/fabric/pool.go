package fabric

// PacketPool is a single-threaded free list of *Packet. Every TCP segment
// and ACK used to be a fresh heap allocation; at the tens of millions of
// packets a single experiment point pushes through the fabric, that
// allocation (and the GC work to reclaim it) dominates the per-packet
// cost. The pool recycles packets at their terminal sites — delivery to a
// host handler, or any drop — so the steady-state data plane allocates
// only while the in-flight population is still growing.
//
// Invariants:
//
//   - Only packets obtained from Get are ever recycled. Hand-built packets
//     (tests, custom drivers that may retain delivered packets) pass
//     through Put untouched, so pooling is invisible to them.
//   - Put zeroes the entire packet before shelving it. Recycled packets
//     are indistinguishable from fresh ones: Path (a slice owned by the
//     balancer's path table), HopWaitNs, ECN/CONGA scratch, and telemetry
//     stamps must not leak between packet lifetimes, or recycling would
//     perturb determinism. DisablePool in Config exists to prove it
//     doesn't: runs with pooling on and off are byte-identical.
//   - Double-recycling panics. A packet is in exactly one place (a queue,
//     the wire, or a terminal site); two Puts mean the data plane lost
//     track of ownership, which would silently corrupt a later flow.
//
// The pool is per-Network and the simulator is single-threaded, so there
// is no synchronization.
type PacketPool struct {
	free []*Packet

	// Gets / News / Puts count pool traffic: Gets - News is the number of
	// allocations the pool avoided.
	Gets int64
	News int64
	Puts int64
}

// Packet poolState values.
const (
	poolNone uint8 = iota // not pool-managed (hand-built)
	poolLive              // obtained from Get, not yet recycled
	poolIdle              // sitting in the free list
)

// Get returns a zeroed packet, recycling a shelved one when available.
//
//drill:hotpath
//drill:allocs 1 a pool miss allocates the packet; steady state recycles
func (pp *PacketPool) Get() *Packet {
	pp.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		p.poolState = poolLive
		return p
	}
	pp.News++
	return &Packet{poolState: poolLive}
}

// Put recycles a pool-managed packet, zeroing every field. Packets not
// obtained from Get are ignored, so terminal sites may call Put
// unconditionally.
//
//drill:hotpath
//drill:allocs 1 free-list growth amortizes to zero once the pool reaches its high-water mark
func (pp *PacketPool) Put(p *Packet) {
	switch p.poolState {
	case poolNone:
		return
	case poolIdle:
		panic("fabric: packet recycled twice")
	}
	*p = Packet{poolState: poolIdle}
	pp.Puts++
	pp.free = append(pp.free, p)
}

// Idle reports how many packets are shelved in the free list.
func (pp *PacketPool) Idle() int { return len(pp.free) }
