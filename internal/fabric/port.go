package fabric

import (
	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// Port is one directed output channel: the FIFO queue feeding a link
// direction, plus the delayed-visibility occupancy counters forwarding
// engines consult (§3.2.1: "the queue length does not include the packets
// that are just entering the queue until after they are being fully
// enqueued").
//
// True occupancy (QPkts/QBytes) counts packets from enqueue until their
// transmission completes; it is what the buffer cap limits and what the
// queue-length sampler reports. Visible occupancy (VisPkts/VisBytes) is the
// load signal engines compare: it lags enqueue by the port's visibility
// delay, and it counts only *waiting* packets — the head being read out of
// buffer memory onto the wire no longer occupies the queue an arriving
// packet must wait behind. (Counting the in-service packet makes every
// placement evict the flow's next packet to a different port, a
// self-displacement artifact that manufactures reordering the hardware
// does not exhibit.) Because the visibility delay is constant per port,
// visibility events fire in FIFO order and the skip-counter reconciliation
// below is exact.
type Port struct {
	Index    int32 // position in Network.Ports
	Chan     topo.ChanID
	From, To topo.NodeID
	Rate     units.Rate
	Prop     units.Time
	Hop      metrics.HopClass

	Cap int // max queued packets (waiting + in service); 0 = unbounded

	queue []*Packet
	head  int // index of the first queued packet (amortized pop)

	QPkts  int32
	QBytes int64

	VisPkts  int32
	VisBytes int64
	visSkip  int32 // departures that outran their visibility event

	visDelay units.Time
	busy     bool
	up       bool

	// Batched event plumbing (see Network.visFire/wireFire): each port owns
	// three reusable callbacks — for the serialization in progress, the
	// head of the visibility ring, and the head of the wire ring — instead
	// of allocating a closure per packet per hop. The rings hold the
	// pending (at, seq, payload) triples in FIFO order; firing one re-arms
	// the callback for the next at its reserved (at, seq) via sim.AtSeqID,
	// so dispatch is byte-identical to the one-event-per-packet path.
	// Registered ids, not sim.Timers: these are only ever armed when
	// unarmed (fire-and-rearm), so they need none of a Timer's location
	// tracking — which would otherwise be maintained on every heap sift of
	// every packet event — and interning them keeps the scheduler's event
	// records pointer-free.
	txID     sim.FnID
	visID    sim.FnID
	wireID   sim.FnID
	visRing  fifo[visEntry]
	wireRing fifo[wireEntry]

	// Shard plumbing (see shard.go). dom owns the queue side (enqueue,
	// visibility, transmission); dstDom owns the wire arrival at the far
	// end. They differ only on boundary ports, whose departures detour
	// through the domain outbox instead of arming dstDom's scheduler
	// directly. wireSeq counts departures; together with Index it forms
	// the engine-invariant arrival key (sim.ArrivalKey).
	dom      *domain
	dstDom   *domain
	boundary bool
	wireSeq  uint64

	// Counters.
	TxPackets int64
	TxBytes   int64
	Drops     int64
}

// Up reports whether the underlying link direction is in service.
func (p *Port) Up() bool { return p.up }

// QueueLen reports true occupancy in packets (waiting + in service).
func (p *Port) QueueLen() int32 { return p.QPkts }

// VisibleBytes reports the occupancy in bytes as a forwarding engine sees
// it — the load signal DRILL compares.
func (p *Port) VisibleBytes() int64 { return p.VisBytes }

//drill:hotpath
//drill:allocs 1 queue growth amortizes; capacity is retained across pops
func (p *Port) pushQueue(pkt *Packet) {
	p.queue = append(p.queue, pkt)
}

//drill:hotpath
func (p *Port) popQueue() *Packet {
	pkt := p.queue[p.head]
	p.queue[p.head] = nil
	p.head++
	if p.head > 64 && p.head*2 >= len(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
	return pkt
}

func (p *Port) queueEmpty() bool { return p.head == len(p.queue) }

// applyVisibility is the deferred counter update scheduled at enqueue time.
//
//drill:hotpath
func (p *Port) applyVisibility(size units.ByteSize) {
	if p.visSkip > 0 {
		p.visSkip--
		return
	}
	p.VisPkts++
	p.VisBytes += int64(size)
}

// departVisibility reconciles the visible counters when a packet finishes
// transmission, possibly before its visibility event fired.
//
//drill:hotpath
func (p *Port) departVisibility(size units.ByteSize) {
	if p.VisPkts > 0 {
		p.VisPkts--
		p.VisBytes -= int64(size)
		return
	}
	p.visSkip++
}
