package fabric

import (
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// TraceSampler periodically emits QueueSample and PortUtil events for every
// switch output port — the time-resolved queue-depth record the paper's
// Figures 2–3 are drawn from. Host NIC queues are excluded to bound event
// volume; their backlog is visible through Host.NICBacklog and the
// host-nic enqueue events.
type TraceSampler struct {
	net    *Network
	ticker *sim.Ticker
	ports  []*Port
	lastTx []int64 // TxBytes at the previous tick, for utilization deltas
	every  units.Time
	tick   int64
}

// StartTraceSampler begins sampling every `every` on the network's
// simulator. It requires an attached tracer; with tracing off there is
// nothing to emit, and the sampler refuses to tick pointlessly.
func StartTraceSampler(net *Network, every units.Time) *TraceSampler {
	if net.tracer == nil {
		panic("fabric: StartTraceSampler without a tracer")
	}
	ts := &TraceSampler{net: net, every: every}
	for _, p := range net.Ports {
		if net.Topo.Nodes[p.From].Kind == topo.Host {
			continue
		}
		ts.ports = append(ts.ports, p)
		ts.lastTx = append(ts.lastTx, p.TxBytes)
	}
	ts.ticker = sim.NewTicker(net.Sim, every, ts.sample)
	return ts
}

// Stop cancels future samples.
func (ts *TraceSampler) Stop() { ts.ticker.Stop() }

func (ts *TraceSampler) sample(now units.Time) {
	tr := ts.net.tracer
	if tr != nil {
		window := float64(ts.every.Seconds())
		for i, p := range ts.ports {
			tr.Sample(trace.QueueSample, now, p.Index, uint8(p.Hop), ts.tick, p.QPkts, int32(p.QBytes), 0)
			sent := p.TxBytes - ts.lastTx[i]
			ts.lastTx[i] = p.TxBytes
			util := 0.0
			if p.Rate > 0 && window > 0 {
				util = float64(sent) * 8 / (float64(p.Rate) * window)
			}
			tr.Sample(trace.PortUtil, now, p.Index, uint8(p.Hop), ts.tick, 0, 0, util)
		}
	}
	ts.tick++
}
