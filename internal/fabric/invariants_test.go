package fabric

import (
	"testing"
	"testing/quick"

	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// TestConservationProperty drives random traffic through random small Clos
// fabrics and checks packet conservation: every injected packet is either
// delivered or accounted as a drop.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, spines, leaves, pkts uint8) bool {
		sp := int(spines%3) + 2
		lv := int(leaves%3) + 2
		n := int(pkts)%200 + 1
		tp := topo.LeafSpine(topo.LeafSpineConfig{
			Spines: sp, Leaves: lv, HostsPerLeaf: 2,
			HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
		s := sim.New(seed)
		net := New(s, tp, Config{Balancer: randomLB{}, QueueCap: 8})
		for _, h := range tp.Hosts {
			net.Host(h).Handler = &sink{}
		}
		rng := s.Stream(1)
		injected := 0
		for i := 0; i < n; i++ {
			src := tp.Hosts[rng.Intn(len(tp.Hosts))]
			dst := tp.Hosts[rng.Intn(len(tp.Hosts))]
			if src == dst {
				continue
			}
			injected++
			at := units.Time(rng.Intn(100)) * units.Microsecond
			pkt := &Packet{FlowID: uint64(i), Hash: uint32(rng.Int31()),
				Dst: dst, Size: units.ByteSize(rng.Intn(1400) + 100)}
			host := net.Host(src)
			s.At(at, func() { host.Send(pkt) })
		}
		s.Run()
		return net.Delivered+net.Hops.TotalDrops() == int64(injected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQueuesDrainProperty: after traffic stops, every queue and every
// visibility counter returns to exactly zero.
func TestQueuesDrainProperty(t *testing.T) {
	f := func(seed int64, pkts uint8) bool {
		tp := topo.LeafSpine(topo.LeafSpineConfig{
			Spines: 3, Leaves: 3, HostsPerLeaf: 2,
			HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
		s := sim.New(seed)
		net := New(s, tp, Config{Balancer: randomLB{}})
		for _, h := range tp.Hosts {
			net.Host(h).Handler = &sink{}
		}
		rng := s.Stream(2)
		for i := 0; i < int(pkts); i++ {
			src := tp.Hosts[rng.Intn(len(tp.Hosts))]
			dst := tp.Hosts[(rng.Intn(len(tp.Hosts)-1)+1+int(src))%len(tp.Hosts)]
			if src == dst {
				continue
			}
			host := net.Host(src)
			pkt := &Packet{FlowID: uint64(i), Hash: uint32(i), Dst: dst, Size: 1518}
			host.Send(pkt)
		}
		s.Run()
		for _, p := range net.Ports {
			if p.QPkts != 0 || p.QBytes != 0 || p.VisPkts != 0 || p.VisBytes != 0 || p.visSkip != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMidRunFailureConservation: failing links mid-burst never loses
// accounting — delivered + dropped == injected.
func TestMidRunFailureConservation(t *testing.T) {
	f := func(seed int64) bool {
		tp := topo.LeafSpine(topo.LeafSpineConfig{
			Spines: 3, Leaves: 3, HostsPerLeaf: 2,
			HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
		s := sim.New(seed)
		net := New(s, tp, Config{Balancer: randomLB{}, RouteDelay: 5 * units.Microsecond})
		for _, h := range tp.Hosts {
			net.Host(h).Handler = &sink{}
		}
		rng := s.Stream(3)
		const n = 300
		for i := 0; i < n; i++ {
			src := tp.Hosts[i%len(tp.Hosts)]
			dst := tp.Hosts[(i+2)%len(tp.Hosts)]
			at := units.Time(i) * 300 * units.Nanosecond
			host := net.Host(src)
			pkt := &Packet{FlowID: uint64(i), Hash: uint32(rng.Int31()), Dst: dst, Size: 1518}
			s.At(at, func() { host.Send(pkt) })
		}
		// Fail two random core links mid-burst.
		var core []topo.LinkID
		for _, l := range tp.Links {
			if tp.Nodes[l.A].Kind != topo.Host && tp.Nodes[l.B].Kind != topo.Host {
				core = append(core, l.ID)
			}
		}
		rng.Shuffle(len(core), func(i, j int) { core[i], core[j] = core[j], core[i] })
		s.At(20*units.Microsecond, func() { net.FailLink(core[0], false) })
		s.At(40*units.Microsecond, func() { net.FailLink(core[1], false) })
		s.Run()
		delivered := net.Delivered
		dropped := net.Hops.TotalDrops()
		// Some packets may be dropped for unreachability; all must be accounted.
		return delivered+dropped == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestVisibilityNeverExceedsWaiting: the visible occupancy is always a
// subset of the true queue, never negative, for all schemes under load.
func TestVisibilityNeverExceedsWaiting(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 3,
		HostRate: 10 * units.Gbps, CoreRate: 10 * units.Gbps})
	s := sim.New(5)
	net := New(s, tp, Config{Balancer: randomLB{}, QueueCap: 16})
	for _, h := range tp.Hosts {
		net.Host(h).Handler = &sink{}
	}
	for i := 0; i < 400; i++ {
		src := tp.Hosts[i%3]
		dst := tp.Hosts[3+(i%3)]
		host := net.Host(src)
		pkt := &Packet{FlowID: uint64(i), Hash: uint32(i * 7), Dst: dst, Size: 1518}
		s.At(units.Time(i)*200*units.Nanosecond, func() { host.Send(pkt) })
	}
	violations := 0
	for s.Pending() > 0 {
		s.RunUntil(s.Now() + 500*units.Nanosecond)
		for _, p := range net.Ports {
			if p.VisPkts < 0 || p.VisBytes < 0 || p.VisPkts > p.QPkts {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d visibility invariant violations", violations)
	}
}
