// Package fabric simulates the data plane the DRILL paper evaluates:
// output-queued switches with multiple parallel forwarding engines and
// imprecise (delayed-visibility) queue-occupancy counters, store-and-forward
// links, and host NICs. Load-balancing policies plug in via the Balancer
// interface; everything else — queueing, drops, per-hop telemetry, failure
// handling — is shared across policies so comparisons are apples-to-apples.
package fabric

import (
	"drill/internal/topo"
	"drill/internal/units"
)

// PacketKind distinguishes the two packet roles the transport layer uses.
type PacketKind uint8

// Packet kinds.
const (
	Data PacketKind = iota
	Ack
)

// Packet is the unit the fabric forwards. Fields beyond the addressing
// header are scratch space for the transport layer (Seq/AckNo/EchoTS), the
// load balancers (Hash/CellSeq/Path/CE), and telemetry (Sent/enqAt).
type Packet struct {
	FlowID uint64
	Hash   uint32 // 5-tuple hash, fixed for the flow's lifetime
	Kind   PacketKind

	Src, Dst         topo.NodeID // hosts
	SrcLeaf, DstLeaf topo.NodeID
	DstLeafIdx       int32 // dense index of DstLeaf for table lookups

	Size units.ByteSize // bytes on the wire

	// Transport fields.
	Seq    int64      // first byte offset carried (Data) or being acked (Ack)
	Len    int32      // payload bytes (Data)
	AckNo  int64      // cumulative ack (Ack)
	EchoTS units.Time // send timestamp echoed by the receiver for RTT
	TxSeq  int32      // per-flow emission counter for wire-reorder metrics

	// Load-balancer fields.
	CellSeq int32         // Presto flowcell index
	CE      uint8         // CONGA congestion-experienced metric
	ECNCE   bool          // IP ECN congestion-experienced mark (DCTCP)
	LBTag   int16         // CONGA: source leaf's uplink choice, echoed in feedback
	Path    []topo.ChanID // source route (Presto); nil for hop-by-hop schemes
	PathIdx int32

	// Telemetry.
	Sent  units.Time // when the source host handed the packet to its NIC
	enqAt units.Time // when the packet entered its current queue

	// HopWaitNs records the queueing wait experienced at each hop class,
	// for reordering/root-cause analysis. int64 per hop: a single wait is a
	// units.Time in nanoseconds, and anything ≥ 2.147 s would wrap an int32
	// (RTO-backoff standing queues at failed-capacity hot spots get there).
	HopWaitNs [6]int64

	// Hops counts fabric switches traversed, to catch forwarding loops.
	Hops int8

	// poolState tracks PacketPool membership; see pool.go. Packets built by
	// hand (tests, custom drivers) carry poolNone and are never recycled.
	poolState uint8
}

// HeaderBytes is the wire overhead added to every segment (Ethernet + IP +
// TCP headers, rounded to the customary 40-byte TCP/IP plus 18 Ethernet +
// preamble/IFG abstracted away).
const HeaderBytes = 58

// AckBytes is the wire size of a pure acknowledgment.
const AckBytes = 64

// MaxHops guards against routing loops; no Clos path in this repo exceeds it.
const MaxHops = 12
