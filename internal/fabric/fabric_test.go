package fabric

import (
	"testing"

	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// sink records delivered packets.
type sink struct {
	got []*Packet
}

func (s *sink) HandlePacket(h *Host, pkt *Packet) { s.got = append(s.got, pkt) }

// randomLB sprays uniformly; defined locally to keep fabric free of lb deps.
type randomLB struct{}

func (randomLB) Name() string { return "test-random" }
func (randomLB) Choose(n *Network, sw *Switch, eng *Engine, pkt *Packet) int32 {
	g := GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[eng.Rng.Intn(len(g.Ports))]
}

// fixedLB always uses the first port, to create hotspots deterministically.
type fixedLB struct{}

func (fixedLB) Name() string { return "test-fixed" }
func (fixedLB) Choose(n *Network, sw *Switch, eng *Engine, pkt *Packet) int32 {
	g := GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[0]
}

func newNet(t *testing.T, cfg Config) (*sim.Sim, *Network, *topo.Topology) {
	t.Helper()
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	s := sim.New(1)
	if cfg.Balancer == nil {
		cfg.Balancer = randomLB{}
	}
	n := New(s, tp, cfg)
	return s, n, tp
}

func TestEndToEndDelivery(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2] // under the other leaf
	rx := &sink{}
	n.Host(dst).Handler = rx

	for i := 0; i < 10; i++ {
		pkt := &Packet{FlowID: 1, Hash: 77, Dst: dst, Size: 1518, Seq: int64(i)}
		src.Send(pkt)
	}
	s.Run()
	if len(rx.got) != 10 {
		t.Fatalf("delivered %d packets, want 10", len(rx.got))
	}
	if n.Delivered != 10 {
		t.Fatalf("Delivered = %d", n.Delivered)
	}
	for _, p := range rx.got {
		if p.Hops != 3 {
			t.Errorf("packet crossed %d switches, want 3 (leaf-spine-leaf)", p.Hops)
		}
		if p.SrcLeaf == p.DstLeaf {
			t.Error("src and dst leaf should differ")
		}
	}
}

func TestSameLeafDelivery(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[1] // same leaf
	rx := &sink{}
	n.Host(dst).Handler = rx
	src.Send(&Packet{FlowID: 2, Hash: 5, Dst: dst, Size: 1000})
	s.Run()
	if len(rx.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(rx.got))
	}
	if rx.got[0].Hops != 1 {
		t.Errorf("hops = %d, want 1 (leaf only)", rx.got[0].Hops)
	}
}

func TestFIFOOnSharedPath(t *testing.T) {
	// A single flow through fixedLB takes one path; delivery must be FIFO.
	s, n, tp := newNet(t, Config{Balancer: fixedLB{}})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	rx := &sink{}
	n.Host(dst).Handler = rx
	for i := 0; i < 50; i++ {
		src.Send(&Packet{FlowID: 3, Hash: 9, Dst: dst, Size: 1518, Seq: int64(i)})
	}
	s.Run()
	if len(rx.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(rx.got))
	}
	for i, p := range rx.got {
		if p.Seq != int64(i) {
			t.Fatalf("reordered on a single path: pos %d has seq %d", i, p.Seq)
		}
	}
}

func TestLatencyMatchesStoreAndForward(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	rx := &sink{}
	n.Host(dst).Handler = rx
	var sentAt units.Time
	src.Send(&Packet{FlowID: 4, Hash: 1, Dst: dst, Size: 1518})
	sentAt = s.Now()
	s.Run()
	// Path: host--10G-->leaf--40G-->spine--40G-->leaf--10G-->host.
	want := units.TxTime(1518, 10*units.Gbps)*2 + units.TxTime(1518, 40*units.Gbps)*2 + 4*topo.DefaultProp
	got := s.Now() - sentAt
	if got != want {
		t.Fatalf("e2e latency = %v, want %v", got, want)
	}
}

func TestQueueCapDrops(t *testing.T) {
	s, n, tp := newNet(t, Config{Balancer: fixedLB{}, QueueCap: 4})
	src1 := n.Host(tp.Hosts[0])
	src2 := n.Host(tp.Hosts[1])
	dst := tp.Hosts[2]
	rx := &sink{}
	n.Host(dst).Handler = rx
	// Two 10G senders converge on one 10G receiver link: the leaf→host port
	// (hop 3, cap 4) must overflow.
	for i := 0; i < 50; i++ {
		src1.Send(&Packet{FlowID: 5, Hash: 3, Dst: dst, Size: 1518})
		src2.Send(&Packet{FlowID: 6, Hash: 4, Dst: dst, Size: 1518})
	}
	s.Run()
	if n.Hops.Drops[metrics.Hop3] == 0 {
		t.Fatalf("expected hop3 drops, got none (drops=%v)", n.Hops.Drops)
	}
	if got := len(rx.got) + int(n.Hops.TotalDrops()); got != 100 {
		t.Fatalf("conservation violated: delivered+dropped = %d, want 100", got)
	}
}

func TestVisibilityLagsAndReconciles(t *testing.T) {
	s, n, tp := newNet(t, Config{Balancer: fixedLB{}})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	for i := 0; i < 20; i++ {
		src.Send(&Packet{FlowID: 6, Hash: 3, Dst: dst, Size: 1518})
	}
	// Sample invariants while the burst drains.
	bad := 0
	for i := 0; i < 2000; i++ {
		s.RunUntil(s.Now() + 100)
		for _, p := range n.Ports {
			if p.VisPkts > p.QPkts || p.VisPkts < 0 || p.VisBytes < 0 {
				bad++
			}
		}
		if s.Pending() == 0 {
			break
		}
	}
	if bad != 0 {
		t.Fatalf("visibility invariant violated %d times", bad)
	}
	// Fully drained: all counters must be zero.
	s.Run()
	for _, p := range n.Ports {
		if p.QPkts != 0 || p.QBytes != 0 || p.VisPkts != 0 || p.VisBytes != 0 {
			t.Fatalf("port %d not drained: q=%d/%d vis=%d/%d",
				p.Index, p.QPkts, p.QBytes, p.VisPkts, p.VisBytes)
		}
	}
}

func TestFailLinkDropsAndReroutes(t *testing.T) {
	s, n, tp := newNet(t, Config{Balancer: randomLB{}, RouteDelay: 10 * units.Microsecond})
	l0 := tp.Leaves[0]
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	rx := &sink{}
	n.Host(dst).Handler = rx

	// Find a leaf0-spine link and fail it at t=5us while traffic flows.
	var spine topo.NodeID = -1
	for _, nd := range tp.Nodes {
		if nd.Kind == topo.Spine {
			spine = nd.ID
			break
		}
	}
	link := tp.LinkBetween(l0, spine)[0]
	for i := 0; i < 200; i++ {
		i := i
		s.At(units.Time(i)*2*units.Microsecond, func() {
			src.Send(&Packet{FlowID: 7, Hash: uint32(i), Dst: dst, Size: 1518, Seq: int64(i)})
		})
	}
	s.At(5*units.Microsecond, func() { n.FailLink(link, false) })
	s.Run()

	if got := len(n.LeafUplinks(l0)); got != 1 {
		t.Fatalf("leaf0 uplinks after failure = %d, want 1", got)
	}
	// After reconvergence every packet goes via the surviving spine; all
	// packets sent well after the failure must be delivered.
	if len(rx.got) < 150 {
		t.Fatalf("only %d/200 delivered after failure+reroute", len(rx.got))
	}
	if got := len(rx.got) + int(n.Hops.TotalDrops()); got != 200 {
		t.Fatalf("conservation violated: %d", got)
	}
}

func TestDownlinksTo(t *testing.T) {
	_, n, tp := newNet(t, Config{})
	for _, leaf := range tp.Leaves {
		dls := n.DownlinksTo(leaf)
		if len(dls) != 2 {
			t.Fatalf("downlinks to %v = %d, want 2 (one per spine)", leaf, len(dls))
		}
		for _, p := range dls {
			if p.To != leaf {
				t.Fatalf("downlink port to %v, want %v", p.To, leaf)
			}
			if tp.Nodes[p.From].Kind != topo.Spine {
				t.Fatalf("downlink from %v, want spine", tp.Nodes[p.From].Kind)
			}
		}
	}
}

func TestEngineSharding(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 4, Leaves: 2, HostsPerLeaf: 8})
	s := sim.New(1)
	n := New(s, tp, Config{Balancer: randomLB{}, Engines: 4})
	sw := n.Switches[tp.Leaves[0]]
	if len(sw.Engines()) != 4 {
		t.Fatalf("engines = %d", len(sw.Engines()))
	}
	seen := map[int]bool{}
	for _, cid := range tp.OutAll(tp.Leaves[0]) {
		e := sw.engineFor(cid ^ 1)
		seen[e.Index] = true
	}
	if len(seen) != 4 {
		t.Fatalf("input sharding reached %d engines, want 4", len(seen))
	}
}

func TestGroupForFlowWeighted(t *testing.T) {
	groups := []Group{
		{ID: 0, Ports: []int32{0}, Weight: 1},
		{ID: 1, Ports: []int32{1, 2}, Weight: 2},
	}
	counts := map[int32]int{}
	for h := uint32(0); h < 30000; h++ {
		g := GroupForFlow(groups, h)
		counts[g.ID]++
	}
	frac := float64(counts[1]) / 30000
	if frac < 0.6 || frac > 0.72 {
		t.Fatalf("weighted group share = %v, want ~2/3", frac)
	}
}

func TestHopClassification(t *testing.T) {
	tp := topo.VL2(topo.VL2Config{ToRs: 2, Aggs: 2, Ints: 2, HostsPerToR: 1})
	s := sim.New(1)
	n := New(s, tp, Config{Balancer: randomLB{}})
	classes := map[metrics.HopClass]int{}
	for _, p := range n.Ports {
		classes[p.Hop]++
	}
	for _, c := range []metrics.HopClass{metrics.HostUp, metrics.Hop1, metrics.Up2,
		metrics.Down2, metrics.Hop2, metrics.Hop3} {
		if classes[c] == 0 {
			t.Errorf("no ports classified %v", c)
		}
	}
}
