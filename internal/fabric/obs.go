package fabric

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/obs"
	"drill/internal/topo"
	"drill/internal/units"
)

// Metrics is the fabric's slice of the obs registry. Like the tracer, it
// is optional and nil by default: every hot-path emission site guards on
// the nil pointer, so a run without metrics pays one predictable branch
// per site and nothing else. The hot path only bumps aggregate atomic
// counters (drops by hop class, deliveries, enqueues); all per-port
// series (queue depth, utilization, drops) are filled by Refresh, a pure
// read of existing port counters that the snapshotter invokes on observer
// ticks — so per-port granularity costs the data plane nothing.
type Metrics struct {
	drops     [metrics.NumHopClasses]*obs.Counter
	delivered *obs.Counter
	enqueued  *obs.Counter

	// Per-port series, refreshed outside the hot path. lastTx and
	// lastDrops hold the previous refresh's port counters so utilization
	// and per-port drop counters advance by exact deltas.
	ports     []*Port
	qdepth    []*obs.Gauge
	util      []*obs.Gauge
	portDrops []*obs.Counter
	lastTx    []int64
	lastDrops []int64
	lastNow   units.Time
}

// EnableMetrics registers the fabric's metric families in reg and turns
// on hot-path emission. scope is a pre-rendered label body (e.g.
// `exp="fig6a",cell="3"`) prepended to every series so one registry can
// carry many concurrent cells; "" for none. Call once, before the run
// starts; Refresh (typically via the obs snapshotter) fills the per-port
// series.
func (n *Network) EnableMetrics(reg *obs.Registry, scope string) *Metrics {
	m := &Metrics{}
	for hc := 0; hc < int(metrics.NumHopClasses); hc++ {
		m.drops[hc] = reg.Counter("drill_fabric_drops_total",
			scopedLabels(scope, fmt.Sprintf(`hop=%q`, metrics.HopClass(hc))),
			"Packets dropped in the fabric, by hop class.")
	}
	m.delivered = reg.Counter("drill_fabric_delivered_total", scope,
		"Packets handed to destination hosts.")
	m.enqueued = reg.Counter("drill_fabric_enqueued_total", scope,
		"Packets accepted into an output queue.")

	for _, p := range n.Ports {
		if n.Topo.Nodes[p.From].Kind == topo.Host {
			continue // host NICs excluded, like the trace sampler
		}
		lbl := scopedLabels(scope, fmt.Sprintf(`port="%d",from="%d",to="%d",hop=%q`,
			p.Index, p.From, p.To, p.Hop))
		m.ports = append(m.ports, p)
		m.qdepth = append(m.qdepth, reg.Gauge("drill_port_queue_depth_packets", lbl,
			"Output-queue occupancy in packets, sampled at snapshot time."))
		m.util = append(m.util, reg.Gauge("drill_port_utilization", lbl,
			"Fraction of link capacity used since the previous snapshot."))
		m.portDrops = append(m.portDrops, reg.Counter("drill_port_drops_total", lbl,
			"Packets dropped at this port."))
		m.lastTx = append(m.lastTx, p.TxBytes)
		m.lastDrops = append(m.lastDrops, p.Drops)
	}
	n.met = m
	return m
}

// Metrics returns the attached fabric metrics, nil when disabled.
func (n *Network) Metrics() *Metrics { return n.met }

// Refresh pulls the per-port series up to date at simulated time now. It
// only reads port counters the data plane already maintains — the
// observe-never-steer contract — so it is safe to run from an observer
// tick.
func (m *Metrics) Refresh(now units.Time) {
	window := (now - m.lastNow).Seconds()
	for i, p := range m.ports {
		m.qdepth[i].Set(float64(p.QPkts))
		sent := p.TxBytes - m.lastTx[i]
		m.lastTx[i] = p.TxBytes
		util := 0.0
		if p.Rate > 0 && window > 0 {
			util = float64(sent) * 8 / (float64(p.Rate) * window)
		}
		m.util[i].Set(util)
		if d := p.Drops - m.lastDrops[i]; d > 0 {
			m.portDrops[i].Add(d)
			m.lastDrops[i] = p.Drops
		}
	}
	m.lastNow = now
}

func scopedLabels(scope, rest string) string {
	if scope == "" {
		return rest
	}
	if rest == "" {
		return scope
	}
	return scope + "," + rest
}
