package fabric

import (
	"math/rand"

	"drill/internal/metrics"
	"drill/internal/topo"
)

// Group is one symmetric set of equal-cost output ports toward a
// destination, with a weight proportional to its aggregate capacity. In a
// symmetric fabric every destination has exactly one group; the Quiver
// decomposition of §3.4 produces several after failures or with
// heterogeneous links.
type Group struct {
	// ID identifies the unique port set within the switch; engines key their
	// per-group state (DRILL memory, RR cursors) on it so state is shared
	// across destinations that use the same physical ports.
	ID     int32
	Ports  []int32 // Network port indexes, sorted
	Weight uint32  // relative share of flows hashed to this group
}

// Engine is one forwarding engine of a switch. Engines make parallel,
// independent decisions; each keeps private per-group scheduler state.
type Engine struct {
	Index int
	Rng   *rand.Rand

	// state[groupID] holds the balancer's per-engine scheduler state for
	// that port set (e.g. a DRILL selector or an RR cursor). The slice is
	// sized to the switch's unique-group count at table-build time.
	state []any
}

// State returns the engine's scheduler state for group gid, creating it via
// mk on first use.
func (e *Engine) State(gid int32, mk func() any) any {
	if e.state[gid] == nil {
		e.state[gid] = mk()
	}
	return e.state[gid]
}

// Switch is a fabric switch: a set of output ports, per-destination
// forwarding groups, and parallel forwarding engines.
type Switch struct {
	Node topo.NodeID
	Kind topo.NodeKind

	// dropHop is the hop class charged for packets dropped at this switch
	// itself (destination unreachable): the switch's forwarding tier.
	dropHop metrics.HopClass

	// dom is the shard domain owning this switch's events and stats; the
	// forwarding path charges unreachable-destination drops to it.
	dom *domain

	OutPorts []int32 // Network port indexes of this switch's output ports

	// hostPort maps a locally attached host to the port serving it.
	hostPort map[topo.NodeID]int32

	// tables[dstLeafIdx] lists the groups toward that leaf (nil for the
	// switch's own leaf index — local delivery uses hostPort).
	tables [][]Group

	// groupCount is the number of unique port-set groups in tables.
	groupCount int32

	engines []*Engine

	// inIndex maps an arriving channel to a dense input index used to shard
	// packets across engines.
	inIndex map[topo.ChanID]int

	// chanPort maps this switch's outgoing channel IDs to port indexes
	// (used by source-routed schemes).
	chanPort map[topo.ChanID]int32
}

// Engines returns the switch's forwarding engines.
func (s *Switch) Engines() []*Engine { return s.engines }

// Groups returns the forwarding groups toward dstLeafIdx.
func (s *Switch) Groups(dstLeafIdx int32) []Group { return s.tables[dstLeafIdx] }

// GroupCount returns the number of unique port-set groups at this switch.
func (s *Switch) GroupCount() int32 { return s.groupCount }

// engineFor shards an arriving packet to an engine by its input channel,
// modelling per-line-card forwarding engines.
func (s *Switch) engineFor(in topo.ChanID) *Engine {
	if len(s.engines) == 1 {
		return s.engines[0]
	}
	idx, ok := s.inIndex[in]
	if !ok {
		idx = int(in)
	}
	return s.engines[idx%len(s.engines)]
}

// GroupForFlow picks a group by flow hash, honoring weights — the "flow
// classification" step of §3.4.2. It requires at least one group.
func GroupForFlow(groups []Group, hash uint32) *Group {
	if len(groups) == 1 {
		return &groups[0]
	}
	var total uint32
	for i := range groups {
		total += groups[i].Weight
	}
	// Independent re-hash so group choice is decorrelated from port choice.
	h := hash*2654435761 + 0x9747b28c
	x := h % total
	for i := range groups {
		if x < groups[i].Weight {
			return &groups[i]
		}
		x -= groups[i].Weight
	}
	return &groups[len(groups)-1]
}

// resetEngineState clears all engines' per-group scheduler state; called
// whenever tables are rebuilt (group IDs may have changed meaning).
func (s *Switch) resetEngineState() {
	for _, e := range s.engines {
		e.state = make([]any, s.groupCount)
	}
}
