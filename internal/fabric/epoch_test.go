package fabric

import (
	"testing"

	"drill/internal/quiver"
	"drill/internal/topo"
	"drill/internal/units"
)

// quiverLB is a minimal TableBuilder that decomposes via the Quiver, so
// epoch capture of InstallQuiver can be tested without importing lb.
type quiverLB struct{ randomLB }

func (quiverLB) Name() string { return "test-quiver" }
func (quiverLB) BuildTables(net *Network) {
	net.BuildDefaultTables()
	net.InstallQuiver(quiver.Build(net.Routes))
}

// uplink returns the link between leaf li and spine si of the test fabric.
func uplink(t *testing.T, tp *topo.Topology, li, si int) topo.LinkID {
	t.Helper()
	var leaves, spines []topo.NodeID
	for _, nd := range tp.Nodes {
		switch nd.Kind {
		case topo.Leaf:
			leaves = append(leaves, nd.ID)
		case topo.Spine:
			spines = append(spines, nd.ID)
		}
	}
	links := tp.LinkBetween(leaves[li], spines[si])
	if len(links) == 0 {
		t.Fatalf("no link between leaf %d and spine %d", li, si)
	}
	return links[0]
}

func TestRestoreLinkRecovers(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	l := uplink(t, tp, 0, 0)
	leaf0 := tp.Leaves[0]
	leaf1 := tp.Leaves[1]

	if hops := n.Routes.NextHops(leaf0, leaf1); len(hops) != 2 {
		t.Fatalf("healthy fabric has %d next hops leaf0→leaf1, want 2", len(hops))
	}
	seq0 := n.EpochSeq()
	if seq0 != 1 {
		t.Fatalf("construction epoch seq = %d, want 1", seq0)
	}

	n.FailLink(l, true)
	for dir := int32(0); dir < 2; dir++ {
		if p := n.PortOfChan(topo.ChanID(2*int32(l) + dir)); p.Up() {
			t.Fatalf("direction %d still up after FailLink", dir)
		}
	}
	if hops := n.Routes.NextHops(leaf0, leaf1); len(hops) != 1 {
		t.Fatalf("failed fabric has %d next hops leaf0→leaf1, want 1", len(hops))
	}
	if n.EpochSeq() != seq0+1 {
		t.Fatalf("epoch seq = %d after failure, want %d", n.EpochSeq(), seq0+1)
	}

	n.RestoreLink(l, true)
	for dir := int32(0); dir < 2; dir++ {
		if p := n.PortOfChan(topo.ChanID(2*int32(l) + dir)); !p.Up() {
			t.Fatalf("direction %d still down after RestoreLink", dir)
		}
	}
	if hops := n.Routes.NextHops(leaf0, leaf1); len(hops) != 2 {
		t.Fatalf("restored fabric has %d next hops leaf0→leaf1, want 2", len(hops))
	}
	if n.EpochSeq() != seq0+2 {
		t.Fatalf("epoch seq = %d after restore, want %d", n.EpochSeq(), seq0+2)
	}

	// Traffic flows over the restored fabric — including the revived link.
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	for i := 0; i < 50; i++ {
		src.Send(&Packet{FlowID: uint64(i), Hash: uint32(i * 2654435761), Dst: dst, Size: 1518, Seq: int64(i)})
	}
	s.Run()
	if n.Delivered != 50 {
		t.Fatalf("delivered %d packets after restore, want 50", n.Delivered)
	}
}

func TestRestoreUpLinkAndFailDownLinkAreNoops(t *testing.T) {
	_, n, tp := newNet(t, Config{})
	l := uplink(t, tp, 0, 0)

	seq := n.EpochSeq()
	n.RestoreLink(l, true) // already up
	if n.EpochSeq() != seq {
		t.Fatalf("restoring an up link reconverged (seq %d → %d)", seq, n.EpochSeq())
	}

	n.FailLink(l, true)
	seq = n.EpochSeq()
	drops := n.Hops.TotalDrops()
	n.FailLink(l, true) // already down: must not drain or reconverge again
	if n.EpochSeq() != seq {
		t.Fatalf("failing a down link reconverged (seq %d → %d)", seq, n.EpochSeq())
	}
	if got := n.Hops.TotalDrops(); got != drops {
		t.Fatalf("failing a down link changed drop count %d → %d", drops, got)
	}
	// And the delayed variant must not leave a reconvergence pending.
	n.FailLink(l, false)
	if n.reconvergePending {
		t.Fatal("failing a down link scheduled a reconvergence")
	}
}

func TestReconvergenceCoalesces(t *testing.T) {
	s, n, tp := newNet(t, Config{RouteDelay: 100 * units.Microsecond})
	l00 := uplink(t, tp, 0, 0)
	l10 := uplink(t, tp, 1, 0)

	// Two failures 40µs apart — inside one 100µs RouteDelay window — and a
	// restore of the first while reconvergence is still pending: one epoch
	// swap covers all three.
	s.AtGlobal(10*units.Microsecond, func() { n.FailLink(l00, false) })
	s.AtGlobal(50*units.Microsecond, func() { n.FailLink(l10, false) })
	s.AtGlobal(80*units.Microsecond, func() { n.RestoreLink(l00, false) })
	s.Run()

	if n.EpochSeq() != 2 {
		t.Fatalf("epoch seq = %d, want 2 (construction + one coalesced reconvergence)", n.EpochSeq())
	}
	e := n.Epoch()
	if int64(e.BuiltAt) != int64(110*units.Microsecond) {
		t.Fatalf("coalesced epoch built at %v, want 110µs (first failure + RouteDelay)", e.BuiltAt)
	}
	// The single epoch reflects the net state: l00 restored, l10 down.
	if !e.LinkUp[l00] || e.LinkUp[l10] {
		t.Fatalf("epoch link vector up[l00]=%v up[l10]=%v, want true/false", e.LinkUp[l00], e.LinkUp[l10])
	}
	// With leaf1's spine0 uplink down, the leaves reach each other only via
	// spine1 — one next hop each way, even though leaf0's own links are live.
	leaf1 := tp.Leaves[1]
	if hops := n.Routes.NextHops(tp.Leaves[0], leaf1); len(hops) != 1 {
		t.Fatalf("leaf0 has %d next hops after the window, want 1 (only spine1 reaches leaf1)", len(hops))
	}
	if hops := n.Routes.NextHops(leaf1, tp.Leaves[0]); len(hops) != 1 {
		t.Fatalf("leaf1 has %d next hops after the window, want 1 (its spine0 uplink is down)", len(hops))
	}
}

func TestQuiverRecomputedAcrossFlap(t *testing.T) {
	_, n, tp := newNet(t, Config{Balancer: quiverLB{}})
	q0 := n.Quiver()
	if q0 == nil {
		t.Fatal("no Quiver installed at construction")
	}
	l := uplink(t, tp, 0, 0)
	n.FailLink(l, true)
	q1 := n.Quiver()
	if q1 == nil || q1 == q0 {
		t.Fatal("failure reconvergence did not recompute the Quiver")
	}
	n.RestoreLink(l, true)
	q2 := n.Quiver()
	if q2 == nil || q2 == q1 {
		t.Fatal("restore reconvergence did not recompute the Quiver")
	}
	if e := n.Epoch(); e.Quiver != q2 {
		t.Fatal("applied epoch and network disagree on the Quiver")
	}
}

func TestApplyEpochAtSwapsAtomically(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	l := uplink(t, tp, 0, 0)

	// Snapshot the healthy config, degrade the fabric, then schedule a
	// rollback onto the snapshot: the epoch carries the full link vector,
	// so applying it revives the link without a FailLink/RestoreLink pair.
	healthy := n.BuildEpoch()
	if n.EpochSeq() != 1 {
		t.Fatalf("BuildEpoch mutated the live network (seq %d)", n.EpochSeq())
	}
	n.FailLink(l, true)
	if p := n.PortOfChan(topo.ChanID(2 * int32(l))); p.Up() {
		t.Fatal("link still up after FailLink")
	}
	n.ApplyEpochAt(25*units.Microsecond, healthy)
	s.Run()
	if n.Epoch() != healthy {
		t.Fatal("scheduled epoch was not applied")
	}
	if p := n.PortOfChan(topo.ChanID(2 * int32(l))); !p.Up() {
		t.Fatal("applying the healthy epoch did not revive the link")
	}
	if !n.Topo.Links[l].Up {
		t.Fatal("topology link state not synced to the applied epoch")
	}
	if hops := n.Routes.NextHops(tp.Leaves[0], tp.Leaves[1]); len(hops) != 2 {
		t.Fatalf("rolled-back fabric has %d next hops, want 2", len(hops))
	}
}

func TestSentCounterClosesConservation(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	l := uplink(t, tp, 0, 0)
	s.AtGlobal(5*units.Microsecond, func() { n.FailLink(l, false) })
	s.AtGlobal(40*units.Microsecond, func() { n.RestoreLink(l, false) })
	for i := 0; i < 200; i++ {
		src.Send(&Packet{FlowID: uint64(i), Hash: uint32(i * 2654435761), Dst: dst, Size: 1518, Seq: int64(i)})
	}
	s.Run()
	if n.Sent != 200 {
		t.Fatalf("Sent = %d, want 200", n.Sent)
	}
	got := n.Delivered + n.Hops.TotalDrops() + n.QueuedPackets() + n.InFlightPackets()
	if got != n.Sent {
		t.Fatalf("conservation violated through the flap: sent=%d, delivered+drops+queued+inflight=%d", n.Sent, got)
	}
	if n.Hops.TotalDrops() == 0 {
		t.Fatal("flap produced no drops; the cycle did not bite")
	}
}
