package fabric

import (
	"drill/internal/topo"
	"drill/internal/trace"
)

// PacketHandler consumes packets delivered to a host; the transport layer
// implements it.
type PacketHandler interface {
	HandlePacket(h *Host, pkt *Packet)
}

// Host is an end host: a NIC queue into its leaf plus a packet handler.
type Host struct {
	net  *Network
	ID   topo.NodeID
	Leaf topo.NodeID
	NIC  *Port

	// dom is the shard domain owning this host's events, pool and stats;
	// it always matches the host's leaf (NewSharded enforces that).
	dom *domain

	// Handler receives packets addressed to this host.
	Handler PacketHandler
}

// Net returns the network the host is attached to.
func (h *Host) Net() *Network { return h.net }

// AllocPacket returns a zeroed packet from the host's domain pool (or a
// fresh allocation under Config.DisablePool). The transport layer fills it
// and hands it back via Send; the fabric recycles it at its terminal site
// (delivery or drop), which under sharding is always a pool of the same
// or another domain — pools never shrink, so cross-domain retirement only
// shifts where recycled packets come from, never correctness.
//
//drill:hotpath
//drill:allocs 1 the Cfg.DisablePool bypass allocates a fresh packet
func (h *Host) AllocPacket() *Packet {
	if h.net.Cfg.DisablePool {
		return &Packet{}
	}
	return h.dom.pool.Get()
}

// Send stamps addressing/telemetry fields on pkt and queues it on the NIC.
// Src must be this host; Dst must be another host.
//
//drill:hotpath
func (h *Host) Send(pkt *Packet) {
	pkt.Src = h.ID
	pkt.SrcLeaf = h.Leaf
	pkt.DstLeaf = h.net.Topo.LeafOf(pkt.Dst)
	pkt.DstLeafIdx = int32(h.net.Topo.LeafIndex(pkt.DstLeaf))
	pkt.Sent = h.dom.sim.Now()
	pkt.Hops = 0
	pkt.PathIdx = 0
	*h.dom.sent++
	if h.net.sendHook != nil {
		h.net.sendHook.OnSend(h.net, h, pkt)
	}
	if h.net.tracer != nil {
		h.net.tracer.Packet(trace.Send, pkt.Sent, h.NIC.Index, uint8(h.NIC.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), h.NIC.QPkts)
	}
	h.net.enqueue(h.NIC, pkt)
}

// NICBacklog reports packets waiting in (or being serialized onto) the NIC.
func (h *Host) NICBacklog() int32 { return h.NIC.QueueLen() }
