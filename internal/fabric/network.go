package fabric

import (
	"fmt"
	"sort"

	"drill/internal/metrics"
	"drill/internal/quiver"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// Balancer decides, per packet, which output port a switch forwards on.
// Implementations must be deterministic given the engine's random stream.
type Balancer interface {
	Name() string
	// Choose returns a Network port index for pkt among the groups toward
	// pkt.DstLeafIdx. It is only called when there is a real choice (the
	// packet is not at its destination leaf and is not source-routed).
	Choose(net *Network, sw *Switch, eng *Engine, pkt *Packet) int32
}

// TableBuilder is implemented by balancers that install their own
// forwarding groups (e.g. DRILL's symmetric-component decomposition).
// Others get the default single-group-of-all-next-hops tables.
type TableBuilder interface {
	BuildTables(net *Network)
}

// TxObserver is notified when a packet begins transmission on a port; CONGA
// uses it to update DREs and stamp congestion.
type TxObserver interface {
	OnTx(net *Network, port *Port, pkt *Packet)
}

// ArriveObserver is notified when a packet arrives at a switch, before
// forwarding; CONGA uses it to harvest congestion feedback at leaves.
type ArriveObserver interface {
	OnArrive(net *Network, sw *Switch, pkt *Packet)
}

// SendHook is notified when a host hands a packet to its NIC; Presto uses
// it to assign flowcell source routes.
type SendHook interface {
	OnSend(net *Network, host *Host, pkt *Packet)
}

// Config parameterizes a Network.
type Config struct {
	Engines      int     // forwarding engines per switch (default 1)
	QueueCap     int     // per-switch-port packet cap (default 128)
	HostQueueCap int     // host NIC queue cap (default 4096)
	VisFactor    float64 // visibility delay as a multiple of MTU serialization (default 1)
	MTU          units.ByteSize
	RouteDelay   units.Time // control-plane reconvergence delay after failures

	// ECNThreshold, when > 0, marks packets (ECN CE) that enqueue behind at
	// least that many packets — the switch half of DCTCP. An extension: the
	// paper's §4 cites ECN-based incast mitigations as the alternative that
	// DRILL competes with.
	ECNThreshold int

	Balancer Balancer

	// DisablePool turns off packet recycling: AllocPacket returns fresh
	// heap allocations and terminal sites release packets to the GC, the
	// pre-pool behaviour. Results are byte-identical either way (a
	// determinism test holds the data plane to that); the switch exists for
	// that test and for memory-profiling the unpooled allocation volume.
	DisablePool bool

	// DisableBatch turns off the per-port timer rings: every visibility
	// update, tx completion, and wire arrival schedules its own closure via
	// sim.After, the pre-batching behaviour. Results are byte-identical
	// either way — the rings re-arm one pre-allocated timer per port at the
	// exact (time, seq) slots the closures would have occupied — and the
	// scheduler-identity test holds the data plane to that. The switch
	// exists for that test and for bisecting batching suspicions.
	DisableBatch bool

	// Tracer, when non-nil, receives packet-lifecycle events (enqueue,
	// drop, tx-start, link-depart, arrive, deliver) from this network's
	// data plane. Nil — the default — costs one branch per site and zero
	// allocations; see internal/trace.
	Tracer *trace.Tracer
}

func (c *Config) defaults() {
	if c.Engines == 0 {
		c.Engines = 1
	}
	if c.QueueCap == 0 {
		// ≈390KB per port at full MTU — the per-port slice of a
		// shared-buffer datacenter ASIC. Shallow enough that microbursts
		// overflow under load-oblivious balancing (the loss behaviour the
		// paper's Fig. 14(c) reports) while leaving room for the queueing
		// contrast of Fig. 6(c).
		c.QueueCap = 256
	}
	if c.HostQueueCap == 0 {
		c.HostQueueCap = 4096
	}
	if c.VisFactor == 0 {
		// A packet becomes visible to engines once its enqueue completes;
		// the write itself is a small fraction of MTU serialization (§3.2.1
		// models imprecise-but-fresh counters, not stale ones). Larger
		// values model slower counter paths — see the ablvis experiment.
		c.VisFactor = 0.05
	}
	if c.MTU == 0 {
		c.MTU = 1518 * units.Byte
	}
	if c.RouteDelay == 0 {
		c.RouteDelay = 1 * units.Millisecond
	}
}

// Network binds a topology, routing state, and a balancer into a running
// data plane on a simulator.
type Network struct {
	Sim    *sim.Sim
	Topo   *topo.Topology
	Routes *topo.Routes
	Cfg    Config

	Ports    []*Port // indexed by Port.Index; one per directed channel
	chanPort []int32 // channel ID → port index

	Switches map[topo.NodeID]*Switch
	hosts    map[topo.NodeID]*Host

	// Dense per-node/per-channel lookup tables shadowing the maps above:
	// the arrive/forward path runs once per packet per hop, where a map
	// lookup's hashing shows up in profiles. Indexed by NodeID / ChanID
	// (both dense by construction in topo).
	hostByNode []*Host   // nil for switches
	swByNode   []*Switch // nil for hosts
	hostNIC    []int32   // host NodeID → its leaf→host port; -1 elsewhere
	inIdx      []int32   // arriving ChanID → dense input index at the switch

	Hops metrics.HopStats

	// Delivered counts packets handed to destination hosts.
	Delivered int64

	// Sent counts packets hosts handed to their NICs — the left side of the
	// conservation law Sent == Delivered + drops + queued + in-flight.
	// Under the sharded engine each domain keeps its own counter and this
	// one carries the folded total after FoldShards.
	Sent int64

	balancer  Balancer
	txObs     TxObserver
	arriveObs ArriveObserver
	sendHook  SendHook
	tracer    *trace.Tracer
	met       *Metrics // obs emission, nil when metrics are off

	// pool recycles packets at deliver/drop sites; see pool.go. Under the
	// sharded engine each domain owns a private pool and this one only
	// carries the folded counters after FoldShards.
	pool PacketPool

	// Shard domains (see shard.go). A sequential network has one domain
	// whose sim/hops/delivered/pool alias the fields above; domByNode maps
	// every topology node to its owning domain.
	sharded   bool
	doms      []*domain
	domByNode []*domain
	// exchPairs[src][dst] counts cross-shard messages moved from src's
	// outbox into dst's wire rings, written only at window barriers by
	// the coordinator (see ExchangeShards). Deterministic: the exchange
	// traffic is a pure function of the event stream and the partition.
	exchPairs [][]uint64

	// Live-reconfiguration state (see epoch.go). epoch is the applied
	// generation; building, when non-nil, redirects InstallTables and
	// InstallQuiver into the epoch under construction instead of the
	// running switches; reconvergePending coalesces scheduled
	// reconvergences so N failures in one RouteDelay window build one
	// epoch, not N.
	epoch             *Epoch
	epochSeq          uint64
	building          *Epoch
	reconvergePending bool
	quiver            *quiver.Quiver
}

// AllocPacket returns a zeroed packet for the transport layer to fill and
// Send. With pooling enabled (the default) it recycles packets retired at
// deliver/drop sites; with Cfg.DisablePool it is a plain allocation.
//
//drill:hotpath
//drill:allocs 1 the Cfg.DisablePool bypass allocates a fresh packet
func (n *Network) AllocPacket() *Packet {
	if n.Cfg.DisablePool {
		return &Packet{}
	}
	return n.pool.Get()
}

// Pool exposes the packet free list's counters (alloc-avoidance telemetry).
func (n *Network) Pool() *PacketPool { return &n.pool }

// New assembles a network over t with the given balancer. Routes are
// computed from the topology's current (link up/down) state.
func New(s *sim.Sim, t *topo.Topology, cfg Config) *Network {
	cfg.defaults()
	if cfg.Balancer == nil {
		panic("fabric: Config.Balancer is required")
	}
	n := &Network{
		Sim:      s,
		Topo:     t,
		Cfg:      cfg,
		Switches: make(map[topo.NodeID]*Switch),
		hosts:    make(map[topo.NodeID]*Host),
		balancer: cfg.Balancer,
		tracer:   cfg.Tracer,
	}
	// The one sequential domain aliases the Network's own fields, so the
	// single-scheduler data plane reads and writes exactly what it always
	// did, one pointer hop away.
	d := &domain{sim: s, hops: &n.Hops, delivered: &n.Delivered, sent: &n.Sent, pool: &n.pool}
	n.doms = []*domain{d}
	n.domByNode = make([]*domain, len(t.Nodes))
	for i := range n.domByNode {
		n.domByNode[i] = d
	}
	n.build()
	return n
}

// build assembles ports, switches, hosts and initial routes. It is shared
// by the sequential (New) and sharded (NewSharded) constructors; the only
// engine-dependent inputs are n.domByNode (who owns each node) and n.Sim
// (the clock that seeds engine RNG streams — the global sim under
// sharding, so streams are engine-invariant).
func (n *Network) build() {
	t, cfg := n.Topo, n.Cfg
	n.txObs, _ = cfg.Balancer.(TxObserver)
	n.arriveObs, _ = cfg.Balancer.(ArriveObserver)
	n.sendHook, _ = cfg.Balancer.(SendHook)

	// One port per directed channel.
	n.chanPort = make([]int32, 2*len(t.Links))
	n.inIdx = make([]int32, 2*len(t.Links))
	for i := range n.chanPort {
		n.chanPort[i] = -1
		n.inIdx[i] = -1
	}
	n.hostByNode = make([]*Host, len(t.Nodes))
	n.swByNode = make([]*Switch, len(t.Nodes))
	n.hostNIC = make([]int32, len(t.Nodes))
	for i := range n.hostNIC {
		n.hostNIC[i] = -1
	}
	for _, l := range t.Links {
		for dir := 0; dir < 2; dir++ {
			c := t.Chan(topo.ChanID(2*int32(l.ID) + int32(dir)))
			p := &Port{
				Index: int32(len(n.Ports)),
				Chan:  c.ID, From: c.From, To: c.To,
				Rate: c.Rate, Prop: c.Prop,
				Hop: classifyHop(t, c),
				Cap: cfg.QueueCap,
				up:  l.Up,
			}
			if t.Nodes[c.From].Kind == topo.Host {
				p.Cap = cfg.HostQueueCap
			}
			p.visDelay = units.Time(float64(units.TxTime(cfg.MTU, c.Rate)) * cfg.VisFactor)
			p.dom = n.domByNode[c.From]
			p.dstDom = n.domByNode[c.To]
			p.boundary = p.dom != p.dstDom
			n.chanPort[c.ID] = p.Index
			n.Ports = append(n.Ports, p)
			// The port's reusable event callbacks: the only closures the
			// data plane ever allocates, one set per port for the network's
			// life, interned in the scheduler's permanent registry so hot
			// events carry a plain id instead of a pointer. Queue-side
			// events live in the source node's scheduler; the wire arrival
			// fires at the far end, so it lives in the destination's.
			p.txID = p.dom.sim.Register(func() { n.txDone(p) })
			p.visID = p.dom.sim.Register(func() { n.visFire(p) })
			p.wireID = p.dstDom.sim.Register(func() { n.wireFire(p) })
		}
	}

	// Switches.
	for _, nd := range t.Nodes {
		if nd.Kind == topo.Host {
			continue
		}
		sw := &Switch{
			Node: nd.ID, Kind: nd.Kind,
			dom:      n.domByNode[nd.ID],
			dropHop:  dropHopClass(nd.Kind),
			hostPort: map[topo.NodeID]int32{},
			inIndex:  map[topo.ChanID]int{},
			chanPort: map[topo.ChanID]int32{},
		}
		for _, cid := range t.OutAll(nd.ID) {
			pi := n.chanPort[cid]
			sw.OutPorts = append(sw.OutPorts, pi)
			sw.chanPort[cid] = pi
			c := t.Chan(cid)
			if t.Nodes[c.To].Kind == topo.Host {
				sw.hostPort[c.To] = pi
				n.hostNIC[c.To] = pi
			}
			// The reverse channel arrives here; index it for engine sharding.
			n.inIdx[cid^1] = int32(len(sw.inIndex))
			sw.inIndex[cid^1] = len(sw.inIndex)
		}
		for e := 0; e < cfg.Engines; e++ {
			sw.engines = append(sw.engines, &Engine{
				Index: e,
				Rng:   n.Sim.Stream(int64(nd.ID)*1000 + int64(e) + 7919),
			})
		}
		n.Switches[nd.ID] = sw
		n.swByNode[nd.ID] = sw
	}

	// Hosts.
	for _, h := range t.Hosts {
		var nic *Port
		for _, cid := range t.OutAll(h) {
			nic = n.Ports[n.chanPort[cid]]
		}
		if nic == nil {
			panic(fmt.Sprintf("fabric: host %d has no NIC link", h))
		}
		n.hosts[h] = &Host{net: n, ID: h, Leaf: t.LeafOf(h), NIC: nic, dom: n.domByNode[h]}
		n.hostByNode[h] = n.hosts[h]
	}

	n.Reconverge()
}

// Host returns the host entity for node id.
func (n *Network) Host(id topo.NodeID) *Host { return n.hosts[id] }

// PortOfChan returns the port carrying directed channel c.
func (n *Network) PortOfChan(c topo.ChanID) *Port { return n.Ports[n.chanPort[c]] }

// Balancer returns the active load-balancing policy.
func (n *Network) Balancer() Balancer { return n.balancer }

// Tracer returns the telemetry tracer, nil when tracing is off.
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// QueuedPackets sums the true occupancy of every port — the "still-queued"
// term of the packet-conservation invariant.
func (n *Network) QueuedPackets() int64 {
	var q int64
	for _, p := range n.Ports {
		q += int64(p.QPkts)
	}
	return q
}

// InFlightPackets counts packets on the wire: parked on a port's in-flight
// ring awaiting arrival, or awaiting exchange in a shard outbox — the last
// term of the conservation law Sent == Delivered + drops + queued +
// in-flight. Under Cfg.DisableBatch (the sequential-only legacy reference
// path) in-flight packets live as scheduler closures and are not countable
// here. Barrier-safe: valid mid-run from a global-class event and after a
// full drain (where it reports 0 unless links are partitioned down).
func (n *Network) InFlightPackets() int64 {
	var f int64
	for _, p := range n.Ports {
		f += int64(p.wireRing.len())
	}
	for _, d := range n.doms {
		f += int64(len(d.outbox))
	}
	return f
}

// SentPackets sums host sends across domains. Unlike the Sent field it is
// valid mid-run from a global-class event (all shards parked), before
// FoldShards has run.
func (n *Network) SentPackets() int64 {
	var s int64
	for _, d := range n.doms {
		s += *d.sent
	}
	return s
}

// DeliveredPackets sums deliveries across domains; barrier-safe like
// SentPackets.
func (n *Network) DeliveredPackets() int64 {
	var s int64
	for _, d := range n.doms {
		s += *d.delivered
	}
	return s
}

// DroppedPackets sums drops across domains' hop-stat blocks; barrier-safe
// like SentPackets.
func (n *Network) DroppedPackets() int64 {
	var s int64
	for _, d := range n.doms {
		s += d.hops.TotalDrops()
	}
	return s
}

// SwitchList returns the switches ordered by node ID. Table builders and
// metric collectors iterate this instead of the Switches map so that
// installation and reporting order never depends on map iteration order.
func (n *Network) SwitchList() []*Switch {
	out := make([]*Switch, 0, len(n.Switches))
	//drill:allow nondeterminism collecting map values before sorting is order-independent
	for _, sw := range n.Switches {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// BuildDefaultTables installs, at every switch and for every destination
// leaf, a single group containing all equal-cost next hops — classic ECMP
// tables, which Random/RR/DRILL-symmetric share.
func (n *Network) BuildDefaultTables() {
	for _, sw := range n.SwitchList() {
		tables := make([][]Group, len(n.Topo.Leaves))
		ded := newGroupDeduper()
		for li, leaf := range n.Topo.Leaves {
			if sw.Node == leaf {
				continue
			}
			hops := n.Routes.NextHops(sw.Node, leaf)
			if len(hops) == 0 {
				continue // unreachable (partitioned by failures)
			}
			ports := make([]int32, len(hops))
			for i, c := range hops {
				ports[i] = n.chanPort[c]
			}
			sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
			tables[li] = []Group{{ID: ded.id(ports), Ports: ports, Weight: 1}}
		}
		n.InstallTables(sw, tables, ded.count)
	}
}

// InstallTables lets a TableBuilder install custom groups at a switch.
// Groups' IDs are assigned by port-set identity via the returned deduper.
// During BuildEpoch the installation is captured into the epoch under
// construction instead of touching the running switch (see epoch.go).
func (n *Network) InstallTables(sw *Switch, tables [][]Group, groupCount int32) {
	if n.building != nil {
		n.building.tables = append(n.building.tables,
			epochTable{node: sw.Node, tables: tables, groupCount: groupCount})
		return
	}
	sw.tables = tables
	sw.groupCount = groupCount
	sw.resetEngineState()
}

// groupDeduper assigns dense IDs to unique port sets within one switch.
type groupDeduper struct {
	ids   map[string]int32
	count int32
}

func newGroupDeduper() *groupDeduper { return &groupDeduper{ids: map[string]int32{}} }

// NewGroupDeduper is the exported constructor for table builders.
func NewGroupDeduper() *groupDeduper { return newGroupDeduper() }

// Count reports how many unique groups have been assigned.
func (d *groupDeduper) Count() int32 { return d.count }

// ID assigns/returns the dense ID for a sorted port set.
func (d *groupDeduper) ID(ports []int32) int32 { return d.id(ports) }

func (d *groupDeduper) id(ports []int32) int32 {
	key := make([]byte, 0, 4*len(ports))
	for _, p := range ports {
		key = append(key, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	k := string(key)
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := d.count
	d.ids[k] = id
	d.count++
	return id
}

// dropHopClass buckets a packet dropped *at* a switch — no output port
// exists, e.g. the destination is unreachable during a failure window — by
// the switch's forwarding tier. Leaves would have forwarded on their
// upward hop, spines/aggs on their downward hop toward a leaf, cores on
// their downward hop toward an agg. Before this classification existed,
// every such drop was booked against Hop1 regardless of tier, skewing the
// per-hop drop counters and the trace conservation cross-check.
func dropHopClass(kind topo.NodeKind) metrics.HopClass {
	switch kind {
	case topo.Leaf:
		return metrics.Hop1
	case topo.Spine, topo.Agg:
		return metrics.Hop2
	default:
		return metrics.Down2
	}
}

// classifyHop buckets a channel for per-hop telemetry.
func classifyHop(t *topo.Topology, c topo.Chan) metrics.HopClass {
	from, to := t.Nodes[c.From].Kind, t.Nodes[c.To].Kind
	switch {
	case from == topo.Host:
		return metrics.HostUp
	case to == topo.Host:
		return metrics.Hop3
	case from == topo.Leaf:
		return metrics.Hop1
	case to == topo.Leaf:
		return metrics.Hop2
	case from == topo.Agg && to == topo.Core:
		return metrics.Up2
	default:
		return metrics.Down2
	}
}

// --- data plane ---

// enqueue places pkt on port p at the current time, dropping on overflow.
//
//drill:hotpath
//drill:allocs 1 visibility closure on the legacy DisableBatch path, off by default
func (n *Network) enqueue(p *Port, pkt *Packet) {
	d := p.dom
	if !p.up {
		p.Drops++
		d.hops.RecordDrop(p.Hop)
		if n.tracer != nil {
			n.tracer.Packet(trace.Drop, d.sim.Now(), p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
		}
		if n.met != nil {
			n.met.drops[p.Hop].Inc()
		}
		d.pool.Put(pkt)
		return
	}
	if p.Cap > 0 && int(p.QPkts) >= p.Cap {
		p.Drops++
		d.hops.RecordDrop(p.Hop)
		if n.tracer != nil {
			n.tracer.Packet(trace.Drop, d.sim.Now(), p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
		}
		if n.met != nil {
			n.met.drops[p.Hop].Inc()
		}
		d.pool.Put(pkt)
		return
	}
	pkt.enqAt = d.sim.Now()
	if n.Cfg.ECNThreshold > 0 && int(p.QPkts) >= n.Cfg.ECNThreshold {
		pkt.ECNCE = true
	}
	p.pushQueue(pkt)
	p.QPkts++
	p.QBytes += int64(pkt.Size)
	if n.tracer != nil {
		n.tracer.Packet(trace.Enqueue, pkt.enqAt, p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
	}
	if n.met != nil {
		n.met.enqueued.Inc()
	}
	size := pkt.Size
	if p.visDelay <= 0 {
		p.applyVisibility(size)
	} else if n.Cfg.DisableBatch {
		//drill:allow hotpath legacy unbatched reference path, off by default
		d.sim.After(p.visDelay, func() { p.applyVisibility(size) })
	} else {
		// Reserve the tie-break key now — the slot sim.After would have
		// taken — and park the update on the port's visibility ring; the
		// ring's timer fires it at exactly that (time, key).
		e := visEntry{at: d.sim.Now() + p.visDelay, key: d.sim.ReserveKey(), size: size}
		idle := p.visRing.empty()
		p.visRing.push(e)
		if idle {
			d.sim.AtKeyID(e.at, e.key, p.visID)
		}
	}
	if !p.busy {
		n.transmit(p)
	}
}

// visFire applies the head of the port's visibility ring and re-arms the
// timer for the next entry at its reserved (time, seq) slot.
//
//drill:hotpath
func (n *Network) visFire(p *Port) {
	e := p.visRing.pop()
	if !p.visRing.empty() {
		h := p.visRing.peek()
		p.dom.sim.AtKeyID(h.at, h.key, p.visID)
	}
	p.applyVisibility(e.size)
}

// transmit serializes the head-of-line packet onto the link.
//
//drill:hotpath
//drill:allocs 1 txDone closure on the legacy DisableBatch path, off by default
func (n *Network) transmit(p *Port) {
	d := p.dom
	pkt := p.queue[p.head] // head stays queued while in service
	p.busy = true
	wait := d.sim.Now() - pkt.enqAt
	d.hops.RecordQueueing(p.Hop, wait)
	pkt.HopWaitNs[p.Hop] += int64(wait)
	// The head leaves the waiting queue as it starts onto the wire.
	p.departVisibility(pkt.Size)
	if n.tracer != nil {
		n.tracer.Emit(trace.Event{T: d.sim.Now(), Kind: trace.TxStart, Port: p.Index, Hop: uint8(p.Hop),
			Flow: pkt.FlowID, Seq: pkt.Seq, Size: int32(pkt.Size), QLen: p.QPkts, Val: float64(wait)})
	}
	txT := units.TxTime(pkt.Size, p.Rate)
	if n.txObs != nil {
		n.txObs.OnTx(n, p, pkt)
	}
	if n.Cfg.DisableBatch {
		//drill:allow hotpath legacy unbatched reference path, off by default
		d.sim.After(txT, func() { n.txDone(p) })
		return
	}
	// At most one transmission is in service per port, so the reusable
	// callback needs no ring; After takes a fresh seq exactly as the
	// closure-per-packet path did.
	d.sim.AfterID(txT, p.txID)
}

//drill:hotpath
//drill:allocs 2 arrive closure on the legacy DisableBatch path, and outbox growth that amortizes across epochs
func (n *Network) txDone(p *Port) {
	d := p.dom
	pkt := p.popQueue()
	p.QPkts--
	p.QBytes -= int64(pkt.Size)
	p.TxPackets++
	p.TxBytes += int64(pkt.Size)
	p.busy = false
	if p.up {
		if n.tracer != nil {
			n.tracer.Packet(trace.LinkDepart, d.sim.Now(), p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
		}
		// The arrival's key is a pure function of the port and its
		// departure counter — not of this scheduler's state — so a sharded
		// run computes the same key for the same departure and the far
		// scheduler dispatches it in exactly the sequential engine's slot.
		at := d.sim.Now() + p.Prop
		key := sim.ArrivalKey(uint64(p.Index), p.wireSeq)
		p.wireSeq++
		if n.Cfg.DisableBatch {
			to := p.To
			in := p.Chan
			//drill:allow hotpath legacy unbatched reference path, off by default
			d.sim.AtKey(at, key, func() { n.arrive(pkt, to, in) })
		} else if p.boundary {
			// Cross-shard wire: the destination's scheduler may only be
			// touched at a barrier. Park the packet in the outbox; the
			// coordinator's exchange pushes it onto the wire ring with the
			// identical key, so nothing downstream can tell the difference.
			d.outbox = append(d.outbox, wireMsg{p: p, at: at, key: key, pkt: pkt})
		} else {
			// Put the packet on the wire: park it on the port's in-flight
			// ring at its reserved (time, key) slot.
			idle := p.wireRing.empty()
			p.wireRing.push(wireEntry{at: at, key: key, pkt: pkt})
			if idle {
				d.sim.AtKeyID(at, key, p.wireID)
			}
		}
		if !p.queueEmpty() {
			n.transmit(p)
		}
		return
	}
	// Link died mid-flight: the packet is lost, and so is anything queued.
	p.Drops++
	d.hops.RecordDrop(p.Hop)
	if n.tracer != nil {
		n.tracer.Packet(trace.Drop, d.sim.Now(), p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
	}
	if n.met != nil {
		n.met.drops[p.Hop].Inc()
	}
	d.pool.Put(pkt)
	n.drainPort(p)
}

// wireFire lands the head of the port's in-flight ring at the far end of
// the link and re-arms the timer for the next packet on the wire at its
// reserved (time, seq) slot. Re-arming precedes delivery so the arrival's
// downstream effects (forwarding, transport ACKs) observe a fully
// consistent ring.
//
//drill:hotpath
func (n *Network) wireFire(p *Port) {
	e := p.wireRing.pop()
	if !p.wireRing.empty() {
		h := p.wireRing.peek()
		//drill:allow shardconfine wireFire runs on the destination shard: propagation delay exceeds the epoch, so the reserved slot is shard-local by the exchange invariant
		p.dstDom.sim.AtKeyID(h.at, h.key, p.wireID)
	}
	n.arrive(e.pkt, p.To, p.Chan)
}

// drainPort discards all waiting packets of a failed port.
//
//drill:hotpath
func (n *Network) drainPort(p *Port) {
	d := p.dom
	for !p.queueEmpty() {
		pkt := p.popQueue()
		p.QPkts--
		p.QBytes -= int64(pkt.Size)
		p.departVisibility(pkt.Size)
		p.Drops++
		d.hops.RecordDrop(p.Hop)
		if n.tracer != nil {
			n.tracer.Packet(trace.Drop, d.sim.Now(), p.Index, uint8(p.Hop), pkt.FlowID, pkt.Seq, int32(pkt.Size), p.QPkts)
		}
		if n.met != nil {
			n.met.drops[p.Hop].Inc()
		}
		d.pool.Put(pkt)
	}
}

// arrive delivers a packet at node `at` having entered via channel `in`.
//
//drill:hotpath
func (n *Network) arrive(pkt *Packet, at topo.NodeID, in topo.ChanID) {
	//drill:allow shardconfine arrive executes on the shard that owns node `at`: the wire hop onto this shard already crossed on the exchange path
	d := n.domByNode[at]
	if h := n.hostByNode[at]; h != nil {
		*d.delivered++
		if n.tracer != nil {
			n.tracer.Packet(trace.Deliver, d.sim.Now(), n.chanPort[in], uint8(n.Ports[n.chanPort[in]].Hop),
				pkt.FlowID, pkt.Seq, int32(pkt.Size), 0)
		}
		if n.met != nil {
			n.met.delivered.Inc()
		}
		if h.Handler != nil {
			h.Handler.HandlePacket(h, pkt)
		}
		// The handler consumes the packet synchronously (transport copies
		// what it keeps); a delivered packet is dead and can be recycled.
		d.pool.Put(pkt)
		return
	}
	sw := n.swByNode[at]
	if n.tracer != nil {
		n.tracer.Packet(trace.Arrive, d.sim.Now(), n.chanPort[in], uint8(n.Ports[n.chanPort[in]].Hop),
			pkt.FlowID, pkt.Seq, int32(pkt.Size), 0)
	}
	pkt.Hops++
	if pkt.Hops > MaxHops {
		panic(fmt.Sprintf("fabric: packet exceeded %d hops (routing loop?) flow=%d at=%s",
			MaxHops, pkt.FlowID, n.Topo.Nodes[at].Name))
	}
	if n.arriveObs != nil {
		n.arriveObs.OnArrive(n, sw, pkt)
	}
	// Engine sharding by input channel, via the dense index (same values
	// Switch.engineFor computes from its map).
	eng := sw.engines[0]
	if len(sw.engines) > 1 {
		idx := n.inIdx[in]
		if idx < 0 {
			idx = int32(in)
		}
		eng = sw.engines[int(idx)%len(sw.engines)]
	}
	n.forward(sw, eng, pkt)
}

// forward routes pkt out of sw.
//
//drill:hotpath
func (n *Network) forward(sw *Switch, eng *Engine, pkt *Packet) {
	// Local delivery.
	if sw.Node == pkt.DstLeaf {
		if pi := n.hostNIC[pkt.Dst]; pi >= 0 {
			n.enqueue(n.Ports[pi], pkt)
			return
		}
	}
	// Source route (Presto).
	if pkt.Path != nil && int(pkt.PathIdx) < len(pkt.Path) {
		cid := pkt.Path[pkt.PathIdx]
		if pi, ok := sw.chanPort[cid]; ok {
			pkt.PathIdx++
			p := n.Ports[pi]
			if p.up {
				n.enqueue(p, pkt)
				return
			}
			// Path broken: fall back to table forwarding below.
		}
	}
	groups := sw.tables[pkt.DstLeafIdx]
	if len(groups) == 0 {
		// Destination unreachable from here (mid-failure window): drop,
		// booked against this switch's own forwarding tier (port -1: there
		// is no output port to attribute it to).
		sw.dom.hops.RecordDrop(sw.dropHop)
		if n.tracer != nil {
			n.tracer.Packet(trace.Drop, sw.dom.sim.Now(), -1, uint8(sw.dropHop), pkt.FlowID, pkt.Seq, int32(pkt.Size), 0)
		}
		if n.met != nil {
			n.met.drops[sw.dropHop].Inc()
		}
		sw.dom.pool.Put(pkt)
		return
	}
	var port int32
	if len(groups) == 1 && len(groups[0].Ports) == 1 {
		port = groups[0].Ports[0]
	} else {
		port = n.balancer.Choose(n, sw, eng, pkt)
	}
	n.enqueue(n.Ports[port], pkt)
}

// --- experiment helpers ---

// LeafUplinks returns the leaf's output ports toward the fabric (non-host).
func (n *Network) LeafUplinks(leaf topo.NodeID) []*Port {
	sw := n.Switches[leaf]
	var out []*Port
	for _, pi := range sw.OutPorts {
		p := n.Ports[pi]
		if n.Topo.Nodes[p.To].Kind != topo.Host && p.up {
			out = append(out, p)
		}
	}
	return out
}

// DownlinksTo returns, across all top-tier switches adjacent to leaf, the
// output ports pointing down at it (the "spine downlink" queue set of
// §3.2.3's metric).
func (n *Network) DownlinksTo(leaf topo.NodeID) []*Port {
	var out []*Port
	for _, sw := range n.SwitchList() {
		if sw.Node == leaf {
			continue
		}
		for _, pi := range sw.OutPorts {
			p := n.Ports[pi]
			if p.To == leaf && p.up {
				out = append(out, p)
			}
		}
	}
	return out
}
