package fabric

import (
	"drill/internal/units"
)

// fifo is an amortized-zero-allocation FIFO used by the per-port event
// rings. Pushes append; pops advance a head cursor and compact the backing
// slice once the dead prefix dominates, the same scheme Port's packet
// queue uses. After warm-up the backing array is reused indefinitely, so a
// steady-state push/pop cycle allocates nothing.
type fifo[T any] struct {
	buf  []T
	head int
}

//drill:hotpath
//drill:allocs 1 buffer growth amortizes; capacity is retained across pops
func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

//drill:hotpath
func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

func (f *fifo[T]) empty() bool { return f.head == len(f.buf) }

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

//drill:hotpath
func (f *fifo[T]) peek() *T { return &f.buf[f.head] }

// visEntry is one pending delayed-visibility update: packet size to credit
// to the port's visible occupancy at time at, under the FIFO tie-break key
// reserved when the packet enqueued. Visibility delay is constant per
// port, so entries are pushed — and therefore fire — in (at, key) order.
type visEntry struct {
	at   units.Time
	key  uint64
	size units.ByteSize
}

// wireEntry is one packet in flight on a port's link: it arrives at the
// far end at time at, under the arrival key computed when its transmission
// completed. Propagation delay is constant per port and the departure
// counter behind the key is monotone, so the ring is in (at, key) order by
// construction.
type wireEntry struct {
	at  units.Time
	key uint64
	pkt *Packet
}
