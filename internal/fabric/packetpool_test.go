package fabric

import (
	"reflect"
	"testing"

	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

func TestPoolRecyclesZeroed(t *testing.T) {
	var pool PacketPool
	p := pool.Get()
	// Dirty every recycling-sensitive field.
	p.FlowID = 9
	p.Hash = 0xdead
	p.Kind = Ack
	p.Seq = 1234
	p.EchoTS = 55
	p.ECNCE = true
	p.CE = 3
	p.Path = []topo.ChanID{1, 2, 3}
	p.PathIdx = 2
	p.HopWaitNs = [6]int64{1, 2, 3, 4, 5, 6}
	p.Hops = 4
	p.Sent = 99
	p.enqAt = 98
	pool.Put(p)

	q := pool.Get()
	if q != p {
		t.Fatal("Get did not reuse the shelved packet")
	}
	want := Packet{poolState: poolLive}
	if !reflect.DeepEqual(*q, want) {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
	if pool.Gets != 2 || pool.News != 1 || pool.Puts != 1 {
		t.Fatalf("pool counters gets=%d news=%d puts=%d, want 2/1/1",
			pool.Gets, pool.News, pool.Puts)
	}
}

func TestPoolIgnoresForeignPackets(t *testing.T) {
	var pool PacketPool
	p := &Packet{FlowID: 1}
	pool.Put(p)
	if pool.Puts != 0 || pool.Idle() != 0 {
		t.Fatal("hand-built packet entered the pool")
	}
	if p.FlowID != 1 {
		t.Fatal("hand-built packet was zeroed by Put")
	}
}

func TestPoolDoubleRecyclePanics(t *testing.T) {
	var pool PacketPool
	p := pool.Get()
	pool.Put(p)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	pool.Put(p)
}

func TestPoolGetPutAllocs(t *testing.T) {
	// The recycle round trip is the hot path's allocation budget: zero.
	var pool PacketPool
	pool.Put(pool.Get())
	allocs := testing.AllocsPerRun(1000, func() {
		pool.Put(pool.Get())
	})
	if allocs != 0 {
		t.Fatalf("Get+Put allocates %v per op, want 0", allocs)
	}
}

// TestDeliveredPoolPacketsAreRecycled proves the terminal sites feed the
// free list: traffic pushed through the fabric from the pool comes back,
// while the hand-built packets tests use stay untouched.
func TestDeliveredPoolPacketsAreRecycled(t *testing.T) {
	s, n, tp := newNet(t, Config{})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	const N = 25
	for i := 0; i < N; i++ {
		pkt := src.AllocPacket()
		pkt.FlowID = 1
		pkt.Hash = 77
		pkt.Dst = dst
		pkt.Size = 1518
		pkt.Seq = int64(i)
		src.Send(pkt)
	}
	s.Run()
	if n.Delivered != N {
		t.Fatalf("delivered %d, want %d", n.Delivered, N)
	}
	if n.Pool().Puts != N {
		t.Fatalf("pool recycled %d packets, want %d (every delivery is terminal)",
			n.Pool().Puts, N)
	}
	if idle := n.Pool().Idle(); idle != N {
		t.Fatalf("free list holds %d packets, want %d", idle, N)
	}
	// Steady state: the same traffic again must allocate no new packets.
	news := n.Pool().News
	for i := 0; i < N; i++ {
		pkt := src.AllocPacket()
		pkt.FlowID = 1
		pkt.Hash = 77
		pkt.Dst = dst
		pkt.Size = 1518
		src.Send(pkt)
	}
	s.Run()
	if n.Pool().News != news {
		t.Fatalf("steady-state rerun allocated %d fresh packets, want 0",
			n.Pool().News-news)
	}
}

// TestDroppedPoolPacketsAreRecycled covers the drop-site recycling paths:
// queue overflow must return pooled packets to the free list too.
func TestDroppedPoolPacketsAreRecycled(t *testing.T) {
	s, n, tp := newNet(t, Config{Balancer: fixedLB{}, QueueCap: 4})
	src1, src2 := n.Host(tp.Hosts[0]), n.Host(tp.Hosts[1])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	const N = 50
	for i := 0; i < N; i++ {
		for _, src := range []*Host{src1, src2} {
			pkt := src.AllocPacket()
			pkt.FlowID = uint64(i%2 + 5)
			pkt.Hash = uint32(i % 2)
			pkt.Dst = dst
			pkt.Size = 1518
			src.Send(pkt)
		}
	}
	s.Run()
	if n.Hops.TotalDrops() == 0 {
		t.Fatal("fixture dropped nothing; drop recycling untested")
	}
	// Every packet ended delivered or dropped; both sites recycle.
	if n.Pool().Puts != 2*N {
		t.Fatalf("pool recycled %d packets, want %d (delivered + dropped)",
			n.Pool().Puts, 2*N)
	}
}

func TestDisablePoolAllocatesFresh(t *testing.T) {
	s, n, tp := newNet(t, Config{DisablePool: true})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[2]
	n.Host(dst).Handler = &sink{}
	pkt := src.AllocPacket()
	pkt.FlowID = 1
	pkt.Dst = dst
	pkt.Size = 1518
	src.Send(pkt)
	s.Run()
	if n.Pool().Gets != 0 || n.Pool().Puts != 0 {
		t.Fatalf("DisablePool still moved packets through the pool: gets=%d puts=%d",
			n.Pool().Gets, n.Pool().Puts)
	}
	if pkt.FlowID != 1 {
		t.Fatal("unpooled packet was zeroed at its terminal site")
	}
}

// TestHopWaitNoInt32Overflow is the regression test for the per-hop wait
// accounting: a queueing wait beyond 2.147 s (int32 nanoseconds) must not
// wrap negative. 200 packets serialized at 1 Mbps make the NIC queue's
// tail wait tens of seconds.
func TestHopWaitNoInt32Overflow(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 1, Leaves: 1, HostsPerLeaf: 2,
		HostRate: 1 * units.Mbps, CoreRate: 1 * units.Mbps})
	s := sim.New(1)
	n := New(s, tp, Config{Balancer: fixedLB{}})
	src := n.Host(tp.Hosts[0])
	dst := tp.Hosts[1]
	rx := &sink{}
	n.Host(dst).Handler = rx

	// 1518 B at 1 Mbps ≈ 12.1 ms serialization; packet i waits ~i·12.1 ms
	// in the NIC queue, so the burst's tail waits well past the 2.147 s
	// int32 boundary.
	const N = 200
	for i := 0; i < N; i++ {
		src.Send(&Packet{FlowID: 1, Hash: 1, Dst: dst, Size: 1518, Seq: int64(i)})
	}
	s.Run()
	if len(rx.got) != N {
		t.Fatalf("delivered %d, want %d", len(rx.got), N)
	}
	last := rx.got[N-1]
	wait := last.HopWaitNs[metrics.HostUp]
	if wait < 0 {
		t.Fatalf("hop wait wrapped negative: %d ns", wait)
	}
	if wait < int64(2200*units.Millisecond) {
		t.Fatalf("tail wait %v too small to exercise the int32 boundary; fixture drifted",
			units.Time(wait))
	}
	txTime := units.TxTime(1518, 1*units.Mbps)
	if want := int64(txTime) * (N - 1); wait != want {
		t.Fatalf("tail NIC wait = %d ns, want exactly %d (%d×serialization)",
			wait, want, N-1)
	}
}
