package fabric

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// domain is one shard's slice of the network: its scheduler, its packet
// pool, its per-hop stat block, and the outbox for packets departing over
// shard-boundary links. A sequential network has exactly one domain whose
// pointers alias the Network's own fields, so the single-scheduler data
// plane pays nothing for the indirection beyond one pointer hop it
// already paid for n.Sim. All domain state is touched only by the owning
// shard's goroutine during a window, or by the coordinator at barriers.
type domain struct {
	id        int
	sim       *sim.Sim
	hops      *metrics.HopStats
	delivered *int64
	sent      *int64
	pool      *PacketPool

	// outbox holds departures over boundary links, in departure order,
	// until the coordinator exchanges them at the next window barrier.
	outbox []wireMsg
}

// wireMsg is one cross-shard packet in flight: the boundary port it
// departed, its arrival time, and the arrival's event key (built by
// sim.ArrivalKey from the port index and departure counter, so the
// receiving scheduler lands it in exactly the slot a single scheduler
// would).
type wireMsg struct {
	p   *Port
	at  units.Time
	key uint64
	pkt *Packet
}

// ShardUnsafe marks balancers that cannot run under the sharded engine:
// anything whose decisions read state outside the deciding switch's shard
// (CONGA's leaf-to-leaf feedback, LetFlow's global clock reads, Presto's
// host source-routing hook, per-flow DRILL's global flow table). NewSharded
// refuses them; the sequential engine runs them unchanged.
type ShardUnsafe interface{ ShardUnsafe() }

// NewSharded assembles a network partitioned into one domain per entry of
// shards. assign maps every topology node to its shard index; hosts must
// share their leaf's shard (the NIC link would otherwise be a boundary
// inside the host's own send path). global carries the barrier-class
// events (workload, failures, samplers); it must share the shard sims'
// seed so derived random streams are engine-invariant.
func NewSharded(global *sim.Sim, shards []*sim.Sim, assign []int, t *topo.Topology, cfg Config) *Network {
	cfg.defaults()
	if cfg.Balancer == nil {
		panic("fabric: Config.Balancer is required")
	}
	if _, bad := cfg.Balancer.(ShardUnsafe); bad {
		panic(fmt.Sprintf("fabric: balancer %s cannot run sharded (reads cross-shard state)", cfg.Balancer.Name()))
	}
	if cfg.DisableBatch {
		panic("fabric: DisableBatch is a sequential-only reference mode")
	}
	if len(assign) != len(t.Nodes) {
		panic("fabric: shard assignment must cover every node")
	}
	n := &Network{
		Sim:      global,
		Topo:     t,
		Cfg:      cfg,
		Switches: make(map[topo.NodeID]*Switch),
		hosts:    make(map[topo.NodeID]*Host),
		balancer: cfg.Balancer,
		tracer:   cfg.Tracer,
		sharded:  true,
	}
	n.doms = make([]*domain, len(shards))
	n.exchPairs = make([][]uint64, len(shards))
	for i := range n.exchPairs {
		n.exchPairs[i] = make([]uint64, len(shards))
	}
	for i, s := range shards {
		n.doms[i] = &domain{
			id: i, sim: s,
			hops:      &metrics.HopStats{},
			delivered: new(int64),
			sent:      new(int64),
			pool:      &PacketPool{},
		}
	}
	n.domByNode = make([]*domain, len(t.Nodes))
	for nd, si := range assign {
		if si < 0 || si >= len(shards) {
			panic("fabric: shard assignment out of range")
		}
		n.domByNode[nd] = n.doms[si]
	}
	for _, h := range t.Hosts {
		if n.domByNode[h] != n.domByNode[t.LeafOf(h)] {
			panic("fabric: host assigned to a different shard than its leaf")
		}
	}
	n.build()
	return n
}

// Sharded reports whether this network runs the sharded engine.
func (n *Network) Sharded() bool { return n.sharded }

// NumDomains reports the number of shard domains (1 for sequential).
func (n *Network) NumDomains() int { return len(n.doms) }

// DomainIndex reports which shard owns node id.
func (n *Network) DomainIndex(id topo.NodeID) int { return n.domByNode[id].id }

// DomainSim returns the scheduler owning node id's events — the per-shard
// sim under the sharded engine, the one Sim otherwise. The transport layer
// uses it so a host's timers and clock reads stay inside the host's shard.
func (n *Network) DomainSim(id topo.NodeID) *sim.Sim { return n.domByNode[id].sim }

// ShardLookahead returns the conservative window bound: the minimum
// propagation delay across shard-boundary links. With no boundary links
// (one shard, or a degenerate partition) any positive bound is valid, and
// a generous one lets the synchronizer cut windows on global events alone.
func (n *Network) ShardLookahead() units.Time {
	var min units.Time
	for _, p := range n.Ports {
		if p.boundary && (min == 0 || p.Prop < min) {
			min = p.Prop
		}
	}
	if min == 0 {
		min = units.Millisecond
	}
	return min
}

// ExchangeShards drains every domain's outbox into the destination ports'
// wire rings, arming the port's arrival callback when the ring was idle —
// exactly what the intra-shard wire path does at departure time. It runs
// at window barriers only, with every shard parked: domains are visited in
// shard-ID order and each boundary port is fed by exactly one source
// domain, so ring order (and therefore everything downstream) is
// deterministic. The merge allocates nothing at steady state: outboxes and
// rings reuse their backing arrays, and the armed callbacks are interned.
func (n *Network) ExchangeShards() {
	for _, d := range n.doms {
		pairs := n.exchPairs[d.id]
		for i := range d.outbox {
			m := &d.outbox[i]
			p := m.p
			idle := p.wireRing.empty()
			p.wireRing.push(wireEntry{at: m.at, key: m.key, pkt: m.pkt})
			if idle {
				p.dstDom.sim.AtKeyID(m.at, m.key, p.wireID)
			}
			pairs[p.dstDom.id]++
			m.pkt = nil
			m.p = nil
		}
		d.outbox = d.outbox[:0]
	}
}

// ExchangeMatrix returns a copy of the cross-shard traffic matrix:
// element [src][dst] counts messages exchanged from shard src to shard
// dst at window barriers so far. Sequential networks return nil. The
// matrix is written only at barriers, so reading it between RunUntil
// calls or from a global observer tick is race-free.
func (n *Network) ExchangeMatrix() [][]uint64 {
	if n.exchPairs == nil {
		return nil
	}
	out := make([][]uint64, len(n.exchPairs))
	for i, row := range n.exchPairs {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}

// FoldShards merges every domain's stat block into the Network-level
// fields (Hops, Delivered, pool counters) that reports and fingerprints
// read. Domains are folded in shard-ID order; every folded quantity is an
// integer total, so the result is byte-identical to the sequential run's
// single block. Call once, after the run drains; sequential networks fold
// nothing (their one domain aliases the Network fields directly).
func (n *Network) FoldShards() {
	if !n.sharded {
		return
	}
	for _, d := range n.doms {
		n.Hops.Merge(d.hops)
		n.Delivered += *d.delivered
		n.Sent += *d.sent
		n.pool.Gets += d.pool.Gets
		n.pool.News += d.pool.News
		n.pool.Puts += d.pool.Puts
	}
}
