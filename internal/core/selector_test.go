package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestPickSingleCandidate(t *testing.T) {
	s := NewSelector(2, 1, rng())
	if got := s.Pick(1, func(int) int64 { return 99 }); got != 0 {
		t.Fatalf("Pick(1) = %d", got)
	}
}

func TestPickReturnsInRange(t *testing.T) {
	f := func(d, m, n uint8, seed int64) bool {
		dd := int(d%4) + 1
		mm := int(m % 4)
		nn := int(n%16) + 1
		s := NewSelector(dd, mm, rand.New(rand.NewSource(seed)))
		loads := make([]int64, nn)
		r := rand.New(rand.NewSource(seed + 1))
		for k := 0; k < 50; k++ {
			i := s.Pick(nn, func(q int) int64 { return loads[q] })
			if i < 0 || i >= nn {
				return false
			}
			loads[i] += int64(r.Intn(1500))
			for q := range loads {
				loads[q] = max64(0, loads[q]-500)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestPicksLeastLoadedOfSamples(t *testing.T) {
	// With d = n (all queues sampled) the global minimum must win.
	s := NewSelector(8, 0, rng())
	loads := []int64{5, 3, 9, 1, 7, 2, 8, 6}
	for trial := 0; trial < 20; trial++ {
		if got := s.Pick(8, func(q int) int64 { return loads[q] }); got != 3 {
			t.Fatalf("Pick = %d, want 3 (global min)", got)
		}
	}
}

func TestMemoryRetainsLeastLoaded(t *testing.T) {
	s := NewSelector(2, 1, rng())
	loads := []int64{10, 10, 10, 0, 10, 10}
	// Run until queue 3 is sampled at least once; afterwards memory must
	// hold it (it is the global minimum among anything sampled with it).
	seen3 := false
	for trial := 0; trial < 100; trial++ {
		got := s.Pick(6, func(q int) int64 { return loads[q] })
		if got == 3 {
			seen3 = true
		}
		if seen3 {
			mem := s.Memory()
			if len(mem) != 1 || mem[0] != 3 {
				t.Fatalf("memory = %v after picking 3", mem)
			}
			// Every subsequent pick must return 3: memory carries it.
			if got != 3 {
				t.Fatalf("pick = %d after 3 in memory", got)
			}
		}
	}
	if !seen3 {
		t.Fatal("queue 3 never sampled in 100 trials of d=2 over 6 queues")
	}
}

func TestTiesFavorMemory(t *testing.T) {
	// All-equal loads: once memory holds a queue, it keeps winning.
	s := NewSelector(1, 1, rng())
	first := s.Pick(8, func(int) int64 { return 7 })
	for trial := 0; trial < 50; trial++ {
		if got := s.Pick(8, func(int) int64 { return 7 }); got != first {
			t.Fatalf("tie not sticky: first=%d now=%d", first, got)
		}
	}
}

func TestMemoryDistinct(t *testing.T) {
	s := NewSelector(4, 3, rng())
	loads := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for trial := 0; trial < 50; trial++ {
		s.Pick(8, func(q int) int64 { return loads[q] })
		mem := s.Memory()
		if len(mem) > 3 {
			t.Fatalf("memory overflow: %v", mem)
		}
		seen := map[int32]bool{}
		for _, q := range mem {
			if seen[q] {
				t.Fatalf("duplicate in memory: %v", mem)
			}
			seen[q] = true
		}
	}
}

func TestMemorySurvivesCandidateShrink(t *testing.T) {
	// After a failure the candidate set shrinks; stale memory entries
	// pointing past the new n must be ignored, not crash or be returned.
	s := NewSelector(2, 2, rng())
	for trial := 0; trial < 10; trial++ {
		s.Pick(8, func(q int) int64 { return int64(8 - q) }) // biases memory to high indices
	}
	for trial := 0; trial < 20; trial++ {
		got := s.Pick(3, func(q int) int64 { return 1 })
		if got < 0 || got >= 3 {
			t.Fatalf("pick out of range after shrink: %d", got)
		}
	}
}

func TestDLargerThanN(t *testing.T) {
	s := NewSelector(10, 2, rng())
	loads := []int64{4, 0, 9}
	if got := s.Pick(3, func(q int) int64 { return loads[q] }); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestDZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for d=0")
		}
	}()
	NewSelector(0, 1, rng())
}

func TestNegativeMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for m<0")
		}
	}()
	NewSelector(1, -1, rng())
}

func TestPickNoCandidatesPanics(t *testing.T) {
	s := NewSelector(1, 1, rng())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n=0")
		}
	}()
	s.Pick(0, func(int) int64 { return 0 })
}

func TestDrillBeatsRandomOnStaticLoads(t *testing.T) {
	// Sanity: against a static imbalanced load vector, DRILL(2,1) lands on
	// low-load queues far more often than uniform random would.
	s := NewSelector(2, 1, rng())
	loads := []int64{100, 100, 100, 100, 0, 100, 100, 100}
	hits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if s.Pick(8, func(q int) int64 { return loads[q] }) == 4 {
			hits++
		}
	}
	// Uniform random would hit ~125; with memory DRILL locks on after the
	// first sample of queue 4.
	if hits < trials/2 {
		t.Fatalf("DRILL hit the empty queue only %d/%d times", hits, trials)
	}
}

func TestMemoryZeroAllocPick(t *testing.T) {
	s := NewSelector(2, 1, rng())
	loads := make([]int64, 16)
	load := func(q int) int64 { return loads[q] }
	allocs := testing.AllocsPerRun(1000, func() {
		loads[s.Pick(16, load)]++
	})
	if allocs > 0 {
		t.Errorf("Pick allocates %v per run; want 0", allocs)
	}
}

func BenchmarkDrillSelectorPick(b *testing.B) {
	for _, cfg := range []struct {
		name string
		d, m int
	}{
		{"d1m0", 1, 0}, {"d2m1", 2, 1}, {"d12m1", 12, 1}, {"d2m11", 2, 11}, {"d20m1", 20, 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := NewSelector(cfg.d, cfg.m, rng())
			loads := make([]int64, 48)
			load := func(q int) int64 { return loads[q] }
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := s.Pick(48, load)
				loads[q] += 1500
				if i%8 == 0 {
					for j := range loads {
						loads[j] = max64(0, loads[j]-1500)
					}
				}
			}
		})
	}
}
