// Package core implements the DRILL(d,m) scheduling policy — the paper's
// primary contribution (§3.2.2). Upon each packet arrival a forwarding
// engine samples d of the N candidate output queues uniformly at random,
// compares them with the m remembered least-loaded queues from previous
// decisions, forwards to the least loaded of the d+m, and refreshes its
// memory with the m least-loaded queues it just observed.
//
// The classic power-of-two-choices result concerns a single arbiter; DRILL
// extends it to many parallel engines with imprecise queue counters, where
// excessive d or m causes the synchronization effect of §3.2.3 (many
// engines herd onto the same queues). DRILL(2,1) is the recommended
// operating point. §3.2.4 proves DRILL(d,0) (memoryless) unstable and
// DRILL(d,m≥1) stable with 100% throughput for admissible independent
// arrivals; internal/queueing demonstrates both results empirically.
package core

import "math/rand"

// LoadFunc reports the occupancy of candidate queue i; it must be
// non-negative. Lower is less loaded. The function sees the engine's
// (possibly stale) view, matching the delayed-visibility counters of real
// switch hardware (§3.2.1).
type LoadFunc func(i int) int64

// Selector is the DRILL(d,m) per-engine scheduler state for one candidate
// queue set. A Selector is not safe for concurrent use; each forwarding
// engine owns its own.
type Selector struct {
	d, m int
	mem  []int32 // remembered least-loaded queue indices, at most m
	rng  *rand.Rand

	// scratch buffers reused across Pick calls to stay allocation-free.
	cand  []int32
	loads []int64
}

// NewSelector returns a DRILL(d,m) selector drawing samples from rng.
// d must be >= 1; m >= 0 (m = 0 yields the provably unstable memoryless
// variant, kept for the Theorem 1 experiments).
func NewSelector(d, m int, rng *rand.Rand) *Selector {
	if d < 1 {
		panic("core: DRILL requires d >= 1")
	}
	if m < 0 {
		panic("core: DRILL requires m >= 0")
	}
	return &Selector{
		d: d, m: m, rng: rng,
		mem:   make([]int32, 0, m),
		cand:  make([]int32, 0, d+m),
		loads: make([]int64, 0, d+m),
	}
}

// D reports the configured number of random samples.
func (s *Selector) D() int { return s.d }

// M reports the configured number of memory units.
func (s *Selector) M() int { return s.m }

// Memory returns the currently remembered queue indices (for tests).
func (s *Selector) Memory() []int32 { return s.mem }

// Pick chooses among n candidate queues using load. It returns an index in
// [0, n). Ties favor remembered queues, then earlier samples, making the
// memory "sticky" — the property the stability proof relies on.
func (s *Selector) Pick(n int, load LoadFunc) int {
	if n <= 0 {
		panic("core: Pick with no candidates")
	}
	if n == 1 {
		return 0
	}

	s.cand = s.cand[:0]
	s.loads = s.loads[:0]

	// Memory first (so ties favor it), dropping entries that no longer
	// exist (candidate set shrank after a failure).
	for _, q := range s.mem {
		if int(q) < n {
			s.cand = append(s.cand, q)
			s.loads = append(s.loads, load(int(q)))
		}
	}
	memCnt := len(s.cand)

	// d random samples, without replacement among themselves.
	d := s.d
	if d > n {
		d = n
	}
	for len(s.cand)-memCnt < d {
		q := int32(s.rng.Intn(n))
		dup := false
		for _, c := range s.cand[memCnt:] {
			if c == q {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.cand = append(s.cand, q)
		s.loads = append(s.loads, load(int(q)))
	}

	// Least loaded wins; first occurrence wins ties.
	best := 0
	for i := 1; i < len(s.cand); i++ {
		if s.loads[i] < s.loads[best] {
			best = i
		}
	}
	choice := s.cand[best]

	s.refreshMemory()
	return int(choice)
}

// refreshMemory keeps the m least-loaded distinct queues among the current
// candidates (§3.2.2: "the engine updates its m memory units with the
// identities of the least loaded output queues among the samples").
func (s *Selector) refreshMemory() {
	if s.m == 0 {
		return
	}
	// Selection sort of the top-m by load over the (tiny) candidate arrays.
	s.mem = s.mem[:0]
	used := 0
	for len(s.mem) < s.m && used < len(s.cand) {
		best := -1
		for i := range s.cand {
			if s.loads[i] < 0 {
				continue // consumed
			}
			if best == -1 || s.loads[i] < s.loads[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		q := s.cand[best]
		s.loads[best] = -1
		used++
		dup := false
		for _, m := range s.mem {
			if m == q {
				dup = true
				break
			}
		}
		if !dup {
			s.mem = append(s.mem, q)
		}
	}
}
