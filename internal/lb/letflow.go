package lb

import (
	"drill/internal/fabric"
	"drill/internal/units"
)

// LetFlow (Vanini et al., NSDI 2017) is the contemporaneous flowlet-based
// balancer the DRILL paper's related work discusses: like CONGA it switches
// paths only at flowlet boundaries, but it picks the new path uniformly at
// random, relying on the elasticity of flowlet sizes rather than congestion
// feedback. Included as an extension baseline: it sits between Presto
// (finer, oblivious) and CONGA (flowlets, feedback) in the design space.
type LetFlow struct {
	// Gap is the idle time that opens a new flowlet (default 500µs).
	Gap units.Time

	flowlets map[letKey]*letEntry
}

type letKey struct {
	sw   int32
	flow uint64
}

type letEntry struct {
	port int32
	last units.Time
}

// NewLetFlow returns LetFlow with the standard 500µs flowlet gap.
func NewLetFlow() *LetFlow {
	return &LetFlow{Gap: 500 * units.Microsecond, flowlets: map[letKey]*letEntry{}}
}

// Name implements fabric.Balancer.
func (l *LetFlow) Name() string { return "LetFlow" }

// ShardUnsafe marks LetFlow as sequential-only: flowlet-gap detection
// reads the run clock, which is not a per-shard quantity mid-window.
func (l *LetFlow) ShardUnsafe() {}

// Choose implements fabric.Balancer.
func (l *LetFlow) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	// Flowlet decisions only where there is a real spread (source leaf and
	// any switch with >1 candidate).
	key := letKey{sw: int32(sw.Node), flow: pkt.FlowID}
	now := net.Sim.Now()
	if e := l.flowlets[key]; e != nil && now-e.last < l.Gap && net.Ports[e.port].Up() {
		e.last = now
		return e.port
	}
	port := g.Ports[eng.Rng.Intn(len(g.Ports))]
	l.flowlets[key] = &letEntry{port: port, last: now}
	return port
}

// Compile-time interface checks for every balancer in the package.
var (
	_ fabric.Balancer       = ECMP{}
	_ fabric.Balancer       = Random{}
	_ fabric.Balancer       = RoundRobin{}
	_ fabric.Balancer       = (*DRILL)(nil)
	_ fabric.Balancer       = (*DRILLAsym)(nil)
	_ fabric.TableBuilder   = (*DRILLAsym)(nil)
	_ fabric.Balancer       = (*PerFlowDRILL)(nil)
	_ fabric.Balancer       = WCMP{}
	_ fabric.TableBuilder   = WCMP{}
	_ fabric.Balancer       = (*Presto)(nil)
	_ fabric.TableBuilder   = (*Presto)(nil)
	_ fabric.SendHook       = (*Presto)(nil)
	_ fabric.Balancer       = (*CONGA)(nil)
	_ fabric.TableBuilder   = (*CONGA)(nil)
	_ fabric.TxObserver     = (*CONGA)(nil)
	_ fabric.ArriveObserver = (*CONGA)(nil)
	_ fabric.Balancer       = (*LetFlow)(nil)
)
