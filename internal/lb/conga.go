package lb

import (
	"drill/internal/fabric"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// CONGA (Alizadeh et al., SIGCOMM'14) is the globally load-aware baseline:
// source leaves route *flowlets* (bursts separated by an idle gap) onto the
// uplink minimizing the max of local and remote path congestion. Congestion
// is measured by per-port discounting rate estimators (DREs), carried to
// destination leaves in packet headers (CE, stamped hop by hop), and fed
// back to source leaves with a control-loop delay — the "few RTTs" loop
// the paper contrasts with DRILL's microsecond reactions.
//
// Simplifications kept mechanism-faithful: feedback is modelled as a
// delayed state update rather than piggybacked header plumbing, and in
// 3-stage fabrics only source leaves apply CONGA while interior switches
// use ECMP (matching the paper's footnote 5 for its VL2 experiment).
type CONGA struct {
	FlowletGap    units.Time // idle gap that opens a new flowlet (500µs)
	DREInterval   units.Time // DRE decay period
	DREAlpha      float64    // DRE decay factor
	FeedbackDelay units.Time // leaf-to-leaf metric propagation delay

	net    *fabric.Network
	dre    []float64 // per-port DRE accumulator
	quant  []uint8   // per-port quantized congestion (0..7)
	leaves map[topo.NodeID]*congaLeaf
	ticker *sim.Ticker
}

type congaLeaf struct {
	uplinkIdx  map[int32]int16 // port → dense uplink index
	congToLeaf [][]uint8       // [dstLeafIdx][uplinkIdx] remote metric
	flowlets   map[uint64]*flowlet
}

type flowlet struct {
	port int32
	tag  int16
	last units.Time
}

// NewCONGA returns CONGA with the paper-standard constants.
func NewCONGA() *CONGA {
	return &CONGA{
		FlowletGap:    500 * units.Microsecond,
		DREInterval:   50 * units.Microsecond,
		DREAlpha:      0.5,
		FeedbackDelay: 10 * units.Microsecond,
	}
}

// Name implements fabric.Balancer.
func (c *CONGA) Name() string { return "CONGA" }

// ShardUnsafe marks CONGA as sequential-only: its leaf-to-leaf congestion
// feedback reads and ages DRE state across shard boundaries.
func (c *CONGA) ShardUnsafe() {}

// BuildTables implements fabric.TableBuilder: ECMP tables plus CONGA's
// per-leaf congestion state, rebuilt on reconvergence.
func (c *CONGA) BuildTables(net *fabric.Network) {
	net.BuildDefaultTables()
	c.net = net
	if c.dre == nil {
		c.dre = make([]float64, len(net.Ports))
		c.quant = make([]uint8, len(net.Ports))
		c.ticker = sim.NewTicker(net.Sim, c.DREInterval, func(units.Time) { c.decay() })
	}
	c.leaves = map[topo.NodeID]*congaLeaf{}
	for _, leaf := range net.Topo.Leaves {
		cl := &congaLeaf{
			uplinkIdx: map[int32]int16{},
			flowlets:  map[uint64]*flowlet{},
		}
		ups := net.LeafUplinks(leaf)
		for i, p := range ups {
			cl.uplinkIdx[p.Index] = int16(i)
		}
		cl.congToLeaf = make([][]uint8, len(net.Topo.Leaves))
		for i := range cl.congToLeaf {
			cl.congToLeaf[i] = make([]uint8, len(ups))
		}
		c.leaves[leaf] = cl
	}
}

// decay applies the DRE discount and refreshes the quantized metrics.
func (c *CONGA) decay() {
	for i := range c.dre {
		c.dre[i] *= 1 - c.DREAlpha
		c.quant[i] = c.quantize(int32(i))
	}
}

// quantize maps a DRE value to 3 bits against the port's rate-delay
// product (τ = interval/α, the estimator's time constant).
func (c *CONGA) quantize(port int32) uint8 {
	p := c.net.Ports[port]
	tau := float64(c.DREInterval) / c.DREAlpha
	capacityBytes := float64(p.Rate) / 8 * tau / float64(units.Second)
	if capacityBytes <= 0 {
		return 0
	}
	q := c.dre[port] / capacityBytes * 8
	if q > 7 {
		q = 7
	}
	return uint8(q)
}

// OnTx implements fabric.TxObserver: feed the DRE and stamp CE on data
// packets crossing fabric links.
func (c *CONGA) OnTx(net *fabric.Network, port *fabric.Port, pkt *fabric.Packet) {
	if net.Topo.Nodes[port.From].Kind == topo.Host || net.Topo.Nodes[port.To].Kind == topo.Host {
		return
	}
	c.dre[port.Index] += float64(pkt.Size)
	if pkt.Kind == fabric.Data {
		if q := c.quant[port.Index]; q > pkt.CE {
			pkt.CE = q
		}
	}
}

// OnArrive implements fabric.ArriveObserver: when data lands at its
// destination leaf, propagate the observed path congestion back to the
// source leaf's table after the feedback delay.
func (c *CONGA) OnArrive(net *fabric.Network, sw *fabric.Switch, pkt *fabric.Packet) {
	if pkt.Kind != fabric.Data || sw.Node != pkt.DstLeaf || pkt.SrcLeaf == pkt.DstLeaf {
		return
	}
	src := c.leaves[pkt.SrcLeaf]
	if src == nil || pkt.LBTag < 0 {
		return
	}
	dstIdx := pkt.DstLeafIdx
	tag := pkt.LBTag
	ce := pkt.CE
	net.Sim.After(c.FeedbackDelay, func() {
		if int(tag) < len(src.congToLeaf[dstIdx]) {
			src.congToLeaf[dstIdx][tag] = ce
		}
	})
}

// Choose implements fabric.Balancer.
func (c *CONGA) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	// CONGA decisions happen at the source leaf for data; everything else
	// (interior switches, ACKs) is ECMP.
	if sw.Node != pkt.SrcLeaf || sw.Kind != topo.Leaf || pkt.Kind != fabric.Data {
		return g.Ports[pkt.Hash%uint32(len(g.Ports))]
	}
	cl := c.leaves[sw.Node]
	now := net.Sim.Now()
	fl := cl.flowlets[pkt.FlowID]
	if fl != nil && now-fl.last < c.FlowletGap && net.Ports[fl.port].Up() {
		fl.last = now
		pkt.LBTag = fl.tag
		return fl.port
	}
	// New flowlet: pick the uplink minimizing max(local DRE, remote metric).
	best := int32(-1)
	var bestTag int16
	bestMetric := uint8(255)
	start := eng.Rng.Intn(len(g.Ports)) // random tie-break rotation
	for k := 0; k < len(g.Ports); k++ {
		port := g.Ports[(start+k)%len(g.Ports)]
		tag, ok := cl.uplinkIdx[port]
		if !ok {
			continue
		}
		m := c.quant[port]
		if int(tag) < len(cl.congToLeaf[pkt.DstLeafIdx]) {
			if r := cl.congToLeaf[pkt.DstLeafIdx][tag]; r > m {
				m = r
			}
		}
		if m < bestMetric {
			bestMetric = m
			best = port
			bestTag = tag
		}
	}
	if best < 0 {
		best = g.Ports[pkt.Hash%uint32(len(g.Ports))]
		bestTag = -1
	}
	if fl == nil {
		fl = &flowlet{}
		cl.flowlets[pkt.FlowID] = fl
	}
	fl.port, fl.tag, fl.last = best, bestTag, now
	pkt.LBTag = bestTag
	return best
}
