package lb

import (
	"sort"

	"drill/internal/fabric"
	"drill/internal/topo"
	"drill/internal/units"
)

// Presto (He et al., SIGCOMM'15) moves load balancing to the sending edge:
// flows are chopped into 64KB flowcells, and each flowcell is source-routed
// round-robin across all shortest paths — fine-grained but load-oblivious.
// After failures the affected paths are pruned and the remainder is used
// with static capacity-proportional weights (WCMP-style), per §3.4's
// description of Presto's failover. The receiver-side shim that restores
// flowcell order is modelled by the transport layer's ShimTimeout.
//
// ACKs and any packet whose source route broke mid-failure fall back to
// ECMP over the default tables.
type Presto struct {
	// CellSize is the flowcell payload size (default 64KiB).
	CellSize units.ByteSize

	// paths[src][dst] is the weight-expanded path list between leaf indexes.
	paths [][][]prestoPath

	flows map[uint64]*prestoFlow
}

type prestoPath struct {
	chans []topo.ChanID
}

type prestoFlow struct {
	offset uint32
}

// NewPresto returns Presto with 64KiB flowcells.
func NewPresto() *Presto {
	return &Presto{CellSize: 64 * units.KiB, flows: map[uint64]*prestoFlow{}}
}

// Name implements fabric.Balancer.
func (p *Presto) Name() string { return "Presto" }

// ShardUnsafe marks Presto as sequential-only: its host send hook assigns
// source routes from spanning-tree state shared across the fabric.
func (p *Presto) ShardUnsafe() {}

// BuildTables implements fabric.TableBuilder: default (ECMP) tables for
// non-source-routed traffic plus the per-leaf-pair weighted path lists.
func (p *Presto) BuildTables(net *fabric.Network) {
	net.BuildDefaultTables()
	nl := len(net.Topo.Leaves)
	p.paths = make([][][]prestoPath, nl)
	for si, src := range net.Topo.Leaves {
		p.paths[si] = make([][]prestoPath, nl)
		for di, dst := range net.Topo.Leaves {
			if si == di {
				continue
			}
			raw := net.Routes.Paths(src, dst)
			if len(raw) == 0 {
				continue
			}
			// Weight = bottleneck capacity, normalized; expand multiplicity.
			caps := make([]units.Rate, len(raw))
			var g int64
			for i, path := range raw {
				var b units.Rate
				for _, cid := range path {
					r := net.Topo.Chan(cid).Rate
					if b == 0 || r < b {
						b = r
					}
				}
				caps[i] = b
				g = gcd64(g, int64(b))
			}
			if g == 0 {
				g = 1
			}
			var list []prestoPath
			for i, path := range raw {
				w := int(int64(caps[i]) / g)
				if w == 0 {
					w = 1
				}
				for k := 0; k < w; k++ {
					list = append(list, prestoPath{chans: path})
				}
			}
			// Deterministic order for reproducibility.
			sort.Slice(list, func(a, b int) bool {
				x, y := list[a].chans, list[b].chans
				for i := 0; i < len(x) && i < len(y); i++ {
					if x[i] != y[i] {
						return x[i] < y[i]
					}
				}
				return len(x) < len(y)
			})
			p.paths[si][di] = list
		}
	}
}

// OnSend implements fabric.SendHook: assign the packet's flowcell to a
// source route. The per-flow random offset decorrelates flows; consecutive
// cells of one flow rotate round-robin, striping the flow across all paths.
func (p *Presto) OnSend(net *fabric.Network, host *fabric.Host, pkt *fabric.Packet) {
	if pkt.Kind != fabric.Data {
		return
	}
	si := net.Topo.LeafIndex(pkt.SrcLeaf)
	di := int(pkt.DstLeafIdx)
	if si == di {
		return // same-leaf traffic has no path choice
	}
	list := p.paths[si][di]
	if len(list) == 0 {
		return
	}
	f := p.flows[pkt.FlowID]
	if f == nil {
		f = &prestoFlow{offset: pkt.Hash}
		p.flows[pkt.FlowID] = f
	}
	cell := int32(pkt.Seq / int64(p.CellSize))
	pkt.CellSeq = cell
	path := list[(uint32(cell)+f.offset)%uint32(len(list))]
	pkt.Path = path.chans
	pkt.PathIdx = 0
}

// Choose implements fabric.Balancer: only reached by ACKs and packets whose
// source route was pruned by a failure — ECMP semantics.
func (p *Presto) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[pkt.Hash%uint32(len(g.Ports))]
}
