// Package lb implements the load-balancing policies the DRILL paper
// compares: ECMP, per-packet Random, per-packet Round-Robin, WCMP, Presto,
// CONGA, the per-flow DRILL strawman, and DRILL itself (via internal/core's
// selector, with the Quiver-based symmetric decomposition for asymmetric
// fabrics). All policies implement fabric.Balancer.
package lb

import (
	"fmt"

	"drill/internal/core"
	"drill/internal/fabric"
)

// ECMP hashes each flow onto one equal-cost next hop — today's de facto
// practice (§2). Flows never change ports, so ECMP never reorders.
type ECMP struct{}

// Name implements fabric.Balancer.
func (ECMP) Name() string { return "ECMP" }

// Choose implements fabric.Balancer.
func (ECMP) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[pkt.Hash%uint32(len(g.Ports))]
}

// Random sprays every packet on a uniformly random equal-cost next hop
// ("Per-packet Random", §3.1): packet granularity, no load awareness.
type Random struct{}

// Name implements fabric.Balancer.
func (Random) Name() string { return "Random" }

// Choose implements fabric.Balancer.
func (Random) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[eng.Rng.Intn(len(g.Ports))]
}

// rrState is a per-engine, per-group round-robin cursor.
type rrState struct{ next int }

// RoundRobin sprays packets over equal-cost next hops in rotation
// ("Per-packet RR"): packet granularity, deterministic, load-oblivious.
type RoundRobin struct{}

// Name implements fabric.Balancer.
func (RoundRobin) Name() string { return "RR" }

// Choose implements fabric.Balancer.
func (RoundRobin) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	st := eng.State(g.ID, func() any { return &rrState{} }).(*rrState)
	p := g.Ports[st.next%len(g.Ports)]
	st.next++
	return p
}

// DRILL applies the DRILL(d,m) selector per packet within the packet's
// forwarding group, comparing the engines' visible queue-byte counters.
// With the default tables (symmetric fabric) there is a single group per
// destination; pair it with the Quiver table builder (NewDRILLAsym) for
// asymmetric topologies.
type DRILL struct {
	D, M int
}

// NewDRILL returns the paper's recommended DRILL(2,1) policy.
func NewDRILL() *DRILL { return &DRILL{D: 2, M: 1} }

// Name implements fabric.Balancer.
func (d *DRILL) Name() string { return fmt.Sprintf("DRILL(%d,%d)", d.D, d.M) }

// Choose implements fabric.Balancer.
func (d *DRILL) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	sel := eng.State(g.ID, func() any {
		return core.NewSelector(d.D, d.M, eng.Rng)
	}).(*core.Selector)
	i := sel.Pick(len(g.Ports), func(q int) int64 {
		return net.Ports[g.Ports[q]].VisibleBytes()
	})
	return g.Ports[i]
}

// pinKey identifies a flow's pin at one switch.
type pinKey struct {
	sw   int32
	flow uint64
}

// PerFlowDRILL is the strawman of §4: a load-aware decision for the first
// packet of each flow, after which the flow is pinned — flow granularity
// with load awareness. Pins live in the switch's (shared) flow table, not
// per engine.
type PerFlowDRILL struct {
	D, M int
	pins map[pinKey]int32
}

// NewPerFlowDRILL returns the per-flow strawman with DRILL(2,1) sampling.
func NewPerFlowDRILL() *PerFlowDRILL {
	return &PerFlowDRILL{D: 2, M: 1, pins: map[pinKey]int32{}}
}

// Name implements fabric.Balancer.
func (p *PerFlowDRILL) Name() string { return "per-flow DRILL" }

// ShardUnsafe marks per-flow DRILL as sequential-only: its per-flow port
// memory is shared across every switch rather than per-shard.
func (p *PerFlowDRILL) ShardUnsafe() {}

// Choose implements fabric.Balancer.
func (p *PerFlowDRILL) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	key := pinKey{sw: int32(sw.Node), flow: pkt.FlowID}
	if port, ok := p.pins[key]; ok {
		if net.Ports[port].Up() {
			return port
		}
		delete(p.pins, key) // repin after a failure
	}
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	sel := eng.State(g.ID, func() any {
		return core.NewSelector(p.D, p.M, eng.Rng)
	}).(*core.Selector)
	i := sel.Pick(len(g.Ports), func(q int) int64 {
		return net.Ports[g.Ports[q]].VisibleBytes()
	})
	port := g.Ports[i]
	p.pins[key] = port
	return port
}
