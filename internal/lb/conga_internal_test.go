package lb

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

func TestCONGADREDecayAndQuantization(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	c := NewCONGA()
	n := fabric.New(s, tp, fabric.Config{Balancer: c})
	// Pick a fabric port (leaf uplink).
	port := n.LeafUplinks(tp.Leaves[0])[0]

	// Saturate: feed the DRE at line rate for several decay periods.
	tau := float64(c.DREInterval) / c.DREAlpha
	lineBytes := float64(port.Rate) / 8 * tau / float64(units.Second)
	c.dre[port.Index] = lineBytes // exactly the rate-time constant product
	c.decay()
	// After one decay: X = lineBytes*(1-α); quantized against lineBytes*8.
	q := c.quant[port.Index]
	if q == 0 || q > 7 {
		t.Fatalf("quantized congestion = %d, want in (0,7]", q)
	}
	// Idle decay drives it back to zero.
	for i := 0; i < 64; i++ {
		c.decay()
	}
	if c.quant[port.Index] != 0 {
		t.Fatalf("DRE did not decay to 0: %d", c.quant[port.Index])
	}
}

func TestCONGAStampsCEOnlyUpward(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	c := NewCONGA()
	n := fabric.New(s, tp, fabric.Config{Balancer: c})
	// Host-facing port must not contribute congestion.
	var hostPort *fabric.Port
	for _, p := range n.Ports {
		if tp.Nodes[p.To].Kind == 0 /* Host */ && tp.Nodes[p.From].Kind != 0 {
			hostPort = p
			break
		}
	}
	pkt := &fabric.Packet{Kind: fabric.Data, Size: 1518}
	before := c.dre[hostPort.Index]
	c.OnTx(n, hostPort, pkt)
	if c.dre[hostPort.Index] != before {
		t.Fatal("CONGA fed a host-facing port's DRE")
	}
	// Fabric port does contribute and stamps CE when congested.
	fport := n.LeafUplinks(tp.Leaves[0])[0]
	c.dre[fport.Index] = 1e12 // force saturation
	c.decay()
	c.OnTx(n, fport, pkt)
	if pkt.CE == 0 {
		t.Fatal("CE not stamped on a congested fabric port")
	}
}

func TestCONGANewFlowletAfterGap(t *testing.T) {
	tp := smallClos()
	s := sim.New(2)
	c := NewCONGA()
	n := fabric.New(s, tp, fabric.Config{Balancer: c})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	mk := func() *fabric.Packet {
		return &fabric.Packet{FlowID: 6, Hash: 77, Kind: fabric.Data,
			SrcLeaf: tp.Leaves[0], DstLeaf: tp.Leaves[1],
			DstLeafIdx: int32(tp.LeafIndex(tp.Leaves[1])), Size: 1518}
	}
	first := c.Choose(n, sw, eng, mk())
	// Saturate the chosen uplink's remote metric via feedback.
	cl := c.leaves[tp.Leaves[0]]
	tag := cl.uplinkIdx[first]
	cl.congToLeaf[tp.LeafIndex(tp.Leaves[1])][tag] = 7
	// Within the gap: sticky despite terrible metric.
	if got := c.Choose(n, sw, eng, mk()); got != first {
		t.Fatal("flowlet moved within gap")
	}
	// After the gap: must avoid the congested uplink.
	s.RunUntil(s.Now() + 2*c.FlowletGap)
	if got := c.Choose(n, sw, eng, mk()); got == first {
		t.Fatal("CONGA ignored remote congestion after flowlet gap")
	}
}

func TestPrestoWeightsInHeterogeneousFabric(t *testing.T) {
	// With doubled links to near spines, Presto's weight-expanded path list
	// must contain proportionally more entries through the doubled links.
	tp := topo.Heterogeneous(topo.HeterogeneousConfig{Spines: 4, Leaves: 4,
		HostsPerLeaf: 2, ExtraLinks: 2})
	s := sim.New(1)
	p := NewPresto()
	_ = fabric.New(s, tp, fabric.Config{Balancer: p})
	si := tp.LeafIndex(tp.Leaves[0])
	di := tp.LeafIndex(tp.Leaves[2])
	list := p.paths[si][di]
	if len(list) == 0 {
		t.Fatal("no Presto paths")
	}
	// All links equal rate here, so expansion is uniform; count distinct
	// first channels: leaf0 has 2+2+1+1 = 6 uplink channels.
	firsts := map[int32]int{}
	for _, path := range list {
		firsts[int32(path.chans[0])]++
	}
	if len(firsts) != 6 {
		t.Fatalf("distinct first hops = %d, want 6", len(firsts))
	}
}
