package lb

import (
	"sort"

	"drill/internal/fabric"
	"drill/internal/topo"
	"drill/internal/units"
)

// WCMP (Zhou et al., EuroSys'14) hashes flows across next hops with static
// weights proportional to the aggregate bottleneck capacity of the shortest
// paths behind each hop — ECMP's fix for asymmetric Clos. Like ECMP it is
// per-flow and load-oblivious; the paper compares against it in the
// heterogeneous-topology experiment (Fig. 13).
type WCMP struct{}

// Name implements fabric.Balancer.
func (WCMP) Name() string { return "WCMP" }

// Choose implements fabric.Balancer: the weighted group pick does all the
// work, since each group holds exactly one port.
func (WCMP) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	g := fabric.GroupForFlow(sw.Groups(pkt.DstLeafIdx), pkt.Hash)
	return g.Ports[0]
}

// BuildTables implements fabric.TableBuilder: one single-port group per
// next hop, weighted by downstream path capacity.
func (WCMP) BuildTables(net *fabric.Network) {
	for _, sw := range net.SwitchList() {
		tables := make([][]fabric.Group, len(net.Topo.Leaves))
		ded := fabric.NewGroupDeduper()
		for li, leaf := range net.Topo.Leaves {
			if sw.Node == leaf {
				continue
			}
			weights := portWeights(net, sw.Node, leaf)
			if len(weights) == 0 {
				continue
			}
			ports := make([]int32, 0, len(weights))
			//drill:allow nondeterminism key collection is order-independent; sorted below
			for p := range weights {
				ports = append(ports, p)
			}
			sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
			groups := make([]fabric.Group, 0, len(ports))
			for _, p := range ports {
				groups = append(groups, fabric.Group{
					ID:     ded.ID([]int32{p}),
					Ports:  []int32{p},
					Weight: weights[p],
				})
			}
			tables[li] = groups
		}
		net.InstallTables(sw, tables, ded.Count())
	}
}

// portWeights sums bottleneck capacities of shortest paths per first-hop
// port and normalizes them to small integers.
func portWeights(net *fabric.Network, src, dst topo.NodeID) map[int32]uint32 {
	caps := map[int32]units.Rate{}
	for _, path := range net.Routes.Paths(src, dst) {
		var bottleneck units.Rate
		for _, cid := range path {
			r := net.Topo.Chan(cid).Rate
			if bottleneck == 0 || r < bottleneck {
				bottleneck = r
			}
		}
		caps[net.PortOfChan(path[0]).Index] += bottleneck
	}
	var g int64
	//drill:allow nondeterminism gcd is commutative and associative
	for _, c := range caps {
		g = gcd64(g, int64(c))
	}
	if g == 0 {
		g = 1
	}
	out := make(map[int32]uint32, len(caps))
	//drill:allow nondeterminism per-key map rebuild is order-independent
	for p, c := range caps {
		w := uint32(int64(c) / g)
		if w == 0 {
			w = 1
		}
		out[p] = w
	}
	return out
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
