package lb

import (
	"fmt"
	"sort"

	"drill/internal/fabric"
	"drill/internal/quiver"
)

// DRILLAsym is the full DRILL design of §3.4: the control plane decomposes
// each switch's paths into symmetric components via the Quiver, the data
// plane hashes flows to a component (capacity-weighted) and runs DRILL(d,m)
// across the component's next hops. On a symmetric fabric the tables
// collapse to one group per destination and behaviour is identical to the
// plain DRILL balancer; with asymmetry it degrades gracefully toward ECMP.
type DRILLAsym struct {
	DRILL
}

// NewDRILLAsym returns DRILL(2,1) with Quiver-based asymmetry handling.
func NewDRILLAsym() *DRILLAsym { return &DRILLAsym{DRILL{D: 2, M: 1}} }

// Name implements fabric.Balancer.
func (d *DRILLAsym) Name() string { return fmt.Sprintf("DRILL(%d,%d)+quiver", d.D, d.M) }

// BuildTables implements fabric.TableBuilder: it installs one forwarding
// group per symmetric component at every switch.
func (d *DRILLAsym) BuildTables(net *fabric.Network) {
	q := quiver.Build(net.Routes)
	net.InstallQuiver(q)
	for _, sw := range net.SwitchList() {
		tables := make([][]fabric.Group, len(net.Topo.Leaves))
		ded := fabric.NewGroupDeduper()
		for li, leaf := range net.Topo.Leaves {
			if sw.Node == leaf {
				continue
			}
			comps := q.Decompose(sw.Node, leaf)
			if len(comps) == 0 {
				continue
			}
			groups := make([]fabric.Group, 0, len(comps))
			for _, c := range comps {
				ports := make([]int32, 0, len(c.FirstHops))
				for _, cid := range c.FirstHops {
					ports = append(ports, net.PortOfChan(cid).Index)
				}
				sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
				groups = append(groups, fabric.Group{
					ID:     ded.ID(ports),
					Ports:  ports,
					Weight: c.Weight,
				})
			}
			tables[li] = groups
		}
		net.InstallTables(sw, tables, ded.Count())
	}
}
