package lb

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

func TestLetFlowSticksWithinGap(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	l := NewLetFlow()
	n := fabric.New(s, tp, fabric.Config{Balancer: l})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	mk := func() *fabric.Packet {
		return &fabric.Packet{FlowID: 8, Hash: 44, Kind: fabric.Data, DstLeafIdx: 1}
	}
	first := l.Choose(n, sw, eng, mk())
	for i := 0; i < 20; i++ {
		s.RunUntil(s.Now() + 20*units.Microsecond)
		if got := l.Choose(n, sw, eng, mk()); got != first {
			t.Fatal("LetFlow moved a flowlet within the gap")
		}
	}
	// After the gap the flowlet may move; over many gaps it must.
	moved := false
	for i := 0; i < 64 && !moved; i++ {
		s.RunUntil(s.Now() + 2*l.Gap)
		if l.Choose(n, sw, eng, mk()) != first {
			moved = true
		}
	}
	if !moved {
		t.Fatal("LetFlow never re-rolled across 64 flowlet gaps (3 ports)")
	}
}

func TestLetFlowCompletesFlows(t *testing.T) {
	tp := smallClos()
	s := sim.New(5)
	n := fabric.New(s, tp, fabric.Config{Balancer: NewLetFlow()})
	r := transport.NewRegistry(s, n, transport.Config{})
	var flows []*transport.Sender
	for i := 0; i < 6; i++ {
		flows = append(flows, r.StartFlow(tp.Hosts[i%3], tp.Hosts[3+i%6], 60*1460, ""))
	}
	s.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("LetFlow flow %d incomplete", i)
		}
	}
	// Flowlet granularity: no reordering expected at light load.
	if frac := r.Stats.DupAcks.FracAtLeast(3); frac > 0.2 {
		t.Fatalf("LetFlow heavy reordering at light load: %.2f", frac)
	}
}

func TestLetFlowAvoidsDownPorts(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	l := NewLetFlow()
	n := fabric.New(s, tp, fabric.Config{Balancer: l})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	pkt := &fabric.Packet{FlowID: 9, Hash: 45, Kind: fabric.Data, DstLeafIdx: 1}
	first := l.Choose(n, sw, eng, pkt)
	// Fail the chosen port's link; the pinned flowlet must move.
	n.FailLink(topo.LinkID(n.Ports[first].Chan/2), true)
	got := l.Choose(n, sw, eng, pkt)
	if got == first {
		t.Fatal("LetFlow kept a failed port")
	}
}
