package lb

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

func allBalancers() []fabric.Balancer {
	return []fabric.Balancer{
		ECMP{}, Random{}, RoundRobin{}, NewDRILL(), NewPerFlowDRILL(),
		NewDRILLAsym(), WCMP{}, NewPresto(), NewCONGA(),
	}
}

func smallClos() *topo.Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{Spines: 3, Leaves: 3, HostsPerLeaf: 3,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
}

func TestAllBalancersCompleteFlows(t *testing.T) {
	for _, bal := range allBalancers() {
		bal := bal
		t.Run(bal.Name(), func(t *testing.T) {
			tp := smallClos()
			s := sim.New(11)
			n := fabric.New(s, tp, fabric.Config{Balancer: bal})
			r := transport.NewRegistry(s, n, transport.Config{})
			var flows []*transport.Sender
			for i := 0; i < 6; i++ {
				src := tp.Hosts[i%9]
				dst := tp.Hosts[(i+4)%9]
				if tp.LeafOf(src) == tp.LeafOf(dst) {
					dst = tp.Hosts[(i+5)%9]
				}
				flows = append(flows, r.StartFlow(src, dst, 80*1460, ""))
			}
			s.Run()
			for i, f := range flows {
				if !f.Done() {
					t.Fatalf("%s: flow %d incomplete (%d bytes)", bal.Name(), i, f.AckedBytes())
				}
			}
		})
	}
}

func TestAllBalancersSurviveFailure(t *testing.T) {
	for _, bal := range allBalancers() {
		bal := bal
		t.Run(bal.Name(), func(t *testing.T) {
			tp := smallClos()
			// Fail one leaf-spine link before building.
			l0 := tp.Leaves[0]
			var s0 topo.NodeID
			for _, nd := range tp.Nodes {
				if nd.Kind == topo.Spine {
					s0 = nd.ID
					break
				}
			}
			tp.FailLink(tp.LinkBetween(l0, s0)[0])
			s := sim.New(13)
			n := fabric.New(s, tp, fabric.Config{Balancer: bal})
			r := transport.NewRegistry(s, n, transport.Config{})
			var flows []*transport.Sender
			for i := 0; i < 6; i++ {
				flows = append(flows, r.StartFlow(tp.Hosts[i%3], tp.Hosts[3+(i%6)], 50*1460, ""))
			}
			s.Run()
			for i, f := range flows {
				if !f.Done() {
					t.Fatalf("%s: flow %d incomplete under failure", bal.Name(), i)
				}
			}
		})
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	n := fabric.New(s, tp, fabric.Config{Balancer: ECMP{}})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	pkt := &fabric.Packet{Hash: 12345, DstLeafIdx: 1}
	first := ECMP{}.Choose(n, sw, eng, pkt)
	for i := 0; i < 20; i++ {
		if got := (ECMP{}).Choose(n, sw, eng, pkt); got != first {
			t.Fatal("ECMP not deterministic per flow")
		}
	}
	// A different hash should (eventually) map elsewhere.
	diff := false
	for h := uint32(0); h < 64 && !diff; h++ {
		p2 := &fabric.Packet{Hash: h, DstLeafIdx: 1}
		if (ECMP{}).Choose(n, sw, eng, p2) != first {
			diff = true
		}
	}
	if !diff {
		t.Fatal("ECMP maps all hashes to one port")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	n := fabric.New(s, tp, fabric.Config{Balancer: RoundRobin{}})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	pkt := &fabric.Packet{Hash: 5, DstLeafIdx: 1}
	seen := map[int32]int{}
	for i := 0; i < 9; i++ {
		seen[RoundRobin{}.Choose(n, sw, eng, pkt)]++
	}
	if len(seen) != 3 {
		t.Fatalf("RR used %d ports, want 3", len(seen))
	}
	for p, c := range seen {
		if c != 3 {
			t.Fatalf("RR port %d used %d times, want 3", p, c)
		}
	}
}

func TestDRILLPrefersShortQueue(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	d := NewDRILL()
	n := fabric.New(s, tp, fabric.Config{Balancer: d, VisFactor: 0})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	pkt := &fabric.Packet{Hash: 5, DstLeafIdx: 1}
	g := fabric.GroupForFlow(sw.Groups(1), 5)
	// Load two of the three uplinks heavily via direct visible-byte bumps.
	hot1, hot2 := n.Ports[g.Ports[0]], n.Ports[g.Ports[1]]
	hot1.VisBytes = 1 << 20
	hot2.VisBytes = 1 << 20
	hits := 0
	for i := 0; i < 200; i++ {
		if d.Choose(n, sw, eng, pkt) == g.Ports[2] {
			hits++
		}
	}
	if hits < 150 {
		t.Fatalf("DRILL picked the empty queue only %d/200 times", hits)
	}
}

func TestDRILLAsymGroupsMatchQuiver(t *testing.T) {
	// Fig. 4 scenario: 3 spines, 4 leaves, fail L0-S0, inspect L3's table
	// toward L1: two groups with weights 1 (via S0) and 2 (via S1,S2).
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 3, Leaves: 4, HostsPerLeaf: 1,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	var s0 topo.NodeID
	for _, nd := range tp.Nodes {
		if nd.Kind == topo.Spine {
			s0 = nd.ID
			break
		}
	}
	tp.FailLink(tp.LinkBetween(tp.Leaves[0], s0)[0])
	s := sim.New(1)
	n := fabric.New(s, tp, fabric.Config{Balancer: NewDRILLAsym()})
	sw := n.Switches[tp.Leaves[3]]
	groups := sw.Groups(int32(tp.LeafIndex(tp.Leaves[1])))
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	w := map[int]uint32{}
	for _, g := range groups {
		w[len(g.Ports)] = g.Weight
	}
	if w[1] != 1 || w[2] != 2 {
		t.Fatalf("weights by size = %v, want {1:1, 2:2}", w)
	}
	// The failure perturbs S0's labels for every pair: L2→L3 also splits
	// into {via S0} and {via S1, S2} (S0's downlinks no longer carry
	// L0-sourced flows, so paths through S0 have different label sets).
	g23 := n.Switches[tp.Leaves[2]].Groups(int32(tp.LeafIndex(tp.Leaves[3])))
	if len(g23) != 2 {
		t.Fatalf("L2→L3 groups = %+v, want 2 components", g23)
	}
}

func TestPrestoAssignsRotatingPaths(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	p := NewPresto()
	n := fabric.New(s, tp, fabric.Config{Balancer: p})
	host := n.Host(tp.Hosts[0])
	dst := tp.Hosts[3]
	paths := map[string]bool{}
	for cell := 0; cell < 3; cell++ {
		pkt := &fabric.Packet{FlowID: 9, Hash: 42, Kind: fabric.Data, Dst: dst,
			Seq: int64(cell) * 64 * 1024, Len: 1460, Size: 1518}
		// Emulate Host.Send's stamping then the hook.
		pkt.SrcLeaf = host.Leaf
		pkt.DstLeaf = tp.LeafOf(dst)
		pkt.DstLeafIdx = int32(tp.LeafIndex(pkt.DstLeaf))
		p.OnSend(n, host, pkt)
		if pkt.Path == nil {
			t.Fatal("Presto left a data packet unrouted")
		}
		if pkt.CellSeq != int32(cell) {
			t.Fatalf("cell = %d, want %d", pkt.CellSeq, cell)
		}
		key := ""
		for _, c := range pkt.Path {
			key += string(rune(c + 1))
		}
		paths[key] = true
	}
	if len(paths) != 3 {
		t.Fatalf("3 consecutive cells used %d distinct paths, want 3", len(paths))
	}
	// Same cell → same path (within a flow, no reordering inside a cell).
	mk := func() *fabric.Packet {
		pkt := &fabric.Packet{FlowID: 9, Hash: 42, Kind: fabric.Data, Dst: dst,
			Seq: 100, Len: 1460, Size: 1518}
		pkt.SrcLeaf = host.Leaf
		pkt.DstLeaf = tp.LeafOf(dst)
		pkt.DstLeafIdx = int32(tp.LeafIndex(pkt.DstLeaf))
		p.OnSend(n, host, pkt)
		return pkt
	}
	a, b := mk(), mk()
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatal("same cell mapped to different paths")
		}
	}
	// ACKs are not source-routed.
	ack := &fabric.Packet{FlowID: 9, Hash: 42, Kind: fabric.Ack, Dst: tp.Hosts[0]}
	ack.SrcLeaf = tp.LeafOf(dst)
	ack.DstLeaf = host.Leaf
	ack.DstLeafIdx = int32(tp.LeafIndex(ack.DstLeaf))
	p.OnSend(n, n.Host(dst), ack)
	if ack.Path != nil {
		t.Fatal("Presto source-routed an ACK")
	}
}

func TestCONGAFlowletStickinessAndGap(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	c := NewCONGA()
	n := fabric.New(s, tp, fabric.Config{Balancer: c})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	mk := func() *fabric.Packet {
		return &fabric.Packet{FlowID: 4, Hash: 99, Kind: fabric.Data,
			SrcLeaf: tp.Leaves[0], DstLeaf: tp.Leaves[1],
			DstLeafIdx: int32(tp.LeafIndex(tp.Leaves[1])), Size: 1518}
	}
	first := c.Choose(n, sw, eng, mk())
	// Within the gap the flowlet sticks even if we load that port's DRE.
	c.OnTx(n, n.Ports[first], mk())
	for i := 0; i < 10; i++ {
		s.RunUntil(s.Now() + 10*units.Microsecond)
		if got := c.Choose(n, sw, eng, mk()); got != first {
			t.Fatalf("flowlet moved within gap at iter %d", i)
		}
	}
	// After the gap a heavily congested port must be avoided.
	s.RunUntil(s.Now() + 2*c.FlowletGap)
	for i := 0; i < 400; i++ { // saturate DRE on `first`
		c.dre[first] += 1 << 14
	}
	c.decay()
	if got := c.Choose(n, sw, eng, mk()); got == first {
		t.Fatal("CONGA kept a saturated uplink after the flowlet gap")
	}
}

func TestCONGAFeedbackUpdatesRemoteTable(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	c := NewCONGA()
	n := fabric.New(s, tp, fabric.Config{Balancer: c})
	dstLeaf := tp.Leaves[1]
	pkt := &fabric.Packet{Kind: fabric.Data, SrcLeaf: tp.Leaves[0], DstLeaf: dstLeaf,
		DstLeafIdx: int32(tp.LeafIndex(dstLeaf)), LBTag: 1, CE: 6}
	c.OnArrive(n, n.Switches[dstLeaf], pkt)
	// Not yet applied.
	cl := c.leaves[tp.Leaves[0]]
	if cl.congToLeaf[pkt.DstLeafIdx][1] != 0 {
		t.Fatal("feedback applied with no delay")
	}
	s.RunUntil(c.FeedbackDelay + 1)
	if cl.congToLeaf[pkt.DstLeafIdx][1] != 6 {
		t.Fatalf("feedback not applied: %d", cl.congToLeaf[pkt.DstLeafIdx][1])
	}
}

func TestWCMPWeightsProportionalToCapacity(t *testing.T) {
	tp := topo.Heterogeneous(topo.HeterogeneousConfig{Spines: 4, Leaves: 4,
		HostsPerLeaf: 1, ExtraLinks: 2})
	s := sim.New(1)
	n := fabric.New(s, tp, fabric.Config{Balancer: WCMP{}})
	sw := n.Switches[tp.Leaves[0]]
	groups := sw.Groups(int32(tp.LeafIndex(tp.Leaves[2])))
	// Leaf0: 2 links each to S0,S1 and 1 each to S2,S3 → 6 single-port
	// groups. Paths to far leaf L2 (connected 2x to S2,S3): capacity per
	// first-hop link is its bottleneck (all 10G) → equal weights.
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6", len(groups))
	}
	for _, g := range groups {
		if len(g.Ports) != 1 {
			t.Fatalf("WCMP group with %d ports", len(g.Ports))
		}
	}
}

func TestPerFlowDRILLPins(t *testing.T) {
	tp := smallClos()
	s := sim.New(1)
	p := NewPerFlowDRILL()
	n := fabric.New(s, tp, fabric.Config{Balancer: p})
	sw := n.Switches[tp.Leaves[0]]
	eng := sw.Engines()[0]
	pkt := &fabric.Packet{FlowID: 77, Hash: 3, DstLeafIdx: 1}
	first := p.Choose(n, sw, eng, pkt)
	for i := 0; i < 30; i++ {
		if got := p.Choose(n, sw, eng, pkt); got != first {
			t.Fatal("per-flow DRILL moved a pinned flow")
		}
	}
}
