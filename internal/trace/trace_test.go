package trace

import (
	"strings"
	"testing"

	"drill/internal/units"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || strings.Contains(name, "?") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v,%v want %v", name, back, ok, k)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

func TestTracerCountsAndRunTag(t *testing.T) {
	ring := NewRing(16)
	tr := New(ring, WithRun(7))
	tr.Packet(Enqueue, 10, 3, 1, 42, 0, 1518, 2)
	tr.Flow(Retransmit, 20, 42, 1460, 0)
	tr.Sample(QueueSample, 30, 3, 1, 0, 5, 7590, 0)
	if got := tr.Count(Enqueue) + tr.Count(Retransmit) + tr.Count(QueueSample); got != 3 {
		t.Fatalf("counts sum = %d, want 3", got)
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Run != 7 {
			t.Fatalf("event run = %d, want 7", ev.Run)
		}
	}
	if evs[0].Kind != Enqueue || evs[0].Flow != 42 || evs[0].QLen != 2 {
		t.Fatalf("bad first event: %+v", evs[0])
	}
}

func TestTracerKindFilter(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring, WithKinds(Drop))
	tr.Packet(Enqueue, 1, 0, 0, 1, 0, 100, 1)
	tr.Packet(Drop, 2, 0, 0, 1, 0, 100, 0)
	if tr.Count(Enqueue) != 0 || tr.Count(Drop) != 1 {
		t.Fatalf("filter leaked: enqueue=%d drop=%d", tr.Count(Enqueue), tr.Count(Drop))
	}
	if ring.Total() != 1 {
		t.Fatalf("sink saw %d events, want 1", ring.Total())
	}
}

func TestNilSinkCountsOnly(t *testing.T) {
	tr := New(nil)
	tr.Packet(Deliver, 5, -1, 0, 9, 0, 64, 0)
	if tr.Count(Deliver) != 1 {
		t.Fatal("nil-sink tracer did not count")
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: units.Time(i)})
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.T != units.Time(6+i) {
			t.Fatalf("event %d has T=%d, want %d (oldest-first order)", i, ev.T, 6+i)
		}
	}
}

func TestCSVSinkOutput(t *testing.T) {
	var b strings.Builder
	s := NewCSV(&b)
	tr := New(s, WithRun(2))
	tr.Packet(Drop, 1234, 5, 1, 99, 2920, 1518, 8)
	tr.Sample(PortUtil, 2000, 5, 1, 3, 0, 0, 0.5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2", len(lines))
	}
	if lines[0] != CSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1234,2,drop,5,1,99,2920,1518,8,0" {
		t.Fatalf("row = %q", lines[1])
	}
	if lines[2] != "2000,2,port-util,5,1,0,3,0,0,0.5" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestJSONLSinkOutput(t *testing.T) {
	var b strings.Builder
	s := NewJSONL(&b)
	tr := New(s)
	tr.Flow(Timeout, 777, 12, 0, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"t_ns":777,"run":0,"event":"timeout","port":-1,"hop":0,"flow":12,"seq":0,"size":0,"qlen":0,"val":0}`
	if got := strings.TrimSpace(b.String()); got != want {
		t.Fatalf("jsonl = %q\nwant   %q", got, want)
	}
}

func TestTeeFansOut(t *testing.T) {
	r1, r2 := NewRing(4), NewRing(4)
	tr := New(Tee(r1, r2))
	tr.Packet(Send, 1, 0, 0, 1, 0, 100, 0)
	if r1.Total() != 1 || r2.Total() != 1 {
		t.Fatalf("tee totals = %d/%d, want 1/1", r1.Total(), r2.Total())
	}
}

// TestDisabledTracerZeroAlloc pins the zero-overhead contract: the exact
// pattern every instrumentation site uses — a nil check guarding an emit —
// performs no allocations when tracing is off.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	now := units.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			tr.Packet(Enqueue, now, 1, 0, 2, 3, 1518, 4)
			tr.Flow(Retransmit, now, 2, 3, 0)
		}
		now++
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledRingZeroAlloc: even with tracing on, the ring sink keeps the
// per-event cost allocation-free, so traced test runs don't distort GC
// behavior.
func TestEnabledRingZeroAlloc(t *testing.T) {
	tr := New(NewRing(1024))
	now := units.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			tr.Packet(Enqueue, now, 1, 0, 2, 3, 1518, 4)
		}
		now++
	})
	if allocs != 0 {
		t.Fatalf("ring-sink tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkTraceOverhead quantifies the per-site cost of the three tracer
// states the data plane can run in: disabled (the production default — one
// branch), counting only, and a full in-memory ring.
func BenchmarkTraceOverhead(b *testing.B) {
	bench := func(name string, tr *Tracer) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tr != nil {
					tr.Packet(Enqueue, units.Time(i), 1, 0, 2, int64(i), 1518, 4)
				}
			}
		})
	}
	bench("disabled", nil)
	bench("count-only", New(nil))
	bench("ring", New(NewRing(4096)))
}
