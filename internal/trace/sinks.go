package trace

import (
	"bufio"
	"io"
	"strconv"
)

// Ring is an in-memory sink keeping the most recent Cap events by value.
// It never allocates after construction, which makes it the sink of choice
// for tests and for report builders that post-process events.
type Ring struct {
	buf   []Event
	next  int
	total int64
	full  bool
}

// NewRing returns a ring sink holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Close implements Sink; it is a no-op.
func (r *Ring) Close() error { return nil }

// Total reports how many events were emitted over the ring's lifetime,
// including any that have since been overwritten.
func (r *Ring) Total() int64 { return r.total }

// Dropped reports how many events were overwritten by newer ones.
func (r *Ring) Dropped() int64 {
	if !r.full {
		return 0
	}
	return r.total - int64(len(r.buf))
}

// Events returns the retained events in emission order. The slice is
// freshly allocated; the ring keeps accepting events afterwards.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// tee fans each event out to several sinks.
type tee struct{ sinks []Sink }

// Tee returns a sink forwarding every event to all of sinks. Close closes
// each in order, returning the first error.
func Tee(sinks ...Sink) Sink { return &tee{sinks: sinks} }

func (t *tee) Emit(ev Event) {
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}

func (t *tee) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CSVHeader is the column schema of the CSV sink, one event per row.
const CSVHeader = "t_ns,run,event,port,hop,flow,seq,size,qlen,val"

// CSVSink streams events as CSV rows. Rows are built with strconv appends
// into a reused buffer, so the cost per event is formatting, not garbage.
type CSVSink struct {
	w   *bufio.Writer
	row []byte
	err error
}

// NewCSV returns a CSV sink over w, writing the header immediately.
func NewCSV(w io.Writer) *CSVSink {
	s := &CSVSink{w: bufio.NewWriterSize(w, 1<<16), row: make([]byte, 0, 128)}
	_, s.err = s.w.WriteString(CSVHeader + "\n")
	return s
}

// Emit implements Sink.
func (s *CSVSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	b := s.row[:0]
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Run), 10)
	b = append(b, ',')
	b = append(b, ev.Kind.String()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Port), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Hop), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Flow, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, ev.Seq, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Size), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.QLen), 10)
	b = append(b, ',')
	b = appendFloat(b, ev.Val)
	b = append(b, '\n')
	s.row = b
	_, s.err = s.w.Write(b)
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// JSONLSink streams events as one JSON object per line. Objects are
// hand-assembled (fixed key order, no reflection) so output is
// deterministic and cheap.
type JSONLSink struct {
	w   *bufio.Writer
	row []byte
	err error
}

// NewJSONL returns a JSON-lines sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), row: make([]byte, 0, 192)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	b := s.row[:0]
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"run":`...)
	b = strconv.AppendInt(b, int64(ev.Run), 10)
	b = append(b, `,"event":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","port":`...)
	b = strconv.AppendInt(b, int64(ev.Port), 10)
	b = append(b, `,"hop":`...)
	b = strconv.AppendInt(b, int64(ev.Hop), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendUint(b, ev.Flow, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, ev.Seq, 10)
	b = append(b, `,"size":`...)
	b = strconv.AppendInt(b, int64(ev.Size), 10)
	b = append(b, `,"qlen":`...)
	b = strconv.AppendInt(b, int64(ev.QLen), 10)
	b = append(b, `,"val":`...)
	b = appendFloat(b, ev.Val)
	b = append(b, "}\n"...)
	s.row = b
	_, s.err = s.w.Write(b)
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// appendFloat renders v compactly: integers without a fraction, everything
// else with the shortest round-trip representation.
func appendFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
