// Package trace is the simulator's packet-lifecycle telemetry layer: a
// nanosecond-resolution event stream covering the full life of a packet
// (send, enqueue, drop, tx-start, link-depart, switch arrival, delivery),
// transport-level anomalies (retransmit, timeout, out-of-order arrival),
// and periodic queue-depth / per-port utilization samples.
//
// The layer is designed to be free when unused: every emit site in the
// data plane is guarded by a nil check on a *Tracer pointer, event payloads
// are plain scalars (no interfaces, no variadics), and the in-memory sinks
// store events by value. A disabled tracer therefore costs one predictable
// branch per site and zero allocations — see TestDisabledTracerZeroAlloc
// and BenchmarkTraceOverhead.
package trace

import (
	"drill/internal/units"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The packet-lifecycle kinds partition a packet's fate: at any
// instant every sent packet is exactly one of queued (Enqueue'd, not yet
// departed), on the wire (LinkDepart without a matching Arrive/Deliver),
// delivered, or dropped — the conservation law the invariant tests check.
const (
	// Send: a host handed a packet to its NIC queue.
	Send Kind = iota
	// Enqueue: a packet was accepted into a port's queue.
	Enqueue
	// Drop: a packet was discarded (full queue, dead link, unreachable).
	Drop
	// TxStart: a queued packet began serializing onto the wire.
	TxStart
	// LinkDepart: a packet finished serialization and entered propagation.
	LinkDepart
	// Arrive: a packet landed at a switch (transit hop).
	Arrive
	// Deliver: a packet landed at its destination host.
	Deliver
	// Retransmit: a sender re-emitted an unacknowledged segment.
	Retransmit
	// Timeout: a sender's retransmission timer fired.
	Timeout
	// OutOfOrder: a receiver saw a packet overtaken on the wire (its
	// emission counter is below the flow's maximum seen).
	OutOfOrder
	// QueueSample: periodic queue-depth sample of one port.
	QueueSample
	// PortUtil: periodic utilization sample of one port (fraction of link
	// capacity transmitted since the previous sample).
	PortUtil

	NumKinds
)

var kindNames = [NumKinds]string{
	"send", "enqueue", "drop", "tx-start", "link-depart", "arrive",
	"deliver", "retransmit", "timeout", "out-of-order", "queue-sample",
	"port-util",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// KindByName resolves a kind name as printed in trace output; ok is false
// for unknown names.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one telemetry record. All fields are scalars so sinks that keep
// events in memory never allocate per event. Fields not meaningful for a
// kind are zero (Port is -1 when no port applies).
type Event struct {
	T    units.Time // simulated time, ns
	Run  int32      // run/cell tag when several runs share one sink
	Kind Kind
	Hop  uint8  // metrics.HopClass of the port, for port events
	Port int32  // fabric.Network port index, -1 if not port-scoped
	Flow uint64 // flow ID, 0 if not flow-scoped
	Seq  int64  // byte offset (data), cumulative ack, or sample counter
	Size int32  // bytes on the wire (packet events); queue bytes (samples)
	QLen int32  // queue depth in packets after the event / at the sample
	Val  float64
	// Val is kind-specific: TxStart = queueing wait in ns; OutOfOrder =
	// emission-counter gap; PortUtil = utilization fraction in [0,1].
}

// Sink consumes emitted events. Sinks are driven by the single simulator
// thread of one run; only Tee'd file sinks shared across sequential runs
// see events from more than one tracer, never concurrently.
type Sink interface {
	Emit(ev Event)
	// Close flushes buffered output. The tracer never calls it; the owner
	// of the sink does, once all runs writing to it have finished.
	Close() error
}

// Tracer tags events with a run ID, filters them by kind, counts them, and
// forwards them to a sink. A nil *Tracer is the disabled state: call sites
// guard every emit with `if tr != nil`, which is the whole fast path.
type Tracer struct {
	sink Sink
	run  int32
	mask uint32 // bit i set = Kind(i) enabled

	counts [NumKinds]int64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithRun tags every event with a run/cell identifier, so sequential runs
// multiplexed into one file sink stay separable.
func WithRun(run int32) Option { return func(t *Tracer) { t.run = run } }

// Enabled reports whether events of kind k pass the tracer's kind mask.
// A sharded run uses this to verify its tracer only carries kinds emitted
// from barrier contexts (QueueSample, PortUtil): Emit's mask check is a
// read-only early return, so disabled kinds are race-free to attempt from
// shard goroutines, but an enabled data-plane kind would mutate the
// per-kind counters from several shards at once.
func (t *Tracer) Enabled(k Kind) bool { return t.mask&(1<<k) != 0 }

// WithKinds restricts the tracer to the given kinds (default: all).
func WithKinds(kinds ...Kind) Option {
	return func(t *Tracer) {
		t.mask = 0
		for _, k := range kinds {
			t.mask |= 1 << k
		}
	}
}

// New builds a tracer over sink. A nil sink is allowed: the tracer then
// only counts events, which is what the invariant tests use.
func New(sink Sink, opts ...Option) *Tracer {
	t := &Tracer{sink: sink, mask: 1<<NumKinds - 1}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Count reports how many events of kind k this tracer has accepted
// (post-filter), whether or not a sink was attached.
func (t *Tracer) Count(k Kind) int64 { return t.counts[k] }

// Emit records one event. Callers must not call Emit on a nil tracer; the
// disabled path is the nil check at the call site.
//
//drill:hotpath
func (t *Tracer) Emit(ev Event) {
	if t.mask&(1<<ev.Kind) == 0 {
		return
	}
	t.counts[ev.Kind]++
	if t.sink != nil {
		ev.Run = t.run
		t.sink.Emit(ev)
	}
}

// Packet emits a packet-lifecycle event; a convenience wrapper keeping the
// hot call sites to one line.
//
//drill:hotpath
func (t *Tracer) Packet(k Kind, now units.Time, port int32, hop uint8, flow uint64, seq int64, size, qlen int32) {
	t.Emit(Event{T: now, Kind: k, Port: port, Hop: hop, Flow: flow, Seq: seq, Size: size, QLen: qlen})
}

// Flow emits a flow-scoped transport event (no port).
//
//drill:hotpath
func (t *Tracer) Flow(k Kind, now units.Time, flow uint64, seq int64, val float64) {
	t.Emit(Event{T: now, Kind: k, Port: -1, Flow: flow, Seq: seq, Val: val})
}

// Sample emits a periodic per-port sample. seq is the sample tick counter;
// for QueueSample qlen/qbytes carry the depth, for PortUtil val carries the
// utilization fraction.
//
//drill:hotpath
func (t *Tracer) Sample(k Kind, now units.Time, port int32, hop uint8, seq int64, qlen, qbytes int32, val float64) {
	t.Emit(Event{T: now, Kind: k, Port: port, Hop: hop, Seq: seq, QLen: qlen, Size: qbytes, Val: val})
}
