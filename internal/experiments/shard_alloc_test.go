package experiments

import "testing"

// TestShardBarrierAllocFree pins the window protocol's steady-state
// allocation ceiling at zero: once outboxes, wire rings, event pools, and
// both domains' packet pools are warm, a cross-shard delivery — two
// boundary crossings and ~25 window barriers per operation — may not
// allocate at all. The barrier machinery (worker command channels,
// WaitGroup handoffs, outbox→ring exchange, arrival re-arms) must run
// entirely on reused storage; a single allocation per op here multiplies
// into millions over a scale run, so this is a ceiling, not a target.
func TestShardBarrierAllocFree(t *testing.T) {
	op, done := shardWindowOp()
	defer done()
	// Warm until everything reaches its steady exchange: retired packets
	// settle into the opposite domain's free list, ring/outbox backing
	// arrays reach their high-water capacity, and — the slow part — each
	// shard's timing wheel completes a full revolution (~4.2ms of sim
	// time) so every calendar bucket's array has grown once.
	for i := 0; i < 5000; i++ {
		op()
	}
	if allocs := testing.AllocsPerRun(500, op); allocs != 0 {
		t.Errorf("cross-shard send+window barrier path allocates %.2f/op at steady state, want 0", allocs)
	}
}
