//go:build !race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector; see skipSlow.
const raceEnabled = false
