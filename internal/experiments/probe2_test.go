package experiments

import (
	"testing"

	"drill/internal/units"
)

// TestProbeReordering diagnoses dup-ACK generation per scheme (Fig. 11a's
// metric) on the small fig6 fabric at 80% load.
func TestProbeReordering(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	for _, name := range []string{"Random", "RR", "Presto before shim", "DRILL w/o shim"} {
		sc, ok := SchemeByName(name)
		if !ok {
			t.Fatalf("no scheme %q", name)
		}
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
		})
		t.Logf("%-18s flows=%d anyDup=%.3f%% dup>=3=%.3f%% retx=%d",
			name, res.DupAcks.Count(),
			100*res.DupAcks.FracAtLeast(1), 100*res.DupAcks.FracAtLeast(3),
			res.Retransmits)
	}
}
