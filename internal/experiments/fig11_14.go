package experiments

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/units"
)

func init() {
	register(&Experiment{
		ID:    "fig11a",
		Title: "Packet reordering: duplicate ACKs per flow at 80% load (Fig. 11a)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "fig11a",
				Title: "Reordering at 80% load",
				Columns: []string{"scheme", "flows w/ dupACKs %", "flows w/ >=3 dupACKs %",
					"flows w/ wire reorder %", "retransmits"}}
			names := []string{"Random", "RR", "Presto before shim", "DRILL w/o shim", "DRILL", "ECMP", "CONGA"}
			var cfgs []RunCfg
			for si, name := range names {
				sc, _ := SchemeByName(name)
				cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: sc,
					Seed: o.Seed + int64(si), Load: 0.8, Warmup: w, Measure: m})
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig11a %s done [%s]", names[i], timing(res))
			})
			for i, res := range results {
				rep.AddRow(names[i],
					fmt.Sprintf("%.2f", 100*res.DupAcks.FracAtLeast(1)),
					fmt.Sprintf("%.2f", 100*res.DupAcks.FracAtLeast(3)),
					fmt.Sprintf("%.2f", 100*res.WireReorders.FracAtLeast(1)),
					fmt.Sprintf("%d", res.Retransmits))
			}
			rep.Note("paper: ECMP and CONGA never reorder; DRILL reorders far less than " +
				"Random/RR at equal granularity; Presto reorders fewer flows but with more dupACKs each")
			return rep
		},
	})

	register(&Experiment{
		ID:    "fig11bc",
		Title: "Single leaf-spine link failure: mean and tail FCT vs load (Fig. 11b,c)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			sw := &fctSweep{topo: fig6Topo(o.Scale), schemes: StdSchemes(),
				loads: sweepLoads(o), warmup: w, measure: m, fail: 1}
			cells := sw.run(o)
			rep := &Report{ID: "fig11bc", Title: "Mean FCT [ms] with one failed leaf-spine link"}
			sw.tabulate(rep, cells, meanFCT)
			rep.Note("tail (p99.99) FCT [ms]:")
			for si, sc := range sw.schemes {
				row := sc.Name
				for li := range sw.loads {
					row += fmt.Sprintf("  %s", fmtMs(tailFCT(cells[si][li].res)))
				}
				rep.Note("%s", row)
			}
			addWinners(rep, sw, cells, meanFCT, "mean FCT")
			return rep
		},
	})

	register(&Experiment{
		ID:    "fig12",
		Title: "Ten random leaf-spine link failures: mean and tail FCT vs load (Fig. 12)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			fails := lerpInt(4, 10, o.Scale) // the small fabric has fewer core links
			sw := &fctSweep{topo: fig6Topo(o.Scale), schemes: StdSchemes(),
				loads: sweepLoads(o), warmup: w, measure: m, fail: fails}
			cells := sw.run(o)
			rep := &Report{ID: "fig12",
				Title: fmt.Sprintf("Mean FCT [ms] with %d failed leaf-spine links", fails)}
			sw.tabulate(rep, cells, meanFCT)
			rep.Note("tail (p99.99) FCT [ms]:")
			for si, sc := range sw.schemes {
				row := sc.Name
				for li := range sw.loads {
					row += fmt.Sprintf("  %s", fmtMs(tailFCT(cells[si][li].res)))
				}
				rep.Note("%s", row)
			}
			rep.Note("paper: DRILL and CONGA handle multiple failures best — both shift " +
				"load off the lost capacity; DRILL via its symmetric-component weights")
			addWinners(rep, sw, cells, meanFCT, "mean FCT")
			return rep
		},
	})

	register(&Experiment{
		ID:    "fig13",
		Title: "Heterogeneous topology (imbalanced striping): FCT vs load (Fig. 13)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			wcmp, _ := SchemeByName("WCMP")
			conga, _ := SchemeByName("CONGA")
			presto, _ := SchemeByName("Presto")
			drillNoShim, _ := SchemeByName("DRILL w/o shim")
			drill, _ := SchemeByName("DRILL")
			sw := &fctSweep{topo: heteroTopo(o.Scale),
				schemes: []Scheme{presto, wcmp, conga, drillNoShim, drill},
				loads:   sweepLoads(o), warmup: w, measure: m}
			cells := sw.run(o)
			rep := &Report{ID: "fig13", Title: "Mean FCT [ms], heterogeneous fabric"}
			sw.tabulate(rep, cells, meanFCT)
			rep.Note("tail (p99.99) FCT [ms]:")
			for si, sc := range sw.schemes {
				row := sc.Name
				for li := range sw.loads {
					row += fmt.Sprintf("  %s", fmtMs(tailFCT(cells[si][li].res)))
				}
				rep.Note("%s", row)
			}
			addWinners(rep, sw, cells, meanFCT, "mean FCT")
			return rep
		},
	})

	register(&Experiment{
		ID:    "fig14",
		Title: "Incast: tail FCT and per-hop queueing/loss (Fig. 14)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			period := lerpTime(500*units.Microsecond, 10*units.Millisecond, o.Scale)
			rep := &Report{ID: "fig14",
				Title: "Incast flows (10KB, 10% of hosts -> 10% of hosts) over background load",
				Columns: []string{"load", "scheme", "incast mean [ms]", "incast p99 [ms]",
					"incast p99.99 [ms]", "hop1 q [µs]", "hop1 loss %", "hop2 loss %"}}
			loads, schemes := o.loads([]float64{0.2, 0.35}), StdSchemes()
			var cfgs []RunCfg
			for _, load := range loads {
				for si, sc := range schemes {
					cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: sc,
						Seed: o.Seed + int64(si), Load: load, Warmup: w, Measure: m,
						IncastPeriod: period})
				}
			}
			incastDist := func(res *RunResult) *metrics.Dist {
				if inc := res.Classes["incast"]; inc != nil {
					return inc
				}
				return &metrics.Dist{}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig14 %s load=%.0f%% incast flows=%d [%s]",
					schemes[i%len(schemes)].Name, loads[i/len(schemes)]*100,
					incastDist(res).Count(), timing(res))
			})
			for i, res := range results {
				inc := incastDist(res)
				rep.AddRow(fmt.Sprintf("%.0f%%", loads[i/len(schemes)]*100), schemes[i%len(schemes)].Name,
					fmtMs(inc.Mean()), fmtMs(inc.Percentile(99)), fmtMs(inc.Percentile(99.99)),
					fmtF(res.Hops.MeanQueueing(metrics.Hop1)),
					fmtF(res.Hops.LossRate(metrics.Hop1)),
					fmtF(res.Hops.LossRate(metrics.Hop2)))
			}
			rep.Note("paper: DRILL reacts to the microburst at the first hop, nearly " +
				"eliminating hop-1 queueing and drops; 2.1x/2.6x lower p99.99 than CONGA/Presto at 20%% load")
			return rep
		},
	})
}
