package experiments

import (
	"testing"

	"drill/internal/trace"
	"drill/internal/units"
)

// lossyCellCfg is the known-lossy cell the transport-health pin runs on:
// per-packet Random spraying (maximal reordering) into 8-packet queues at
// 90% load guarantees drops, retransmissions, and out-of-order arrivals.
func lossyCellCfg(seed int64) RunCfg {
	sc, ok := SchemeByName("Random")
	if !ok {
		panic("experiments: Random scheme missing")
	}
	return RunCfg{
		Topo: fig6Topo(0), Scheme: sc, Seed: seed,
		Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	}
}

// TestTransportHealthPinnedOnLossyCell pins the surfaced transport.Stats
// aggregates three ways on the lossy cell: they must be non-trivial (the
// cell really is lossy), they must equal the tracer's independent event
// counts (the aggregates count the same occurrences the trace layer
// sees), and they must reproduce exactly across runs (they are part of
// the deterministic result surface, not telemetry noise).
func TestTransportHealthPinnedOnLossyCell(t *testing.T) {
	run := func() (*RunResult, *trace.Tracer) {
		cfg := lossyCellCfg(21)
		tr := trace.New(nil) // nil sink: count events only
		cfg.Tracer = tr
		return Run(cfg), tr
	}
	res, tr := run()

	if res.Retransmits == 0 {
		t.Error("lossy cell produced no retransmits; the cell is not exercising loss recovery")
	}
	if res.OutOfOrder == 0 {
		t.Error("Random spraying produced no out-of-order arrivals")
	}
	if res.Drops == 0 {
		t.Error("lossy cell produced no drops")
	}
	if got, want := res.Retransmits, tr.Count(trace.Retransmit); got != want {
		t.Errorf("RunResult.Retransmits = %d, tracer counted %d", got, want)
	}
	if got, want := res.Timeouts, tr.Count(trace.Timeout); got != want {
		t.Errorf("RunResult.Timeouts = %d, tracer counted %d", got, want)
	}
	if got, want := res.OutOfOrder, tr.Count(trace.OutOfOrder); got != want {
		t.Errorf("RunResult.OutOfOrder = %d, tracer counted %d", got, want)
	}

	res2, _ := run()
	if res.Retransmits != res2.Retransmits || res.Timeouts != res2.Timeouts ||
		res.OutOfOrder != res2.OutOfOrder {
		t.Errorf("transport health not reproducible: (%d,%d,%d) vs (%d,%d,%d)",
			res.Retransmits, res.Timeouts, res.OutOfOrder,
			res2.Retransmits, res2.Timeouts, res2.OutOfOrder)
	}

	// The aggregates flow through to the sweep merge path.
	var merged RunResult
	merged.Retransmits = res.Retransmits + res2.Retransmits
	merged.OutOfOrder = res.OutOfOrder + res2.OutOfOrder
	if merged.Retransmits != 2*res.Retransmits || merged.OutOfOrder != 2*res.OutOfOrder {
		t.Error("aggregate merge arithmetic broken")
	}
}
