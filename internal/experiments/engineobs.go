package experiments

import (
	"fmt"
	"strconv"

	"drill/internal/fabric"
	"drill/internal/obs"
	"drill/internal/sim"
	"drill/internal/units"
)

// Engine observatory: the drill_shard_* / drill_window_* / drill_sched_*
// metric families exposing the execution substrate itself — per-shard
// window/barrier counters, the window-width distribution, cross-shard
// exchange traffic, and scheduler internals. Registration is opt-in
// (RunCfg.EngineObs): attaching a plain Obs registry must keep its series
// set — and therefore any obs-inclusive fingerprint — identical between
// the sequential and sharded engines, and these families are inherently
// engine-shaped. Refresh runs on the observer tick, which fires at a
// window barrier with every shard parked, so all reads are race-free; it
// only reads engine state, never steers it.

// engineGaugeSet holds one shard's gauge row.
type engineGaugeSet struct {
	windows, events, critical, busy, stall *obs.Gauge
}

// schedGaugeSet holds one scheduler's internals row.
type schedGaugeSet struct {
	sim                  *sim.Sim
	near, wheel, far     *obs.Gauge
	dispList, dispHeap   *obs.Gauge
	cascades, pours      *obs.Gauge
	poured, occ, pending *obs.Gauge
}

type engineMetrics struct {
	group *sim.ShardGroup
	net   *fabric.Network

	shards   []engineGaugeSet
	exch     [][]*obs.Gauge
	barriers *obs.Gauge
	winCount *obs.Gauge
	winSum   *obs.Gauge
	winP50   *obs.Gauge
	winP90   *obs.Gauge
	winP99   *obs.Gauge
	sched    []schedGaugeSet
}

// engineScope joins the run's scope labels with the family's own labels.
func engineScope(scope, rest string) string {
	if scope == "" {
		return rest
	}
	if rest == "" {
		return scope
	}
	return scope + "," + rest
}

// newEngineMetrics registers the engine families for one run. group and
// net may describe a sequential run (nil group), which registers only the
// scheduler-internals rows under sched="seq".
func newEngineMetrics(reg *obs.Registry, scope string, s *sim.Sim, group *sim.ShardGroup, net *fabric.Network) *engineMetrics {
	em := &engineMetrics{group: group, net: net}
	addSched := func(name string, ss *sim.Sim) {
		l := engineScope(scope, fmt.Sprintf("sched=%q", name))
		em.sched = append(em.sched, schedGaugeSet{
			sim:      ss,
			near:     reg.Gauge("drill_sched_near_total", l, "Schedule calls routed to the near tier."),
			wheel:    reg.Gauge("drill_sched_wheel_total", l, "Schedule calls routed into a wheel bucket."),
			far:      reg.Gauge("drill_sched_far_total", l, "Schedule calls routed to the far overflow heap."),
			dispList: reg.Gauge("drill_sched_dispatch_list_total", l, "Dispatches consumed from the sorted dispatch list."),
			dispHeap: reg.Gauge("drill_sched_dispatch_heap_total", l, "Dispatches popped from the near heap."),
			cascades: reg.Gauge("drill_sched_cascades_total", l, "Far-tier events re-routed as the wheel horizon advanced."),
			pours:    reg.Gauge("drill_sched_pours_total", l, "Non-empty cursor buckets poured at advancement."),
			poured:   reg.Gauge("drill_sched_poured_events_total", l, "Events moved out of wheel buckets by pours."),
			occ:      reg.Gauge("drill_sched_wheel_occupancy", l, "Events currently stored in wheel buckets."),
			pending:  reg.Gauge("drill_sched_pending", l, "Scheduled events not yet dispatched, all tiers."),
		})
	}
	if group == nil {
		addSched("seq", s)
		return em
	}
	addSched("global", s)
	for i, sh := range group.Shards {
		addSched("shard"+strconv.Itoa(i), sh)
	}
	for i := range group.Shards {
		l := engineScope(scope, fmt.Sprintf("shard=%q", strconv.Itoa(i)))
		em.shards = append(em.shards, engineGaugeSet{
			windows:  reg.Gauge("drill_shard_windows_total", l, "Windows in which this shard dispatched events."),
			events:   reg.Gauge("drill_shard_events_total", l, "Events dispatched by this shard."),
			critical: reg.Gauge("drill_shard_critical_windows_total", l, "Windows whose width this shard's earliest event bounded."),
			busy:     reg.Gauge("drill_shard_busy_seconds_total", l, "Wall time this shard spent running windows."),
			stall:    reg.Gauge("drill_shard_stall_seconds_total", l, "Wall time this shard spent parked at barriers."),
		})
	}
	n := len(group.Shards)
	em.exch = make([][]*obs.Gauge, n)
	for src := 0; src < n; src++ {
		em.exch[src] = make([]*obs.Gauge, n)
		for dst := 0; dst < n; dst++ {
			l := engineScope(scope, fmt.Sprintf("src=%q,dst=%q", strconv.Itoa(src), strconv.Itoa(dst)))
			em.exch[src][dst] = reg.Gauge("drill_shard_exchange_total", l,
				"Cross-shard messages exchanged from shard src to shard dst at barriers.")
		}
	}
	em.barriers = reg.Gauge("drill_window_barriers_total", scope, "Exchange barriers executed by the synchronizer.")
	em.winCount = reg.Gauge("drill_window_count", scope, "Windows opened by the synchronizer.")
	em.winSum = reg.Gauge("drill_window_width_ns_sum", scope, "Total sim-time width of all windows, ns.")
	em.winP50 = reg.Gauge("drill_window_width_ns_p50", scope, "Upper bound on the median window width, sim ns.")
	em.winP90 = reg.Gauge("drill_window_width_ns_p90", scope, "Upper bound on the p90 window width, sim ns.")
	em.winP99 = reg.Gauge("drill_window_width_ns_p99", scope, "Upper bound on the p99 window width, sim ns.")
	return em
}

// Refresh publishes the current engine state into the gauges. It runs at
// observer ticks — window barriers, all shards parked — and after the run
// drains (the snapshotter's Final), so every read is race-free.
func (em *engineMetrics) Refresh(units.Time) {
	for _, sg := range em.sched {
		sc := sg.sim.Sched()
		sg.near.Set(float64(sc.Near))
		sg.wheel.Set(float64(sc.Wheel))
		sg.far.Set(float64(sc.Far))
		sg.dispList.Set(float64(sc.DispatchList))
		sg.dispHeap.Set(float64(sc.DispatchHeap))
		sg.cascades.Set(float64(sc.Cascades))
		sg.pours.Set(float64(sc.Pours))
		sg.poured.Set(float64(sc.PouredEvents))
		sg.occ.Set(float64(sg.sim.WheelOccupancy()))
		sg.pending.Set(float64(sg.sim.Pending()))
	}
	if em.group == nil {
		return
	}
	for i, st := range em.group.ShardStats() {
		g := &em.shards[i]
		g.windows.Set(float64(st.Windows))
		g.events.Set(float64(st.Events))
		g.critical.Set(float64(st.Critical))
		g.busy.Set(float64(st.BusyNs) / 1e9)
		g.stall.Set(float64(st.StallNs) / 1e9)
	}
	for src, row := range em.net.ExchangeMatrix() {
		for dst, v := range row {
			em.exch[src][dst].Set(float64(v))
		}
	}
	w := em.group.WindowStats()
	em.barriers.Set(float64(em.group.Barriers()))
	em.winCount.Set(float64(w.Count))
	em.winSum.Set(float64(w.SumNs))
	em.winP50.Set(float64(w.Quantile(0.50)))
	em.winP90.Set(float64(w.Quantile(0.90)))
	em.winP99.Set(float64(w.Quantile(0.99)))
}

// buildEngineReport assembles the post-run engine observatory report. It
// is cheap (a few hundred bytes of plain data) and only reads parked
// state, so every run carries one regardless of EngineObs.
func buildEngineReport(engine string, s *sim.Sim, group *sim.ShardGroup, net *fabric.Network) *obs.EngineReport {
	rep := &obs.EngineReport{Engine: engine}
	schedRow := func(name string, ss *sim.Sim) obs.EngineSched {
		sc := ss.Sched()
		return obs.EngineSched{
			Sched: name, Near: sc.Near, Wheel: sc.Wheel, Far: sc.Far,
			DispatchList: sc.DispatchList, DispatchHeap: sc.DispatchHeap,
			Cascades: sc.Cascades, Pours: sc.Pours, PouredEvents: sc.PouredEvents,
			WheelOccupancy: ss.WheelOccupancy(), Pending: ss.Pending(),
		}
	}
	if group == nil {
		rep.Sched = []obs.EngineSched{schedRow("seq", s)}
		return rep
	}
	for i, st := range group.ShardStats() {
		rep.Shards = append(rep.Shards, obs.EngineShard{
			Shard: i, Windows: st.Windows, Events: st.Events,
			Critical: st.Critical, BusyNs: st.BusyNs, StallNs: st.StallNs,
		})
	}
	w := group.WindowStats()
	rep.Barriers = group.Barriers()
	rep.WindowCount = w.Count
	rep.WindowSumNs = w.SumNs
	rep.WindowP50Ns = w.Quantile(0.50)
	rep.WindowP90Ns = w.Quantile(0.90)
	rep.WindowP99Ns = w.Quantile(0.99)
	rep.Exchange = net.ExchangeMatrix()
	rep.Sched = append(rep.Sched, schedRow("global", s))
	for i, sh := range group.Shards {
		rep.Sched = append(rep.Sched, schedRow("shard"+strconv.Itoa(i), sh))
	}
	return rep
}
