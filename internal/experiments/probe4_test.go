package experiments

import (
	"testing"

	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// TestProbeBurstiness maps arrival burstiness to reordering and to the
// ECMP-vs-DRILL FCT gap.
func TestProbeBurstiness(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	for _, burst := range []int{1, 4, 8} {
		for _, name := range []string{"ECMP", "Random", "DRILL w/o shim"} {
			sc, _ := SchemeByName(name)
			res := runWithBurst(sc, burst)
			t.Logf("burst=%d %-15s mean=%.3fms p99.99=%.2fms anyDup=%.2f%% dup>=3=%.2f%% retx=%d util=%.2f",
				burst, name, res.FCT.Mean(), res.FCT.Percentile(99.99),
				100*res.DupAcks.FracAtLeast(1), 100*res.DupAcks.FracAtLeast(3),
				res.Retransmits, res.CoreUtil)
		}
	}
}

func runWithBurst(sc Scheme, burst int) *RunResult {
	cfg := RunCfg{
		Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
		Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
	}
	// Copy of Run's workload setup with BurstMean override via hook.
	cfg.Hook = func(reg *transport.Registry, until units.Time) {
		g := workload.NewGenerator(reg, workload.Truncate(workload.FacebookCache, 2e6), 0.8, until)
		g.BurstMean = burst
		g.Start()
	}
	cfg.Load = 0 // hook replaces the default generator
	return Run(cfg)
}
