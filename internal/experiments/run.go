package experiments

import (
	"fmt"
	"time"

	"drill/internal/fabric"
	"drill/internal/metrics"
	"drill/internal/obs"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// Scheme is a named load-balancing configuration: the balancer plus the
// receiver-shim setting the paper pairs it with.
type Scheme struct {
	Name string
	New  func() fabric.Balancer
	Shim units.Time // 0 = no reordering shim at receivers
}

// DefaultShim is the hold timeout of the receiver reordering shim when a
// scheme uses one. It is sized to cover the queueing-delay skew between
// equal-cost paths (tens of µs) without materially delaying loss recovery:
// a lost packet's successors are flushed, and TCP's duplicate ACKs flow,
// after at most this hold.
const DefaultShim = 100 * units.Microsecond

// RunCfg fully describes one simulation run.
type RunCfg struct {
	Topo   func() *topo.Topology
	Scheme Scheme
	Seed   int64

	Engines  int // forwarding engines per switch (default 1)
	QueueCap int // per-port packet cap (default fabric's 128)

	// Load and Sizes drive the background Poisson workload; Load 0 disables.
	Load  float64
	Sizes *workload.SizeDist

	Warmup  units.Time
	Measure units.Time

	// DrainFlows lets in-flight flows finish after the measure window (FCTs
	// of measured flows are then complete); capped by DrainLimit.
	DrainLimit units.Time

	// Incast adds the Fig. 14 application with this period (0 = off).
	IncastPeriod units.Time

	// FailLinks fails that many random leaf-uplink links before traffic.
	FailLinks int
	// FailAt, when > 0, fails the links mid-run at this time instead.
	FailAt units.Time
	// InstantReconverge models ideal-DRILL (no OSPF delay).
	InstantReconverge bool

	// Campaign, when non-nil, schedules a scripted fail/restore timeline
	// (flap storms, pod failures, rolling drains — see campaign.go) against
	// the run. Composes with FailLinks/FailAt; every action is a
	// global-class event, so campaigns replay identically on both engines.
	Campaign *Campaign

	// RouteDelay overrides the control plane's reconvergence lag after a
	// failure or recovery (default: fabric's 1ms). Reconvergence is
	// coalesced: all topology events inside one lag window produce a
	// single epoch swap.
	RouteDelay units.Time

	// DisablePool turns off fabric packet recycling for this run (the
	// pre-pool fresh-allocation behaviour). Exists for the byte-identical
	// pooled-vs-unpooled determinism test and for memory profiling.
	DisablePool bool

	// LegacyScheduler runs this simulation on the pre-wheel stack: the
	// plain binary-heap event queue (sim.NewHeapOnly) with per-event
	// closure scheduling in the fabric (fabric.Config.DisableBatch). The
	// wheel+batching stack is byte-identical to it by construction; the
	// scheduler-identity determinism tests hold both to that, and it
	// remains available for bisecting scheduler suspicions.
	LegacyScheduler bool

	// Shards > 0 runs this simulation on the sharded parallel engine:
	// the topology is partitioned into up to that many per-leaf-group
	// shards (topo.Partition), each owning a private scheduler driven by
	// one worker goroutine, synchronized by the conservative time-window
	// protocol in sim.ShardGroup. Results are byte-identical to Shards=0
	// (the sequential engine) at any shard count — the conformance
	// harness in this package holds every supported cell shape to that.
	// Mutually exclusive with LegacyScheduler; the balancer must not be
	// fabric.ShardUnsafe; an attached Tracer may only enable the
	// barrier-driven sampler kinds (QueueSample, PortUtil).
	Shards int

	// SampleQueues enables the 10µs queue-length STDV sampler of §3.2.3.
	SampleQueues bool
	// TrackGRO enables GRO batch accounting.
	TrackGRO bool
	// VisFactor overrides the queue-visibility delay factor (default 1).
	VisFactor float64

	// Tracer, when non-nil, receives this run's packet-lifecycle events
	// (see internal/trace). Nil keeps the data plane on its zero-overhead
	// fast path.
	Tracer *trace.Tracer
	// TraceSample, when > 0 with a Tracer attached, starts the periodic
	// queue-depth / port-utilization sampler at that interval.
	TraceSample units.Time

	// Obs, when non-nil, registers this run's fabric and transport metric
	// families in the registry (scoped by ObsScope labels) and attaches a
	// sim-time snapshotter publishing every ObsSample. Metrics observe and
	// never steer: enabling them changes no result byte (see
	// TestMetricsAreByteIdentical).
	Obs *obs.Registry
	// ObsScope is a pre-rendered label body (e.g. `exp="fig6a",cell="3"`)
	// distinguishing this run's series in a shared registry.
	ObsScope string
	// ObsSample is the snapshot interval (default 100µs).
	ObsSample units.Time
	// EngineObs, with Obs attached, additionally registers the engine
	// observatory families (drill_shard_*, drill_window_*, drill_sched_*)
	// and refreshes them at observer barriers. Opt-in because the series
	// set is engine-shaped: a default registry keeps the same families on
	// both engines, so obs-inclusive fingerprints stay engine-invariant.
	// Like Obs itself, it observes and never steers: enabling it changes
	// no result byte (see conformance.TestEngineTelemetryIsByteIdentical).
	EngineObs bool

	// Synthetic, when non-nil, replaces the Poisson workload (Table 1).
	Synthetic func(reg *transport.Registry, until units.Time) *workload.Synthetic

	// Hook, when non-nil, is invoked at setup to install custom traffic or
	// instrumentation (runs in addition to whatever Load configures).
	Hook func(reg *transport.Registry, until units.Time)
}

// RunResult carries everything the report builders consume.
type RunResult struct {
	FCT          *metrics.Dist // ms, all measured flows
	Classes      map[string]*metrics.Dist
	DupAcks      *metrics.IntHist
	WireReorders *metrics.IntHist
	Hops         *metrics.HopStats

	// UplinkSTDV / DownlinkSTDV are the §3.2.3 queue-balance metrics:
	// time-averaged standard deviation of leaf-uplink queue lengths and of
	// spine-downlink-per-leaf queue lengths, in packets.
	UplinkSTDV, DownlinkSTDV float64

	// Delivered counts packets handed to destination hosts (folded across
	// shards under the sharded engine).
	Delivered int64

	// Sent counts packets hosts handed to their NICs; with QueuedEnd and
	// InFlightEnd it closes the conservation law Sent == Delivered + Drops
	// + QueuedEnd + InFlightEnd at the run's final instant (all folded
	// across shards).
	Sent        int64
	QueuedEnd   int64
	InFlightEnd int64

	// Epochs is the applied control-plane generation count: 1 for the
	// construction epoch plus one per (coalesced) reconvergence.
	Epochs uint64

	Flows       int64
	Drops       int64
	Retransmits int64
	Timeouts    int64
	OutOfOrder  int64 // data packets arriving out of emission order
	GROBatches  int64
	GROSegments int64

	ElephantGbps float64 // mean per-elephant goodput (Synthetic runs)

	// CoreUtil is the measured mean utilization of leaf uplinks during the
	// measurement window (achieved, vs the configured offered Load).
	CoreUtil float64

	Events uint64

	// PacketGets counts packets the transport drew from the fabric's
	// recycling pool; PacketAllocs counts how many of those were fresh heap
	// allocations. Gets - Allocs is the allocation volume pooling avoided.
	PacketGets   int64
	PacketAllocs int64

	// Wall is the host wall-clock duration of the run, setup through
	// drain; SimSpan is the simulated time it covered. Together they give
	// the sim-time/real-time ratio of per-cell progress lines.
	Wall    time.Duration
	SimSpan units.Time

	// Prov is this run's provenance record: scheme, seed, config hash, and
	// headline counters, ready to drop into a manifest. Deterministic
	// fields only — wall time lives in WallNs (and the barrier-stall
	// total in StallNs) and is excluded from determinism fingerprints.
	Prov obs.CellSummary

	// EngineRep is the engine observatory report: per-shard window and
	// barrier counters, the window-width distribution, the cross-shard
	// exchange matrix, and per-scheduler internals. Always populated
	// (sequential runs carry only the scheduler rows); never part of any
	// result fingerprint.
	EngineRep *obs.EngineReport
}

// SimRate returns simulated seconds advanced per wall-clock second.
func (r *RunResult) SimRate() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return r.SimSpan.Seconds() / r.Wall.Seconds()
}

// Run executes one configured simulation and collects its measurements.
// A run is fully self-contained (own event queue, RNG streams, network and
// host state), so distinct runs may execute concurrently; see RunAll.
func Run(cfg RunCfg) *RunResult {
	started := time.Now() //drill:allow simtime wall timing of the whole run for RunResult.Wall, never a sim timestamp
	if cfg.Warmup == 0 {
		cfg.Warmup = 1 * units.Millisecond
	}
	if cfg.Measure == 0 {
		cfg.Measure = 4 * units.Millisecond
	}
	if cfg.DrainLimit == 0 {
		cfg.DrainLimit = 20 * units.Millisecond
	}
	t := cfg.Topo()
	s := sim.New(cfg.Seed)
	if cfg.LegacyScheduler {
		if cfg.Shards > 0 {
			panic("experiments: LegacyScheduler and Shards are mutually exclusive")
		}
		s = sim.NewHeapOnly(cfg.Seed)
	}
	fcfg := fabric.Config{
		Balancer:     cfg.Scheme.New(),
		Engines:      cfg.Engines,
		QueueCap:     cfg.QueueCap,
		VisFactor:    cfg.VisFactor,
		RouteDelay:   cfg.RouteDelay,
		DisablePool:  cfg.DisablePool,
		DisableBatch: cfg.LegacyScheduler,
		Tracer:       cfg.Tracer,
	}
	engine := "sequential"
	var net *fabric.Network
	var group *sim.ShardGroup
	if cfg.Shards > 0 {
		if cfg.Tracer != nil {
			for k := trace.Kind(0); k < trace.NumKinds; k++ {
				if k == trace.QueueSample || k == trace.PortUtil {
					continue
				}
				if cfg.Tracer.Enabled(k) {
					panic("experiments: sharded runs only support the sampler trace kinds (queue-sample, port-util); restrict the tracer with trace.WithKinds")
				}
			}
		}
		// s stays the global (barrier) scheduler; the data plane runs on
		// one private scheduler per shard, all sharing the seed so derived
		// random streams are engine-invariant.
		assign, nsh := t.Partition(cfg.Shards)
		shards := make([]*sim.Sim, nsh)
		for i := range shards {
			shards[i] = sim.New(cfg.Seed)
		}
		net = fabric.NewSharded(s, shards, assign, t, fcfg)
		engine = fmt.Sprintf("sharded/%d", nsh)
		group = &sim.ShardGroup{
			Global:    s,
			Shards:    shards,
			Lookahead: net.ShardLookahead(),
			Exchange:  net.ExchangeShards,
		}
		group.Start()
		defer group.Close()
	} else {
		net = fabric.New(s, t, fcfg)
	}
	if cfg.Tracer != nil && cfg.TraceSample > 0 {
		fabric.StartTraceSampler(net, cfg.TraceSample)
	}
	reg := transport.NewRegistry(s, net, transport.Config{
		ShimTimeout: cfg.Scheme.Shim,
		TrackGRO:    cfg.TrackGRO,
	})
	reg.MeasureFrom = cfg.Warmup
	end := cfg.Warmup + cfg.Measure

	var snap *obs.Snapshotter
	if cfg.Obs != nil {
		every := cfg.ObsSample
		if every == 0 {
			every = 100 * units.Microsecond
		}
		fm := net.EnableMetrics(cfg.Obs, cfg.ObsScope)
		reg.EnableMetrics(cfg.Obs, cfg.ObsScope)
		// Live run progress for scrapes and the drillsim heartbeat: the
		// final value equals RunResult.Events (observer events are excluded
		// from Executed), so summing the family across cell scopes gives the
		// sweep's total event count whether cells are finished or mid-run.
		ev := cfg.Obs.Gauge("drill_run_events", cfg.ObsScope,
			"Events dispatched so far by this run; settles at the run's total.")
		executed := func() uint64 { return s.Executed }
		if group != nil {
			// Observer ticks fire at barriers with every shard parked, so
			// summing the shard counters there is race-free.
			executed = group.Executed
		}
		refresh := []func(units.Time){fm.Refresh, func(units.Time) {
			ev.Set(float64(executed()))
		}}
		if cfg.EngineObs {
			em := newEngineMetrics(cfg.Obs, cfg.ObsScope, s, group, net)
			refresh = append(refresh, em.Refresh)
		}
		snap = obs.StartSnapshotter(s, cfg.Obs, every, refresh...)
	}

	// Pre-run failures.
	if cfg.FailLinks > 0 && cfg.FailAt == 0 {
		failRandomUplinks(t, net, cfg.FailLinks, cfg.Seed, true)
	}
	if cfg.FailLinks > 0 && cfg.FailAt > 0 {
		at := cfg.FailAt
		// Failure injection drains ports across the whole fabric: a
		// barrier-class event under the sharded engine.
		s.AtGlobal(at, func() {
			failRandomUplinks(t, net, cfg.FailLinks, cfg.Seed, cfg.InstantReconverge)
		})
	}
	if cfg.Campaign != nil {
		if err := cfg.Campaign.Install(s, net, t, cfg.Seed, end); err != nil {
			panic("experiments: " + err.Error())
		}
	}

	var syn *workload.Synthetic
	if cfg.Synthetic != nil {
		syn = cfg.Synthetic(reg, end)
	} else if cfg.Load > 0 {
		sizes := cfg.Sizes
		if sizes == nil {
			// Default: the cache-follower trace with its tail truncated so
			// millisecond windows can actually carry the offered load.
			sizes = workload.Truncate(workload.FacebookCache, 2e6)
		}
		g := workload.NewGenerator(reg, sizes, workload.Load(cfg.Load), end)
		g.Start()
	}
	if cfg.IncastPeriod > 0 {
		inc := workload.NewIncast(reg, cfg.IncastPeriod, end)
		inc.Start()
	}
	if cfg.Hook != nil {
		cfg.Hook(reg, end)
	}

	var sampler *queueSampler
	if cfg.SampleQueues {
		sampler = newQueueSampler(net)
		sim.NewTicker(s, 10*units.Microsecond, func(now units.Time) {
			if now >= cfg.Warmup && now <= end {
				sampler.sample()
			}
		})
	}

	// Snapshot uplink byte counters around the measure window for the
	// achieved-utilization metric.
	uplinks := allLeafUplinks(net)
	var txAtWarmup, txAtEnd int64
	// Global class: the snapshots read ports across every shard, which is
	// only legal at a barrier.
	s.AtGlobal(cfg.Warmup, func() {
		for _, p := range uplinks {
			txAtWarmup += p.TxBytes
		}
	})
	s.AtGlobal(end, func() {
		for _, p := range uplinks {
			txAtEnd += p.TxBytes
		}
	})

	if group != nil {
		group.RunUntil(end)
		// Let measured in-flight flows drain so tail FCTs are complete.
		group.RunUntil(end + cfg.DrainLimit)
		group.Close()
		net.FoldShards()
		reg.Fold()
	} else {
		s.RunUntil(end)
		s.RunUntil(end + cfg.DrainLimit)
	}
	s.Halt()
	if snap != nil {
		// Publish the terminal state even if the run ended mid-interval.
		snap.Final(s.Now())
		snap.Stop()
	}

	var coreCap float64
	for _, p := range uplinks {
		coreCap += float64(p.Rate)
	}
	coreUtil := 0.0
	if coreCap > 0 {
		coreUtil = float64(txAtEnd-txAtWarmup) * 8 / (coreCap * cfg.Measure.Seconds())
	}

	res := &RunResult{
		FCT:          &reg.Stats.FCT,
		Classes:      reg.Stats.FCTByClass,
		DupAcks:      &reg.Stats.DupAcks,
		WireReorders: &reg.Stats.WireReorders,
		Hops:         &net.Hops,
		Delivered:    net.Delivered,
		Sent:         net.Sent,
		QueuedEnd:    net.QueuedPackets(),
		InFlightEnd:  net.InFlightPackets(),
		Epochs:       net.EpochSeq(),
		Flows:        reg.Stats.FlowsStarted,
		Drops:        net.Hops.TotalDrops(),
		Retransmits:  reg.Stats.Retransmits,
		Timeouts:     reg.Stats.Timeouts,
		OutOfOrder:   reg.Stats.OutOfOrder,
		GROBatches:   reg.Stats.GROBatches,
		GROSegments:  reg.Stats.GROSegments,
		CoreUtil:     coreUtil,
		Events:       runExecuted(s, group),
		PacketGets:   net.Pool().Gets,
		PacketAllocs: net.Pool().News,
		Wall:         time.Since(started), //drill:allow simtime wall timing of the whole run for RunResult.Wall, never a sim timestamp
		SimSpan:      end + cfg.DrainLimit,
	}
	if sampler != nil {
		res.UplinkSTDV = sampler.up.Mean()
		res.DownlinkSTDV = sampler.down.Mean()
	}
	if syn != nil {
		res.ElephantGbps = syn.ElephantGoodput(cfg.Measure + cfg.DrainLimit)
	}
	res.EngineRep = buildEngineReport(engine, s, group, net)
	res.Prov = obs.CellSummary{
		Scheme:      cfg.Scheme.Name,
		Seed:        cfg.Seed,
		Load:        cfg.Load,
		Engine:      engine,
		ConfigHash:  obs.ConfigHash(provConfig(cfg)),
		Events:      res.Events,
		Flows:       res.Flows,
		Drops:       res.Drops,
		Retransmits: res.Retransmits,
		Timeouts:    res.Timeouts,
		OutOfOrder:  res.OutOfOrder,
		WallNs:      res.Wall.Nanoseconds(),
	}
	if res.FCT.Count() > 0 {
		res.Prov.FCTMeanUs = res.FCT.Mean() * 1000 // Stats.FCT is in ms
		res.Prov.FCTP99Us = res.FCT.Percentile(99) * 1000
	}
	if group != nil {
		// Barrier-overhead provenance: Windows and Imbalance are
		// deterministic (pure functions of seed and partition); StallNs is
		// wall-derived and treated exactly like WallNs by determinism
		// comparisons.
		res.Prov.Windows = res.EngineRep.WindowCount
		res.Prov.Imbalance = res.EngineRep.Imbalance()
		var stall int64
		for _, sh := range res.EngineRep.Shards {
			stall += sh.StallNs
		}
		res.Prov.StallNs = stall
	}
	return res
}

// provConfig is the hashable view of a RunCfg: every behaviour-relevant
// scalar field, none of the function or pointer fields (topology builders
// and hooks identify themselves through the scheme/experiment names).
// Feeding it to obs.ConfigHash gives two runs the same hash iff they were
// configured identically.
func provConfig(cfg RunCfg) any {
	return struct {
		Scheme            string
		Shim              int64
		Seed              int64
		Engines           int
		QueueCap          int
		Load              float64
		WarmupNs          int64
		MeasureNs         int64
		DrainNs           int64
		IncastNs          int64
		FailLinks         int
		FailAtNs          int64
		InstantReconverge bool
		Campaign          string
		RouteDelayNs      int64
		DisablePool       bool
		LegacyScheduler   bool
		SampleQueues      bool
		TrackGRO          bool
		VisFactor         float64
		Synthetic         bool
		Shards            int
	}{
		Scheme: cfg.Scheme.Name, Shim: int64(cfg.Scheme.Shim), Seed: cfg.Seed,
		Engines: cfg.Engines, QueueCap: cfg.QueueCap, Load: cfg.Load,
		WarmupNs: int64(cfg.Warmup), MeasureNs: int64(cfg.Measure),
		DrainNs: int64(cfg.DrainLimit), IncastNs: int64(cfg.IncastPeriod),
		FailLinks: cfg.FailLinks, FailAtNs: int64(cfg.FailAt),
		InstantReconverge: cfg.InstantReconverge,
		Campaign:          cfg.Campaign.Fingerprint(),
		RouteDelayNs:      int64(cfg.RouteDelay),
		DisablePool:       cfg.DisablePool,
		SampleQueues:      cfg.SampleQueues, TrackGRO: cfg.TrackGRO,
		VisFactor: cfg.VisFactor, Synthetic: cfg.Synthetic != nil,
		Shards: cfg.Shards,
	}
}

// runExecuted reports the run's dispatched-event total: the one scheduler's
// count sequentially, the global+shard sum under the sharded engine (the
// event-to-scheduler mapping is one-to-one, so the totals agree).
func runExecuted(s *sim.Sim, group *sim.ShardGroup) uint64 {
	if group != nil {
		return group.Executed()
	}
	return s.Executed
}

// allLeafUplinks collects every leaf's fabric-facing output ports.
func allLeafUplinks(net *fabric.Network) []*fabric.Port {
	var out []*fabric.Port
	for _, leaf := range net.Topo.Leaves {
		out = append(out, net.LeafUplinks(leaf)...)
	}
	return out
}

// failRandomUplinks fails n distinct leaf-to-fabric links, deterministically
// per seed.
func failRandomUplinks(t *topo.Topology, net *fabric.Network, n int, seed int64, instant bool) {
	rng := sim.New(seed).Stream(0xfa11)
	var cands []topo.LinkID
	for _, l := range t.Links {
		if !l.Up {
			continue
		}
		ka, kb := t.Nodes[l.A].Kind, t.Nodes[l.B].Kind
		if ka == topo.Host || kb == topo.Host {
			continue
		}
		if ka == topo.Leaf || kb == topo.Leaf {
			cands = append(cands, l.ID)
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		net.FailLink(cands[i], instant)
	}
}

// queueSampler implements the §3.2.3 metric: every 10µs, the standard
// deviation of each leaf's uplink queue lengths and of the fabric downlink
// queues pointing at each leaf.
type queueSampler struct {
	upGroups   [][]*fabric.Port
	downGroups [][]*fabric.Port
	up, down   metrics.Welford
	scratch    []int32
}

func newQueueSampler(net *fabric.Network) *queueSampler {
	qs := &queueSampler{}
	for _, leaf := range net.Topo.Leaves {
		if ups := net.LeafUplinks(leaf); len(ups) > 1 {
			qs.upGroups = append(qs.upGroups, ups)
		}
		if downs := net.DownlinksTo(leaf); len(downs) > 1 {
			qs.downGroups = append(qs.downGroups, downs)
		}
	}
	return qs
}

func (qs *queueSampler) sample() {
	for _, g := range qs.upGroups {
		qs.up.Add(qs.stdv(g))
	}
	for _, g := range qs.downGroups {
		qs.down.Add(qs.stdv(g))
	}
}

func (qs *queueSampler) stdv(ports []*fabric.Port) float64 {
	qs.scratch = qs.scratch[:0]
	for _, p := range ports {
		qs.scratch = append(qs.scratch, p.QueueLen())
	}
	return metrics.StdDevInt32(qs.scratch)
}
