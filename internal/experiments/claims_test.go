package experiments

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/lb"
	"drill/internal/units"
)

// aliases keeping the claims readable.
type fabricBalancer = fabric.Balancer

func lbNewDRILL() *lb.DRILL { return lb.NewDRILL() }

// These tests lock in the paper's directional claims on fast, tiny
// configurations: they are the regression guard that the reproduction
// keeps producing the right *shape* (who wins), independent of absolute
// numbers. Each uses pooled seeds to damp noise.

func claimRun(t *testing.T, scheme string, load float64, seeds int, mut func(*RunCfg)) *RunResult {
	t.Helper()
	sc, ok := SchemeByName(scheme)
	if !ok {
		t.Fatalf("no scheme %q", scheme)
	}
	var merged *RunResult
	for s := 0; s < seeds; s++ {
		cfg := RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: int64(s + 1), Load: load,
			Warmup:  200 * units.Microsecond,
			Measure: 1500 * units.Microsecond,
		}
		if mut != nil {
			mut(&cfg)
		}
		res := Run(cfg)
		if merged == nil {
			merged = res
		} else {
			merged.FCT.AddDist(res.FCT)
			merged.Drops += res.Drops
			for h := range merged.Hops.QueueingNs {
				merged.Hops.QueueingNs[h] += res.Hops.QueueingNs[h]
				merged.Hops.Packets[h] += res.Hops.Packets[h]
				merged.Hops.Drops[h] += res.Hops.Drops[h]
			}
		}
	}
	return merged
}

func TestClaimDRILLCutsUpstreamQueueing(t *testing.T) {
	skipSlow(t, "slow directional claim")
	// §4 / Fig. 6c: DRILL's benefit is concentrated in hop-1 queues.
	ecmp := claimRun(t, "ECMP", 0.8, 2, nil)
	dr := claimRun(t, "DRILL", 0.8, 2, nil)
	e1, d1 := ecmp.Hops.MeanQueueing(1), dr.Hops.MeanQueueing(1)
	if d1 >= e1 {
		t.Fatalf("DRILL hop1 queueing %.2fus not below ECMP %.2fus", d1, e1)
	}
	if e1 < 1.5*d1 {
		t.Fatalf("DRILL hop1 advantage too small: ECMP %.2fus vs DRILL %.2fus", e1, d1)
	}
}

func TestClaimDRILLEliminatesCoreDrops(t *testing.T) {
	skipSlow(t, "slow directional claim")
	// Fig. 14c's essence: under load, ECMP loses packets at hops 1-2;
	// DRILL's balancing nearly eliminates those drops.
	ecmp := claimRun(t, "ECMP", 0.8, 2, nil)
	dr := claimRun(t, "DRILL", 0.8, 2, nil)
	eCore := ecmp.Hops.Drops[1] + ecmp.Hops.Drops[4]
	dCore := dr.Hops.Drops[1] + dr.Hops.Drops[4]
	if eCore == 0 {
		t.Skip("no core drops under ECMP in this configuration")
	}
	if dCore*10 > eCore {
		t.Fatalf("DRILL core drops %d not ≪ ECMP %d", dCore, eCore)
	}
}

func TestClaimQueueBalanceOrdering(t *testing.T) {
	skipSlow(t, "slow directional claim")
	// Fig. 2: ECMP ≫ Random > DRILL(2,1) in queue-length STDV.
	stdv := func(scheme string) float64 {
		res := claimRun(t, scheme, 0.8, 1, func(c *RunCfg) {
			c.SampleQueues = true
			c.Topo = stdvTopo(0)
			c.DrainLimit = 1 * units.Millisecond
		})
		return res.UplinkSTDV
	}
	e, r := stdv("ECMP"), stdv("Random")
	d := func() float64 {
		res := claimRun(t, "DRILL w/o shim", 0.8, 1, func(c *RunCfg) {
			c.SampleQueues = true
			c.Topo = stdvTopo(0)
			c.DrainLimit = 1 * units.Millisecond
		})
		return res.UplinkSTDV
	}()
	if !(e > 5*r) {
		t.Errorf("ECMP STDV %.2f not ≫ Random %.2f", e, r)
	}
	if !(d < r) {
		t.Errorf("DRILL STDV %.2f not below Random %.2f", d, r)
	}
}

func TestClaimShimRemovesSpuriousRetransmits(t *testing.T) {
	skipSlow(t, "slow directional claim")
	// §3.3: with the shim, reordering no longer reaches TCP, so
	// retransmissions collapse to loss-driven ones only.
	noShim := claimRun(t, "DRILL w/o shim", 0.8, 1, nil)
	shim := claimRun(t, "DRILL", 0.8, 1, nil)
	if shim.Retransmits*2 > noShim.Retransmits {
		t.Fatalf("shim did not cut retransmits: %d vs %d",
			shim.Retransmits, noShim.Retransmits)
	}
}

func TestClaimECMPNeverReorders(t *testing.T) {
	skipSlow(t, "slow directional claim")
	res := claimRun(t, "ECMP", 0.8, 1, nil)
	if got := res.WireReorders.FracAtLeast(1); got != 0 {
		t.Fatalf("ECMP wire-reordered %.3f of flows; must be 0", got)
	}
}

func TestClaimQuiverNotWorseUnderFailure(t *testing.T) {
	skipSlow(t, "slow directional claim")
	// §3.4: with one failed link, Quiver-DRILL must not lose meaningfully
	// to naive per-packet DRILL that ignores the asymmetry (pooled seeds).
	naiveScheme := Scheme{Name: "naive", New: func() fabricBalancer { return lbNewDRILL() }}
	var naive, quiver *RunResult
	for s := 0; s < 3; s++ {
		cfgN := RunCfg{Topo: fig6Topo(0), Scheme: naiveScheme, Seed: int64(s + 1),
			Load: 0.7, Warmup: 200 * units.Microsecond,
			Measure: 1500 * units.Microsecond, FailLinks: 1}
		cfgQ := cfgN
		cfgQ.Scheme = mustScheme("DRILL w/o shim")
		rn, rq := Run(cfgN), Run(cfgQ)
		if naive == nil {
			naive, quiver = rn, rq
		} else {
			naive.FCT.AddDist(rn.FCT)
			quiver.FCT.AddDist(rq.FCT)
		}
	}
	if quiver.FCT.Mean() > naive.FCT.Mean()*1.2 {
		t.Fatalf("quiver DRILL mean %.3fms much worse than naive %.3fms",
			quiver.FCT.Mean(), naive.FCT.Mean())
	}
}
