package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Bench regression guard: DiffBench compares a fresh BenchReport against
// the committed baseline with tolerances wide enough to absorb runner
// noise but tight enough to catch a real hot-path regression. CI runs it
// with -strict as a blocking gate: a regression turns the build red.
// Wall-clock rates still depend on the machine that produced each
// snapshot, so the diff reports — as warnings, never failures — when the
// two snapshots disagree on CPU count or GOMAXPROCS.

const (
	// BenchEvRateTol is the relative events/s slowdown tolerated before a
	// cell is flagged (10%: same-hardware noise on the multi-second cells
	// stays in the low single digits).
	BenchEvRateTol = 0.10
	// BenchAllocsTol is the absolute allocs/event increase tolerated
	// (+0.1: the steady state is ~0.02 allocs/event, so a tenth of an
	// allocation per event is a structural change, not jitter — the
	// deterministic event counts make this column stable).
	BenchAllocsTol = 0.1
)

// BenchFinding is one compared metric of one cell.
type BenchFinding struct {
	Cell     string  `json:"cell"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Delta is relative for rates (fraction of baseline), absolute for
	// allocs/event.
	Delta     float64 `json:"delta"`
	Regressed bool    `json:"regressed"`
	Note      string  `json:"note,omitempty"`
}

// BenchDiff is the full comparison document.
type BenchDiff struct {
	BaselineSeed int64          `json:"baseline_seed"`
	CurrentSeed  int64          `json:"current_seed"`
	Findings     []BenchFinding `json:"findings"`
	Regressions  int            `json:"regressions"`
}

// DiffBench compares current against baseline cell by cell (matched by
// name) plus the micro allocs/op rows.
func DiffBench(baseline, current *BenchReport) *BenchDiff {
	d := &BenchDiff{BaselineSeed: baseline.Seed, CurrentSeed: current.Seed}
	add := func(f BenchFinding) {
		if f.Regressed {
			d.Regressions++
		}
		d.Findings = append(d.Findings, f)
	}

	// Machine mismatch is a warning, not a regression: the events/s
	// columns are only meaningful between snapshots from comparable
	// hardware, and CI containers often differ from the baseline machine.
	if baseline.NumCPU != current.NumCPU || baseline.GoMaxProcs != current.GoMaxProcs {
		add(BenchFinding{Cell: "machine", Metric: "cpus",
			Baseline: float64(baseline.NumCPU), Current: float64(current.NumCPU),
			Note: fmt.Sprintf("snapshots from different machines (num_cpu %d/gomaxprocs %d vs %d/%d): events/s deltas are advisory",
				baseline.NumCPU, baseline.GoMaxProcs, current.NumCPU, current.GoMaxProcs)})
	}

	cur := make(map[string]BenchCellResult, len(current.Cells))
	for _, c := range current.Cells {
		cur[c.Name] = c
	}
	for _, b := range baseline.Cells {
		c, ok := cur[b.Name]
		if !ok {
			add(BenchFinding{Cell: b.Name, Metric: "present", Regressed: true,
				Note: "cell missing from current report"})
			continue
		}
		delete(cur, b.Name)

		// events/s: relative, slower-only (faster is progress, not noise
		// to flag — but it is still reported for the trend line).
		f := BenchFinding{Cell: b.Name, Metric: "events_per_sec",
			Baseline: b.EventsPerSec, Current: c.EventsPerSec}
		if b.EventsPerSec > 0 {
			f.Delta = (c.EventsPerSec - b.EventsPerSec) / b.EventsPerSec
			f.Regressed = f.Delta < -BenchEvRateTol
		}
		add(f)

		// allocs/event: absolute increase.
		f = BenchFinding{Cell: b.Name, Metric: "allocs_per_event",
			Baseline: b.AllocsPerEvent, Current: c.AllocsPerEvent,
			Delta: c.AllocsPerEvent - b.AllocsPerEvent}
		f.Regressed = f.Delta > BenchAllocsTol
		add(f)

		// Deterministic columns: same seed must reproduce event counts
		// exactly; a drift is information (the sim changed), never noise.
		if baseline.Seed == current.Seed && b.Events != c.Events {
			add(BenchFinding{Cell: b.Name, Metric: "events",
				Baseline: float64(b.Events), Current: float64(c.Events),
				Note: "event count changed at equal seed: the simulation's behaviour changed"})
		}
	}
	for name := range cur {
		add(BenchFinding{Cell: name, Metric: "present",
			Note: "new cell, no baseline"})
	}

	micro := []struct {
		name     string
		base, cu float64
	}{
		{"micro.timer_reset_stop", baseline.Micro.TimerResetStop, current.Micro.TimerResetStop},
		{"micro.pool_get_put", baseline.Micro.PoolGetPut, current.Micro.PoolGetPut},
		{"micro.send_deliver", baseline.Micro.SendDeliver, current.Micro.SendDeliver},
		{"micro.shard_window", baseline.Micro.ShardWindow, current.Micro.ShardWindow},
	}
	for _, m := range micro {
		add(BenchFinding{Cell: "micro", Metric: m.name, Baseline: m.base, Current: m.cu,
			Delta: m.cu - m.base, Regressed: m.cu-m.base > BenchAllocsTol})
	}
	return d
}

// Format renders the diff as an aligned text table with a verdict line.
func (d *BenchDiff) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff (baseline seed %d, current seed %d)\n", d.BaselineSeed, d.CurrentSeed)
	fmt.Fprintf(&b, "%-16s %-22s %14s %14s %10s  %s\n", "cell", "metric", "baseline", "current", "delta", "verdict")
	for _, f := range d.Findings {
		verdict := "ok"
		if f.Regressed {
			verdict = "REGRESSED"
		}
		delta := fmt.Sprintf("%+.3g", f.Delta)
		if f.Metric == "events_per_sec" {
			delta = fmt.Sprintf("%+.1f%%", f.Delta*100)
		}
		fmt.Fprintf(&b, "%-16s %-22s %14.6g %14.6g %10s  %s", f.Cell, f.Metric, f.Baseline, f.Current, delta, verdict)
		if f.Note != "" {
			fmt.Fprintf(&b, " (%s)", f.Note)
		}
		b.WriteByte('\n')
	}
	if d.Regressions == 0 {
		fmt.Fprintf(&b, "verdict: no regressions (events/s tol ±%.0f%%, allocs/event tol +%.1f)\n",
			BenchEvRateTol*100, BenchAllocsTol)
	} else {
		fmt.Fprintf(&b, "verdict: %d regression(s) (events/s tol ±%.0f%%, allocs/event tol +%.1f)\n",
			d.Regressions, BenchEvRateTol*100, BenchAllocsTol)
	}
	return b.String()
}

// FormatMarkdown renders the diff as a GitHub-flavored markdown table,
// the shape CI appends to $GITHUB_STEP_SUMMARY.
func (d *BenchDiff) FormatMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench diff (baseline seed %d, current seed %d)\n\n", d.BaselineSeed, d.CurrentSeed)
	b.WriteString("| cell | metric | baseline | current | delta | verdict |\n")
	b.WriteString("|------|--------|---------:|--------:|------:|---------|\n")
	for _, f := range d.Findings {
		verdict := "ok"
		if f.Regressed {
			verdict = "**REGRESSED**"
		}
		delta := fmt.Sprintf("%+.3g", f.Delta)
		if f.Metric == "events_per_sec" {
			delta = fmt.Sprintf("%+.1f%%", f.Delta*100)
		}
		fmt.Fprintf(&b, "| %s | %s | %.6g | %.6g | %s | %s |\n",
			f.Cell, f.Metric, f.Baseline, f.Current, delta, verdict)
		if f.Note != "" {
			fmt.Fprintf(&b, "| | | | | | %s |\n", f.Note)
		}
	}
	if d.Regressions == 0 {
		fmt.Fprintf(&b, "\n**Verdict: no regressions** (events/s tol ±%.0f%%, allocs/event tol +%.1f)\n",
			BenchEvRateTol*100, BenchAllocsTol)
	} else {
		fmt.Fprintf(&b, "\n**Verdict: %d regression(s)** (events/s tol ±%.0f%%, allocs/event tol +%.1f)\n",
			d.Regressions, BenchEvRateTol*100, BenchAllocsTol)
	}
	return b.String()
}

// ReadBenchReport loads a BENCH_*.json snapshot.
func ReadBenchReport(path string) (*BenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, BenchSchemaVersion)
	}
	return &rep, nil
}
