package experiments

import (
	"strings"
	"testing"

	"drill/internal/obs"
	"drill/internal/units"
)

// engineSeries counts the snapshot's series per engine-observatory family
// prefix (drill_shard_, drill_sched_, drill_window_).
func engineSeries(s *obs.Snapshot, prefix string) int {
	n := 0
	for i := range s.Points {
		if strings.HasPrefix(s.Points[i].Name, prefix) {
			n++
		}
	}
	return n
}

// TestEngineObsOptIn pins the opt-in contract the conformance fingerprint
// relies on: a plain Obs registry registers no engine families at all —
// the series set stays engine-invariant — while EngineObs registers the
// full observatory, populated by the run.
func TestEngineObsOptIn(t *testing.T) {
	cfg := tinySweepCfgs()[1]
	cfg.Shards = 2

	plain := cfg
	plain.Obs = obs.NewRegistry(8)
	plain.ObsScope = `cell="0"`
	plain.ObsSample = 50 * units.Microsecond
	Run(plain)
	snap := plain.Obs.Capture(0)
	for _, prefix := range []string{"drill_shard_", "drill_sched_", "drill_window_"} {
		if n := engineSeries(snap, prefix); n != 0 {
			t.Errorf("EngineObs off: %d %s* series registered, want 0", n, prefix)
		}
	}

	instr := cfg
	instr.Obs = obs.NewRegistry(8)
	instr.ObsScope = `cell="0"`
	instr.ObsSample = 50 * units.Microsecond
	instr.EngineObs = true
	res := Run(instr)
	snap = instr.Obs.Capture(0)
	nsh := len(res.EngineRep.Shards)
	if nsh == 0 {
		t.Fatal("sharded run produced no shard rows")
	}
	// 5 per-shard families plus the src×dst exchange family.
	if want := 5*nsh + nsh*nsh; engineSeries(snap, "drill_shard_") != want {
		t.Errorf("drill_shard_* series = %d, want %d", engineSeries(snap, "drill_shard_"), want)
	}
	// 10 scheduler internals for the global scheduler and each shard.
	if want := 10 * (nsh + 1); engineSeries(snap, "drill_sched_") != want {
		t.Errorf("drill_sched_* series = %d, want %d", engineSeries(snap, "drill_sched_"), want)
	}
	if got := engineSeries(snap, "drill_window_"); got != 6 {
		t.Errorf("drill_window_* series = %d, want 6", got)
	}
	if v := findPoint(snap, "drill_window_barriers_total", instr.ObsScope); v <= 0 {
		t.Errorf("drill_window_barriers_total = %v, want > 0", v)
	}

	// Sequential with EngineObs: only the single seq scheduler row.
	seq := cfg
	seq.Shards = 0
	seq.Obs = obs.NewRegistry(8)
	seq.ObsScope = `cell="0"`
	seq.ObsSample = 50 * units.Microsecond
	seq.EngineObs = true
	Run(seq)
	snap = seq.Obs.Capture(0)
	if n := engineSeries(snap, "drill_shard_") + engineSeries(snap, "drill_window_"); n != 0 {
		t.Errorf("sequential run registered %d shard/window series, want 0", n)
	}
	if got := engineSeries(snap, "drill_sched_"); got != 10 {
		t.Errorf("sequential drill_sched_* series = %d, want 10", got)
	}
	if v := findPoint(snap, "drill_sched_dispatch_list_total", engineScope(seq.ObsScope, `sched="seq"`)); v <= 0 {
		t.Errorf("seq dispatch-list counter = %v, want > 0", v)
	}
}

// TestEngineReport checks the post-run report every RunResult carries:
// engine naming, shard/window/exchange population on the sharded engine,
// the single scheduler row on the sequential one, and exact
// reproducibility of the deterministic fields (and of Format once the
// wall columns are zeroed).
func TestEngineReport(t *testing.T) {
	cfg := tinySweepCfgs()[0]

	seqRep := Run(cfg).EngineRep
	if seqRep == nil || seqRep.Engine != "sequential" {
		t.Fatalf("sequential engine report: %+v", seqRep)
	}
	if len(seqRep.Shards) != 0 || len(seqRep.Sched) != 1 || seqRep.Sched[0].Sched != "seq" {
		t.Fatalf("sequential report shape wrong: %+v", seqRep)
	}
	if seqRep.Sched[0].DispatchList+seqRep.Sched[0].DispatchHeap == 0 {
		t.Error("sequential report saw no dispatches")
	}

	cfg.Shards = 2
	a, b := Run(cfg), Run(cfg)
	rep := a.EngineRep
	if rep.Engine != "sharded/2" {
		t.Fatalf("engine = %q, want sharded/2", rep.Engine)
	}
	nsh := len(rep.Shards)
	if nsh == 0 || rep.Barriers == 0 || rep.WindowCount == 0 {
		t.Fatalf("sharded report underpopulated: %+v", rep)
	}
	if len(rep.Sched) != nsh+1 {
		t.Fatalf("sched rows = %d, want %d", len(rep.Sched), nsh+1)
	}
	if len(rep.Exchange) != nsh {
		t.Fatalf("exchange matrix is %d rows, want %d", len(rep.Exchange), nsh)
	}
	var crossTraffic uint64
	for src, row := range rep.Exchange {
		for dst, v := range row {
			if src != dst {
				crossTraffic += v
			}
		}
	}
	if crossTraffic == 0 {
		t.Error("exchange matrix shows no cross-shard traffic on a multi-leaf topology")
	}
	if im := rep.Imbalance(); im < 1 {
		t.Errorf("imbalance = %v, want >= 1 (max/mean)", im)
	}

	// Deterministic reproducibility: zero the wall columns and require the
	// rest — including the rendered report — to match byte for byte.
	scrub := func(r *obs.EngineReport) {
		for i := range r.Shards {
			r.Shards[i].BusyNs, r.Shards[i].StallNs = 0, 0
		}
	}
	scrub(a.EngineRep)
	scrub(b.EngineRep)
	if got, want := a.EngineRep.Format(), b.EngineRep.Format(); got != want {
		t.Errorf("engine report not reproducible:\n--- run a\n%s--- run b\n%s", got, want)
	}

	// The provenance summary carries the deterministic slice of the report.
	if a.Prov.Windows != rep.WindowCount || a.Prov.Imbalance != rep.Imbalance() {
		t.Errorf("provenance windows/imbalance (%d, %v) != report (%d, %v)",
			a.Prov.Windows, a.Prov.Imbalance, rep.WindowCount, rep.Imbalance())
	}
}
