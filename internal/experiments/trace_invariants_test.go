package experiments

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// checkConservation asserts the packet-conservation law at the current sim
// instant: every packet a host ever sent is in exactly one of four places —
// delivered to a destination host, dropped, sitting in a port queue, or on
// the wire between a transmitter and its receiver. The first three come
// from trace event counts and the fabric's queue occupancy; the wire
// population is LinkDepart − Arrive − Deliver, since each departure is
// matched by exactly one switch arrival or host delivery.
func checkConservation(t *testing.T, when string, tr *trace.Tracer, net *fabric.Network) {
	t.Helper()
	sent := tr.Count(trace.Send)
	delivered := tr.Count(trace.Deliver)
	dropped := tr.Count(trace.Drop)
	queued := net.QueuedPackets()
	inflight := tr.Count(trace.LinkDepart) - tr.Count(trace.Arrive) - delivered
	if inflight < 0 {
		t.Errorf("%s: in-flight packet count is negative (%d): departs=%d arrives=%d delivers=%d",
			when, inflight, tr.Count(trace.LinkDepart), tr.Count(trace.Arrive), delivered)
	}
	if got := delivered + dropped + queued + inflight; got != sent {
		t.Errorf("%s: conservation violated: sent=%d but delivered=%d + dropped=%d + queued=%d + inflight=%d = %d",
			when, sent, delivered, dropped, queued, inflight, got)
	}
	// The trace layer and the fabric's own aggregate counters are
	// independent tallies of the same events; they must agree exactly.
	// (Sent is read directly: these runs are sequential, where the single
	// domain's counter aliases the network total.)
	if sent != net.Sent {
		t.Errorf("%s: trace counted %d sends, fabric counted %d", when, sent, net.Sent)
	}
	if delivered != net.Delivered {
		t.Errorf("%s: trace counted %d delivers, fabric counted %d", when, delivered, net.Delivered)
	}
	if drops := net.Hops.TotalDrops(); dropped != drops {
		t.Errorf("%s: trace counted %d drops, fabric counted %d", when, dropped, drops)
	}
}

// conservationRun drives one short, deliberately lossy run (tiny queues at
// high load) of the given scheme with a counts-only tracer attached and
// checks conservation at several mid-run instants — queues and wires
// populated — and once more after the drain window. The law holds at *any*
// instant; the fabric need not be idle (lossy flows may still be
// retransmitting), it only has to account for every packet.
func conservationRun(t *testing.T, sc Scheme, failAt units.Time) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 4, Leaves: 4, HostsPerLeaf: 4,
		CoreRate: 10 * units.Gbps, HostRate: 10 * units.Gbps,
	})
	s := sim.New(7)
	tr := trace.New(nil) // counts only: no sink allocation, pure tallies
	net := fabric.New(s, tp, fabric.Config{
		Balancer: sc.New(),
		QueueCap: 8, // small caps force enqueue-overflow drops
		Tracer:   tr,
	})
	reg := transport.NewRegistry(s, net, transport.Config{ShimTimeout: sc.Shim})
	end := 800 * units.Microsecond
	g := workload.NewGenerator(reg, workload.Truncate(workload.FacebookCache, 2e6),
		workload.Load(1.0), end)
	g.Start()
	if failAt > 0 {
		s.At(failAt, func() {
			failRandomUplinks(tp, net, 2, 7, false)
		})
	}

	for _, at := range []units.Time{end / 4, end / 2, 3 * end / 4} {
		at := at
		s.At(at, func() { checkConservation(t, at.String(), tr, net) })
	}
	s.RunUntil(end + 10*units.Millisecond)
	s.Halt()

	checkConservation(t, "post-drain", tr, net)
	if sent := tr.Count(trace.Send); sent == 0 {
		t.Fatal("run sent no packets; the invariant was checked vacuously")
	}
	if tr.Count(trace.Deliver) == 0 {
		t.Fatal("run delivered no packets; the invariant was checked vacuously")
	}
}

// TestPacketConservation runs the conservation invariant against every
// standard scheme — each exercises a different enqueue/forward path through
// the fabric — plus a mid-run link-failure variant that exercises the
// dead-link and queue-drain drop paths.
func TestPacketConservation(t *testing.T) {
	for _, name := range []string{"ECMP", "Random", "RR", "WCMP", "CONGA", "Presto", "DRILL"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := SchemeByName(name)
			if !ok {
				t.Fatalf("unknown scheme %q", name)
			}
			conservationRun(t, sc, 0)
		})
	}
	t.Run("DRILL/link-failure", func(t *testing.T) {
		t.Parallel()
		sc, _ := SchemeByName("DRILL")
		conservationRun(t, sc, 300*units.Microsecond)
	})
}

// TestConservationSeesDrops guards the guard: the lossy configuration the
// conservation runs use must actually drop packets, or the drop terms of
// the invariant go untested.
func TestConservationSeesDrops(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 4, Leaves: 4, HostsPerLeaf: 4,
		CoreRate: 10 * units.Gbps, HostRate: 10 * units.Gbps,
	})
	s := sim.New(7)
	tr := trace.New(nil)
	sc, _ := SchemeByName("ECMP")
	net := fabric.New(s, tp, fabric.Config{Balancer: sc.New(), QueueCap: 8, Tracer: tr})
	reg := transport.NewRegistry(s, net, transport.Config{})
	end := 800 * units.Microsecond
	g := workload.NewGenerator(reg, workload.Truncate(workload.FacebookCache, 2e6),
		workload.Load(1.0), end)
	g.Start()
	s.RunUntil(end + 10*units.Millisecond)
	s.Halt()
	if tr.Count(trace.Drop) == 0 {
		t.Error("8-packet queues at 100% ECMP load dropped nothing; tighten the conservation fixture")
	}
}

// TestUnreachableDropHopClassification pins the tier attribution of
// unreachable-destination drops (trace Drop events with Port == -1: the
// switch had no output port to charge). Long propagation wires keep ~8
// packets in flight toward the spines when both spine→leaf1 links fail
// with instant reconvergence, so the spines' empty tables must book those
// drops against Hop2 — before the fix every unreachable drop was hardcoded
// to Hop1, whichever tier dropped the packet. Late packets hitting leaf0's
// emptied tables are legitimately Hop1; nothing else may appear at Port -1
// in a 2-stage fabric.
func TestUnreachableDropHopClassification(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		CoreRate: 40 * units.Gbps, HostRate: 10 * units.Gbps,
		Prop: 10 * units.Microsecond,
	})
	s := sim.New(3)
	ring := trace.NewRing(1 << 14)
	tr := trace.New(ring)
	sc, _ := SchemeByName("ECMP")
	net := fabric.New(s, tp, fabric.Config{Balancer: sc.New(), Tracer: tr})

	src := net.Host(tp.Hosts[0])
	dst := tp.Hosts[2] // under leaf1
	const N = 100
	for i := 0; i < N; i++ {
		pkt := src.AllocPacket()
		pkt.FlowID = uint64(i)
		pkt.Hash = uint32(i) // spread across both spines
		pkt.Dst = dst
		pkt.Size = 1518
		src.Send(pkt)
	}
	// The NIC paces one packet out every ~1.2µs; each then spends 10µs on
	// the leaf→spine wire. Failing both spine-side links at 30µs therefore
	// catches several packets mid-wire, deterministically.
	leaf1 := tp.Leaves[1]
	s.At(30*units.Microsecond, func() {
		for _, l := range tp.Links {
			ka, kb := tp.Nodes[l.A].Kind, tp.Nodes[l.B].Kind
			if (ka == topo.Spine && l.B == leaf1) || (kb == topo.Spine && l.A == leaf1) {
				net.FailLink(l.ID, true)
			}
		}
	})
	s.Run()

	if ring.Dropped() != 0 {
		t.Fatalf("ring sink overflowed (%d events lost); grow the fixture's capacity", ring.Dropped())
	}
	byHop := map[uint8]int64{}
	var unreachable int64
	for _, ev := range ring.Events() {
		if ev.Kind != trace.Drop {
			continue
		}
		byHop[ev.Hop]++
		if ev.Port == -1 {
			unreachable++
			if h := metrics.HopClass(ev.Hop); h != metrics.Hop1 && h != metrics.Hop2 {
				t.Errorf("unreachable drop booked against %v; only leaf (hop1-up) and spine (hop2-down) tiers exist here", h)
			}
		}
	}
	if unreachable == 0 {
		t.Fatal("no unreachable-destination drops; the empty-table path went unexercised")
	}
	spineUnreachable := false
	for _, ev := range ring.Events() {
		if ev.Kind == trace.Drop && ev.Port == -1 && metrics.HopClass(ev.Hop) == metrics.Hop2 {
			spineUnreachable = true
			break
		}
	}
	if !spineUnreachable {
		t.Error("no unreachable drop at a spine (Hop2); mid-wire packets should have arrived after reconvergence")
	}
	// The trace's per-hop drop tally and the fabric's HopStats are
	// independent recordings of the same sites; they must agree per class.
	for c := metrics.HopClass(0); c < metrics.NumHopClasses; c++ {
		if got, want := byHop[uint8(c)], net.Hops.Drops[c]; got != want {
			t.Errorf("%v: trace counted %d drops, fabric counted %d", c, got, want)
		}
	}
	if delivered := net.Delivered; delivered+net.Hops.TotalDrops() != N {
		t.Errorf("conservation: delivered %d + dropped %d != %d sent",
			delivered, net.Hops.TotalDrops(), N)
	}
}
