package experiments

import (
	"testing"

	"drill/internal/units"
)

// TestProbeVisibility isolates reordering causes: oracle counters
// (VisFactor 0) vs delayed, and more spines (shallower per-path bursts).
func TestProbeVisibility(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	sc, _ := SchemeByName("DRILL w/o shim")
	for _, v := range []struct {
		name string
		vis  float64
		eng  int
	}{
		{"vis=1 eng=1", 1, 1},
		{"vis=0.01 eng=1", 0.01, 1},
		{"vis=1 eng=4", 1, 4},
	} {
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
			VisFactor: v.vis, Engines: v.eng,
		})
		t.Logf("%-16s anyDup=%.2f%% dup>=3=%.2f%% retx=%d meanFCT=%.3f",
			v.name, 100*res.DupAcks.FracAtLeast(1), 100*res.DupAcks.FracAtLeast(3),
			res.Retransmits, res.FCT.Mean())
	}
}
