package experiments

import (
	"testing"

	"drill/internal/metrics"
	"drill/internal/units"
)

// TestProbeHopBreakdown is a diagnostic: run with -v to see where queueing
// and drops happen per scheme at 80% load on the small fig6 fabric.
func TestProbeHopBreakdown(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	for _, name := range []string{"ECMP", "DRILL w/o shim", "DRILL"} {
		sc, ok := SchemeByName(name)
		if !ok {
			t.Fatalf("no scheme %q", name)
		}
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
		})
		t.Logf("%-15s mean=%.3fms p99.99=%.3fms flows=%d retx=%d timeouts=%d",
			name, res.FCT.Mean(), res.FCT.Percentile(99.99), res.FCT.Count(),
			res.Retransmits, res.Timeouts)
		t.Logf("   core util=%.2f", res.CoreUtil)
		for h := metrics.HopClass(0); h < metrics.NumHopClasses; h++ {
			if res.Hops.Packets[h] == 0 && res.Hops.Drops[h] == 0 {
				continue
			}
			t.Logf("   %-10s drops=%-6d pkts=%-8d meanQ=%.2fus",
				h, res.Hops.Drops[h], res.Hops.Packets[h], res.Hops.MeanQueueing(h))
		}
	}
}
