package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFixture() *BenchReport {
	return &BenchReport{
		Schema: BenchSchemaVersion, Seed: 1,
		Cells: []BenchCellResult{
			{Name: "ecmp-load0.5", EventsPerSec: 2e6, AllocsPerEvent: 0.10, Events: 1000},
			{Name: "drill-load0.5", EventsPerSec: 1e6, AllocsPerEvent: 0.20, Events: 2000},
		},
		Micro: MicroAllocs{TimerResetStop: 0, PoolGetPut: 0, SendDeliver: 6},
	}
}

// findDiff pulls one finding out of the diff by cell and metric.
func findDiff(t *testing.T, d *BenchDiff, cell, metric string) BenchFinding {
	t.Helper()
	for _, f := range d.Findings {
		if f.Cell == cell && f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for %s/%s in %+v", cell, metric, d.Findings)
	return BenchFinding{}
}

func TestDiffBenchCleanPass(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	// 8% slower and +0.05 allocs: inside both tolerances.
	cur.Cells[0].EventsPerSec *= 0.92
	cur.Cells[0].AllocsPerEvent += 0.05
	d := DiffBench(base, cur)
	if d.Regressions != 0 {
		t.Fatalf("clean diff found %d regressions: %s", d.Regressions, d.Format())
	}
	if !strings.Contains(d.Format(), "no regressions") {
		t.Errorf("format lacks the verdict line:\n%s", d.Format())
	}
}

// TestDiffBenchCPUMismatchWarns pins the machine-mismatch behaviour: a
// baseline from a different CPU count produces a warning finding, never a
// regression — CI containers must not fail the gate just for being
// smaller than the baseline machine.
func TestDiffBenchCPUMismatchWarns(t *testing.T) {
	base := benchFixture()
	base.NumCPU, base.GoMaxProcs = 16, 16
	cur := benchFixture()
	cur.NumCPU, cur.GoMaxProcs = 16, 1 // cgroup-quota shape
	d := DiffBench(base, cur)
	if d.Regressions != 0 {
		t.Fatalf("CPU mismatch counted as regression: %s", d.Format())
	}
	f := findDiff(t, d, "machine", "cpus")
	if f.Regressed || !strings.Contains(f.Note, "different machines") {
		t.Errorf("machine finding should be an unregressed warning, got %+v", f)
	}
	// Identical machines: no warning row at all.
	same := DiffBench(base, base)
	for _, f := range same.Findings {
		if f.Cell == "machine" {
			t.Errorf("same-machine diff emitted a machine warning: %+v", f)
		}
	}
}

func TestDiffBenchMarkdown(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Cells[0].EventsPerSec *= 0.5
	md := DiffBench(base, cur).FormatMarkdown()
	for _, want := range []string{
		"| cell | metric | baseline | current | delta | verdict |",
		"| ecmp-load0.5 | events_per_sec |",
		"**REGRESSED**",
		"**Verdict: 1 regression(s)**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown output lacks %q:\n%s", want, md)
		}
	}
	if clean := DiffBench(base, base).FormatMarkdown(); !strings.Contains(clean, "**Verdict: no regressions**") {
		t.Errorf("clean markdown output lacks the verdict line:\n%s", clean)
	}
}

func TestDiffBenchFlagsRegressions(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Cells[0].EventsPerSec = base.Cells[0].EventsPerSec * 0.5 // −50% > 25% tol
	cur.Cells[1].AllocsPerEvent = base.Cells[1].AllocsPerEvent + 1.0
	cur.Micro.PoolGetPut = 1.0
	d := DiffBench(base, cur)
	if !findDiff(t, d, "ecmp-load0.5", "events_per_sec").Regressed {
		t.Error("50% events/s drop not flagged")
	}
	if !findDiff(t, d, "drill-load0.5", "allocs_per_event").Regressed {
		t.Error("+1.0 allocs/event not flagged")
	}
	if !findDiff(t, d, "micro", "micro.pool_get_put").Regressed {
		t.Error("micro alloc regression not flagged")
	}
	if d.Regressions != 3 {
		t.Errorf("regressions = %d, want 3:\n%s", d.Regressions, d.Format())
	}
	// Faster is never a regression.
	fast := benchFixture()
	fast.Cells[0].EventsPerSec *= 2
	if d := DiffBench(base, fast); d.Regressions != 0 {
		t.Errorf("a 2x speedup was flagged:\n%s", d.Format())
	}
}

func TestDiffBenchCellDrift(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Cells = cur.Cells[:1]
	cur.Cells[0].Events = 999 // deterministic column drift at equal seed
	d := DiffBench(base, cur)
	if !findDiff(t, d, "drill-load0.5", "present").Regressed {
		t.Error("missing cell not flagged")
	}
	ev := findDiff(t, d, "ecmp-load0.5", "events")
	if ev.Regressed || !strings.Contains(ev.Note, "behaviour changed") {
		t.Errorf("event-count drift should be an informational finding, got %+v", ev)
	}
}

// TestReadBenchReportRoundTrips pins the file interface benchdiff and CI
// rely on — including that the committed baseline still parses.
func TestReadBenchReportRoundTrips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := os.WriteFile(path, []byte(`{"schema":"drill-bench/v1","seed":3,"cells":[],"micro":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 3 {
		t.Errorf("seed = %d, want 3", rep.Seed)
	}
	if _, err := ReadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644)
	if _, err := ReadBenchReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not rejected: %v", err)
	}

	if base, err := ReadBenchReport("../../BENCH_baseline.json"); err != nil {
		t.Errorf("committed baseline does not parse: %v", err)
	} else if len(base.Cells) == 0 {
		t.Error("committed baseline has no cells")
	}
}
