package experiments

import (
	"fmt"

	"drill/internal/topo"
	"drill/internal/units"
)

// stdvCfg configures a §3.2.3 queue-balance run for one scheme/engine
// cell.
func stdvCfg(o Options, tf func() *topo.Topology, sc Scheme, engines int, load float64, seed int64) RunCfg {
	w := lerpTime(300*units.Microsecond, 2*units.Millisecond, o.Scale)
	m := lerpTime(2*units.Millisecond, 50*units.Millisecond, o.Scale)
	return RunCfg{
		Topo: tf, Scheme: sc, Seed: seed,
		Engines: engines, Load: load,
		Warmup: w, Measure: m,
		SampleQueues: true,
		DrainLimit:   1 * units.Millisecond, // STDV sampling already stopped
	}
}

// engineSweep returns the engine counts for the Fig. 2 x-axis.
func engineSweep(o Options) []int {
	if o.Scale >= 0.5 {
		return []int{1, 2, 4, 8, 16, 32, 48}
	}
	return []int{1, 4, 12, 48}
}

func fig2(id string, load float64) *Experiment {
	return &Experiment{
		ID:    id,
		Title: fmt.Sprintf("Mean queue-length STDV vs engines at %.0f%% load (Fig. 2)", load*100),
		Run: func(o Options) *Report {
			o.defaults()
			schemes := []Scheme{}
			for _, n := range []string{"ECMP", "Random", "RR"} {
				s, _ := SchemeByName(n)
				schemes = append(schemes, s)
			}
			schemes = append(schemes, drillScheme(2, 1), drillScheme(12, 1), drillScheme(2, 11))
			engines := engineSweep(o)
			rep := &Report{ID: id,
				Title:   fmt.Sprintf("Mean STDV of leaf-uplink queue lengths [pkts], %.0f%% load", load*100),
				Columns: []string{"scheme"}}
			for _, e := range engines {
				rep.Columns = append(rep.Columns, fmt.Sprintf("%d-engine", e))
			}
			var cfgs []RunCfg
			for si, sc := range schemes {
				for ei, e := range engines {
					cfgs = append(cfgs, stdvCfg(o, stdvTopo(o.Scale), sc, e, load, o.Seed+int64(si*10+ei)))
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("%s %s engines=%d upSTDV=%.3f downSTDV=%.3f [%s]",
					id, schemes[i/len(engines)].Name, engines[i%len(engines)],
					res.UplinkSTDV, res.DownlinkSTDV, timing(res))
			})
			for si, sc := range schemes {
				row := []string{sc.Name}
				for ei := range engines {
					row = append(row, fmt.Sprintf("%.3f", results[si*len(engines)+ei].UplinkSTDV))
				}
				rep.AddRow(row...)
			}
			rep.Note("paper: DRILL(2,1) cuts Random's STDV by >65%% at 80%% load; " +
				"Random improves on ECMP ~94%%; extra choices/memory help little and " +
				"can hurt with many engines (sync effect)")
			return rep
		},
	}
}

func init() {
	register(fig2("fig2a", 0.8))
	register(fig2("fig2b", 0.3))

	register(&Experiment{
		ID:    "fig3",
		Title: "Synchronization effect: STDV vs d and vs m, 48-engine switches, 80% load (Fig. 3)",
		Run: func(o Options) *Report {
			o.defaults()
			engines := lerpInt(48, 48, o.Scale)
			rep := &Report{ID: "fig3",
				Title:   "Mean queue-length STDV [pkts] under DRILL(d,m), 48-engine switches, 80% load",
				Columns: []string{"sweep", "param", "STDV(m=1 | d=1)", "STDV(m=2 | d=2)"},
			}
			ds := []int{1, 2, 4, 8, 20}
			if o.Scale >= 0.5 {
				ds = []int{1, 2, 4, 6, 8, 12, 16, 20}
			}
			// Cells are (value, variant-1, variant-2) pairs: the d sweep at
			// m=1/m=2, then the m sweep at d=1/d=2, flattened in row order.
			var cfgs []RunCfg
			for _, d := range ds {
				cfgs = append(cfgs,
					stdvCfg(o, stdvTopo(o.Scale), drillScheme(d, 1), engines, 0.8, o.Seed+int64(d)),
					stdvCfg(o, stdvTopo(o.Scale), drillScheme(d, 2), engines, 0.8, o.Seed+int64(d)+50))
			}
			for _, m := range ds {
				cfgs = append(cfgs,
					stdvCfg(o, stdvTopo(o.Scale), drillScheme(1, m), engines, 0.8, o.Seed+int64(m)+100),
					stdvCfg(o, stdvTopo(o.Scale), drillScheme(2, m), engines, 0.8, o.Seed+int64(m)+150))
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig3 %s upSTDV=%.3f [%s]", cfgs[i].Scheme.Name, res.UplinkSTDV, timing(res))
			})
			for di, d := range ds {
				r1, r2 := results[2*di], results[2*di+1]
				rep.AddRow("d", fmt.Sprintf("%d", d),
					fmt.Sprintf("%.3f", r1.UplinkSTDV), fmt.Sprintf("%.3f", r2.UplinkSTDV))
			}
			for mi, m := range ds {
				r1, r2 := results[2*len(ds)+2*mi], results[2*len(ds)+2*mi+1]
				rep.AddRow("m", fmt.Sprintf("%d", m),
					fmt.Sprintf("%.3f", r1.UplinkSTDV), fmt.Sprintf("%.3f", r2.UplinkSTDV))
			}
			rep.Note("paper: with many engines, large d or m herds parallel engines onto " +
				"the same ports — the synchronization effect — so STDV worsens past small values")
			return rep
		},
	})

	register(&Experiment{
		ID:    "ablvis",
		Title: "Ablation: queue-visibility delay vs balance and reordering",
		Run: func(o Options) *Report {
			o.defaults()
			rep := &Report{ID: "ablvis",
				Title:   "DRILL(2,1) vs visibility delay (fraction of MTU serialization)",
				Columns: []string{"vis-factor", "engines", "uplink STDV", "flows w/ dupACKs %"}}
			vfs, engs := []float64{0.0001, 0.05, 0.25, 1, 4}, []int{1, 8}
			var cfgs []RunCfg
			for _, vf := range vfs {
				for _, eng := range engs {
					cfgs = append(cfgs, RunCfg{
						Topo: fig6Topo(o.Scale), Scheme: drillScheme(2, 1),
						Seed: o.Seed, Load: 0.8, Engines: eng,
						Warmup:  lerpTime(500*units.Microsecond, 5*units.Millisecond, o.Scale),
						Measure: lerpTime(2*units.Millisecond, 20*units.Millisecond, o.Scale),
						// VisFactor 0 means "default"; encode near-zero explicitly.
						VisFactor:    vf,
						SampleQueues: true,
					})
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("ablvis vf=%g eng=%d done [%s]",
					vfs[i/len(engs)], engs[i%len(engs)], timing(res))
			})
			for i, res := range results {
				rep.AddRow(fmt.Sprintf("%g", vfs[i/len(engs)]), fmt.Sprintf("%d", engs[i%len(engs)]),
					fmt.Sprintf("%.3f", res.UplinkSTDV),
					fmt.Sprintf("%.2f", 100*res.DupAcks.FracAtLeast(1)))
			}
			rep.Note("stale counters recreate the §3.2.3 synchronization effect even " +
				"with few engines; fresh-but-imprecise counters (small factors) match the paper's model")
			return rep
		},
	})
}
