package experiments

import (
	"runtime"
	"sync"
)

// This file is the sweep fan-out layer: every experiment's grid of
// independent seeded runs (schemes × loads × reps, engines × schemes, ...)
// is built as a flat slice of cells first, then executed on a fixed pool
// of worker goroutines. Results come back indexed by submission order, so
// every reduction over them — rep pooling, table rows, winner ratios — is
// byte-identical to the sequential output for a fixed seed, regardless of
// worker count or completion order.

// Workers resolves a requested worker count: n < 1 means one worker per
// CPU. The count never exceeds jobs, so small grids don't spawn idle
// goroutines.
func Workers(n, jobs int) int {
	if n < 1 {
		n = runtime.NumCPU()
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n) on Workers(w, n) goroutines.
// Indices are handed out in submission order; w = 1 degenerates to a plain
// sequential loop on the caller's goroutine. The first error stops the
// hand-out of further indices (in-flight calls still finish) and is
// returned. A panic in fn is captured and re-raised on the caller's
// goroutine once all workers have drained.
func ForEach(n, w int, fn func(i int) error) error {
	w = Workers(w, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || panicked != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				err, pv := call(fn, i)
				if err != nil || pv != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					if panicked == nil {
						panicked = pv
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// call runs fn(i), converting a panic into a returned value so the pool
// can re-raise it on the caller's goroutine instead of crashing a worker.
func call(fn func(int) error, i int) (err error, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	return fn(i), nil
}

// Fan builds out[i] = fn(i) for every i in [0, n) on Workers(w, n)
// goroutines and returns the slice in submission order. done, when
// non-nil, observes each completed cell as it finishes (completion order)
// serialized under the pool's mutex — progress callbacks and other shared
// mutable state need no further locking. On error the partial slice is
// returned along with the first error; cells that never ran hold zero
// values.
func Fan[T any](n, w int, fn func(i int) (T, error), done func(i int, v T)) ([]T, error) {
	out := make([]T, n)
	var mu sync.Mutex
	err := ForEach(n, w, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		if done != nil {
			mu.Lock()
			done(i, v)
			mu.Unlock()
		}
		return nil
	})
	return out, err
}

// RunAll executes every RunCfg on Workers(w, len(cfgs)) goroutines and
// returns the results indexed exactly like cfgs. done, when non-nil, is
// invoked once per completed run, serialized (see Fan).
func RunAll(cfgs []RunCfg, w int, done func(i int, res *RunResult)) []*RunResult {
	out, _ := Fan(len(cfgs), w, func(i int) (*RunResult, error) {
		return Run(cfgs[i]), nil
	}, done)
	return out
}
