package experiments

import (
	"drill/internal/topo"
	"drill/internal/units"
)

// fig6Topo is the paper's main symmetric Clos (Fig. 6): 4 spines, 16
// leaves × 20 hosts, 40G core / 10G edge. At scale 0 it shrinks to
// 4 spines, 4 leaves × 20 hosts — fewer leaves but the same 40G/10G rates
// and the same 200G:160G edge subscription ratio, so per-receiver load at a
// given core load matches the paper.
func fig6Topo(scale float64) func() *topo.Topology {
	leaves := lerpInt(8, 16, scale)
	hosts := 20
	return func() *topo.Topology {
		return topo.LeafSpine(topo.LeafSpineConfig{
			Spines: 4, Leaves: leaves, HostsPerLeaf: hosts,
			HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
		})
	}
}

// scaleOutTopo is Fig. 7's network: same core capacity from more, slower
// switches — 16 spines, 16 leaves × 20 hosts, all links 10G. Scale 0:
// 8 spines, 4 leaves × 10 hosts.
func scaleOutTopo(scale float64) func() *topo.Topology {
	spines := lerpInt(8, 16, scale)
	leaves := lerpInt(4, 16, scale)
	hosts := lerpInt(10, 20, scale)
	return func() *topo.Topology {
		return topo.LeafSpine(topo.LeafSpineConfig{
			Spines: spines, Leaves: leaves, HostsPerLeaf: hosts,
			HostRate: 10 * units.Gbps, CoreRate: 10 * units.Gbps,
		})
	}
}

// oversubTopo builds Fig. 9's variants: `spines` spines, 16 leaves × 20
// hosts, all 10G (spines=20 → 1:1, spines=12 → 5:3). Scaled down it keeps
// the subscription ratio with 4 leaves.
func oversubTopo(spines int, scale float64) func() *topo.Topology {
	leaves := lerpInt(4, 16, scale)
	hosts := lerpInt(10, 20, scale)
	// Preserve the paper's hosts:spines subscription ratio when shrinking.
	sp := int(float64(spines)*float64(hosts)/20 + 0.5)
	return func() *topo.Topology {
		return topo.LeafSpine(topo.LeafSpineConfig{
			Spines: sp, Leaves: leaves, HostsPerLeaf: hosts,
			HostRate: 10 * units.Gbps, CoreRate: 10 * units.Gbps,
		})
	}
}

// vl2Topo is Fig. 10's three-stage VL2: 16 ToRs × 20 hosts at 1G, 8 Aggs,
// 4 Ints, 10G core. Scale 0: 8 ToRs × 10 hosts, 4 Aggs, 2 Ints.
func vl2Topo(scale float64) func() *topo.Topology {
	tors := lerpInt(8, 16, scale)
	hosts := lerpInt(10, 20, scale)
	aggs := lerpInt(4, 8, scale)
	ints := lerpInt(2, 4, scale)
	return func() *topo.Topology {
		return topo.VL2(topo.VL2Config{
			ToRs: tors, Aggs: aggs, Ints: ints, HostsPerToR: hosts,
			HostRate: 1 * units.Gbps, CoreRate: 10 * units.Gbps,
		})
	}
}

// heteroTopo is Fig. 13's imbalanced-striping fabric: 16 leaves × 48 hosts,
// 16 spines, 10G everywhere, with two parallel links to each leaf's two
// "near" spines. Scale 0: 6 leaves × 12 hosts, 6 spines.
func heteroTopo(scale float64) func() *topo.Topology {
	leaves := lerpInt(6, 16, scale)
	spines := lerpInt(6, 16, scale)
	hosts := lerpInt(12, 48, scale)
	return func() *topo.Topology {
		return topo.Heterogeneous(topo.HeterogeneousConfig{
			Spines: spines, Leaves: leaves, HostsPerLeaf: hosts,
			HostRate: 10 * units.Gbps, BaseRate: 10 * units.Gbps, ExtraLinks: 2,
		})
	}
}

// stdvTopo is the §3.2.3 queue-balance network (Fig. 2/3): 48 spines, 48
// leaves × 48 hosts in the paper; scale 0 uses 8×8×12 at 10G throughout
// (hosts must carry ≥ the offered core load).
func stdvTopo(scale float64) func() *topo.Topology {
	n := lerpInt(8, 48, scale)
	hosts := lerpInt(12, 48, scale)
	return func() *topo.Topology {
		return topo.LeafSpine(topo.LeafSpineConfig{
			Spines: n, Leaves: n, HostsPerLeaf: hosts,
			HostRate: 10 * units.Gbps, CoreRate: 10 * units.Gbps,
		})
	}
}

// table1Topo is Table 1's small Clos: 4 leaves × 8 hosts, 4 spines, 1G.
func table1Topo() *topo.Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 4, Leaves: 4, HostsPerLeaf: 8,
		HostRate: 1 * units.Gbps, CoreRate: 1 * units.Gbps,
	})
}
