package experiments

import (
	"testing"

	"drill/internal/trace"
	"drill/internal/units"
)

// TestSchedulerIsByteIdentical holds the timing-wheel scheduler and the
// fabric's per-port event batching to their core contract: they are
// representation changes, not behaviour changes. Every cell runs once on
// the production stack (wheel + batching) and once on the legacy
// reference stack (plain binary heap, one event per packet per hop) and
// must produce identical fingerprints — FCTs, drops, retransmits,
// reordering, event counts, utilization. The grid mirrors
// TestPoolingIsByteIdentical: the tiny sweep plus a drop-heavy cell
// (tiny queues at high load) and a link-failure cell, so loss, timeout,
// dead-link drain, and reroute paths are all on the compared path.
func TestSchedulerIsByteIdentical(t *testing.T) {
	cells := tinySweepCfgs()
	lossy, _ := SchemeByName("ECMP")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: lossy, Seed: 21, Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	fail, _ := SchemeByName("DRILL")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: fail, Seed: 22, Load: 0.5,
		FailLinks: 1, FailAt: 200 * units.Microsecond,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	for i, cfg := range cells {
		wheel := cfg
		legacy := cfg
		legacy.LegacyScheduler = true
		rw, rl := Run(wheel), Run(legacy)
		if got, want := fingerprint(rw), fingerprint(rl); got != want {
			t.Errorf("cell %d (%s seed=%d): wheel run differs from legacy scheduler:\nwheel:  %s\nlegacy: %s",
				i, cfg.Scheme.Name, cfg.Seed, got, want)
		}
	}
}

// TestSchedulerIsByteIdenticalQTrace extends the identity proof to an
// instrumented qtrace-style cell: a tracer sampling queue depths and port
// utilization on an observer ticker. The trace ring's event stream — every
// sample's timestamp, port, and value — must match event for event across
// the two schedulers, which additionally pins the observer/daemon event
// classes (excluded from Executed, never keeping Run alive) to identical
// dispatch points.
func TestSchedulerIsByteIdenticalQTrace(t *testing.T) {
	sc, _ := SchemeByName("DRILL")
	base := RunCfg{
		Topo: fig6Topo(0), Scheme: sc, Seed: 23, Load: 0.8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	}
	run := func(legacy bool) (*RunResult, []trace.Event) {
		ring := trace.NewRing(1 << 16)
		cfg := base
		cfg.LegacyScheduler = legacy
		cfg.Tracer = trace.New(ring, trace.WithKinds(trace.QueueSample, trace.PortUtil))
		cfg.TraceSample = 5 * units.Microsecond
		return Run(cfg), ring.Events()
	}
	rw, evw := run(false)
	rl, evl := run(true)
	if got, want := fingerprint(rw), fingerprint(rl); got != want {
		t.Fatalf("qtrace cell: wheel run differs from legacy scheduler:\nwheel:  %s\nlegacy: %s", got, want)
	}
	if len(evw) != len(evl) {
		t.Fatalf("qtrace cell: trace streams differ in length: wheel %d, legacy %d", len(evw), len(evl))
	}
	for i := range evw {
		if evw[i] != evl[i] {
			t.Fatalf("qtrace cell: trace event %d differs:\nwheel:  %+v\nlegacy: %+v", i, evw[i], evl[i])
		}
	}
}
