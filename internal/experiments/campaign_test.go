package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

func campaignTopo() *topo.Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
	})
}

func TestCampaignValidate(t *testing.T) {
	leaf := 0
	bad := []Campaign{
		{Name: "empty"},
		{Name: "noid", Sets: []LinkSet{{Uplinks: 1}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: ""}}},
		{Name: "twosel", Sets: []LinkSet{{ID: "x", Uplinks: 1, Leaf: &leaf}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "x"}}},
		{Name: "badop", Sets: []LinkSet{{ID: "x", Uplinks: 1}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "flap", Set: "x"}}},
		{Name: "unknownset", Sets: []LinkSet{{ID: "x", Uplinks: 1}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "y"}}},
		{Name: "notime", Sets: []LinkSet{{ID: "x", Uplinks: 1}},
			Timeline: []CampaignAction{{Op: "fail", Set: "x"}}},
		{Name: "dupset", Sets: []LinkSet{{ID: "x", Uplinks: 1}, {ID: "x", Uplinks: 2}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "x"}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("campaign %q validated, want error", bad[i].Name)
		}
	}
	for _, name := range []string{"flapstorm", "podfail", "rollingdrain"} {
		c, ok := CampaignByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
}

func TestCampaignResolveDeterministicAndScoped(t *testing.T) {
	tp := campaignTopo()
	leaf := 1
	c := &Campaign{
		Name: "mix",
		Sets: []LinkSet{
			{ID: "rand", Uplinks: 2},
			{ID: "pod", Leaf: &leaf},
			{ID: "explicit", Links: []int32{0}},
		},
		Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "rand"}},
	}
	a, err := c.resolve(tp, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.resolve(campaignTopo(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed resolved differently: %v vs %v", a, b)
	}
	other, err := c.resolve(tp, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a["rand"], other["rand"]) {
		t.Log("note: seeds 42 and 43 drew the same uplinks (possible but unlikely)")
	}
	if len(a["rand"]) != 2 {
		t.Errorf("rand set resolved %d links, want 2", len(a["rand"]))
	}
	// Every pod link must touch leaf 1 and no host.
	if len(a["pod"]) != 2 { // 2 spines × 1 leaf
		t.Errorf("pod set resolved %d links, want 2", len(a["pod"]))
	}
	for _, id := range a["pod"] {
		l := tp.Links[id]
		if l.A != tp.Leaves[1] && l.B != tp.Leaves[1] {
			t.Errorf("pod link %d does not touch leaf 1", id)
		}
	}
	if !reflect.DeepEqual(a["explicit"], []topo.LinkID{0}) {
		t.Errorf("explicit set resolved to %v", a["explicit"])
	}

	// Out-of-range selectors fail loudly, not silently-empty.
	badLeaf := 99
	for _, c := range []*Campaign{
		{Name: "badleaf", Sets: []LinkSet{{ID: "x", Leaf: &badLeaf}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "x"}}},
		{Name: "badlink", Sets: []LinkSet{{ID: "x", Links: []int32{9999}}},
			Timeline: []CampaignAction{{AtFrac: 0.5, Op: "fail", Set: "x"}}},
	} {
		if _, err := c.resolve(tp, 1); err == nil {
			t.Errorf("campaign %q resolved, want error", c.Name)
		}
	}
}

func TestCampaignFingerprintDistinguishes(t *testing.T) {
	a, b := FlapStorm(2, 3), FlapStorm(2, 4)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different campaigns share a fingerprint")
	}
	if a.Fingerprint() != FlapStorm(2, 3).Fingerprint() {
		t.Error("identical campaigns have different fingerprints")
	}
	var nilC *Campaign
	if nilC.Fingerprint() != "" {
		t.Error("nil campaign should fingerprint empty")
	}
}

func TestLoadCampaignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	good := `{
	  "name": "flap",
	  "sets": [{"id": "storm", "uplinks": 2}, {"id": "pod", "leaf": 1}],
	  "timeline": [
	    {"atUs": 150, "op": "fail", "set": "storm"},
	    {"atFrac": 0.6, "op": "restore", "set": "storm", "instant": true}
	  ]
	}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCampaign(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "flap" || len(c.Sets) != 2 || len(c.Timeline) != 2 {
		t.Errorf("parsed campaign %+v", c)
	}
	if c.Sets[1].Leaf == nil || *c.Sets[1].Leaf != 1 {
		t.Error("leaf selector not parsed")
	}
	if c.Timeline[0].AtUs != 150 || !c.Timeline[1].Instant {
		t.Error("timeline fields not parsed")
	}
	if err := os.WriteFile(path, []byte(`{"timeline": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCampaign(path); err == nil {
		t.Error("invalid campaign file loaded without error")
	}
}

// TestCampaignRunMatchesManualSchedule proves the campaign layer is pure
// sugar: a campaign run and a hand-scheduled FailLink/RestoreLink run
// produce identical results.
func TestCampaignRunMatchesManualSchedule(t *testing.T) {
	sc, _ := SchemeByName("DRILL")
	base := RunCfg{
		Topo: campaignTopo, Scheme: sc, Seed: 5, Load: 0.5,
		Warmup: 50 * units.Microsecond, Measure: 200 * units.Microsecond,
		RouteDelay: 40 * units.Microsecond,
	}

	viaCampaign := base
	viaCampaign.Campaign = &Campaign{
		Name: "explicit",
		Sets: []LinkSet{{ID: "one", Links: []int32{0}}},
		Timeline: []CampaignAction{
			{AtUs: 80, Op: "fail", Set: "one"},
			{AtUs: 160, Op: "restore", Set: "one"},
		},
	}
	a := Run(viaCampaign)

	manual := base
	manual.Hook = func(reg *transport.Registry, until units.Time) {
		reg.Sim.AtGlobal(80*units.Microsecond, func() { reg.Net.FailLink(0, false) })
		reg.Sim.AtGlobal(160*units.Microsecond, func() { reg.Net.RestoreLink(0, false) })
	}
	b := Run(manual)

	if a.Delivered != b.Delivered || a.Drops != b.Drops || a.Sent != b.Sent ||
		a.Epochs != b.Epochs || a.FCT.Count() != b.FCT.Count() {
		t.Errorf("campaign run and manual run diverge: %+v vs %+v",
			[5]int64{a.Delivered, a.Drops, a.Sent, int64(a.Epochs), int64(a.FCT.Count())},
			[5]int64{b.Delivered, b.Drops, b.Sent, int64(b.Epochs), int64(b.FCT.Count())})
	}
}
