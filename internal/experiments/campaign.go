package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"drill/internal/fabric"
	"drill/internal/obs"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// Campaign is a scripted reconfiguration schedule: named link sets plus a
// timeline of fail/restore actions against them. Campaigns are the
// experiment-layer face of fabric epochs — every action lands as a
// global-class sim event (a barrier under the sharded engine), so a
// campaign replays byte-identically on the sequential and sharded engines.
//
// The JSON form (drillsim -campaign @file.json) mirrors the struct:
//
//	{
//	  "name": "flapstorm",
//	  "sets": [{"id": "storm", "uplinks": 2}],
//	  "timeline": [
//	    {"atFrac": 0.30, "op": "fail",    "set": "storm"},
//	    {"atFrac": 0.45, "op": "restore", "set": "storm"}
//	  ]
//	}
type Campaign struct {
	Name     string           `json:"name"`
	Sets     []LinkSet        `json:"sets"`
	Timeline []CampaignAction `json:"timeline"`
}

// LinkSet names a group of links a campaign acts on. Exactly one selector
// must be set:
//
//   - Links: explicit topo.LinkID values;
//   - Uplinks: that many leaf↔fabric links, drawn deterministically from
//     the run's seed (a distinct stream per set, so two sets in one
//     campaign draw independently);
//   - Leaf: every fabric link of Topo.Leaves[*Leaf] — the drain/undrain
//     unit for rolling-maintenance scenarios.
type LinkSet struct {
	ID      string  `json:"id"`
	Links   []int32 `json:"links,omitempty"`
	Uplinks int     `json:"uplinks,omitempty"`
	Leaf    *int    `json:"leaf,omitempty"`
}

// CampaignAction is one timeline entry: at a sim time given either
// absolutely (AtUs, microseconds) or as a fraction of the traffic window
// warmup+measure (AtFrac, used when AtUs is 0 — presets scale to any cell
// length this way), apply Op to every link of Set. Instant skips the
// RouteDelay reconvergence lag (the idealized control plane).
type CampaignAction struct {
	AtUs    float64 `json:"atUs,omitempty"`
	AtFrac  float64 `json:"atFrac,omitempty"`
	Op      string  `json:"op"`
	Set     string  `json:"set"`
	Instant bool    `json:"instant,omitempty"`
}

// Validate checks the campaign's internal consistency: selectors are
// exclusive, ops are known, and every action names a declared set.
func (c *Campaign) Validate() error {
	if len(c.Timeline) == 0 {
		return fmt.Errorf("campaign %q has an empty timeline", c.Name)
	}
	ids := map[string]bool{}
	for i := range c.Sets {
		ls := &c.Sets[i]
		if ls.ID == "" {
			return fmt.Errorf("campaign %q: set %d has no id", c.Name, i)
		}
		if ids[ls.ID] {
			return fmt.Errorf("campaign %q: duplicate set id %q", c.Name, ls.ID)
		}
		ids[ls.ID] = true
		selectors := 0
		if len(ls.Links) > 0 {
			selectors++
		}
		if ls.Uplinks > 0 {
			selectors++
		}
		if ls.Leaf != nil {
			selectors++
		}
		if selectors != 1 {
			return fmt.Errorf("campaign %q: set %q must use exactly one of links/uplinks/leaf", c.Name, ls.ID)
		}
	}
	for i, a := range c.Timeline {
		if a.Op != "fail" && a.Op != "restore" {
			return fmt.Errorf("campaign %q: action %d has op %q (want fail|restore)", c.Name, i, a.Op)
		}
		if !ids[a.Set] {
			return fmt.Errorf("campaign %q: action %d targets undeclared set %q", c.Name, i, a.Set)
		}
		if a.AtUs < 0 || a.AtFrac < 0 || a.AtFrac > 1 {
			return fmt.Errorf("campaign %q: action %d has an out-of-range time", c.Name, i)
		}
		if a.AtUs == 0 && a.AtFrac == 0 {
			return fmt.Errorf("campaign %q: action %d has no time (set atUs or atFrac)", c.Name, i)
		}
	}
	return nil
}

// Fingerprint returns a short stable hash of the campaign's full content,
// recorded in run provenance so two runs share a config hash iff they ran
// the same schedule.
func (c *Campaign) Fingerprint() string {
	if c == nil {
		return ""
	}
	return obs.ConfigHash(c)
}

// resolve materializes every set into concrete link IDs against t. Random
// draws come from the run seed with a per-set stream, so resolution is
// deterministic per (seed, campaign) and independent across sets.
func (c *Campaign) resolve(t *topo.Topology, seed int64) (map[string][]topo.LinkID, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string][]topo.LinkID, len(c.Sets))
	for si := range c.Sets {
		ls := &c.Sets[si]
		switch {
		case len(ls.Links) > 0:
			links := make([]topo.LinkID, 0, len(ls.Links))
			for _, id := range ls.Links {
				if int(id) < 0 || int(id) >= len(t.Links) {
					return nil, fmt.Errorf("campaign %q: set %q names link %d outside the topology's %d links",
						c.Name, ls.ID, id, len(t.Links))
				}
				links = append(links, topo.LinkID(id))
			}
			out[ls.ID] = links
		case ls.Uplinks > 0:
			cands := leafFabricLinks(t, -1)
			rng := sim.New(seed).Stream(0xca4a + int64(si))
			rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			n := ls.Uplinks
			if n > len(cands) {
				n = len(cands)
			}
			picked := append([]topo.LinkID(nil), cands[:n]...)
			sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
			out[ls.ID] = picked
		default:
			if *ls.Leaf < 0 || *ls.Leaf >= len(t.Leaves) {
				return nil, fmt.Errorf("campaign %q: set %q names leaf %d outside the topology's %d leaves",
					c.Name, ls.ID, *ls.Leaf, len(t.Leaves))
			}
			out[ls.ID] = leafFabricLinks(t, *ls.Leaf)
		}
	}
	return out, nil
}

// leafFabricLinks lists leaf↔fabric links — of one leaf (by index into
// t.Leaves), or of every leaf when which is -1 — in link-ID order.
func leafFabricLinks(t *topo.Topology, which int) []topo.LinkID {
	var out []topo.LinkID
	for _, l := range t.Links {
		ka, kb := t.Nodes[l.A].Kind, t.Nodes[l.B].Kind
		if ka == topo.Host || kb == topo.Host {
			continue
		}
		if ka != topo.Leaf && kb != topo.Leaf {
			continue
		}
		if which >= 0 {
			leaf := t.Leaves[which]
			if l.A != leaf && l.B != leaf {
				continue
			}
		}
		out = append(out, l.ID)
	}
	return out
}

// Install resolves the campaign against t and schedules every timeline
// action as a global-class event on s. window is the traffic window
// (warmup+measure) AtFrac times scale to. Actions sharing an instant are
// scheduled — and therefore dispatched — in timeline order.
func (c *Campaign) Install(s *sim.Sim, net *fabric.Network, t *topo.Topology, seed int64, window units.Time) error {
	sets, err := c.resolve(t, seed)
	if err != nil {
		return err
	}
	for i := range c.Timeline {
		a := c.Timeline[i]
		at := units.Time(a.AtUs * float64(units.Microsecond))
		if at == 0 {
			at = units.Time(a.AtFrac * float64(window))
		}
		links := sets[a.Set]
		fail := a.Op == "fail"
		instant := a.Instant
		s.AtGlobal(at, func() {
			for _, id := range links {
				if fail {
					net.FailLink(id, instant)
				} else {
					net.RestoreLink(id, instant)
				}
			}
		})
	}
	return nil
}

// LoadCampaign parses a campaign JSON file and validates it.
func LoadCampaign(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if c.Name == "" {
		c.Name = path
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// FlapStorm is the canonical flap campaign: `links` seeded-random leaf
// uplinks fail and recover `cycles` times across the middle of the traffic
// window — each cycle short enough that reconvergence from the previous
// one may still be pending, exercising the coalescing path.
func FlapStorm(links, cycles int) *Campaign {
	c := &Campaign{
		Name: "flapstorm",
		Sets: []LinkSet{{ID: "storm", Uplinks: links}},
	}
	// Cycles span fractions [0.25, 0.90) of the window: restore midway
	// through each cycle, fail again at the next.
	span, start := 0.65, 0.25
	for i := 0; i < cycles; i++ {
		f0 := start + span*float64(i)/float64(cycles)
		f1 := start + span*(float64(i)+0.5)/float64(cycles)
		c.Timeline = append(c.Timeline,
			CampaignAction{AtFrac: f0, Op: "fail", Set: "storm"},
			CampaignAction{AtFrac: f1, Op: "restore", Set: "storm"},
		)
	}
	return c
}

// PodFailure takes the first n leaves' entire fabric connectivity down at
// once — a correlated pod-level event — and restores it later in the run.
func PodFailure(n int) *Campaign {
	c := &Campaign{Name: "podfail"}
	for i := 0; i < n; i++ {
		leaf := i
		c.Sets = append(c.Sets, LinkSet{ID: fmt.Sprintf("pod%d", i), Leaf: &leaf})
		c.Timeline = append(c.Timeline,
			CampaignAction{AtFrac: 0.35, Op: "fail", Set: fmt.Sprintf("pod%d", i)},
			CampaignAction{AtFrac: 0.70, Op: "restore", Set: fmt.Sprintf("pod%d", i)},
		)
	}
	sortTimeline(c)
	return c
}

// RollingDrain drains and undrains the first n leaves one after another —
// the rolling-maintenance scenario: each leaf's fabric links fail, hold
// for a window slice, and recover before the next leaf drains.
func RollingDrain(n int) *Campaign {
	c := &Campaign{Name: "rollingdrain"}
	span, start := 0.65, 0.25
	for i := 0; i < n; i++ {
		leaf := i
		id := fmt.Sprintf("leaf%d", i)
		f0 := start + span*float64(i)/float64(n)
		f1 := start + span*(float64(i)+0.6)/float64(n)
		c.Sets = append(c.Sets, LinkSet{ID: id, Leaf: &leaf})
		c.Timeline = append(c.Timeline,
			CampaignAction{AtFrac: f0, Op: "fail", Set: id},
			CampaignAction{AtFrac: f1, Op: "restore", Set: id},
		)
	}
	return c
}

// sortTimeline orders actions by time, preserving declaration order among
// equals (presets interleave per-set appends; runs dispatch in this order).
func sortTimeline(c *Campaign) {
	sort.SliceStable(c.Timeline, func(i, j int) bool {
		ti := c.Timeline[i].AtUs*float64(units.Microsecond) + c.Timeline[i].AtFrac
		tj := c.Timeline[j].AtUs*float64(units.Microsecond) + c.Timeline[j].AtFrac
		return ti < tj
	})
}

// CampaignByName returns a built-in campaign preset: flapstorm, podfail,
// or rollingdrain.
func CampaignByName(name string) (*Campaign, bool) {
	switch name {
	case "flapstorm":
		return FlapStorm(2, 3), true
	case "podfail":
		return PodFailure(2), true
	case "rollingdrain":
		return RollingDrain(3), true
	}
	return nil, false
}
