package experiments

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/topo"
	"drill/internal/units"
)

// defaultLoads is the quick sweep; the paper sweeps 10–90%.
var defaultLoads = []float64{0.1, 0.3, 0.5, 0.8}

// fullLoads matches the paper's x-axis.
var fullLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

func sweepLoads(o Options) []float64 {
	if o.Scale >= 0.5 {
		return o.loads(fullLoads)
	}
	return o.loads(defaultLoads)
}

// fctSweep runs schemes × loads on a topology and tabulates an FCT
// statistic per cell.
type fctSweep struct {
	topo    func() *topo.Topology
	schemes []Scheme
	loads   []float64
	warmup  units.Time
	measure units.Time
	fail    int
	failAt  units.Time
	incast  units.Time
	engines int
}

type sweepCell struct {
	res *RunResult
}

// run executes the sweep, returning results indexed [scheme][load]. Cell
// configs are built up front (schemes × loads × reps) and fanned out on
// the option's worker pool; replications are pooled in submission order,
// so the tables are identical at every worker count.
func (f *fctSweep) run(o Options) [][]sweepCell {
	type cellKey struct{ si, li int }
	var cfgs []RunCfg
	var keys []cellKey
	for si, sc := range f.schemes {
		for li, load := range f.loads {
			for rep := 0; rep < o.Reps; rep++ {
				cfgs = append(cfgs, RunCfg{
					Topo:         f.topo,
					Scheme:       sc,
					Seed:         o.Seed + int64(si*100+li) + int64(rep*10007),
					Load:         load,
					Warmup:       f.warmup,
					Measure:      f.measure,
					FailLinks:    f.fail,
					FailAt:       f.failAt,
					IncastPeriod: f.incast,
					Engines:      f.engines,
				})
				keys = append(keys, cellKey{si, li})
			}
		}
	}
	results := o.runAll(cfgs, func(i int, res *RunResult) {
		k := keys[i]
		o.progress("%-16s load=%.0f%%  flows=%d  meanFCT=%.3fms  p99.99=%.3fms  drops=%d  retx=%d  ooo=%d  events=%d  [%s]",
			f.schemes[k.si].Name, f.loads[k.li]*100, res.FCT.Count(), res.FCT.Mean(),
			res.FCT.Percentile(99.99), res.Drops, res.Retransmits, res.OutOfOrder, res.Events, timing(res))
	})

	out := make([][]sweepCell, len(f.schemes))
	for si := range f.schemes {
		out[si] = make([]sweepCell, len(f.loads))
	}
	for i, res := range results {
		k := keys[i]
		if merged := out[k.si][k.li].res; merged == nil {
			out[k.si][k.li].res = res
		} else {
			// Pool FCT samples across replications; counters add.
			merged.FCT.AddDist(res.FCT)
			merged.Drops += res.Drops
			merged.Flows += res.Flows
			merged.Events += res.Events
			merged.Retransmits += res.Retransmits
			merged.Timeouts += res.Timeouts
			merged.OutOfOrder += res.OutOfOrder
		}
	}
	return out
}

// tabulate renders one statistic across the sweep.
func (f *fctSweep) tabulate(r *Report, cells [][]sweepCell, stat func(*RunResult) float64) {
	cols := []string{"scheme"}
	for _, l := range f.loads {
		cols = append(cols, fmt.Sprintf("%.0f%%", l*100))
	}
	r.Columns = cols
	for si, sc := range f.schemes {
		row := []string{sc.Name}
		for li := range f.loads {
			row = append(row, fmtMs(stat(cells[si][li].res)))
		}
		r.AddRow(row...)
	}
	f.noteTransportHealth(r, cells)
}

// noteTransportHealth surfaces the transport.Stats aggregates of the
// sweep: a scheme that "wins" on FCT while drowning in retransmissions
// or reordering is telling a different story than the headline table.
func (f *fctSweep) noteTransportHealth(r *Report, cells [][]sweepCell) {
	for si, sc := range f.schemes {
		var retx, rto, ooo int64
		for li := range f.loads {
			res := cells[si][li].res
			retx += res.Retransmits
			rto += res.Timeouts
			ooo += res.OutOfOrder
		}
		r.Note("%-16s transport health: retransmits=%d rto=%d out-of-order=%d",
			sc.Name, retx, rto, ooo)
	}
}

func meanFCT(res *RunResult) float64 { return res.FCT.Mean() }
func tailFCT(res *RunResult) float64 { return res.FCT.Percentile(99.99) }

func sweepTimes(o Options) (warmup, measure units.Time) {
	return lerpTime(500*units.Microsecond, 5*units.Millisecond, o.Scale),
		lerpTime(3*units.Millisecond, 100*units.Millisecond, o.Scale)
}

func init() {
	register(&Experiment{
		ID:    "fig6a",
		Title: "Mean FCT vs load, symmetric Clos (Fig. 6a)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			sw := &fctSweep{topo: fig6Topo(o.Scale), schemes: StdSchemes(),
				loads: sweepLoads(o), warmup: w, measure: m}
			cells := sw.run(o)
			rep := &Report{ID: "fig6a", Title: "Mean FCT [ms] vs avg. core load"}
			sw.tabulate(rep, cells, meanFCT)
			addWinners(rep, sw, cells, meanFCT, "mean FCT")
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig6b",
		Title: "99.99th percentile FCT vs load, symmetric Clos (Fig. 6b)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			sw := &fctSweep{topo: fig6Topo(o.Scale), schemes: StdSchemes(),
				loads: sweepLoads(o), warmup: w, measure: m}
			cells := sw.run(o)
			rep := &Report{ID: "fig6b", Title: "99.99th pct FCT [ms] vs avg. core load"}
			sw.tabulate(rep, cells, tailFCT)
			addWinners(rep, sw, cells, tailFCT, "tail FCT")
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig6c",
		Title: "Mean queueing time per hop at 10/50/80% load (Fig. 6c)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "fig6c", Title: "Mean queueing time [µs] per hop",
				Columns: []string{"load", "scheme", "hop1 (leaf up)", "hop2 (spine down)", "hop3 (leaf->host)"}}
			loads, schemes := o.loads([]float64{0.1, 0.5, 0.8}), StdSchemes()
			var cfgs []RunCfg
			for _, load := range loads {
				for si, sc := range schemes {
					cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: sc,
						Seed: o.Seed + int64(si), Load: load, Warmup: w, Measure: m})
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig6c %s load=%.0f%% done [%s]",
					schemes[i%len(schemes)].Name, loads[i/len(schemes)]*100, timing(res))
			})
			for i, res := range results {
				rep.AddRow(fmt.Sprintf("%.0f%%", loads[i/len(schemes)]*100), schemes[i%len(schemes)].Name,
					fmtF(res.Hops.MeanQueueing(metrics.Hop1)),
					fmtF(res.Hops.MeanQueueing(metrics.Hop2)),
					fmtF(res.Hops.MeanQueueing(metrics.Hop3)))
			}
			rep.Note("paper: load balancing gains come from hop 1 (upstream) queues; " +
				"hop 3 has no path choice and is scheme-independent")
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Scale-out fabric: mean and tail FCT vs load (Fig. 7)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			sw := &fctSweep{topo: scaleOutTopo(o.Scale), schemes: StdSchemes(),
				loads: sweepLoads(o), warmup: w, measure: m}
			cells := sw.run(o)
			rep := &Report{ID: "fig7", Title: "Scale-out (all-10G) mean FCT [ms]"}
			sw.tabulate(rep, cells, meanFCT)
			rep.Note("tail (p99.99) FCT [ms]:")
			for si, sc := range sw.schemes {
				row := sc.Name
				for li := range sw.loads {
					row += fmt.Sprintf("  %s", fmtMs(tailFCT(cells[si][li].res)))
				}
				rep.Note("%s", row)
			}
			addWinners(rep, sw, cells, meanFCT, "mean FCT")
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "FCT CDFs in the scale-out fabric at 30% and 80% (Fig. 8)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "fig8", Title: "FCT CDF points [ms at F]",
				Columns: []string{"load", "scheme", "p25", "p50", "p75", "p95", "p99"}}
			loads, schemes := o.loads([]float64{0.3, 0.8}), StdSchemes()
			var cfgs []RunCfg
			for _, load := range loads {
				for si, sc := range schemes {
					cfgs = append(cfgs, RunCfg{Topo: scaleOutTopo(o.Scale), Scheme: sc,
						Seed: o.Seed + int64(si), Load: load, Warmup: w, Measure: m})
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig8 %s load=%.0f%% done [%s]",
					schemes[i%len(schemes)].Name, loads[i/len(schemes)]*100, timing(res))
			})
			for i, res := range results {
				rep.AddRow(fmt.Sprintf("%.0f%%", loads[i/len(schemes)]*100), schemes[i%len(schemes)].Name,
					fmtMs(res.FCT.Percentile(25)), fmtMs(res.FCT.Percentile(50)),
					fmtMs(res.FCT.Percentile(75)), fmtMs(res.FCT.Percentile(95)),
					fmtMs(res.FCT.Percentile(99)))
			}
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Oversubscription 1:1 vs 5:3 at 80% load (Fig. 9)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "fig9", Title: "FCT by oversubscription ratio at 80% load [ms]",
				Columns: []string{"ratio", "scheme", "mean", "p50", "p99", "p99.99"}}
			ratios := []struct {
				name   string
				spines int
			}{{"1:1", 20}, {"5:3", 12}}
			schemes := StdSchemes()
			var cfgs []RunCfg
			for _, v := range ratios {
				for si, sc := range schemes {
					cfgs = append(cfgs, RunCfg{Topo: oversubTopo(v.spines, o.Scale), Scheme: sc,
						Seed: o.Seed + int64(si), Load: 0.8, Warmup: w, Measure: m})
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig9 %s %s done [%s]",
					ratios[i/len(schemes)].name, schemes[i%len(schemes)].Name, timing(res))
			})
			for i, res := range results {
				rep.AddRow(ratios[i/len(schemes)].name, schemes[i%len(schemes)].Name,
					fmtMs(res.FCT.Mean()), fmtMs(res.FCT.Percentile(50)),
					fmtMs(res.FCT.Percentile(99)), fmtMs(res.FCT.Percentile(99.99)))
			}
			return rep
		},
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "VL2 three-stage Clos at 20% and 70% load (Fig. 10)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "fig10", Title: "VL2 FCT [ms]",
				Columns: []string{"load", "scheme", "mean", "p50", "p99", "p99.99"}}
			loads, schemes := o.loads([]float64{0.2, 0.7}), StdSchemes()
			var cfgs []RunCfg
			for _, load := range loads {
				for si, sc := range schemes {
					cfgs = append(cfgs, RunCfg{Topo: vl2Topo(o.Scale), Scheme: sc,
						Seed: o.Seed + int64(si), Load: load, Warmup: w, Measure: m})
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("fig10 %s load=%.0f%% done [%s]",
					schemes[i%len(schemes)].Name, loads[i/len(schemes)]*100, timing(res))
			})
			for i, res := range results {
				rep.AddRow(fmt.Sprintf("%.0f%%", loads[i/len(schemes)]*100), schemes[i%len(schemes)].Name,
					fmtMs(res.FCT.Mean()), fmtMs(res.FCT.Percentile(50)),
					fmtMs(res.FCT.Percentile(99)), fmtMs(res.FCT.Percentile(99.99)))
			}
			rep.Note("CONGA runs at the ToRs with ECMP cores (paper footnote 5); " +
				"DRILL micro-balances at every stage")
			return rep
		},
	})
}

// addWinners annotates a report with the DRILL-vs-baseline ratios at the
// highest load — the headline numbers of the abstract.
func addWinners(rep *Report, sw *fctSweep, cells [][]sweepCell, stat func(*RunResult) float64, label string) {
	last := len(sw.loads) - 1
	drill := -1
	for si, sc := range sw.schemes {
		if sc.Name == "DRILL" {
			drill = si
		}
	}
	if drill < 0 || last < 0 {
		return
	}
	dv := stat(cells[drill][last].res)
	if dv <= 0 {
		return
	}
	for si, sc := range sw.schemes {
		if si == drill {
			continue
		}
		v := stat(cells[si][last].res)
		rep.Note("%s at %.0f%% load: %s/%s = %.2fx", label,
			sw.loads[last]*100, sc.Name, "DRILL", v/dv)
	}
}
