package experiments

import (
	"fmt"

	"drill/internal/queueing"
)

func init() {
	register(&Experiment{
		ID:    "stability",
		Title: "Theorems 1-2: DRILL(d,0) instability vs DRILL(d,m>=1) stability (§3.2.4)",
		Run: func(o Options) *Report {
			o.defaults()
			slots := lerpInt(50_000, 1_000_000, o.Scale)
			m, n := 4, 8
			arr, svc := queueing.Theorem1Rates(m, n, 0.2)
			rep := &Report{ID: "stability",
				Title:   fmt.Sprintf("M=%d engines, N=%d queues, adversarial-but-admissible rates, %d slots", m, n, slots),
				Columns: []string{"policy", "total queue @T/2", "total queue @T", "throughput", "Lyapunov V @T"}}
			policies := []struct {
				name string
				d, q int
			}{
				{"DRILL(1,0) (memoryless)", 1, 0},
				{"DRILL(2,0) (memoryless)", 2, 0},
				{"DRILL(1,1)", 1, 1},
				{"DRILL(2,1)", 2, 1},
				{"DRILL(2,4)", 2, 4},
			}
			// The queueing sims are independent per policy, so they fan out
			// on the same worker pool as the packet-level sweeps.
			type stabCell struct {
				half, final int64
				thr, lyap   float64
			}
			rows, _ := Fan(len(policies), o.Workers, func(i int) (stabCell, error) {
				cfg := policies[i]
				s := queueing.New(m, n, cfg.d, cfg.q, arr, svc, o.Seed)
				s.Run(slots / 2)
				half := s.TotalQueue()
				s.Run(slots - slots/2)
				return stabCell{
					half:  int64(half),
					final: int64(s.TotalQueue()),
					thr:   float64(s.TotalServed) / float64(s.TotalArrived),
					lyap:  s.Lyapunov(),
				}, nil
			}, func(i int, c stabCell) {
				o.progress("stability %s done", policies[i].name)
			})
			for i, c := range rows {
				rep.AddRow(policies[i].name,
					fmt.Sprintf("%d", c.half), fmt.Sprintf("%d", c.final),
					fmt.Sprintf("%.4f", c.thr), fmt.Sprintf("%.3g", c.lyap))
			}
			rep.Note("Theorem 1: memoryless variants grow without bound under admissible " +
				"heterogeneous service; Theorem 2: one memory unit restores stability and ~100%% throughput")

			// Time-varying service rates (the failures/recoveries case).
			sVar := queueing.New(m, n, 1, 1, arr, svc, o.Seed+1)
			phaseA := append([]float64(nil), svc...)
			phaseB := append([]float64(nil), svc...)
			phaseB[0], phaseB[n-1] = phaseB[n-1], phaseB[0]
			for phase := 0; phase < 10; phase++ {
				src := phaseA
				if phase%2 == 1 {
					src = phaseB
				}
				copy(sVar.Service, src)
				sVar.Run(slots / 10)
			}
			rep.Note("time-varying service (capacity flips every T/10): DRILL(1,1) final "+
				"queue %d, throughput %.4f", sVar.TotalQueue(),
				float64(sVar.TotalServed)/float64(sVar.TotalArrived))
			return rep
		},
	})
}
