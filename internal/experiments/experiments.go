// Package experiments regenerates every table and figure of the DRILL
// paper's evaluation (§4) plus the ablations DESIGN.md calls out. Each
// experiment is registered by id ("fig6a", "table1", ...) and produces a
// Report with the same rows/series the paper plots.
//
// The paper's runs use up to 48×48×48 Clos fabrics simulated for 100 s;
// this package defaults to reduced topologies and millisecond-scale
// windows that preserve the comparisons' *shape* (who wins, by what
// factor) on a single-core machine, and interpolates toward the paper's
// parameters as Options.Scale → 1.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"drill/internal/fabric"
	"drill/internal/obs"
	"drill/internal/trace"
	"drill/internal/units"
)

// Options controls an experiment invocation.
type Options struct {
	// Seed makes runs reproducible; experiments derive per-run seeds.
	Seed int64
	// Scale in [0,1] interpolates between quick single-core defaults (0)
	// and the paper's full parameters (1).
	Scale float64
	// Loads overrides the offered-load sweep points, when the experiment
	// has one.
	Loads []float64
	// Reps replicates each FCT-sweep cell across that many seeds and pools
	// the samples (default 1). Raises run time linearly.
	Reps int
	// Workers bounds the number of concurrent simulation runs during sweep
	// fan-out: 0 = one per CPU, 1 = fully sequential. Reports are
	// byte-identical for a fixed seed at any worker count.
	Workers int
	// Progress, when non-nil, receives one line per completed run. The
	// fan-out pool serializes calls, so the callback may touch shared
	// state without locking.
	Progress func(format string, args ...any)

	// Shards > 0 runs every sweep cell on the sharded parallel engine with
	// that many shards (see RunCfg.Shards); results are byte-identical to
	// the sequential engine at any shard count. Ignored when a TraceSink
	// is attached: full-kind tracing is a sequential-engine feature, and
	// -trace runs double as the determinism reference.
	Shards int

	// Campaign, when non-nil, installs this scripted fail/restore timeline
	// into every sweep cell that doesn't already carry one (see
	// campaign.go and RunCfg.Campaign).
	Campaign *Campaign

	// TraceSink, when non-nil, streams every run's packet-lifecycle events
	// into the sink, each run tagged with its cell index. Tracing forces
	// the sweep sequential (workers=1): a shared file sink is not safe for,
	// and its interleaving not meaningful under, concurrent runs.
	TraceSink trace.Sink
	// TraceSample is the queue-depth/utilization sampling period used when
	// tracing is on (default 10µs).
	TraceSample units.Time

	// ExpID is the id of the experiment being run ("fig6a", ...). drillsim
	// sets it before invoking Experiment.Run; it labels metric series and
	// manifest rows, and is otherwise inert.
	ExpID string
	// Obs, when non-nil, attaches the live metrics registry to every run
	// of the sweep: per-cell fabric and transport families under
	// exp/cell labels, a runner family (cells done, events/s, sim-rate),
	// and a sim-time snapshotter per run. Metrics observe, never steer —
	// reports stay byte-identical with Obs on or off.
	Obs *obs.Registry
	// ObsSample overrides the per-run snapshot interval (default 100µs).
	ObsSample units.Time
	// EngineObs, with Obs attached, registers the engine observatory
	// families for every run of the sweep (see RunCfg.EngineObs).
	EngineObs bool
	// EngineSink, when non-nil, receives each completed cell's engine
	// report, tagged with the cell index. Calls are serialized by the
	// fan-out pool's done callbacks, so the sink may touch shared state
	// (a stderr printer, the /engine.json atomic pointer) without locking.
	EngineSink func(cell int, rep *obs.EngineReport)
	// Manifest, when non-nil, collects one provenance row per completed
	// cell, in submission order regardless of worker count. The caller
	// writes it next to the experiment output.
	Manifest *obs.Manifest
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale < 0 {
		o.Scale = 0
	}
	if o.Scale > 1 {
		o.Scale = 1
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	if o.TraceSample == 0 {
		o.TraceSample = 10 * units.Microsecond
	}
}

func (o *Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// runAll fans cfgs out on the option's worker count; see RunAll. With a
// TraceSink configured, each cell that does not already carry a tracer of
// its own gets one tagged with the cell index, and the sweep degrades to
// sequential so the shared sink sees runs whole and in order.
func (o *Options) runAll(cfgs []RunCfg, done func(i int, res *RunResult)) []*RunResult {
	w := o.Workers
	if o.TraceSink != nil {
		w = 1
		for i := range cfgs {
			if cfgs[i].Tracer == nil {
				cfgs[i].Tracer = trace.New(o.TraceSink, trace.WithRun(int32(i)))
				cfgs[i].TraceSample = o.TraceSample
			}
		}
	}
	if o.Shards > 0 && o.TraceSink == nil {
		// Shard-unsafe balancers (CONGA's global feedback, Presto's send
		// hook, ...) keep the sequential engine; because both engines
		// produce identical bytes, a sweep mixing engines per cell is
		// still one coherent report. The fallback is announced — once per
		// scheme — and the engine each cell actually ran on is recorded in
		// its provenance row (CellSummary.Engine), so a "-shards N" sweep
		// never silently misrepresents what executed.
		noticed := map[string]bool{}
		for i := range cfgs {
			if cfgs[i].Shards == 0 && cfgs[i].Scheme.New != nil {
				if _, unsafe := cfgs[i].Scheme.New().(fabric.ShardUnsafe); unsafe {
					if !noticed[cfgs[i].Scheme.Name] {
						noticed[cfgs[i].Scheme.Name] = true
						o.progress("note: scheme %s is shard-unsafe; its cells run on the sequential engine (recorded in the manifest)",
							cfgs[i].Scheme.Name)
					}
				} else {
					cfgs[i].Shards = o.Shards
				}
			}
		}
	}
	if o.Campaign != nil {
		for i := range cfgs {
			if cfgs[i].Campaign == nil {
				cfgs[i].Campaign = o.Campaign
			}
		}
	}
	if o.Obs != nil {
		rm := newRunnerMetrics(o.Obs, o.ExpID, len(cfgs))
		for i := range cfgs {
			if cfgs[i].Obs == nil {
				cfgs[i].Obs = o.Obs
				cfgs[i].ObsScope = cellScope(o.ExpID, i)
				cfgs[i].ObsSample = o.ObsSample
			}
			if o.EngineObs {
				cfgs[i].EngineObs = true
			}
		}
		inner := done
		done = func(i int, res *RunResult) {
			rm.observe(res) // done callbacks are serialized by the pool
			if inner != nil {
				inner(i, res)
			}
		}
	}
	if o.EngineSink != nil {
		inner := done
		done = func(i int, res *RunResult) {
			o.EngineSink(i, res.EngineRep) // serialized by the pool
			if inner != nil {
				inner(i, res)
			}
		}
	}
	results := RunAll(cfgs, w, done)
	if o.Manifest != nil {
		// Collected from the returned slice, not the done callback, so
		// manifest rows are in submission order at any worker count.
		for i, res := range results {
			if res == nil {
				continue
			}
			cs := res.Prov
			cs.Exp = o.ExpID
			cs.Cell = strconv.Itoa(i)
			o.Manifest.Add(cs)
		}
	}
	return results
}

// timing renders the per-cell run-timing suffix of progress lines.
func timing(res *RunResult) string {
	secs := res.Wall.Seconds()
	evs := 0.0
	if secs > 0 {
		evs = float64(res.Events) / secs
	}
	return fmt.Sprintf("wall=%.2fs ev/s=%.3g sim/real=%.3g", secs, evs, res.SimRate())
}

// loads returns the experiment's load sweep, honoring any override.
func (o *Options) loads(def []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return def
}

// lerpInt interpolates an integer parameter between the quick default and
// the paper's value.
func lerpInt(small, paper int, scale float64) int {
	v := float64(small) + scale*float64(paper-small)
	n := int(v + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// lerpTime interpolates a duration parameter.
func lerpTime(small, paper units.Time, scale float64) units.Time {
	return small + units.Time(scale*float64(paper-small))
}

// Report is an experiment's result table.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-form note shown under the table.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is a registered, runnable evaluation artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) *Report
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id, or nil.
func Get(id string) *Experiment { return registry[id] }

// All returns every registered experiment sorted by id.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// fmtMs formats a milliseconds value for report cells.
func fmtMs(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtF formats a generic float.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }
