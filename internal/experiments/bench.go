package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"drill/internal/fabric"
	"drill/internal/obs"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

// This file is the perf-trajectory harness: cmd/drillbench runs the
// canonical cells below and writes a BENCH_*.json snapshot (events/sec,
// ns/event, allocs/event, peak heap, packet-pool traffic). The committed
// BENCH_baseline.json is the first point of that trajectory; future PRs
// that touch the packet path regenerate it and diff.

// BenchSchemaVersion identifies the BENCH_*.json layout.
const BenchSchemaVersion = "drill-bench/v1"

// BenchCell is one canonical benchmark configuration.
type BenchCell struct {
	Name string
	Cfg  RunCfg
}

// BenchCells returns the canonical cells: the fig6a fabric under the two
// schemes whose data-plane work brackets the suite (ECMP's single hash
// lookup, DRILL's sampled-queue comparisons), at a moderate and a high
// load. Small enough that one pass finishes in seconds, big enough that
// each cell dispatches millions of events.
func BenchCells(seed int64) []BenchCell {
	mk := func(name, scheme string, load float64) BenchCell {
		sc, ok := SchemeByName(scheme)
		if !ok {
			panic("experiments: unknown bench scheme " + scheme)
		}
		return BenchCell{Name: name, Cfg: RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: seed, Load: load,
			Warmup:  200 * units.Microsecond,
			Measure: 2 * units.Millisecond,
		}}
	}
	return []BenchCell{
		mk("ecmp-load0.5", "ECMP", 0.5),
		mk("drill-load0.5", "DRILL", 0.5),
		mk("drill-load0.8", "DRILL", 0.8),
	}
}

// BenchShardCells returns the sharded-engine cells: a k=16 fat-tree
// (1024 hosts, 320 switches) under DRILL at 50% load, run sequentially and
// at 4 and 8 shards. The sequential/sharded pairs share a seed, so their
// event counts must match exactly (the conformance suite proves the full
// results do); the events/s ratio between them is the aggregate speedup
// the shard rows of BENCH_shard.json track. On a single-core runner the
// ratio degenerates to the window protocol's overhead (≈1.0×); on the
// multi-core machines CI uses it is the parallel scaling number.
func BenchShardCells(seed int64) []BenchCell {
	sc, ok := SchemeByName("DRILL")
	if !ok {
		panic("experiments: DRILL scheme missing")
	}
	mk := func(name string, shards int) BenchCell {
		return BenchCell{Name: name, Cfg: RunCfg{
			Topo: func() *topo.Topology {
				return topo.FatTree(topo.FatTreeConfig{K: 16, LinkRate: 10 * units.Gbps})
			},
			Scheme: sc, Seed: seed, Load: 0.5, Shards: shards,
			Warmup:  100 * units.Microsecond,
			Measure: 300 * units.Microsecond,
		}}
	}
	return []BenchCell{
		mk("fattree16-seq", 0),
		mk("fattree16-shards4", 4),
		mk("fattree16-shards8", 8),
	}
}

// BenchCellResult is one cell's measurements.
type BenchCellResult struct {
	Name   string  `json:"name"`
	Scheme string  `json:"scheme"`
	Load   float64 `json:"load"`
	Shards int     `json:"shards,omitempty"` // 0 = sequential engine

	Events       uint64  `json:"events"`
	WallNs       int64   `json:"wall_ns"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	Flows        int64   `json:"flows"`

	Mallocs        uint64  `json:"mallocs"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`

	// PacketGets is pool traffic; PacketAllocs the fresh allocations among
	// it. Gets - Allocs is the allocation volume recycling avoided.
	PacketGets   int64 `json:"packet_gets"`
	PacketAllocs int64 `json:"packet_allocs"`

	// Engine observatory summary, sharded cells only: windows run, wall
	// time parked at barriers as a share of total shard wall time, and the
	// max/mean per-shard event imbalance. Informational — benchdiff
	// compares only its named metrics, so snapshots without these fields
	// stay diffable.
	Windows         uint64  `json:"windows,omitempty"`
	BarrierStallPct float64 `json:"barrier_stall_pct,omitempty"`
	ShardImbalance  float64 `json:"shard_imbalance,omitempty"`
}

// MicroAllocs are testing.AllocsPerRun measurements of the three hot paths
// the pool/timer work targets. Each is allocations per operation at steady
// state; the alloc-ceiling tests pin the first two at zero.
type MicroAllocs struct {
	// TimerResetStop: one RTO re-arm + disarm on a warm sim heap.
	TimerResetStop float64 `json:"timer_reset_stop"`
	// PoolGetPut: one packet recycle round trip (Get, fill nothing, Put).
	PoolGetPut float64 `json:"pool_get_put"`
	// SendDeliver: one pool-allocated packet pushed host→leaf→host through
	// a warm two-host fabric, including every event closure the data plane
	// schedules for it (enqueue visibility, txDone, arrive). This is the
	// whole per-packet event cost, the number future PRs should shrink.
	SendDeliver float64 `json:"send_deliver"`
	// ShardWindow: one cross-shard packet delivered through a warm 2-shard
	// fabric via the window protocol — ~25 barriers (worker handoffs,
	// outbox→ring exchange, callback re-arms) per operation. Pinned at
	// zero by the shard alloc-ceiling test: the barrier path reuses its
	// outboxes, rings, and interned events at steady state.
	ShardWindow float64 `json:"shard_window"`
}

// BenchReport is the BENCH_*.json document.
type BenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is runtime.NumCPU() and GoMaxProcs runtime.GOMAXPROCS(0).
	// Both are recorded because CI containers routinely pin GOMAXPROCS
	// below the host's core count (cgroup quota), and either one alone
	// misstates the machine the wall-clock rates came from. benchdiff
	// warns — never fails — when they differ between snapshots.
	NumCPU     int   `json:"num_cpu"`
	GoMaxProcs int   `json:"gomaxprocs"`
	Seed       int64 `json:"seed"`

	Cells []BenchCellResult `json:"cells"`
	Micro MicroAllocs       `json:"micro"`

	// Provenance self-describes the snapshot: which binary (git revision,
	// dirty flag) produced it, with one row per cell carrying the config
	// hash. Absent from snapshots older than the field.
	Provenance *obs.Manifest `json:"provenance,omitempty"`
}

// RunBenchCell executes one cell and measures it. The heap is settled with
// a forced GC before the run so malloc/byte deltas belong to the run
// alone; peak heap is sampled every 500µs of simulated time from inside
// the run.
func RunBenchCell(c BenchCell) BenchCellResult {
	cfg := c.Cfg
	var peak uint64
	cfg.Hook = func(reg *transport.Registry, until units.Time) {
		sim.NewTicker(reg.Sim, 500*units.Microsecond, func(units.Time) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		})
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	started := time.Now() //drill:allow simtime wall timing of the bench cell, never a sim timestamp
	res := Run(cfg)
	wall := time.Since(started) //drill:allow simtime wall timing of the bench cell, never a sim timestamp
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}

	out := BenchCellResult{
		Name:   c.Name,
		Scheme: cfg.Scheme.Name,
		Load:   cfg.Load,
		Shards: cfg.Shards,

		Events: res.Events,
		WallNs: wall.Nanoseconds(),
		Flows:  res.Flows,

		Mallocs:       after.Mallocs - before.Mallocs,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes: peak,

		PacketGets:   res.PacketGets,
		PacketAllocs: res.PacketAllocs,
	}
	if res.Events > 0 {
		out.NsPerEvent = float64(wall.Nanoseconds()) / float64(res.Events)
		out.AllocsPerEvent = float64(out.Mallocs) / float64(res.Events)
		out.BytesPerEvent = float64(out.AllocBytes) / float64(res.Events)
	}
	if secs := wall.Seconds(); secs > 0 {
		out.EventsPerSec = float64(res.Events) / secs
	}
	if rep := res.EngineRep; rep != nil && len(rep.Shards) > 0 {
		out.Windows = rep.WindowCount
		out.BarrierStallPct = rep.StallPct()
		out.ShardImbalance = rep.Imbalance()
	}
	return out
}

// RunBench executes every canonical cell plus the micro measurements.
func RunBench(seed int64, progress func(format string, args ...any)) BenchReport {
	rep := BenchReport{
		Schema:     BenchSchemaVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}
	rep.Provenance = obs.NewManifest("drillbench", seed)
	for _, c := range append(BenchCells(seed), BenchShardCells(seed)...) {
		r := RunBenchCell(c)
		if progress != nil {
			suffix := ""
			if r.Windows > 0 {
				suffix = fmt.Sprintf("  windows %d  stall %.1f%%  imb %.2f",
					r.Windows, r.BarrierStallPct, r.ShardImbalance)
			}
			progress("%-14s %8.3g ev/s  %6.1f ns/ev  %6.3f allocs/ev  peak %5.1f MB%s",
				r.Name, r.EventsPerSec, r.NsPerEvent, r.AllocsPerEvent,
				float64(r.PeakHeapBytes)/1e6, suffix)
		}
		rep.Cells = append(rep.Cells, r)
		rep.Provenance.Add(obs.CellSummary{
			Cell: r.Name, Scheme: r.Scheme, Seed: seed, Load: r.Load,
			ConfigHash: obs.ConfigHash(provConfig(c.Cfg)),
			Events:     r.Events, Flows: r.Flows, WallNs: r.WallNs,
			Windows: r.Windows, Imbalance: r.ShardImbalance,
		})
	}
	rep.Micro = BenchMicroAllocs()
	if progress != nil {
		progress("micro: timer reset+stop %.2f, pool get+put %.2f, send→deliver %.2f allocs/op",
			rep.Micro.TimerResetStop, rep.Micro.PoolGetPut, rep.Micro.SendDeliver)
	}
	return rep
}

// BenchMicroAllocs measures the per-operation allocation cost of the
// timer re-arm, packet recycle, and send→deliver paths.
func BenchMicroAllocs() MicroAllocs {
	var m MicroAllocs

	// Timer re-arm on a warm heap: Reset moves the live entry in place.
	{
		s := sim.New(1)
		tm := s.NewTimer(func() {})
		tm.Reset(1 * units.Nanosecond)
		s.Run()
		m.TimerResetStop = testing.AllocsPerRun(1000, func() {
			tm.Reset(5 * units.Nanosecond)
			tm.Stop()
		})
	}

	// Packet recycle round trip on a warm free list.
	{
		var pool fabric.PacketPool
		pool.Put(pool.Get())
		m.PoolGetPut = testing.AllocsPerRun(1000, func() {
			pool.Put(pool.Get())
		})
	}

	// One pool packet host→leaf→host through a warm fabric, drained.
	{
		sc, _ := SchemeByName("ECMP")
		tp := topo.LeafSpine(topo.LeafSpineConfig{
			Spines: 1, Leaves: 1, HostsPerLeaf: 2,
			CoreRate: 10 * units.Gbps, HostRate: 10 * units.Gbps,
		})
		s := sim.New(1)
		net := fabric.New(s, tp, fabric.Config{Balancer: sc.New()})
		src, dst := net.Host(tp.Hosts[0]), tp.Hosts[1]
		send := func() {
			pkt := src.AllocPacket()
			pkt.FlowID = 1
			pkt.Hash = 7
			pkt.Dst = dst
			pkt.Size = 1518 * units.Byte
			src.Send(pkt)
			s.Run()
		}
		send() // warm queues, heap, and pool
		m.SendDeliver = testing.AllocsPerRun(500, send)
	}

	// One window-protocol round trip across a warm 2-shard fabric. Warm-up
	// must cover one full timing-wheel revolution (~4.2ms of sim time, ~850
	// ops at 5µs each) so every calendar bucket of every shard's wheel has
	// grown its high-water array; only then does a remaining allocation
	// belong to the barrier path rather than to wheel warm-up.
	{
		op, done := shardWindowOp()
		for i := 0; i < 5000; i++ {
			op()
		}
		m.ShardWindow = testing.AllocsPerRun(500, op)
		done()
	}
	return m
}

// shardWindowOp builds a minimal 2-shard fabric (two leaves with one host
// each, one spine) and returns an operation that sends one packet in each
// direction between the shards and runs the window protocol until both
// deliver — every op crosses the shard boundary twice and passes ~25
// barriers. Packets are sent pairwise so the domain pools exchange
// retired packets symmetrically and neither ever grows. The second return
// stops the shard workers.
func shardWindowOp() (op func(), done func()) {
	sc, _ := SchemeByName("ECMP")
	tp := topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 1, Leaves: 2, HostsPerLeaf: 1,
		CoreRate: 10 * units.Gbps, HostRate: 10 * units.Gbps,
	})
	assign, nsh := tp.Partition(2)
	global := sim.New(1)
	shards := make([]*sim.Sim, nsh)
	for i := range shards {
		shards[i] = sim.New(1)
	}
	net := fabric.NewSharded(global, shards, assign, tp, fabric.Config{Balancer: sc.New()})
	group := &sim.ShardGroup{
		Global: global, Shards: shards,
		Lookahead: net.ShardLookahead(), Exchange: net.ExchangeShards,
	}
	group.Start()

	a, b := net.Host(tp.Hosts[0]), net.Host(tp.Hosts[1])
	send := func(src *fabric.Host, dst topo.NodeID) {
		pkt := src.AllocPacket()
		pkt.FlowID = 1
		pkt.Hash = 7
		pkt.Dst = dst
		pkt.Size = 1518 * units.Byte
		src.Send(pkt)
	}
	next := global.Now()
	op = func() {
		send(a, b.ID)
		send(b, a.ID)
		next += 5 * units.Microsecond
		group.RunUntil(next)
	}
	return op, group.Close
}
