package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := &Report{ID: "t", Title: "demo", Columns: []string{"a", "b"}}
	r.AddRow("1", "two, with comma")
	r.AddRow("3", `quote "inside"`)
	r.Note("hello")
	return r
}

func TestReportCSV(t *testing.T) {
	out, err := sampleReport().CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"two, with comma"`) {
		t.Errorf("comma not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[3], "note") {
		t.Errorf("note row missing: %q", lines[3])
	}
}

func TestReportJSON(t *testing.T) {
	out, err := sampleReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, out)
	}
	if decoded.ID != "t" || len(decoded.Rows) != 2 || len(decoded.Notes) != 1 {
		t.Fatalf("round trip mismatch: %+v", decoded)
	}
	if decoded.Rows[1][1] != `quote "inside"` {
		t.Fatalf("quote mangled: %q", decoded.Rows[1][1])
	}
}
