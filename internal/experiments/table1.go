package experiments

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/transport"
	"drill/internal/units"
	"drill/internal/workload"
)

// table1Result holds one pattern × scheme cell.
type table1Result struct {
	elephantGbps float64
	miceMean     float64
	miceTail     float64
}

// table1Cfg configures one pattern × scheme run; the Synthetic closure is
// built per-config so concurrent cells share no workload state.
func table1Cfg(o Options, pattern string, sc Scheme, seed int64) RunCfg {
	w := lerpTime(500*units.Microsecond, 2*units.Millisecond, o.Scale)
	m := lerpTime(8*units.Millisecond, 100*units.Millisecond, o.Scale)
	micePeriod := lerpTime(400*units.Microsecond, 2*units.Millisecond, o.Scale)
	return RunCfg{
		Topo:    table1Topo,
		Scheme:  sc,
		Seed:    seed,
		Warmup:  w,
		Measure: m,
		Synthetic: func(reg *transport.Registry, until units.Time) *workload.Synthetic {
			syn := workload.NewSynthetic(reg, micePeriod, until)
			t := reg.Net.Topo
			switch pattern {
			case "stride":
				syn.Run(workload.Stride(t, 8))
			case "bijection":
				syn.Run(workload.Bijection(t, reg.Sim.Stream(0xb1)))
			case "shuffle":
				// Run the first few phases concurrently to create the
				// all-to-all contention the full shuffle exhibits.
				syn.Run(workload.ShufflePhase(t, nil, 0))
				syn.Run(workload.ShufflePhase(t, nil, 1))
			}
			return syn
		},
	}
}

// table1Cell extracts the Table 1 metrics from a finished run.
func table1Cell(res *RunResult) table1Result {
	mice := res.Classes["mice"]
	if mice == nil {
		mice = &metrics.Dist{}
	}
	return table1Result{
		elephantGbps: res.ElephantGbps,
		miceMean:     mice.Mean(),
		miceTail:     mice.Percentile(99.99),
	}
}

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Synthetic workloads: elephant throughput and mice FCT, normalized to ECMP (Table 1)",
		Run: func(o Options) *Report {
			o.defaults()
			rep := &Report{ID: "table1",
				Title:   "Stride(8)/Bijection/Shuffle — normalized to ECMP (raw in parentheses)",
				Columns: []string{"pattern", "metric", "ECMP", "CONGA", "Presto", "DRILL"}}
			schemes := []string{"ECMP", "CONGA", "Presto", "DRILL"}
			patterns := []string{"stride", "bijection", "shuffle"}
			var cfgs []RunCfg
			for _, pattern := range patterns {
				for si, name := range schemes {
					sc, _ := SchemeByName(name)
					cfgs = append(cfgs, table1Cfg(o, pattern, sc, o.Seed+int64(si)))
				}
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				c := table1Cell(res)
				o.progress("table1 %s %s done (eleph=%.2fGbps mice=%.3fms) [%s]",
					patterns[i/len(schemes)], schemes[i%len(schemes)],
					c.elephantGbps, c.miceMean, timing(res))
			})
			for pi, pattern := range patterns {
				cells := map[string]table1Result{}
				for si, name := range schemes {
					cells[name] = table1Cell(results[pi*len(schemes)+si])
				}
				base := cells["ECMP"]
				norm := func(v, b float64) string {
					if b == 0 {
						return "n/a"
					}
					return fmt.Sprintf("%.2f", v/b)
				}
				row1 := []string{pattern, "elephant throughput"}
				row2 := []string{"", "mice mean FCT"}
				row3 := []string{"", "mice 99.99th FCT"}
				for _, name := range schemes {
					c := cells[name]
					row1 = append(row1, fmt.Sprintf("%s (%.2fG)", norm(c.elephantGbps, base.elephantGbps), c.elephantGbps))
					row2 = append(row2, fmt.Sprintf("%s (%.3f)", norm(c.miceMean, base.miceMean), c.miceMean))
					row3 = append(row3, fmt.Sprintf("%s (%.3f)", norm(c.miceTail, base.miceTail), c.miceTail))
				}
				rep.AddRow(row1...)
				rep.AddRow(row2...)
				rep.AddRow(row3...)
			}
			rep.Note("paper: DRILL raises elephant throughput (1.8x Stride, 1.78x Bijection) " +
				"and cuts mice FCT, especially in the tail; Shuffle is last-hop-bound and no scheme helps much")
			return rep
		},
	})

	register(&Experiment{
		ID:    "engines",
		Title: "Scale-up: forwarding-engine count barely affects DRILL(2,1) FCT (§4)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			rep := &Report{ID: "engines",
				Title:   "DRILL(2,1) mean FCT [ms] vs engines per switch, 80% load",
				Columns: []string{"engines", "mean FCT", "p99.99 FCT", "uplink STDV"}}
			engs := []int{1, 4, 16, 48}
			var cfgs []RunCfg
			for _, e := range engs {
				cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: drillScheme(2, 1),
					Seed: o.Seed, Load: 0.8, Engines: e, Warmup: w, Measure: m,
					SampleQueues: true})
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("engines=%d done [%s]", engs[i], timing(res))
			})
			for i, res := range results {
				rep.AddRow(fmt.Sprintf("%d", engs[i]), fmtMs(res.FCT.Mean()),
					fmtMs(res.FCT.Percentile(99.99)), fmt.Sprintf("%.3f", res.UplinkSTDV))
			}
			rep.Note("paper: <1%% mean-FCT difference between 1- and 48-engine switches")
			return rep
		},
	})

	register(&Experiment{
		ID:    "idealdrill",
		Title: "ideal-DRILL (instant failure knowledge) vs OSPF-delayed DRILL (§4)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			fails := lerpInt(3, 5, o.Scale)
			failAt := w + m/4
			rep := &Report{ID: "idealdrill",
				Title:   fmt.Sprintf("DRILL under %d mid-run failures at 70%% load", fails),
				Columns: []string{"variant", "mean FCT [ms]", "p50 [ms]", "p99.99 [ms]"}}
			variants := []struct {
				name    string
				instant bool
			}{{"DRILL (OSPF delay)", false}, {"ideal-DRILL (instant)", true}}
			var cfgs []RunCfg
			for _, v := range variants {
				cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: mustScheme("DRILL"),
					Seed: o.Seed, Load: 0.7, Warmup: w, Measure: m,
					FailLinks: fails, FailAt: failAt, InstantReconverge: v.instant})
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("idealdrill %s done [%s]", variants[i].name, timing(res))
			})
			for i, res := range results {
				rep.AddRow(variants[i].name, fmtMs(res.FCT.Mean()),
					fmtMs(res.FCT.Percentile(50)), fmtMs(res.FCT.Percentile(99.99)))
			}
			rep.Note("paper: ideal-DRILL improves median FCT by <0.6%% — the OSPF " +
				"reaction delay is negligible")
			return rep
		},
	})
}

func mustScheme(name string) Scheme {
	s, ok := SchemeByName(name)
	if !ok {
		panic("experiments: unknown scheme " + name)
	}
	return s
}
