package experiments

import (
	"testing"

	"drill/internal/metrics"
	"drill/internal/transport"
	"drill/internal/units"
)

// TestProbeInversionBlame localizes which hop causes wire reordering.
func TestProbeInversionBlame(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	sc, _ := SchemeByName("DRILL w/o shim")
	var blame [6]int64
	res := Run(RunCfg{
		Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
		Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
		Hook: func(reg *transport.Registry, until units.Time) {
			reg.OnComplete = func(*transport.Sender) { blame = reg.Stats.InversionBlame }
		},
	})
	t.Logf("wire>=1=%.2f%%", 100*res.WireReorders.FracAtLeast(1))
	for h := 0; h < 6; h++ {
		t.Logf("  blame %-10s %d", metrics.HopClass(h), blame[h])
	}
}
