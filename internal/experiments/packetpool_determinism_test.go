package experiments

import (
	"fmt"
	"testing"

	"drill/internal/units"
)

// fingerprint reduces a run to a string covering every statistic a recycled
// packet could corrupt: if a terminal site ever recycles a packet that is
// still referenced, or Put leaves a stale field behind, some flow's FCT,
// retransmit count, or hop telemetry shifts and the strings diverge.
func fingerprint(r *RunResult) string {
	return fmt.Sprintf("fct(n=%d mean=%v p50=%v p99=%v) flows=%d drops=%d retx=%d rto=%d ooo=%d ev=%d hops=%v util=%.6f",
		r.FCT.Count(), r.FCT.Mean(), r.FCT.Percentile(50), r.FCT.Percentile(99),
		r.Flows, r.Drops, r.Retransmits, r.Timeouts, r.OutOfOrder, r.Events, r.Hops.Drops, r.CoreUtil)
}

// TestPoolingIsByteIdentical holds packet recycling to its core contract:
// pooling is an allocator change, not a behaviour change. Every cell runs
// with the free list on and off and must produce identical results and
// event counts. The grid includes a drop-heavy cell (tiny queues at high
// load) and a link-failure cell so the overflow, dead-link, drain, and
// unreachable recycling sites are all on the compared path, not just
// delivery.
func TestPoolingIsByteIdentical(t *testing.T) {
	cells := tinySweepCfgs()
	lossy, _ := SchemeByName("ECMP")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: lossy, Seed: 11, Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	fail, _ := SchemeByName("DRILL")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: fail, Seed: 12, Load: 0.5,
		FailLinks: 1, FailAt: 200 * units.Microsecond,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	for i, cfg := range cells {
		pooled := cfg
		pooled.DisablePool = false
		fresh := cfg
		fresh.DisablePool = true
		rp, rf := Run(pooled), Run(fresh)
		if got, want := fingerprint(rp), fingerprint(rf); got != want {
			t.Errorf("cell %d (%s seed=%d): pooled run differs from unpooled:\npooled:   %s\nunpooled: %s",
				i, cfg.Scheme.Name, cfg.Seed, got, want)
		}
		// The unpooled run bypasses the free list entirely; the pooled run
		// must both use it and get real reuse out of it.
		if rf.PacketGets != 0 || rf.PacketAllocs != 0 {
			t.Errorf("cell %d: DisablePool run touched the pool (gets=%d allocs=%d)",
				i, rf.PacketGets, rf.PacketAllocs)
		}
		if rp.PacketGets == 0 || rp.PacketAllocs >= rp.PacketGets {
			t.Errorf("cell %d: pooling avoided nothing (allocs=%d gets=%d)",
				i, rp.PacketAllocs, rp.PacketGets)
		}
	}
}
