package conformance

import (
	"drill/internal/experiments"
	"drill/internal/topo"
	"drill/internal/units"
)

// confTopo is the conformance fabric: the Fig. 6 leaf–spine at its paper
// scale (4 spines, 8 leaves × 20 hosts, 10G edge / 40G core). Eight leaves
// partition evenly at every shard count the tests sweep (1, 2, 4, 8).
func confTopo() *topo.Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 4, Leaves: 8, HostsPerLeaf: 20,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
	})
}

// Cells returns the conformance grid: the tiny scheme × seed sweep plus a
// drop-heavy cell and a mid-run link-failure cell, so the compared paths
// include overflow drops, retransmissions, dead-link drains, and
// reconvergence — every code path a shard boundary could reorder, not just
// happy-path delivery. Mirrors the grid the sequential determinism tests
// pin, rebuilt here on exported topology constructors.
func Cells() []experiments.RunCfg {
	var cells []experiments.RunCfg
	for si, name := range []string{"ECMP", "DRILL", "Random"} {
		sc, _ := experiments.SchemeByName(name)
		for seed := int64(1); seed <= 2; seed++ {
			cells = append(cells, experiments.RunCfg{
				Topo: confTopo, Scheme: sc,
				Seed: seed + int64(si*100), Load: 0.3,
				Warmup:  100 * units.Microsecond,
				Measure: 400 * units.Microsecond,
			})
		}
	}
	lossy, _ := experiments.SchemeByName("ECMP")
	cells = append(cells, experiments.RunCfg{
		Topo: confTopo, Scheme: lossy, Seed: 11, Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	fail, _ := experiments.SchemeByName("DRILL")
	cells = append(cells, experiments.RunCfg{
		Topo: confTopo, Scheme: fail, Seed: 12, Load: 0.5,
		FailLinks: 1, FailAt: 200 * units.Microsecond,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	cells = append(cells, ReconfigCells()...)
	return cells
}

// ReconfigCells returns the live-reconfiguration cells: scripted mid-run
// fail → restore campaigns with a short RouteDelay so two full epoch swaps
// — including DRILL's Quiver recomputation — land inside the traffic
// window, on both engines, at a barrier. The flap-storm variant packs
// cycles tighter than the RouteDelay so the coalesced-reconvergence path
// is exercised too.
func ReconfigCells() []experiments.RunCfg {
	drill, _ := experiments.SchemeByName("DRILL")
	ecmp, _ := experiments.SchemeByName("ECMP")
	flap := &experiments.Campaign{
		Name: "conf-flap",
		Sets: []experiments.LinkSet{{ID: "flap", Uplinks: 2}},
		Timeline: []experiments.CampaignAction{
			{AtUs: 150, Op: "fail", Set: "flap"},
			{AtUs: 300, Op: "restore", Set: "flap"},
		},
	}
	return []experiments.RunCfg{
		{
			Topo: confTopo, Scheme: drill, Seed: 13, Load: 0.5,
			Campaign:   flap,
			RouteDelay: 50 * units.Microsecond,
			Warmup:     100 * units.Microsecond,
			Measure:    400 * units.Microsecond,
		},
		{
			Topo: confTopo, Scheme: ecmp, Seed: 14, Load: 0.8, QueueCap: 16,
			Campaign:   experiments.FlapStorm(2, 3),
			RouteDelay: 80 * units.Microsecond,
			Warmup:     100 * units.Microsecond,
			Measure:    400 * units.Microsecond,
		},
	}
}
