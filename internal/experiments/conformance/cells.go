package conformance

import (
	"drill/internal/experiments"
	"drill/internal/topo"
	"drill/internal/units"
)

// confTopo is the conformance fabric: the Fig. 6 leaf–spine at its paper
// scale (4 spines, 8 leaves × 20 hosts, 10G edge / 40G core). Eight leaves
// partition evenly at every shard count the tests sweep (1, 2, 4, 8).
func confTopo() *topo.Topology {
	return topo.LeafSpine(topo.LeafSpineConfig{
		Spines: 4, Leaves: 8, HostsPerLeaf: 20,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
	})
}

// Cells returns the conformance grid: the tiny scheme × seed sweep plus a
// drop-heavy cell and a mid-run link-failure cell, so the compared paths
// include overflow drops, retransmissions, dead-link drains, and
// reconvergence — every code path a shard boundary could reorder, not just
// happy-path delivery. Mirrors the grid the sequential determinism tests
// pin, rebuilt here on exported topology constructors.
func Cells() []experiments.RunCfg {
	var cells []experiments.RunCfg
	for si, name := range []string{"ECMP", "DRILL", "Random"} {
		sc, _ := experiments.SchemeByName(name)
		for seed := int64(1); seed <= 2; seed++ {
			cells = append(cells, experiments.RunCfg{
				Topo: confTopo, Scheme: sc,
				Seed: seed + int64(si*100), Load: 0.3,
				Warmup:  100 * units.Microsecond,
				Measure: 400 * units.Microsecond,
			})
		}
	}
	lossy, _ := experiments.SchemeByName("ECMP")
	cells = append(cells, experiments.RunCfg{
		Topo: confTopo, Scheme: lossy, Seed: 11, Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	fail, _ := experiments.SchemeByName("DRILL")
	cells = append(cells, experiments.RunCfg{
		Topo: confTopo, Scheme: fail, Seed: 12, Load: 0.5,
		FailLinks: 1, FailAt: 200 * units.Microsecond,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	return cells
}
