// Package conformance proves engine variants of the simulator equivalent:
// it reduces a run's every externally observable result — delivery, drop,
// and reordering totals, the full FCT distributions, per-hop telemetry,
// trace counts, and obs snapshots — to a deterministic fingerprint string,
// and diffs fingerprints across engines. The sharded parallel engine
// (RunCfg.Shards) is held byte-identical to the sequential engine at every
// shard count by the tests in this package and by the nightly
// FuzzShardedVsSequential.
//
// Fingerprints deliberately contain no insertion-order float sums: a
// sharded run folds per-shard sample sets in shard-ID order, so a multiset
// of float samples is engine-invariant but its running sum (and therefore
// a mean) can differ in the last ulp. Distributions are compared by count,
// order statistics, and a hash over the sorted samples instead — exact
// equality on strictly more information than a mean, without the
// fold-order sensitivity.
package conformance

import (
	"fmt"
	"sort"
	"strings"

	"drill/internal/experiments"
	"drill/internal/metrics"
	"drill/internal/obs"
	"drill/internal/trace"
	"drill/internal/units"
)

// Options selects the instrumentation attached to every engine variant of
// a diffed cell, so the comparison covers the observation planes too.
type Options struct {
	// Trace attaches a counting tracer restricted to the sampler kinds
	// (the only kinds a sharded run may enable) plus a 20µs trace sampler,
	// and appends per-kind event counts to the fingerprint.
	Trace bool
	// Obs attaches a metrics registry with a 50µs snapshotter and appends
	// the final snapshot (scrubbed of order-dependent histogram sums) to
	// the fingerprint.
	Obs bool
}

// Fingerprint renders the engine-invariant results of a finished run.
func Fingerprint(res *experiments.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "delivered=%d flows=%d events=%d drops=%d retx=%d rto=%d ooo=%d gro=%d/%d gets=%d\n",
		res.Delivered, res.Flows, res.Events, res.Drops, res.Retransmits,
		res.Timeouts, res.OutOfOrder, res.GROBatches, res.GROSegments, res.PacketGets)
	// The conservation terms and the control-plane generation count: an
	// epoch swap (fail → restore → table/Quiver recompute) that landed on a
	// different barrier, drained a different queue, or left a different
	// packet in flight diverges here even if delivery totals happen to agree.
	fmt.Fprintf(&b, "sent=%d queued=%d inflight=%d epochs=%d\n",
		res.Sent, res.QueuedEnd, res.InFlightEnd, res.Epochs)
	fmt.Fprintf(&b, "fct %s\n", distLine(res.FCT))
	classes := make([]string, 0, len(res.Classes))
	for c := range res.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "fct[%s] %s\n", c, distLine(res.Classes[c]))
	}
	fmt.Fprintf(&b, "dupacks %s\nreorders %s\n", histLine(res.DupAcks), histLine(res.WireReorders))
	fmt.Fprintf(&b, "hops q=%v n=%v d=%v\n", res.Hops.QueueingNs, res.Hops.Packets, res.Hops.Drops)
	fmt.Fprintf(&b, "stdv up=%g down=%g util=%g elephant=%g\n",
		res.UplinkSTDV, res.DownlinkSTDV, res.CoreUtil, res.ElephantGbps)
	return b.String()
}

// distLine renders a sample distribution without its insertion-order sum:
// count, the order statistics the reports read, and a hash of the sorted
// sample multiset (exact to the bit, fold-order independent).
func distLine(d *metrics.Dist) string {
	return fmt.Sprintf("n=%d min=%g p50=%g p90=%g p99=%g max=%g h=%016x",
		d.Count(), d.Min(), d.Percentile(50), d.Percentile(90),
		d.Percentile(99), d.Max(), d.HashSorted())
}

// histLine renders an integer histogram exactly, bucket by bucket.
func histLine(h *metrics.IntHist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d [", h.Count())
	for v := 0; v <= h.Max(); v++ {
		if v > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", h.Bucket(v))
	}
	b.WriteByte(']')
	return b.String()
}

// TraceLine renders a tracer's accepted-event counts per kind.
func TraceLine(tr *trace.Tracer) string {
	var b strings.Builder
	b.WriteString("trace")
	for k := trace.Kind(0); k < trace.NumKinds; k++ {
		fmt.Fprintf(&b, " %s=%d", k, tr.Count(k))
	}
	b.WriteByte('\n')
	return b.String()
}

// ObsLines renders an obs snapshot: capture time and every series' value,
// with histograms expanded to exact bucket counts and their float Sum
// omitted (it accumulates by CAS in observation order, the one obs
// quantity that is a multiset's running float sum rather than an integer
// or a pointwise read).
func ObsLines(s *obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "obs t=%d\n", int64(s.SimTime))
	for i := range s.Points {
		p := &s.Points[i]
		if p.Hist != nil {
			fmt.Fprintf(&b, "%s{%s} count=%d buckets=%v\n", p.Name, p.Labels, p.Hist.Count, p.Hist.Buckets)
			continue
		}
		fmt.Fprintf(&b, "%s{%s} %g\n", p.Name, p.Labels, p.Value)
	}
	return b.String()
}

// FingerprintCfg executes one engine variant of cfg with opt's
// instrumentation freshly attached and returns its full fingerprint.
func FingerprintCfg(cfg experiments.RunCfg, opt Options) string {
	var tr *trace.Tracer
	if opt.Trace {
		tr = trace.New(nil, trace.WithKinds(trace.QueueSample, trace.PortUtil))
		cfg.Tracer = tr
		cfg.TraceSample = 20 * units.Microsecond
	}
	var reg *obs.Registry
	if opt.Obs {
		reg = obs.NewRegistry(8)
		cfg.Obs = reg
		cfg.ObsScope = `conf="cell"`
		cfg.ObsSample = 50 * units.Microsecond
	}
	fp := Fingerprint(experiments.Run(cfg))
	if tr != nil {
		fp += TraceLine(tr)
	}
	if reg != nil {
		fp += ObsLines(reg.Latest())
	}
	return fp
}

// Diff runs cfg on the sequential engine and on the sharded engine at each
// of shardCounts, and returns one report per diverging variant (empty
// means every variant was byte-identical). cfg.Shards is overridden per
// variant; instrumentation objects must not be pre-attached to cfg — pass
// them through opt so every variant gets a fresh set.
func Diff(cfg experiments.RunCfg, shardCounts []int, opt Options) []string {
	if cfg.Tracer != nil || cfg.Obs != nil {
		panic("conformance: attach instrumentation via Options, not RunCfg")
	}
	seq := cfg
	seq.Shards = 0
	want := FingerprintCfg(seq, opt)
	var diffs []string
	for _, n := range shardCounts {
		v := cfg
		v.Shards = n
		if got := FingerprintCfg(v, opt); got != want {
			diffs = append(diffs, fmt.Sprintf("shards=%d diverges from sequential:\n--- sequential\n%s--- shards=%d\n%s",
				n, want, n, got))
		}
	}
	return diffs
}
