package conformance

import (
	"flag"
	"testing"

	"drill/internal/experiments"
	"drill/internal/obs"
	"drill/internal/topo"
	"drill/internal/units"
)

// shardCounts is the full sweep the acceptance criteria name. Shards=1
// exercises the whole window machinery (barriers, outbox exchange, fold)
// with no actual partitioning — the cheapest way to catch a protocol bug
// that even a single shard would trip.
var shardCounts = []int{1, 2, 4, 8}

// -shards narrows the sweep to one count, so CI can fan the matrix out
// across jobs: go test ./internal/experiments/conformance -args -shards 4
var shardOverride = flag.Int("shards", 0,
	"test only this shard count against the sequential engine (0 = full sweep)")

func counts() []int {
	if *shardOverride > 0 {
		return []int{*shardOverride}
	}
	return shardCounts
}

// TestShardedMatchesSequential is the issue's headline proof: every
// conformance cell, at every shard count, fingerprint-identical to the
// sequential engine.
func TestShardedMatchesSequential(t *testing.T) {
	for i, cfg := range Cells() {
		for _, d := range Diff(cfg, counts(), Options{}) {
			t.Errorf("cell %d (%s seed=%d): %s", i, cfg.Scheme.Name, cfg.Seed, d)
		}
	}
}

// TestShardedTracedCellMatches proves the sharded engine with the qtrace
// instrumentation attached (sampler-kind tracer + periodic trace sampler)
// accepts the same event stream: per-kind counts identical across engines,
// and the result bytes untouched by tracing.
func TestShardedTracedCellMatches(t *testing.T) {
	cfg := Cells()[1] // ECMP seed 2: moderate load, no failures
	for _, d := range Diff(cfg, counts(), Options{Trace: true}) {
		t.Error(d)
	}
}

// TestShardedObsCellMatches proves the metrics stack — instrument emission
// from inside shard context plus the global snapshotter — changes nothing
// and snapshots identically under every engine.
func TestShardedObsCellMatches(t *testing.T) {
	cfg := Cells()[3] // DRILL seed 102
	for _, d := range Diff(cfg, counts(), Options{Obs: true}) {
		t.Error(d)
	}
}

// TestShardedLossyAndFailureCells re-runs the adversarial cells — overflow
// drops, mid-run failures — with full instrumentation, since drops and
// reconvergence cross the paths a barrier bug would corrupt first.
// Selection is by shape, not position, so growing Cells() can't silently
// rotate which cells this covers.
func TestShardedLossyAndFailureCells(t *testing.T) {
	ran := 0
	for _, cfg := range Cells() {
		if cfg.QueueCap == 0 && cfg.FailLinks == 0 {
			continue
		}
		ran++
		for _, d := range Diff(cfg, counts(), Options{Trace: true, Obs: true}) {
			t.Errorf("%s seed=%d: %s", cfg.Scheme.Name, cfg.Seed, d)
		}
	}
	if ran < 2 {
		t.Fatalf("expected at least 2 adversarial cells, found %d", ran)
	}
}

// TestShardedReconfigurationCells is the epoch-swap proof the acceptance
// criteria name: a scripted mid-run fail → restore campaign — each action
// an epoch swap with table (and, for DRILL, Quiver) recomputation — is
// byte-identical between the sequential and sharded engines at every
// shard count, with full instrumentation attached.
func TestShardedReconfigurationCells(t *testing.T) {
	for i, cfg := range ReconfigCells() {
		for _, d := range Diff(cfg, counts(), Options{Trace: true, Obs: true}) {
			t.Errorf("reconfig cell %d (%s seed=%d campaign=%s): %s",
				i, cfg.Scheme.Name, cfg.Seed, cfg.Campaign.Name, d)
		}
	}
}

// TestEngineTelemetryIsByteIdentical is the engine observatory's
// observe-never-steer proof: turning on EngineObs — per-shard window
// counters folded at barriers, the exchange matrix, scheduler internals,
// pprof-label bookkeeping, the engine report — may not change a single
// result byte, on the sequential engine and at every shard count, across
// every conformance cell including the reconfiguration campaigns. Only
// the result fingerprint is compared (not ObsLines): the drill_shard_* /
// drill_sched_* series sets are engine-shaped by design, which is exactly
// why EngineObs is opt-in.
func TestEngineTelemetryIsByteIdentical(t *testing.T) {
	cells := append(Cells(), ReconfigCells()...)
	engineCounts := append([]int{0}, counts()...)
	if testing.Short() {
		cells = cells[:2]
		engineCounts = []int{0, 2}
	}
	for i, cfg := range cells {
		for _, n := range engineCounts {
			v := cfg
			v.Shards = n
			plain := Fingerprint(experiments.Run(v))

			instr := v
			instr.Obs = obs.NewRegistry(8)
			instr.ObsScope = `conf="engine"`
			instr.ObsSample = 50 * units.Microsecond
			instr.EngineObs = true
			res := experiments.Run(instr)
			if got := Fingerprint(res); got != plain {
				t.Errorf("cell %d (%s seed=%d) shards=%d: engine telemetry changed the results:\n--- off\n%s--- on\n%s",
					i, cfg.Scheme.Name, cfg.Seed, n, plain, got)
			}

			// The telemetry must be live, not byte-identical-because-dead:
			// every shard's events gauge registered and their sum equal to
			// the run's own event count.
			last := instr.Obs.Latest()
			if last == nil {
				t.Fatalf("cell %d shards=%d: snapshotter never published", i, n)
			}
			shardLabels := map[string]bool{}
			var events float64
			for j := range last.Points {
				if last.Points[j].Name == "drill_shard_events_total" {
					shardLabels[last.Points[j].Labels] = true
					events += last.Points[j].Value
				}
			}
			if n == 0 {
				if len(shardLabels) != 0 {
					t.Errorf("cell %d sequential: %d drill_shard_events_total series, want none", i, len(shardLabels))
				}
			} else {
				// Partitioning clamps to the domain count, so expect the
				// effective shard count the engine actually ran.
				if res.EngineRep == nil || len(res.EngineRep.Shards) == 0 {
					t.Fatalf("cell %d shards=%d: no engine report", i, n)
				}
				if want := len(res.EngineRep.Shards); len(shardLabels) != want {
					t.Errorf("cell %d shards=%d: %d drill_shard_events_total series, want %d",
						i, n, len(shardLabels), want)
				}
				// The gauges exclude the global scheduler's events, so the
				// reference is the report's shard total, which in turn must
				// stay within the run's full event count.
				if want := res.EngineRep.TotalEvents(); uint64(events) != want {
					t.Errorf("cell %d shards=%d: shard events gauges sum to %v, report says %d",
						i, n, events, want)
				}
				if res.EngineRep.TotalEvents() == 0 || res.EngineRep.TotalEvents() > res.Events {
					t.Errorf("cell %d shards=%d: shard event total %d vs run events %d",
						i, n, res.EngineRep.TotalEvents(), res.Events)
				}
			}
		}
	}
}

// FuzzShardedVsSequential randomizes topology size, seed, load, and shard
// count, and requires byte-identity on every input. Runs as a seeded
// regression grid under `go test`; `go test -fuzz=FuzzShardedVsSequential`
// explores further (nightly CI gives it five minutes).
func FuzzShardedVsSequential(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint8(3), int64(1), uint8(30), uint8(2))
	f.Add(uint8(4), uint8(6), uint8(4), int64(7), uint8(70), uint8(3))
	f.Add(uint8(3), uint8(8), uint8(2), int64(42), uint8(50), uint8(8))
	f.Add(uint8(1), uint8(2), uint8(5), int64(99), uint8(90), uint8(5))
	f.Fuzz(func(t *testing.T, spines, leaves, hosts uint8, seed int64, loadPct, shards uint8) {
		sp := 1 + int(spines)%4 // 1..4 spines
		lv := 2 + int(leaves)%7 // 2..8 leaves
		hp := 2 + int(hosts)%5  // 2..6 hosts per leaf
		load := 0.1 + float64(loadPct%90)/100.0
		nsh := 1 + int(shards)%8 // Partition clamps to the leaf count
		sc, _ := experiments.SchemeByName([]string{"ECMP", "DRILL", "Random"}[int(seed%3+3)%3])
		cfg := experiments.RunCfg{
			Topo: func() *topo.Topology {
				return topo.LeafSpine(topo.LeafSpineConfig{
					Spines: sp, Leaves: lv, HostsPerLeaf: hp,
					HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
				})
			},
			Scheme: sc, Seed: seed, Load: load,
			Warmup:  50 * units.Microsecond,
			Measure: 200 * units.Microsecond,
		}
		for _, d := range Diff(cfg, []int{nsh}, Options{}) {
			t.Errorf("spines=%d leaves=%d hosts=%d seed=%d load=%.2f: %s",
				sp, lv, hp, seed, load, d)
		}
	})
}
