package experiments

import (
	"testing"

	"drill/internal/units"
)

// TestProbeQueueSTDV checks the Fig. 2 metric on the small fabric.
func TestProbeQueueSTDV(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	for _, name := range []string{"ECMP", "Random", "RR", "DRILL w/o shim"} {
		sc, _ := SchemeByName(name)
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
			SampleQueues: true,
		})
		t.Logf("%-15s upSTDV=%.3f downSTDV=%.3f anyDup=%.2f%%",
			name, res.UplinkSTDV, res.DownlinkSTDV, 100*res.DupAcks.FracAtLeast(1))
	}
}
