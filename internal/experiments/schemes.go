package experiments

import (
	"drill/internal/fabric"
	"drill/internal/lb"
)

// StdSchemes are the five configurations of the paper's FCT figures:
// ECMP, CONGA, Presto (with its shim), and DRILL with and without the
// receiver shim. DRILL always runs with the Quiver table builder, which is
// a no-op on symmetric fabrics.
func StdSchemes() []Scheme {
	return []Scheme{
		{Name: "ECMP", New: func() fabric.Balancer { return lb.ECMP{} }},
		{Name: "CONGA", New: func() fabric.Balancer { return lb.NewCONGA() }},
		{Name: "Presto", New: func() fabric.Balancer { return lb.NewPresto() }, Shim: DefaultShim},
		{Name: "DRILL w/o shim", New: func() fabric.Balancer { return lb.NewDRILLAsym() }},
		{Name: "DRILL", New: func() fabric.Balancer { return lb.NewDRILLAsym() }, Shim: DefaultShim},
	}
}

// SchemeByName returns a scheme from StdSchemes plus the extras used by
// individual experiments (WCMP, Random, RR, per-flow DRILL, raw DRILL(d,m)).
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range StdSchemes() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range extraSchemes() {
		if s.Name == name {
			return s, true
		}
	}
	return Scheme{}, false
}

func extraSchemes() []Scheme {
	return []Scheme{
		{Name: "Random", New: func() fabric.Balancer { return lb.Random{} }},
		{Name: "RR", New: func() fabric.Balancer { return lb.RoundRobin{} }},
		{Name: "WCMP", New: func() fabric.Balancer { return lb.WCMP{} }},
		{Name: "per-flow DRILL", New: func() fabric.Balancer { return lb.NewPerFlowDRILL() }},
		{Name: "Presto before shim", New: func() fabric.Balancer { return lb.NewPresto() }},
	}
}

// drillScheme builds a raw DRILL(d,m) scheme for parameter sweeps.
func drillScheme(d, m int) Scheme {
	return Scheme{
		Name: (&lb.DRILL{D: d, M: m}).Name(),
		New:  func() fabric.Balancer { return &lb.DRILL{D: d, M: m} },
	}
}
