package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
)

// CSV renders the report as RFC-4180 CSV: a header row of columns, then
// the data rows. Notes become trailing comment-style rows with a single
// "note" column prefix, so spreadsheet imports keep them visible.
func (r *Report) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(r.Columns); err != nil {
		return "", err
	}
	for _, row := range r.Rows {
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	for _, n := range r.Notes {
		if err := w.Write([]string{"note", n}); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// reportJSON is the stable JSON shape of a Report.
type reportJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	out, err := json.MarshalIndent(reportJSON{
		ID: r.ID, Title: r.Title, Columns: r.Columns, Rows: r.Rows, Notes: r.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
