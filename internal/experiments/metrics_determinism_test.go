package experiments

import (
	"fmt"
	"testing"

	"drill/internal/obs"
	"drill/internal/units"
)

// findPoint returns the value of a scalar series in a snapshot, or -1.
func findPoint(s *obs.Snapshot, name, labels string) float64 {
	for i := range s.Points {
		if s.Points[i].Name == name && s.Points[i].Labels == labels {
			return s.Points[i].Value
		}
	}
	return -1
}

// sumPoints sums every series of a family across its label sets.
func sumPoints(s *obs.Snapshot, name string) float64 {
	var sum float64
	for i := range s.Points {
		if s.Points[i].Name == name {
			sum += s.Points[i].Value
		}
	}
	return sum
}

// TestMetricsAreByteIdentical is the issue's determinism proof: enabling
// the full metrics stack — instrument emission at every fabric/transport
// hot-path site plus the sim-time snapshotter — may not change a single
// result byte. The grid reuses the pooling test's composition: the tiny
// scheme × seed sweep plus a drop-heavy cell and a mid-run link-failure
// cell, so the compared path includes overflow drops, dead-link drains,
// retransmissions, and reconvergence, not just happy-path delivery.
func TestMetricsAreByteIdentical(t *testing.T) {
	cells := tinySweepCfgs()
	lossy, _ := SchemeByName("ECMP")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: lossy, Seed: 11, Load: 0.9, QueueCap: 8,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	fail, _ := SchemeByName("DRILL")
	cells = append(cells, RunCfg{
		Topo: fig6Topo(0), Scheme: fail, Seed: 12, Load: 0.5,
		FailLinks: 1, FailAt: 200 * units.Microsecond,
		Warmup:  100 * units.Microsecond,
		Measure: 400 * units.Microsecond,
	})
	for i, cfg := range cells {
		plain := Run(cfg)

		instr := cfg
		instr.Obs = obs.NewRegistry(8)
		instr.ObsScope = fmt.Sprintf(`cell="%d"`, i)
		instr.ObsSample = 50 * units.Microsecond
		rm := Run(instr)

		if got, want := fingerprint(rm), fingerprint(plain); got != want {
			t.Errorf("cell %d (%s seed=%d): metrics-enabled run differs:\nwith:    %s\nwithout: %s",
				i, cfg.Scheme.Name, cfg.Seed, got, want)
		}

		// The registry must actually have observed the run — a stack that
		// is byte-identical because it is dead proves nothing.
		last := instr.Obs.Latest()
		if last == nil {
			t.Fatalf("cell %d: snapshotter never published", i)
		}
		if delivered := findPoint(last, "drill_fabric_delivered_total", instr.ObsScope); delivered <= 0 {
			t.Errorf("cell %d: delivered counter = %v, want > 0", i, delivered)
		}
		// Cross-check the wired counters against the run's own aggregates.
		if drops := sumPoints(last, "drill_fabric_drops_total"); int64(drops) != rm.Drops {
			t.Errorf("cell %d: fabric drop counters sum to %v, RunResult says %d", i, drops, rm.Drops)
		}
		if retx := findPoint(last, "drill_transport_retransmits_total", instr.ObsScope); int64(retx) != rm.Retransmits {
			t.Errorf("cell %d: retransmit counter = %v, RunResult says %d", i, retx, rm.Retransmits)
		}
		if ooo := findPoint(last, "drill_transport_out_of_order_total", instr.ObsScope); int64(ooo) != rm.OutOfOrder {
			t.Errorf("cell %d: out-of-order counter = %v, RunResult says %d", i, ooo, rm.OutOfOrder)
		}
	}
}

// TestSweepWithMetricsIsByteIdentical runs a whole sweep fan-out with and
// without a shared registry (and manifest collection) and compares every
// cell's fingerprint — the sweep-level version of the proof, covering the
// runner-metrics done hooks and per-cell scope assignment too.
func TestSweepWithMetricsIsByteIdentical(t *testing.T) {
	cfgs := tinySweepCfgs()

	plainOpts := Options{Workers: 2}
	plain := plainOpts.runAll(append([]RunCfg(nil), cfgs...), nil)

	reg := obs.NewRegistry(16)
	man := obs.NewManifest("test-sweep", 1)
	obsOpts := Options{Workers: 2, ExpID: "tiny", Obs: reg, Manifest: man}
	instr := obsOpts.runAll(append([]RunCfg(nil), cfgs...), nil)

	for i := range cfgs {
		if got, want := fingerprint(instr[i]), fingerprint(plain[i]); got != want {
			t.Errorf("cell %d: sweep with metrics differs:\nwith:    %s\nwithout: %s", i, got, want)
		}
	}
	if len(man.Cells) != len(cfgs) {
		t.Fatalf("manifest has %d cells, want %d", len(man.Cells), len(cfgs))
	}
	for i, c := range man.Cells {
		if c.Exp != "tiny" || c.Cell != fmt.Sprint(i) {
			t.Errorf("manifest cell %d mislabelled: %+v", i, c)
		}
		if c.ConfigHash == "" || c.Events == 0 {
			t.Errorf("manifest cell %d incomplete: %+v", i, c)
		}
		if c.Events != plain[i].Events {
			t.Errorf("manifest cell %d events %d, run had %d", i, c.Events, plain[i].Events)
		}
	}
	if reg.Latest() == nil {
		t.Fatal("sweep registry never published a snapshot")
	}
	// A run's final snapshot precedes its own done callback, so the last
	// published snapshot can trail the runner counters by one cell; a
	// fresh capture sees the settled state.
	final := reg.Capture(0)
	if done := findPoint(final, "drill_runner_cells_done_total", `exp="tiny"`); done != float64(len(cfgs)) {
		t.Errorf("runner cells-done = %v, want %d", done, len(cfgs))
	}
}

// TestProvenanceIsDeterministic pins the provenance record itself: same
// config, same hash and counters, run after run — and a different seed
// yields a different hash.
func TestProvenanceIsDeterministic(t *testing.T) {
	cfg := tinySweepCfgs()[0]
	a, b := Run(cfg), Run(cfg)
	// Wall-derived fields are the one legit difference between runs.
	a.Prov.WallNs, b.Prov.WallNs = 0, 0
	a.Prov.StallNs, b.Prov.StallNs = 0, 0
	if a.Prov != b.Prov {
		t.Errorf("provenance differs across identical runs:\n%+v\n%+v", a.Prov, b.Prov)
	}
	other := cfg
	other.Seed += 1000
	c := Run(other)
	if c.Prov.ConfigHash == a.Prov.ConfigHash {
		t.Error("different seeds produced the same config hash")
	}
}
