package experiments

import (
	"strconv"
	"strings"
	"testing"

	"drill/internal/units"
)

// designIDs are the experiment ids DESIGN.md's per-experiment index
// promises; the registry must cover all of them.
var designIDs = []string{
	"fig2a", "fig2b", "fig3",
	"fig6a", "fig6b", "fig6c",
	"fig7", "fig8", "fig9", "fig10",
	"fig11a", "fig11bc", "fig12", "fig13", "fig14",
	"table1", "stability", "engines", "idealdrill",
	"ablvis", "ablgran", "ablasym",
	"qtrace",
}

// skipSlow skips diagnostic probes and full-scale sweeps in -short mode
// and under the race detector, whose slowdown pushes them past the
// default test timeout; the quick pool/determinism tests keep the
// concurrent paths covered in both configurations.
func skipSlow(t *testing.T, why string) {
	t.Helper()
	if testing.Short() {
		t.Skip(why + " (short mode)")
	}
	if raceEnabled {
		t.Skip(why + " (race detector)")
	}
}

func TestRegistryCoversDesign(t *testing.T) {
	for _, id := range designIDs {
		if Get(id) == nil {
			t.Errorf("experiment %q from DESIGN.md not registered", id)
		}
	}
	if got := len(All()); got != len(designIDs) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d", got, len(designIDs))
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestReportFormat(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"a", "bbbb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Note("hello %d", 7)
	out := r.Format()
	for _, want := range []string{"== x — demo ==", "a    bbbb", "333  4", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestLerpHelpers(t *testing.T) {
	if got := lerpInt(4, 16, 0); got != 4 {
		t.Errorf("lerpInt(0) = %d", got)
	}
	if got := lerpInt(4, 16, 1); got != 16 {
		t.Errorf("lerpInt(1) = %d", got)
	}
	if got := lerpInt(4, 16, 0.5); got != 10 {
		t.Errorf("lerpInt(0.5) = %d", got)
	}
	if got := lerpInt(0, 0, 0.5); got != 1 {
		t.Errorf("lerpInt floor = %d, want 1", got)
	}
	if got := lerpTime(units.Millisecond, 3*units.Millisecond, 0.5); got != 2*units.Millisecond {
		t.Errorf("lerpTime = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Scale: 5}
	o.defaults()
	if o.Scale != 1 {
		t.Errorf("scale clamp = %v", o.Scale)
	}
	if o.Seed != 1 {
		t.Errorf("seed default = %d", o.Seed)
	}
	o2 := Options{Scale: -3}
	o2.defaults()
	if o2.Scale != 0 {
		t.Errorf("scale clamp low = %v", o2.Scale)
	}
	// loads override
	if got := o.loads([]float64{0.5}); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("loads default = %v", got)
	}
	o.Loads = []float64{0.1, 0.2}
	if got := o.loads([]float64{0.5}); len(got) != 2 {
		t.Errorf("loads override = %v", got)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"ECMP", "CONGA", "Presto", "DRILL", "DRILL w/o shim",
		"Random", "RR", "WCMP", "per-flow DRILL", "Presto before shim"} {
		if _, ok := SchemeByName(name); !ok {
			t.Errorf("scheme %q missing", name)
		}
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("bogus scheme found")
	}
	if sc, _ := SchemeByName("DRILL"); sc.Shim == 0 {
		t.Error("DRILL scheme must carry the shim")
	}
	if sc, _ := SchemeByName("DRILL w/o shim"); sc.Shim != 0 {
		t.Error("DRILL w/o shim must not carry the shim")
	}
}

func TestRunMinimal(t *testing.T) {
	// One tiny end-to-end run through the harness: nonzero flows, bounded
	// util, consistent counters.
	sc, _ := SchemeByName("DRILL")
	res := Run(RunCfg{
		Topo:    fig6Topo(0),
		Scheme:  sc,
		Seed:    3,
		Load:    0.3,
		Warmup:  100 * units.Microsecond,
		Measure: 500 * units.Microsecond,
	})
	if res.FCT.Count() == 0 {
		t.Fatal("no measured flows")
	}
	if res.CoreUtil <= 0 || res.CoreUtil > 1.5 {
		t.Fatalf("implausible core util %v", res.CoreUtil)
	}
	if res.Events == 0 {
		t.Fatal("no events executed")
	}
}

func TestRunWithFailures(t *testing.T) {
	sc, _ := SchemeByName("DRILL")
	res := Run(RunCfg{
		Topo:      fig6Topo(0),
		Scheme:    sc,
		Seed:      3,
		Load:      0.2,
		Warmup:    100 * units.Microsecond,
		Measure:   500 * units.Microsecond,
		FailLinks: 2,
	})
	if res.FCT.Count() == 0 {
		t.Fatal("no flows completed under failures")
	}
}

func TestStabilityExperimentShape(t *testing.T) {
	rep := Get("stability").Run(Options{Seed: 1})
	if len(rep.Rows) != 5 {
		t.Fatalf("stability rows = %d", len(rep.Rows))
	}
	// Memoryless rows must show much larger final queues than memory rows.
	var memless, withMem float64
	for _, row := range rep.Rows {
		q := parseF(t, row[2])
		if strings.Contains(row[0], "(1,0)") {
			memless = q
		}
		if row[0] == "DRILL(1,1)" {
			withMem = q
		}
	}
	if memless < 100*withMem {
		t.Fatalf("Theorem 1 not visible: memoryless=%v memory=%v", memless, withMem)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}
