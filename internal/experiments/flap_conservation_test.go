package experiments

import (
	"fmt"
	"testing"

	"drill/internal/fabric"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

// flapConservationCfg is the fixture for the fail→restore conservation
// tests: a lossy leaf–spine (8 leaves partition evenly at shards 1/4/8)
// under a flap-storm campaign whose cycles are shorter than the
// RouteDelay, so stale tables route into dead ports, drains fire, and
// reconvergences coalesce — every drop path in one run. The drain window
// is cut to 1µs so the run ends with queues and wires still populated and
// the QueuedEnd/InFlightEnd terms of the law are tested non-vacuously.
func flapConservationCfg(sc Scheme, shards int) RunCfg {
	return RunCfg{
		Topo: func() *topo.Topology {
			return topo.LeafSpine(topo.LeafSpineConfig{
				Spines: 4, Leaves: 8, HostsPerLeaf: 4,
				HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps,
			})
		},
		Scheme: sc, Seed: 7, Load: 0.9, QueueCap: 16,
		Warmup:     100 * units.Microsecond,
		Measure:    400 * units.Microsecond,
		DrainLimit: 1 * units.Microsecond,
		RouteDelay: 60 * units.Microsecond,
		Campaign:   FlapStorm(2, 2),
		Shards:     shards,
	}
}

// checkFlapConservation runs the cfg with mid-run barrier checks attached
// and asserts the conservation law sent == delivered + dropped + queued +
// in-flight — live at three instants spanning the flap cycles, and again
// on the folded totals at the end of the run.
func checkFlapConservation(t *testing.T, cfg RunCfg) {
	t.Helper()
	var midChecks int
	var maxLive int64
	cfg.Hook = func(reg *transport.Registry, until units.Time) {
		for _, frac := range []float64{0.4, 0.6, 0.8} {
			at := units.Time(frac * float64(until))
			// Global class: the check reads ports and per-domain counters
			// across every shard, which is only legal at a barrier.
			reg.Sim.AtGlobal(at, func() {
				net := reg.Net
				sent := net.SentPackets()
				delivered := net.DeliveredPackets()
				dropped := net.DroppedPackets()
				queued := net.QueuedPackets()
				inflight := net.InFlightPackets()
				if got := delivered + dropped + queued + inflight; got != sent {
					t.Errorf("t=%v: conservation violated: sent=%d but delivered=%d + dropped=%d + queued=%d + inflight=%d = %d",
						at, sent, delivered, dropped, queued, inflight, got)
				}
				midChecks++
				if live := queued + inflight; live > maxLive {
					maxLive = live
				}
			})
		}
	}
	res := Run(cfg)
	if got := res.Delivered + res.Drops + res.QueuedEnd + res.InFlightEnd; got != res.Sent {
		t.Errorf("end of run: conservation violated: sent=%d but delivered=%d + drops=%d + queued=%d + inflight=%d = %d",
			res.Sent, res.Delivered, res.Drops, res.QueuedEnd, res.InFlightEnd, got)
	}
	if midChecks != 3 {
		t.Errorf("ran %d mid-run checks, want 3", midChecks)
	}
	if maxLive == 0 {
		t.Error("no checkpoint saw a queued or in-flight packet; the live terms went untested")
	}
	if res.Sent == 0 || res.Delivered == 0 {
		t.Fatalf("sent=%d delivered=%d; the invariant was checked vacuously", res.Sent, res.Delivered)
	}
	if res.Drops == 0 {
		t.Error("flap cycles dropped nothing; the drop terms went untested")
	}
	if res.Epochs < 3 {
		t.Errorf("run applied %d epochs, want ≥3 (construction + fail + restore reconvergences)", res.Epochs)
	}
}

// TestFlapCycleConservation holds every scheme to packet conservation
// through full fail→restore flap cycles — sequentially for all seven, and
// at shards {1,4,8} for the shard-safe ones (the shard-unsafe balancers
// are exactly what NewSharded refuses; their cells run sequentially, as
// RunAll's fallback would).
func TestFlapCycleConservation(t *testing.T) {
	for _, name := range []string{"ECMP", "Random", "RR", "WCMP", "CONGA", "Presto", "DRILL"} {
		sc, ok := SchemeByName(name)
		if !ok {
			t.Fatalf("unknown scheme %q", name)
		}
		_, unsafe := sc.New().(fabric.ShardUnsafe)
		shardCounts := []int{0}
		if !unsafe {
			shardCounts = []int{0, 1, 4, 8}
		}
		for _, nsh := range shardCounts {
			sc, nsh := sc, nsh
			t.Run(fmt.Sprintf("%s/shards=%d", name, nsh), func(t *testing.T) {
				t.Parallel()
				checkFlapConservation(t, flapConservationCfg(sc, nsh))
			})
		}
	}
}
