package experiments

import (
	"fmt"
	"testing"
)

// renderAll produces every encoding of a report; determinism means all of
// them, not just the aligned table, are byte-identical across worker
// counts.
func renderAll(t *testing.T, rep *Report) string {
	t.Helper()
	csv, err := rep.CSV()
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return rep.Format() + "\n" + csv + "\n" + jsn
}

func runDeterminism(t *testing.T, id string, opts Options, workerCounts []int) {
	e := Get(id)
	if e == nil {
		t.Fatalf("no experiment %q", id)
	}
	var want string
	for _, w := range workerCounts {
		o := opts
		o.Workers = w
		got := renderAll(t, e.Run(o))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: report at workers=%d differs from workers=%d:\n--- workers=%d ---\n%s\n--- workers=%d ---\n%s",
				id, w, workerCounts[0], workerCounts[0], want, w, got)
		}
	}
}

// TestFig6aParallelDeterminism is the headline guarantee: the full fig6a
// report at -scale 0 is byte-identical (table, CSV and JSON) whether the
// sweep runs sequentially or fanned out. Slow — skipped under -short and
// -race; the quick grid below covers the same property in every run.
func TestFig6aParallelDeterminism(t *testing.T) {
	skipSlow(t, "full fig6a sweep")
	runDeterminism(t, "fig6a", Options{Seed: 1, Scale: 0, Loads: []float64{0.1, 0.8}}, []int{1, 4})
}

// TestQuickParallelDeterminism checks the same property on fast
// experiments so -short CI (and the race job) still exercises the
// parallel reduce path end to end.
func TestQuickParallelDeterminism(t *testing.T) {
	// stability fans out the queueing sims; reps>1 on a trimmed fig6a grid
	// exercises the pooled rep-merge ordering.
	runDeterminism(t, "stability", Options{Seed: 1}, []int{1, 3})
	runDeterminism(t, "fig6a", Options{Seed: 1, Loads: []float64{0.1}, Reps: 2}, []int{1, 4})
	cfgs := tinySweepCfgs()
	fmtRes := func(rs []*RunResult) string {
		var s string
		for _, r := range rs {
			s += fmt.Sprintf("n=%d mean=%v p99=%v ev=%d|",
				r.FCT.Count(), r.FCT.Mean(), r.FCT.Percentile(99), r.Events)
		}
		return s
	}
	seq := fmtRes(RunAll(cfgs, 1, nil))
	for _, w := range []int{2, 4} {
		if got := fmtRes(RunAll(cfgs, w, nil)); got != seq {
			t.Errorf("RunAll workers=%d FCTs differ from sequential", w)
		}
	}
}

// TestQTraceParallelDeterminism: the qtrace report reduces rings that are
// private to each run, so it must stay byte-identical whether the three
// scheme runs execute sequentially or concurrently (tracing to a *shared*
// sink is what forces workers=1, not ring capture).
func TestQTraceParallelDeterminism(t *testing.T) {
	skipSlow(t, "qtrace triple run")
	runDeterminism(t, "qtrace", Options{Seed: 1}, []int{1, 3})
}
