package experiments

import (
	"fmt"

	"drill/internal/fabric"
	"drill/internal/lb"
)

// flowcellDRILL is the ablation hybrid of §3.1's factor split: Presto's
// flowcell granularity with DRILL's load awareness — each 64KB cell is
// pinned to the port a DRILL(2,1) pick chose for its first packet.
type flowcellDRILL struct {
	inner *lb.DRILL
	pins  map[cellKey]int32
}

type cellKey struct {
	sw   int32
	flow uint64
	cell int32
}

func newFlowcellDRILL() *flowcellDRILL {
	return &flowcellDRILL{inner: lb.NewDRILL(), pins: map[cellKey]int32{}}
}

func (f *flowcellDRILL) Name() string { return "flowcell-DRILL" }

func (f *flowcellDRILL) Choose(net *fabric.Network, sw *fabric.Switch, eng *fabric.Engine, pkt *fabric.Packet) int32 {
	cell := int32(pkt.Seq / (64 * 1024))
	key := cellKey{sw: int32(sw.Node), flow: pkt.FlowID, cell: cell}
	if port, ok := f.pins[key]; ok && net.Ports[port].Up() {
		return port
	}
	port := f.inner.Choose(net, sw, eng, pkt)
	f.pins[key] = port
	return port
}

func init() {
	register(&Experiment{
		ID:    "ablgran",
		Title: "Ablation: granularity x load-awareness grid (§3.1's factors (a) and (b))",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			grid := []struct {
				gran, aware string
				scheme      Scheme
			}{
				{"flow", "blind", mustScheme("ECMP")},
				{"flow", "aware", mustScheme("per-flow DRILL")},
				{"flowcell", "blind", mustScheme("Presto before shim")},
				{"flowcell", "aware", Scheme{Name: "flowcell-DRILL",
					New: func() fabric.Balancer { return newFlowcellDRILL() }}},
				{"packet", "blind", mustScheme("Random")},
				{"packet", "aware", drillScheme(2, 1)},
			}
			rep := &Report{ID: "ablgran",
				Title:   "Mean / p99.99 FCT [ms] at 80% load by balancing granularity and load awareness",
				Columns: []string{"granularity", "load-aware", "mean FCT", "p99.99 FCT", "hop1 drops"}}
			var cfgs []RunCfg
			for gi, g := range grid {
				cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: g.scheme,
					Seed: o.Seed + int64(gi), Load: 0.8, Warmup: w, Measure: m})
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("ablgran %s/%s done [%s]", grid[i].gran, grid[i].aware, timing(res))
			})
			for i, res := range results {
				rep.AddRow(grid[i].gran, grid[i].aware, fmtMs(res.FCT.Mean()),
					fmtMs(res.FCT.Percentile(99.99)), fmt.Sprintf("%d", res.Hops.Drops[1]))
			}
			rep.Note("both factors matter: finer granularity AND load awareness each " +
				"improve tail FCT; their combination (DRILL) wins — §3.1's argument")
			return rep
		},
	})

	register(&Experiment{
		ID:    "ablasym",
		Title: "Ablation: DRILL with vs without the Quiver decomposition under failure (§3.4)",
		Run: func(o Options) *Report {
			o.defaults()
			w, m := sweepTimes(o)
			// Long-running flows across the failure region expose the
			// bandwidth-inefficiency pathology: without decomposition the
			// balanced queues cap the healthy path at the congested paths' rate.
			mk := func(name string, bal func() fabric.Balancer) Scheme {
				return Scheme{Name: name, New: bal, Shim: DefaultShim}
			}
			schemes := []Scheme{
				mk("DRILL naive (no quiver)", func() fabric.Balancer { return lb.NewDRILL() }),
				mk("DRILL (quiver)", func() fabric.Balancer { return lb.NewDRILLAsym() }),
				mustScheme("ECMP"),
			}
			rep := &Report{ID: "ablasym",
				Title:   "One failed leaf-spine link, 70% load",
				Columns: []string{"scheme", "mean FCT [ms]", "p99.99 [ms]", "core util", "retransmits"}}
			var cfgs []RunCfg
			for si, sc := range schemes {
				cfgs = append(cfgs, RunCfg{Topo: fig6Topo(o.Scale), Scheme: sc,
					Seed: o.Seed + int64(si), Load: 0.7, Warmup: w, Measure: m,
					FailLinks: 1})
			}
			results := o.runAll(cfgs, func(i int, res *RunResult) {
				o.progress("ablasym %s done [%s]", schemes[i].Name, timing(res))
			})
			for i, res := range results {
				rep.AddRow(schemes[i].Name, fmtMs(res.FCT.Mean()), fmtMs(res.FCT.Percentile(99.99)),
					fmt.Sprintf("%.3f", res.CoreUtil), fmt.Sprintf("%d", res.Retransmits))
			}
			rep.Note("naive per-packet balancing across asymmetric paths couples their " +
				"rates (§3.4's example) and reorders across unequal queues; the Quiver " +
				"decomposition restores efficiency")
			return rep
		},
	})
}
