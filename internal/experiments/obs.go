package experiments

import (
	"fmt"

	"drill/internal/obs"
)

// runnerMetrics is the experiment runner's metric family: sweep-level
// progress visible on a live scrape while cells are still running. It is
// updated only from the fan-out pool's serialized done callbacks, never
// from inside a simulation, so it has no determinism surface at all.
type runnerMetrics struct {
	cellsDone  *obs.Counter
	cellsTotal *obs.Gauge
	events     *obs.Counter
	flows      *obs.Counter
	evRate     *obs.Gauge
	simRate    *obs.Gauge
}

// cellScope renders the per-cell label body for fabric/transport series.
func cellScope(expID string, cell int) string {
	if expID == "" {
		return fmt.Sprintf(`cell="%d"`, cell)
	}
	return fmt.Sprintf(`exp=%q,cell="%d"`, expID, cell)
}

func newRunnerMetrics(reg *obs.Registry, expID string, total int) *runnerMetrics {
	scope := ""
	if expID != "" {
		scope = fmt.Sprintf(`exp=%q`, expID)
	}
	rm := &runnerMetrics{
		cellsDone: reg.Counter("drill_runner_cells_done_total", scope,
			"Sweep cells completed."),
		cellsTotal: reg.Gauge("drill_runner_cells_total", scope,
			"Sweep cells submitted."),
		events: reg.Counter("drill_runner_events_total", scope,
			"Simulation events dispatched across completed cells."),
		flows: reg.Counter("drill_runner_flows_total", scope,
			"Flows started across completed cells."),
		evRate: reg.Gauge("drill_runner_events_per_second", scope,
			"Events per wall second of the most recently completed cell."),
		simRate: reg.Gauge("drill_runner_sim_rate", scope,
			"Simulated seconds per wall second of the most recently completed cell."),
	}
	rm.cellsTotal.Set(float64(total))
	return rm
}

func (rm *runnerMetrics) observe(res *RunResult) {
	rm.cellsDone.Inc()
	rm.events.Add(int64(res.Events))
	rm.flows.Add(res.Flows)
	if secs := res.Wall.Seconds(); secs > 0 {
		rm.evRate.Set(float64(res.Events) / secs)
	}
	rm.simRate.Set(res.SimRate())
}
