package experiments

import (
	"fmt"

	"drill/internal/metrics"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// qtrace renders the paper's Fig. 2/3 story as a *time series* instead of
// an end-of-run aggregate: it runs the §3.2.3 queue-balance workload under
// ECMP, per-packet Random and DRILL(2,1) with the trace sampler on, then
// bins the QueueSample events into time slices and reports the STDV of the
// leaf-uplink queue lengths per slice. Unlike fig2's single time-averaged
// number, this exposes *when* ECMP's queues diverge and how flat DRILL
// holds them — built entirely from trace output, so the same pipeline
// works on a CSV written with `drillsim -trace`.
//
// The per-run tracers record queue/utilization samples only (the
// lifecycle kinds would be millions of events per cell); pair -trace with
// any other experiment for full packet-lifecycle capture.

// qtraceBins is the number of time slices the report aggregates samples
// into.
const qtraceBins = 20

func init() {
	register(&Experiment{
		ID:    "qtrace",
		Title: "Queue-depth time series from trace events (Fig. 2/3 shape)",
		Run: func(o Options) *Report {
			o.defaults()
			schemes := []Scheme{}
			for _, n := range []string{"ECMP", "Random"} {
				s, _ := SchemeByName(n)
				schemes = append(schemes, s)
			}
			schemes = append(schemes, drillScheme(2, 1))

			warmup := lerpTime(300*units.Microsecond, 2*units.Millisecond, o.Scale)
			measure := lerpTime(2*units.Millisecond, 50*units.Millisecond, o.Scale)

			// Size each ring for every sample of its run — sampled ports ×
			// ticks × 2 event kinds, with headroom so drain-phase ticks
			// never evict measured ones.
			swPorts := countSwitchPorts(stdvTopo(o.Scale)())
			ticks := int((warmup+measure+2*units.Millisecond)/o.TraceSample) + 8
			ringCap := 2 * swPorts * ticks

			rings := make([]*trace.Ring, len(schemes))
			cfgs := make([]RunCfg, len(schemes))
			for i, sc := range schemes {
				rings[i] = trace.NewRing(ringCap)
				var sink trace.Sink = rings[i]
				if o.TraceSink != nil {
					sink = trace.Tee(rings[i], o.TraceSink)
				}
				cfgs[i] = stdvCfg(o, stdvTopo(o.Scale), sc, 4, 0.8, o.Seed+int64(i))
				cfgs[i].Warmup, cfgs[i].Measure = warmup, measure
				cfgs[i].Tracer = trace.New(sink, trace.WithRun(int32(i)),
					trace.WithKinds(trace.QueueSample, trace.PortUtil))
				cfgs[i].TraceSample = o.TraceSample
			}
			w := o.Workers
			if o.TraceSink != nil {
				w = 1 // a shared file sink must see runs whole and in order
			}
			RunAll(cfgs, w, func(i int, res *RunResult) {
				o.progress("qtrace %s samples=%d [%s]",
					schemes[i].Name, rings[i].Total(), timing(res))
			})

			rep := &Report{ID: "qtrace",
				Title:   "STDV of leaf-uplink queue lengths [pkts] per time slice, 80% load (from trace QueueSample events)",
				Columns: []string{"t [us]"}}
			for _, sc := range schemes {
				rep.Columns = append(rep.Columns, sc.Name)
			}

			series := make([][]float64, len(schemes))
			means := make([]float64, len(schemes))
			for i := range schemes {
				series[i] = uplinkSTDVSeries(rings[i].Events(), warmup, measure, qtraceBins)
				var sum float64
				for _, v := range series[i] {
					sum += v
				}
				means[i] = sum / float64(len(series[i]))
			}
			binW := measure / qtraceBins
			for b := 0; b < qtraceBins; b++ {
				mid := warmup + units.Time(b)*binW + binW/2
				row := []string{fmt.Sprintf("%.0f", mid.Micros())}
				for i := range schemes {
					row = append(row, fmt.Sprintf("%.3f", series[i][b]))
				}
				rep.AddRow(row...)
			}
			rep.Note("means: %s=%.3f %s=%.3f %s=%.3f — the Fig. 2 ordering "+
				"(ECMP ≫ Random > DRILL) holds slice by slice, not just on average",
				schemes[0].Name, means[0], schemes[1].Name, means[1], schemes[2].Name, means[2])
			return rep
		},
	})
}

// countSwitchPorts counts the directed channels whose source is a switch —
// exactly the ports fabric.StartTraceSampler samples.
func countSwitchPorts(tp *topo.Topology) int {
	n := 0
	for _, l := range tp.Links {
		if tp.Nodes[l.A].Kind != topo.Host {
			n++
		}
		if tp.Nodes[l.B].Kind != topo.Host {
			n++
		}
	}
	return n
}

// uplinkSTDVSeries reduces QueueSample trace events to per-time-slice mean
// STDV of the leaf-uplink (Hop1) queue lengths: samples sharing a tick form
// one STDV observation, ticks are averaged within each of `bins` equal
// slices of the measure window. Slices without samples report 0.
func uplinkSTDVSeries(events []trace.Event, warmup, measure units.Time, bins int) []float64 {
	type tick struct {
		t     units.Time
		qlens []int32
	}
	var ticks []tick
	bySeq := map[int64]int{}
	for _, ev := range events {
		if ev.Kind != trace.QueueSample || ev.Hop != uint8(metrics.Hop1) {
			continue
		}
		if ev.T < warmup || ev.T >= warmup+measure {
			continue
		}
		i, ok := bySeq[ev.Seq]
		if !ok {
			i = len(ticks)
			bySeq[ev.Seq] = i
			ticks = append(ticks, tick{t: ev.T})
		}
		ticks[i].qlens = append(ticks[i].qlens, ev.QLen)
	}
	sums := make([]float64, bins)
	counts := make([]int64, bins)
	binW := measure / units.Time(bins)
	for _, tk := range ticks {
		b := int((tk.t - warmup) / binW)
		if b >= bins {
			b = bins - 1
		}
		sums[b] += metrics.StdDevInt32(tk.qlens)
		counts[b]++
	}
	out := make([]float64, bins)
	for b := range out {
		if counts[b] > 0 {
			out[b] = sums[b] / float64(counts[b])
		}
	}
	return out
}
