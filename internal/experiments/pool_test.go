package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"drill/internal/units"
)

func TestWorkersResolve(t *testing.T) {
	ncpu := runtime.NumCPU()
	for _, tc := range []struct {
		n, jobs, want int
	}{
		{0, 100, min(ncpu, 100)},
		{-3, 100, min(ncpu, 100)},
		{1, 100, 1},
		{4, 2, 2},
		{4, 100, 4},
		{4, 0, 1},
	} {
		if got := Workers(tc.n, tc.jobs); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.n, tc.jobs, got, tc.want)
		}
	}
}

func TestFanOrderedResults(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		out, err := Fan(50, w, func(i int) (int, error) { return i * i, nil }, nil)
		if err != nil {
			t.Fatalf("w=%d: unexpected error %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("w=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestFanDoneSerialized(t *testing.T) {
	// done callbacks may mutate shared state without locking; -race proves
	// the pool serializes them.
	var seen []int
	sum := 0
	_, err := Fan(100, 8, func(i int) (int, error) { return i, nil },
		func(i int, v int) {
			seen = append(seen, i)
			sum += v
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 || sum != 99*100/2 {
		t.Fatalf("done saw %d cells, sum %d", len(seen), sum)
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		// Slow the healthy cells down so the error is registered long
		// before the grid could drain.
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The error must stop the hand-out of further indices: only a small
	// prefix of the 1000 cells may have started.
	if n := calls.Load(); n >= 500 {
		t.Fatalf("error did not stop dispatch: %d calls", n)
	}
	// Sequential path returns the first error immediately.
	err = ForEach(10, 1, func(i int) error {
		if i == 2 {
			return fmt.Errorf("seq: %w", boom)
		}
		if i > 2 {
			t.Fatalf("sequential ForEach continued past error (i=%d)", i)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sequential err = %v", err)
	}
}

func TestForEachPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kapow" {
					t.Errorf("w=%d: recovered %v, want kapow", w, r)
				}
			}()
			_ = ForEach(10, w, func(i int) error {
				if i == 5 {
					panic("kapow")
				}
				return nil
			})
			t.Errorf("w=%d: ForEach returned instead of panicking", w)
		}()
	}
}

// tinySweepCfgs builds a small scheme × seed grid of fast runs for
// parallel-vs-sequential comparisons.
func tinySweepCfgs() []RunCfg {
	var cfgs []RunCfg
	for si, name := range []string{"ECMP", "DRILL", "Random"} {
		sc, _ := SchemeByName(name)
		for seed := int64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, RunCfg{
				Topo: fig6Topo(0), Scheme: sc,
				Seed: seed + int64(si*100), Load: 0.3,
				Warmup:  100 * units.Microsecond,
				Measure: 400 * units.Microsecond,
			})
		}
	}
	return cfgs
}

func TestRunAllMatchesSequential(t *testing.T) {
	cfgs := tinySweepCfgs()
	seq := RunAll(cfgs, 1, nil)
	par := RunAll(cfgs, 4, nil)
	for i := range cfgs {
		s, p := seq[i], par[i]
		if s.FCT.Count() != p.FCT.Count() || s.FCT.Mean() != p.FCT.Mean() {
			t.Errorf("cell %d: FCT (n=%d mean=%v) != (n=%d mean=%v)",
				i, s.FCT.Count(), s.FCT.Mean(), p.FCT.Count(), p.FCT.Mean())
		}
		if s.Events != p.Events {
			t.Errorf("cell %d: events %d != %d", i, s.Events, p.Events)
		}
		if s.Drops != p.Drops || s.Retransmits != p.Retransmits {
			t.Errorf("cell %d: counters diverge", i)
		}
	}
}

func TestRunAllProgressUnderRace(t *testing.T) {
	// Exercise the Progress path concurrently; shared builder, no locks.
	var lines int
	o := Options{Seed: 1, Workers: 4, Progress: func(format string, args ...any) {
		_ = fmt.Sprintf(format, args...)
		lines++
	}}
	cfgs := tinySweepCfgs()
	res := o.runAll(cfgs, func(i int, r *RunResult) {
		o.progress("cell %d flows=%d [%s]", i, r.FCT.Count(), timing(r))
	})
	if lines != len(cfgs) {
		t.Fatalf("progress lines = %d, want %d", lines, len(cfgs))
	}
	for i, r := range res {
		if r == nil || r.Wall <= 0 || r.SimSpan <= 0 {
			t.Fatalf("cell %d missing timing: %+v", i, r)
		}
		if r.SimRate() <= 0 {
			t.Fatalf("cell %d SimRate = %v", i, r.SimRate())
		}
	}
}
