package experiments

import (
	"testing"

	"drill/internal/units"
)

// TestProbeVisSTDV maps visibility delay to DRILL's queue balance.
func TestProbeVisSTDV(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	sc, _ := SchemeByName("DRILL w/o shim")
	for _, vf := range []float64{1, 0.25, 0.05, 0.0001} {
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
			SampleQueues: true, VisFactor: vf,
		})
		t.Logf("vis=%.4f upSTDV=%.3f downSTDV=%.3f anyDup=%.2f%% dup>=3=%.2f%%",
			vf, res.UplinkSTDV, res.DownlinkSTDV,
			100*res.DupAcks.FracAtLeast(1), 100*res.DupAcks.FracAtLeast(3))
	}
}
