package experiments

import (
	"fmt"
	"testing"

	"drill/internal/units"
)

// benchSweepCfgs is a small schemes × loads grid sized so one iteration
// finishes in seconds; BENCH runs compare sequential against pooled
// execution to track fan-out scaling.
func benchSweepCfgs() []RunCfg {
	var cfgs []RunCfg
	for si, name := range []string{"ECMP", "DRILL"} {
		sc, _ := SchemeByName(name)
		for li, load := range []float64{0.3, 0.7} {
			cfgs = append(cfgs, RunCfg{
				Topo: fig6Topo(0), Scheme: sc,
				Seed: 1 + int64(si*100+li), Load: load,
				Warmup:  200 * units.Microsecond,
				Measure: 1 * units.Millisecond,
			})
		}
	}
	return cfgs
}

func benchmarkSweep(b *testing.B, workers int) {
	cfgs := benchSweepCfgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunAll(cfgs, workers, nil)
		if res[0].FCT.Count() == 0 {
			b.Fatal("empty sweep cell")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

func BenchmarkSweepPooled(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkSweepWorkers tracks scaling across explicit worker counts.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchmarkSweep(b, w)
		})
	}
}
