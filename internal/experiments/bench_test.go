package experiments

import (
	"fmt"
	"testing"

	"drill/internal/trace"
	"drill/internal/units"
)

// benchSweepCfgs is a small schemes × loads grid sized so one iteration
// finishes in seconds; BENCH runs compare sequential against pooled
// execution to track fan-out scaling.
func benchSweepCfgs() []RunCfg {
	var cfgs []RunCfg
	for si, name := range []string{"ECMP", "DRILL"} {
		sc, _ := SchemeByName(name)
		for li, load := range []float64{0.3, 0.7} {
			cfgs = append(cfgs, RunCfg{
				Topo: fig6Topo(0), Scheme: sc,
				Seed: 1 + int64(si*100+li), Load: load,
				Warmup:  200 * units.Microsecond,
				Measure: 1 * units.Millisecond,
			})
		}
	}
	return cfgs
}

func benchmarkSweep(b *testing.B, workers int) {
	cfgs := benchSweepCfgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunAll(cfgs, workers, nil)
		if res[0].FCT.Count() == 0 {
			b.Fatal("empty sweep cell")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

func BenchmarkSweepPooled(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkSweepWorkers tracks scaling across explicit worker counts.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchmarkSweep(b, w)
		})
	}
}

// benchTraceCell is the reference fig6a cell the trace-overhead benchmarks
// share. Comparing BenchmarkRunCellNoTrace against the Traced variants (and
// against its own numbers from before the trace layer existed) bounds the
// instrumentation cost; the nil-tracer path must stay within noise of the
// pre-instrumentation data plane, with zero allocations from the emit sites
// themselves (see internal/trace's AllocsPerRun tests for the per-site
// proof).
func benchTraceCell() RunCfg {
	sc, _ := SchemeByName("DRILL")
	return RunCfg{
		Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.5,
		Warmup:  200 * units.Microsecond,
		Measure: 1 * units.Millisecond,
	}
}

func benchmarkRunCell(b *testing.B, attach func(cfg *RunCfg)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchTraceCell()
		if attach != nil {
			attach(&cfg)
		}
		if res := Run(cfg); res.FCT.Count() == 0 {
			b.Fatal("empty cell")
		}
	}
}

// BenchmarkRunCellNoTrace is the baseline: tracer nil, data plane on the
// zero-overhead fast path.
func BenchmarkRunCellNoTrace(b *testing.B) { benchmarkRunCell(b, nil) }

// BenchmarkRunCellTraceCounts attaches a counts-only tracer (nil sink):
// every lifecycle event is tallied but none is materialized.
func BenchmarkRunCellTraceCounts(b *testing.B) {
	benchmarkRunCell(b, func(cfg *RunCfg) { cfg.Tracer = trace.New(nil) })
}

// BenchmarkRunCellTraceRing attaches a ring sink plus the 10µs sampler —
// the full-capture configuration qtrace runs.
func BenchmarkRunCellTraceRing(b *testing.B) {
	benchmarkRunCell(b, func(cfg *RunCfg) {
		cfg.Tracer = trace.New(trace.NewRing(1 << 20))
		cfg.TraceSample = 10 * units.Microsecond
	})
}
