package experiments

import (
	"testing"

	"drill/internal/units"
)

// TestProbeWireReorder separates wire reordering from dup-ACK counts.
func TestProbeWireReorder(t *testing.T) {
	skipSlow(t, "diagnostic probe")
	for _, name := range []string{"Random", "RR", "Presto before shim", "DRILL w/o shim", "ECMP"} {
		sc, _ := SchemeByName(name)
		res := Run(RunCfg{
			Topo: fig6Topo(0), Scheme: sc, Seed: 1, Load: 0.8,
			Warmup: 500 * units.Microsecond, Measure: 3 * units.Millisecond,
		})
		t.Logf("%-18s wire>=1=%.2f%% wire>=3=%.2f%% anyDup=%.2f%% dup>=3=%.2f%% retx=%d",
			name,
			100*res.WireReorders.FracAtLeast(1), 100*res.WireReorders.FracAtLeast(3),
			100*res.DupAcks.FracAtLeast(1), 100*res.DupAcks.FracAtLeast(3),
			res.Retransmits)
	}
}
