package topo

import (
	"fmt"

	"drill/internal/units"
)

// DefaultProp is the per-link propagation delay used by the builders,
// representative of intra-data-center cabling.
const DefaultProp = 200 * units.Nanosecond

// LeafSpineConfig describes a two-stage folded Clos (Figure 1).
type LeafSpineConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	HostRate     units.Rate // host ↔ leaf links
	CoreRate     units.Rate // leaf ↔ spine links
	Prop         units.Time // per-link propagation (DefaultProp if zero)
}

func (c *LeafSpineConfig) defaults() {
	if c.Prop == 0 {
		c.Prop = DefaultProp
	}
	if c.HostRate == 0 {
		c.HostRate = 10 * units.Gbps
	}
	if c.CoreRate == 0 {
		c.CoreRate = 40 * units.Gbps
	}
}

// LeafSpine builds a symmetric two-stage Clos: every leaf connects to every
// spine with one CoreRate link, and HostsPerLeaf hosts hang off each leaf.
func LeafSpine(cfg LeafSpineConfig) *Topology {
	cfg.defaults()
	t := New()
	spines := make([]NodeID, cfg.Spines)
	for i := range spines {
		spines[i] = t.AddNode(Spine, fmt.Sprintf("S%d", i))
	}
	for l := 0; l < cfg.Leaves; l++ {
		leaf := t.AddNode(Leaf, fmt.Sprintf("L%d", l))
		for _, s := range spines {
			t.AddLink(leaf, s, cfg.CoreRate, cfg.Prop)
		}
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			host := t.AddNode(Host, fmt.Sprintf("L%d.h%d", l, h))
			t.AddLink(host, leaf, cfg.HostRate, cfg.Prop)
		}
	}
	return t
}

// VL2Config describes a three-stage VL2-style Clos: ToRs (Leaf) connect to
// Aggregation switches, which form a folded Clos with Intermediate (Core)
// switches (Greenberg et al., as used in the paper's Fig. 10 experiment).
type VL2Config struct {
	ToRs        int
	Aggs        int
	Ints        int
	HostsPerToR int
	HostRate    units.Rate // host ↔ ToR
	CoreRate    units.Rate // ToR↔Agg and Agg↔Int
	ToRAggLinks int        // aggs each ToR connects to (0 = 2, as in VL2)
	Prop        units.Time
}

// VL2 builds the three-stage topology of the paper's Fig. 10 experiment:
// each ToR connects to ToRAggLinks aggregation switches; every aggregation
// switch connects to every intermediate switch.
func VL2(cfg VL2Config) *Topology {
	if cfg.Prop == 0 {
		cfg.Prop = DefaultProp
	}
	if cfg.ToRAggLinks == 0 {
		cfg.ToRAggLinks = 2
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = 1 * units.Gbps
	}
	if cfg.CoreRate == 0 {
		cfg.CoreRate = 10 * units.Gbps
	}
	t := New()
	ints := make([]NodeID, cfg.Ints)
	for i := range ints {
		ints[i] = t.AddNode(Core, fmt.Sprintf("I%d", i))
	}
	aggs := make([]NodeID, cfg.Aggs)
	for i := range aggs {
		aggs[i] = t.AddNode(Agg, fmt.Sprintf("A%d", i))
		for _, in := range ints {
			t.AddLink(aggs[i], in, cfg.CoreRate, cfg.Prop)
		}
	}
	for r := 0; r < cfg.ToRs; r++ {
		tor := t.AddNode(Leaf, fmt.Sprintf("T%d", r))
		for k := 0; k < cfg.ToRAggLinks; k++ {
			agg := aggs[(r*cfg.ToRAggLinks+k)%cfg.Aggs]
			t.AddLink(tor, agg, cfg.CoreRate, cfg.Prop)
		}
		for h := 0; h < cfg.HostsPerToR; h++ {
			host := t.AddNode(Host, fmt.Sprintf("T%d.h%d", r, h))
			t.AddLink(host, tor, cfg.HostRate, cfg.Prop)
		}
	}
	return t
}

// FatTreeConfig describes a k-ary fat-tree (Al-Fares et al.): k pods, each
// with k/2 edge (Leaf) and k/2 aggregation switches, and (k/2)^2 core
// switches; every switch has k ports of uniform LinkRate.
type FatTreeConfig struct {
	K        int // pod count; must be even
	LinkRate units.Rate
	Prop     units.Time
}

// FatTree builds a k-ary fat-tree with (k/2)^2 hosts per pod.
func FatTree(cfg FatTreeConfig) *Topology {
	if cfg.K%2 != 0 || cfg.K < 2 {
		panic("topo: fat-tree k must be even and >= 2")
	}
	if cfg.Prop == 0 {
		cfg.Prop = DefaultProp
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = 10 * units.Gbps
	}
	k := cfg.K
	half := k / 2
	t := New()
	cores := make([][]NodeID, half) // cores[g] serves aggregation index g in each pod
	for g := 0; g < half; g++ {
		cores[g] = make([]NodeID, half)
		for j := 0; j < half; j++ {
			cores[g][j] = t.AddNode(Core, fmt.Sprintf("C%d.%d", g, j))
		}
	}
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = t.AddNode(Agg, fmt.Sprintf("P%d.A%d", p, a))
			for _, c := range cores[a] {
				t.AddLink(aggs[a], c, cfg.LinkRate, cfg.Prop)
			}
		}
		for e := 0; e < half; e++ {
			edge := t.AddNode(Leaf, fmt.Sprintf("P%d.E%d", p, e))
			for _, a := range aggs {
				t.AddLink(edge, a, cfg.LinkRate, cfg.Prop)
			}
			for h := 0; h < half; h++ {
				host := t.AddNode(Host, fmt.Sprintf("P%d.E%d.h%d", p, e, h))
				t.AddLink(host, edge, cfg.LinkRate, cfg.Prop)
			}
		}
	}
	return t
}

// HeterogeneousConfig describes the paper's Fig. 13 topology: Leaves leafs
// and Spines spines, all pairs connected with one BaseRate link, except each
// leaf L_i has ExtraLinks parallel links to spines S_{i mod n} and
// S_{(i+1) mod n} (imbalanced striping).
type HeterogeneousConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	HostRate     units.Rate
	BaseRate     units.Rate
	ExtraLinks   int // parallel links to the two "near" spines (total, incl. base)
	Prop         units.Time
}

// Heterogeneous builds the imbalanced-striping topology of Fig. 13.
func Heterogeneous(cfg HeterogeneousConfig) *Topology {
	if cfg.Prop == 0 {
		cfg.Prop = DefaultProp
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = 10 * units.Gbps
	}
	if cfg.BaseRate == 0 {
		cfg.BaseRate = 10 * units.Gbps
	}
	if cfg.ExtraLinks == 0 {
		cfg.ExtraLinks = 2
	}
	t := New()
	spines := make([]NodeID, cfg.Spines)
	for i := range spines {
		spines[i] = t.AddNode(Spine, fmt.Sprintf("S%d", i))
	}
	for l := 0; l < cfg.Leaves; l++ {
		leaf := t.AddNode(Leaf, fmt.Sprintf("L%d", l))
		near1 := l % cfg.Spines
		near2 := (l + 1) % cfg.Spines
		for si, s := range spines {
			n := 1
			if si == near1 || si == near2 {
				n = cfg.ExtraLinks
			}
			for k := 0; k < n; k++ {
				t.AddLink(leaf, s, cfg.BaseRate, cfg.Prop)
			}
		}
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			host := t.AddNode(Host, fmt.Sprintf("L%d.h%d", l, h))
			t.AddLink(host, leaf, cfg.HostRate, cfg.Prop)
		}
	}
	return t
}
