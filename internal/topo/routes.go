package topo

import "math"

// Routes is the equal-cost shortest-path routing state for one topology
// snapshot (the output of the control plane's OSPF/ECMP computation, §3.2).
// It must be recomputed after link failures; the fabric models that
// recomputation delay explicitly.
type Routes struct {
	topo *Topology

	// dist[leafIdx][node] is the hop distance from node to the leaf, counting
	// switch-to-switch hops only (hosts are never transit).
	dist [][]int32

	// next[leafIdx][node] lists the directed channels at node that lie on a
	// shortest path toward the leaf.
	next [][][]ChanID
}

const unreachable = int32(math.MaxInt32)

// ComputeRoutes runs reverse BFS from every leaf over up links, excluding
// hosts as transit nodes, and records all equal-cost next hops.
func ComputeRoutes(t *Topology) *Routes {
	r := &Routes{topo: t}
	n := len(t.Nodes)
	r.dist = make([][]int32, len(t.Leaves))
	r.next = make([][][]ChanID, len(t.Leaves))
	// Reverse adjacency: channels arriving at each node.
	in := make([][]ChanID, n)
	for _, l := range t.Links {
		if !l.Up {
			continue
		}
		in[l.B] = append(in[l.B], ChanID(2*l.ID))   // A→B arrives at B
		in[l.A] = append(in[l.A], ChanID(2*l.ID+1)) // B→A arrives at A
	}
	for li, leaf := range t.Leaves {
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = unreachable
		}
		dist[leaf] = 0
		queue := []NodeID{leaf}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, cid := range in[v] {
				c := t.Chan(cid)
				u := c.From
				if t.Nodes[u].Kind == Host {
					continue // hosts do not forward transit traffic
				}
				if dist[u] == unreachable {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		next := make([][]ChanID, n)
		for u := 0; u < n; u++ {
			if dist[u] == unreachable || dist[u] == 0 {
				continue
			}
			for _, cid := range t.Out(NodeID(u)) {
				c := t.Chan(cid)
				if t.Nodes[c.To].Kind == Host {
					continue
				}
				if dist[c.To] == dist[u]-1 {
					next[u] = append(next[u], cid)
				}
			}
		}
		r.dist[li] = dist
		r.next[li] = next
	}
	return r
}

// Topo returns the topology this routing state was computed from.
func (r *Routes) Topo() *Topology { return r.topo }

// Dist returns the shortest hop count from node to dstLeaf, or -1 if
// unreachable.
func (r *Routes) Dist(node, dstLeaf NodeID) int {
	d := r.dist[r.topo.LeafIndex(dstLeaf)][node]
	if d == unreachable {
		return -1
	}
	return int(d)
}

// NextHops returns the directed channels at node lying on shortest paths
// toward dstLeaf. The returned slice is shared; callers must not mutate it.
func (r *Routes) NextHops(node, dstLeaf NodeID) []ChanID {
	return r.next[r.topo.LeafIndex(dstLeaf)][node]
}

// Paths enumerates every shortest path from node src to leaf dst as channel
// sequences. In Clos fabrics path counts are small (≤ spines for 2-stage,
// ≤ aggs×cores for 3-stage), so full enumeration is cheap; it feeds the
// Quiver construction (§3.4.1) and Presto's source routing.
func (r *Routes) Paths(src, dst NodeID) [][]ChanID {
	if src == dst {
		return [][]ChanID{{}}
	}
	var out [][]ChanID
	var walk func(at NodeID, acc []ChanID)
	walk = func(at NodeID, acc []ChanID) {
		if at == dst {
			path := make([]ChanID, len(acc))
			copy(path, acc)
			out = append(out, path)
			return
		}
		for _, cid := range r.NextHops(at, dst) {
			walk(r.topo.Chan(cid).To, append(acc, cid))
		}
	}
	walk(src, nil)
	return out
}

// PathNodes converts a channel-sequence path to the node sequence it visits,
// starting with the source node.
func (r *Routes) PathNodes(src NodeID, path []ChanID) []NodeID {
	nodes := []NodeID{src}
	for _, cid := range path {
		nodes = append(nodes, r.topo.Chan(cid).To)
	}
	return nodes
}
