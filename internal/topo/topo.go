// Package topo models data center topologies as graphs of hosts and
// switches connected by capacitated links, and computes the equal-cost
// shortest-path routing state (per-switch next-hop sets and full path
// enumerations) that every load balancer in this repository consumes.
//
// Builders are provided for the topologies the DRILL paper evaluates:
// two-stage leaf–spine Clos fabrics (symmetric, oversubscribed, scaled-out),
// three-stage VL2 and fat-tree networks, and heterogeneous fabrics with
// parallel links / imbalanced striping. Links can be failed to create the
// asymmetric variants of §3.4.
package topo

import (
	"fmt"

	"drill/internal/units"
)

// NodeID identifies a node (host or switch) in a Topology.
type NodeID int32

// NodeKind classifies a node's role in the fabric.
type NodeKind uint8

// Node kinds. Leaf switches are the edge (ToR) tier; Spine is the top tier
// of a 2-stage Clos; Agg and Core are the middle/top tiers of 3-stage
// fabrics (VL2's Aggregation/Intermediate, fat-tree's aggregation/core).
const (
	Host NodeKind = iota
	Leaf
	Spine
	Agg
	Core
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Leaf:
		return "leaf"
	case Spine:
		return "spine"
	case Agg:
		return "agg"
	case Core:
		return "core"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a host or switch.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
}

// LinkID identifies an undirected link; each link contributes two directed
// channels (see Chan).
type LinkID int32

// Link is an undirected cable between two nodes. Parallel links between the
// same pair are permitted (imbalanced striping, §3.4.3).
type Link struct {
	ID   LinkID
	A, B NodeID
	Rate units.Rate
	Prop units.Time
	Up   bool
}

// ChanID identifies a directed channel: channel 2*l goes A→B of link l,
// channel 2*l+1 goes B→A.
type ChanID int32

// Chan is one direction of a link.
type Chan struct {
	ID       ChanID
	Link     LinkID
	From, To NodeID
	Rate     units.Rate
	Prop     units.Time
}

// Topology is an immutable node/link structure plus mutable link up/down
// state. Routing state is computed on demand via Routes.
type Topology struct {
	Nodes []Node
	Links []Link

	// out[n] lists the directed channels leaving node n (including to hosts).
	out [][]ChanID

	// Hosts, Leaves list node IDs by role, in construction order.
	Hosts  []NodeID
	Leaves []NodeID

	// HostLeaf maps a host's NodeID to its leaf (ToR) NodeID.
	HostLeaf map[NodeID]NodeID

	// leafIndex maps a leaf NodeID to its position in Leaves.
	leafIndex map[NodeID]int
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{HostLeaf: map[NodeID]NodeID{}, leafIndex: map[NodeID]int{}}
}

// AddNode appends a node of the given kind and returns its ID.
func (t *Topology) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name})
	t.out = append(t.out, nil)
	switch kind {
	case Host:
		t.Hosts = append(t.Hosts, id)
	case Leaf:
		t.leafIndex[id] = len(t.Leaves)
		t.Leaves = append(t.Leaves, id)
	}
	return id
}

// AddLink connects a and b with an undirected link and returns its ID.
// If either endpoint is a host, the host-to-leaf association is recorded.
func (t *Topology) AddLink(a, b NodeID, rate units.Rate, prop units.Time) LinkID {
	if rate <= 0 {
		panic("topo: link rate must be positive")
	}
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{ID: id, A: a, B: b, Rate: rate, Prop: prop, Up: true})
	t.out[a] = append(t.out[a], ChanID(2*id))
	t.out[b] = append(t.out[b], ChanID(2*id+1))
	if t.Nodes[a].Kind == Host {
		t.HostLeaf[a] = b
	}
	if t.Nodes[b].Kind == Host {
		t.HostLeaf[b] = a
	}
	return id
}

// Chan materializes the directed-channel view of channel id.
func (t *Topology) Chan(id ChanID) Chan {
	l := t.Links[id/2]
	c := Chan{ID: id, Link: l.ID, Rate: l.Rate, Prop: l.Prop}
	if id%2 == 0 {
		c.From, c.To = l.A, l.B
	} else {
		c.From, c.To = l.B, l.A
	}
	return c
}

// Out returns the directed channels leaving node n over links that are up.
func (t *Topology) Out(n NodeID) []ChanID {
	chans := t.out[n]
	up := make([]ChanID, 0, len(chans))
	for _, c := range chans {
		if t.Links[c/2].Up {
			up = append(up, c)
		}
	}
	return up
}

// OutAll returns all directed channels leaving n, including failed ones.
func (t *Topology) OutAll(n NodeID) []ChanID { return t.out[n] }

// FailLink marks link id down. Routing computed afterwards excludes it.
func (t *Topology) FailLink(id LinkID) { t.Links[id].Up = false }

// RestoreLink marks link id up again.
func (t *Topology) RestoreLink(id LinkID) { t.Links[id].Up = true }

// LeafOf returns the leaf switch a host attaches to.
func (t *Topology) LeafOf(h NodeID) NodeID {
	l, ok := t.HostLeaf[h]
	if !ok {
		panic(fmt.Sprintf("topo: node %d is not an attached host", h))
	}
	return l
}

// LeafIndex returns the dense index of leaf node id in Leaves.
func (t *Topology) LeafIndex(leaf NodeID) int {
	i, ok := t.leafIndex[leaf]
	if !ok {
		panic(fmt.Sprintf("topo: node %d is not a leaf", leaf))
	}
	return i
}

// HostsUnder returns the hosts attached to the given leaf.
func (t *Topology) HostsUnder(leaf NodeID) []NodeID {
	var hs []NodeID
	for _, h := range t.Hosts {
		if t.HostLeaf[h] == leaf {
			hs = append(hs, h)
		}
	}
	return hs
}

// NumSwitches reports how many nodes are switches (non-hosts).
func (t *Topology) NumSwitches() int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Kind != Host {
			n++
		}
	}
	return n
}

// LinkBetween returns the IDs of all up links directly connecting a and b.
func (t *Topology) LinkBetween(a, b NodeID) []LinkID {
	var ids []LinkID
	for _, l := range t.Links {
		if l.Up && ((l.A == a && l.B == b) || (l.A == b && l.B == a)) {
			ids = append(ids, l.ID)
		}
	}
	return ids
}

// Partition assigns every node to one of n shards for the sharded
// simulation engine, returning the per-node shard index and the effective
// shard count (n clamped to the leaf count — a shard with no leaves would
// own no traffic sources and only slow the barrier down).
//
// Leaves are cut into n contiguous runs of Leaves order, hosts follow
// their leaf — the host–leaf link is the hottest channel in the fabric and
// must never be a shard boundary — and the remaining tiers (spines, aggs,
// cores) round-robin across shards in node-ID order so every shard carries
// a similar slice of the core. Cross-shard links are then exactly
// leaf–spine/agg–core channels, whose propagation delay sets the
// synchronizer's lookahead.
func (t *Topology) Partition(n int) ([]int, int) {
	if n < 1 {
		n = 1
	}
	if n > len(t.Leaves) && len(t.Leaves) > 0 {
		n = len(t.Leaves)
	}
	assign := make([]int, len(t.Nodes))
	for i, leaf := range t.Leaves {
		assign[leaf] = i * n / len(t.Leaves)
	}
	for _, h := range t.Hosts {
		assign[h] = assign[t.HostLeaf[h]]
	}
	j := 0
	for _, nd := range t.Nodes {
		switch nd.Kind {
		case Spine, Agg, Core:
			assign[nd.ID] = j % n
			j++
		}
	}
	return assign, n
}
