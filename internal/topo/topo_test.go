package topo

import (
	"testing"
	"testing/quick"

	"drill/internal/units"
)

func leafSpine224() *Topology {
	return LeafSpine(LeafSpineConfig{Spines: 2, Leaves: 2, HostsPerLeaf: 4})
}

func TestLeafSpineShape(t *testing.T) {
	tp := LeafSpine(LeafSpineConfig{Spines: 4, Leaves: 16, HostsPerLeaf: 20})
	if got := len(tp.Hosts); got != 320 {
		t.Errorf("hosts = %d, want 320", got)
	}
	if got := len(tp.Leaves); got != 16 {
		t.Errorf("leaves = %d, want 16", got)
	}
	if got := tp.NumSwitches(); got != 20 {
		t.Errorf("switches = %d, want 20", got)
	}
	// 16*4 core + 16*20 host links.
	if got := len(tp.Links); got != 64+320 {
		t.Errorf("links = %d, want 384", got)
	}
	for _, h := range tp.Hosts {
		leaf := tp.LeafOf(h)
		if tp.Nodes[leaf].Kind != Leaf {
			t.Fatalf("host %d attached to non-leaf %v", h, tp.Nodes[leaf].Kind)
		}
	}
}

func TestChanDirections(t *testing.T) {
	tp := New()
	a := tp.AddNode(Leaf, "a")
	b := tp.AddNode(Spine, "b")
	l := tp.AddLink(a, b, 10*units.Gbps, 100)
	fwd := tp.Chan(ChanID(2 * l))
	rev := tp.Chan(ChanID(2*l + 1))
	if fwd.From != a || fwd.To != b || rev.From != b || rev.To != a {
		t.Fatalf("channel directions wrong: %+v %+v", fwd, rev)
	}
	if fwd.Rate != 10*units.Gbps || fwd.Prop != 100 {
		t.Fatalf("channel attrs wrong: %+v", fwd)
	}
}

func TestRoutesLeafSpine(t *testing.T) {
	tp := leafSpine224()
	r := ComputeRoutes(tp)
	l0, l1 := tp.Leaves[0], tp.Leaves[1]
	if d := r.Dist(l0, l1); d != 2 {
		t.Errorf("dist(l0,l1) = %d, want 2", d)
	}
	if d := r.Dist(l0, l0); d != 0 {
		t.Errorf("dist(l0,l0) = %d, want 0", d)
	}
	nh := r.NextHops(l0, l1)
	if len(nh) != 2 {
		t.Fatalf("next hops = %d, want 2 (one per spine)", len(nh))
	}
	for _, cid := range nh {
		c := tp.Chan(cid)
		if tp.Nodes[c.To].Kind != Spine {
			t.Errorf("next hop to %v, want spine", tp.Nodes[c.To].Kind)
		}
	}
	paths := r.Paths(l0, l1)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 2 {
			t.Errorf("path length %d, want 2", len(p))
		}
	}
}

func TestRoutesAfterFailure(t *testing.T) {
	tp := leafSpine224()
	l0, l1 := tp.Leaves[0], tp.Leaves[1]
	// Fail the link between leaf0 and spine0.
	var spine0 NodeID = -1
	for _, n := range tp.Nodes {
		if n.Kind == Spine {
			spine0 = n.ID
			break
		}
	}
	links := tp.LinkBetween(l0, spine0)
	if len(links) != 1 {
		t.Fatalf("links l0-s0 = %d, want 1", len(links))
	}
	tp.FailLink(links[0])
	r := ComputeRoutes(tp)
	if got := len(r.NextHops(l0, l1)); got != 1 {
		t.Errorf("next hops after failure = %d, want 1", got)
	}
	// Reverse direction l1→l0 still has 2 choices up, but paths via spine0
	// must end at l0 only via its remaining link... spine0 cannot reach l0.
	nh := r.NextHops(l1, l0)
	if len(nh) != 1 {
		t.Errorf("l1→l0 next hops = %d, want 1 (spine0 lost its l0 link)", len(nh))
	}
	tp.RestoreLink(links[0])
	r = ComputeRoutes(tp)
	if got := len(r.NextHops(l0, l1)); got != 2 {
		t.Errorf("next hops after restore = %d, want 2", got)
	}
}

func TestHostsNotTransit(t *testing.T) {
	// A host dangling on leaf0 must never appear inside a leaf-to-leaf path.
	tp := leafSpine224()
	r := ComputeRoutes(tp)
	for _, src := range tp.Leaves {
		for _, dst := range tp.Leaves {
			if src == dst {
				continue
			}
			for _, p := range r.Paths(src, dst) {
				for _, n := range r.PathNodes(src, p) {
					if tp.Nodes[n].Kind == Host {
						t.Fatalf("host %d on transit path %v", n, p)
					}
				}
			}
		}
	}
}

func TestVL2Shape(t *testing.T) {
	tp := VL2(VL2Config{ToRs: 16, Aggs: 8, Ints: 4, HostsPerToR: 20})
	if len(tp.Hosts) != 320 {
		t.Errorf("hosts = %d", len(tp.Hosts))
	}
	if len(tp.Leaves) != 16 {
		t.Errorf("tors = %d", len(tp.Leaves))
	}
	r := ComputeRoutes(tp)
	t0, t1 := tp.Leaves[0], tp.Leaves[1]
	if d := r.Dist(t0, t1); d != 4 {
		t.Errorf("ToR-to-ToR dist = %d, want 4 (ToR-Agg-Int-Agg-ToR)", d)
	}
	paths := r.Paths(t0, t1)
	// 2 aggs up × 4 ints × 2 aggs down... but only aggs wired to t1 count:
	// each path is up-agg → int → down-agg; t0 and t1 each touch 2 aggs,
	// so 2 × 4 × 2 = 16 shortest paths.
	if len(paths) != 16 {
		t.Errorf("paths = %d, want 16", len(paths))
	}
}

func TestFatTreeShape(t *testing.T) {
	tp := FatTree(FatTreeConfig{K: 4})
	// k=4: 16 hosts, 8 edge, 8 agg, 4 core.
	if len(tp.Hosts) != 16 {
		t.Errorf("hosts = %d, want 16", len(tp.Hosts))
	}
	if len(tp.Leaves) != 8 {
		t.Errorf("edges = %d, want 8", len(tp.Leaves))
	}
	if tp.NumSwitches() != 20 {
		t.Errorf("switches = %d, want 20", tp.NumSwitches())
	}
	r := ComputeRoutes(tp)
	// Same pod: edge-agg-edge = 2 hops, 2 paths (one per agg).
	e0, e1 := tp.Leaves[0], tp.Leaves[1]
	if d := r.Dist(e0, e1); d != 2 {
		t.Errorf("intra-pod dist = %d, want 2", d)
	}
	if got := len(r.Paths(e0, e1)); got != 2 {
		t.Errorf("intra-pod paths = %d, want 2", got)
	}
	// Different pod: 4 hops, 4 paths (one per core).
	e2 := tp.Leaves[2]
	if d := r.Dist(e0, e2); d != 4 {
		t.Errorf("inter-pod dist = %d, want 4", d)
	}
	if got := len(r.Paths(e0, e2)); got != 4 {
		t.Errorf("inter-pod paths = %d, want 4", got)
	}
}

func TestHeterogeneousParallelLinks(t *testing.T) {
	tp := Heterogeneous(HeterogeneousConfig{Spines: 4, Leaves: 4, HostsPerLeaf: 2, ExtraLinks: 2})
	// Leaf0 connects to S0 and S1 with 2 links each, S2/S3 with 1.
	l0 := tp.Leaves[0]
	var s [4]NodeID
	i := 0
	for _, n := range tp.Nodes {
		if n.Kind == Spine {
			s[i] = n.ID
			i++
		}
	}
	if got := len(tp.LinkBetween(l0, s[0])); got != 2 {
		t.Errorf("links l0-s0 = %d, want 2", got)
	}
	if got := len(tp.LinkBetween(l0, s[2])); got != 1 {
		t.Errorf("links l0-s2 = %d, want 1", got)
	}
	r := ComputeRoutes(tp)
	// Next hops from l0 to l2 (far leaf): channels = 2+2+1+1 = 6.
	if got := len(r.NextHops(l0, tp.Leaves[2])); got != 6 {
		t.Errorf("next hops = %d, want 6", got)
	}
}

func TestPathsMatchNextHops(t *testing.T) {
	// Property: the first channel of every enumerated path is a next hop,
	// and every next hop starts at least one path.
	tp := VL2(VL2Config{ToRs: 4, Aggs: 4, Ints: 2, HostsPerToR: 2})
	r := ComputeRoutes(tp)
	f := func(a, b uint8) bool {
		src := tp.Leaves[int(a)%len(tp.Leaves)]
		dst := tp.Leaves[int(b)%len(tp.Leaves)]
		if src == dst {
			return true
		}
		nh := map[ChanID]bool{}
		for _, c := range r.NextHops(src, dst) {
			nh[c] = false
		}
		for _, p := range r.Paths(src, dst) {
			if _, ok := nh[p[0]]; !ok {
				return false
			}
			nh[p[0]] = true
			if len(p) != r.Dist(src, dst) {
				return false
			}
		}
		for _, used := range nh {
			if !used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestOutFiltersFailedLinks(t *testing.T) {
	tp := leafSpine224()
	l0 := tp.Leaves[0]
	before := len(tp.Out(l0))
	tp.FailLink(tp.Links[tp.out[l0][0]/2].ID)
	if got := len(tp.Out(l0)); got != before-1 {
		t.Errorf("Out after fail = %d, want %d", got, before-1)
	}
	if got := len(tp.OutAll(l0)); got != before {
		t.Errorf("OutAll = %d, want %d", got, before)
	}
}
