package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Units forbids raw integer literals where an internal/units quantity
// type (Time in nanoseconds, ByteSize in bytes, Rate in bits/s) is
// expected. `Delay: 500` silently means 500ns today and a unit bug
// tomorrow; `500 * units.Nanosecond` survives a units refactor and says
// what it measures. The zero literal is always allowed (it is the zero
// value, unit-free by definition), as is -1 (the conventional sentinel).
var Units = &analysis.Analyzer{
	Name: "units",
	Doc: "flag raw integer literals used as internal/units quantity types (Time, ByteSize, Rate); " +
		"write 500*units.Nanosecond, not 500",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runUnits,
}

func runUnits(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "units")
	defer sup.stale()
	if isUnitsPkg(pass.Pkg.Path()) {
		return nil, nil // the unit constants themselves are defined here
	}

	info := pass.TypesInfo
	check := func(want types.Type, expr ast.Expr) {
		if !isUnitsQuantity(want) {
			return
		}
		lit, neg := bareIntLiteral(expr)
		if lit == nil {
			return
		}
		if v := lit.Value; v == "0" || (neg && v == "1") {
			return // zero value and -1 sentinel carry no unit
		}
		sup.Reportf(expr.Pos(),
			"raw integer literal used as %s; spell the unit (e.g. %s * units.%s) or //drill:allow units <reason>",
			types.TypeString(want, types.RelativeTo(pass.Pkg)), lit.Value, unitHint(want))
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.CallExpr)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.ValueSpec)(nil),
	}
	skip := false
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skip = isTestFile(pass, n)
		case *ast.CallExpr:
			if skip {
				return
			}
			// Explicit conversion units.Time(5) is as unit-less as a bare 5.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if len(n.Args) == 1 {
					check(tv.Type, n.Args[0])
				}
				return
			}
			sig, ok := info.TypeOf(n.Fun).(*types.Signature)
			if !ok {
				return
			}
			for i, arg := range n.Args {
				var param types.Type
				switch {
				case sig.Variadic() && i >= sig.Params().Len()-1:
					if !n.Ellipsis.IsValid() {
						param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
					}
				case i < sig.Params().Len():
					param = sig.Params().At(i).Type()
				}
				if param != nil {
					check(param, arg)
				}
			}
		case *ast.CompositeLit:
			if skip {
				return
			}
			t := info.TypeOf(n)
			if t == nil {
				return
			}
			switch u := t.Underlying().(type) {
			case *types.Struct:
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if f := structField(u, id.Name); f != nil {
								check(f.Type(), kv.Value)
							}
						}
					} else if i < u.NumFields() {
						check(u.Field(i).Type(), elt)
					}
				}
			case *types.Slice:
				for _, elt := range n.Elts {
					if _, ok := elt.(*ast.KeyValueExpr); !ok {
						check(u.Elem(), elt)
					}
				}
			case *types.Array:
				for _, elt := range n.Elts {
					if _, ok := elt.(*ast.KeyValueExpr); !ok {
						check(u.Elem(), elt)
					}
				}
			case *types.Map:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						check(u.Key(), kv.Key)
						check(u.Elem(), kv.Value)
					}
				}
			}
		case *ast.AssignStmt:
			if skip || len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				check(info.TypeOf(n.Lhs[i]), rhs)
			}
		case *ast.ValueSpec:
			if skip || n.Type == nil {
				return
			}
			want := info.TypeOf(n.Type)
			for _, v := range n.Values {
				check(want, v)
			}
		}
	})
	return nil, nil
}

// isUnitsQuantity reports whether t is one of the internal/units
// quantity types.
func isUnitsQuantity(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !isUnitsPkg(named.Obj().Pkg().Path()) {
		return false
	}
	switch named.Obj().Name() {
	case "Time", "ByteSize", "Rate":
		return true
	}
	return false
}

// bareIntLiteral unwraps parentheses and a single unary minus and
// returns the integer literal beneath, or nil.
func bareIntLiteral(e ast.Expr) (lit *ast.BasicLit, neg bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB {
				return nil, false
			}
			neg = true
			e = x.X
		case *ast.BasicLit:
			if x.Kind != token.INT {
				return nil, false
			}
			return x, neg
		default:
			return nil, false
		}
	}
}

// unitHint names a plausible unit constant for the diagnostic.
func unitHint(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return "Nanosecond"
	}
	switch named.Obj().Name() {
	case "ByteSize":
		return "Byte"
	case "Rate":
		return "BitPerSecond"
	default:
		return "Nanosecond"
	}
}

func structField(s *types.Struct, name string) *types.Var {
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == name {
			return s.Field(i)
		}
	}
	return nil
}
