package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"drill/internal/lint/callgraph"
)

// ShardConfine mechanically proves the sharded engine's confinement
// story: shard workers may touch only shard-local state. The sharded
// engine is byte-identical to the sequential one precisely because every
// event executed on a shard's scheduler reads and writes nothing but
// that shard's domain — an invariant that was previously enforced by
// review plus the coarse "no goroutines outside internal/sim/shard.go"
// ban. This analyzer rebuilds it as reachability over the typed
// per-package call graph (internal/lint/callgraph):
//
// Roots — the code that runs inside a shard worker:
//
//  1. functions launched by `go` statements in the package's shard.go
//     (the worker entry points themselves);
//  2. callbacks handed to shard-class scheduling calls on sim.Sim —
//     Register, At, AtID, AtKey, AtKeyID, After, AfterID, NewTimer,
//     ReserveKey — because under sharding those events run on a shard's
//     private scheduler. Global/barrier-class calls (AtGlobal,
//     AfterGlobal, AfterDaemon, AfterObserver, NewTicker,
//     NewObserverTicker) are excluded: they run on the global sim
//     between windows. Callbacks created inside methods of a type
//     carrying the fabric.ShardUnsafe marker are also excluded — marked
//     schemes are refused by NewSharded and only ever run sequentially.
//
// Checks over the worker-reachable set:
//
//   - package-level mutable state: any read or write of a package-level
//     variable (unless the variable is provably read-only in its
//     package) is shared across shards with no synchronization but the
//     window barrier, so it is reported;
//   - domain crossing: in packages that define shard domains (a type
//     declared in shard.go), any expression outside shard.go that
//     produces a domain-typed value through anything but the blessed
//     own-domain handle (a field named "dom") is a pointer about to
//     cross shards outside the ExchangeShards path, and any selection of
//     the global scheduler handle (the Sim field of fabric.Network) from
//     worker code bypasses the barrier entirely;
//   - balancer confinement: an lb scheme whose decision path (Choose and
//     the OnSend/OnTx/OnArrive hooks, followed through the call graph)
//     reaches package-level state, the global scheduler, or writes
//     receiver-held state must carry the fabric.ShardUnsafe marker — a
//     "shard-safe CONGA" cannot be declared safe by accident.
//
// The analysis is per package (unitchecker shows one compilation unit at
// a time), which matches the invariant: each package's bodies prove
// their own confinement, and cross-package calls are proven where the
// callee lives.
var ShardConfine = &analysis.Analyzer{
	Name: "shardconfine",
	Doc: "prove shard-worker-reachable code touches only shard-local state: " +
		"no package-level variables, no domain pointers outside the exchange path, " +
		"no unmarked balancers reaching shared state",
	Run: runShardConfine,
}

// workerSchedMethods are the sim.Sim scheduling entry points whose
// callbacks execute on a shard's private scheduler under sharding.
var workerSchedMethods = map[string]bool{
	"Register":   true,
	"At":         true,
	"AtID":       true,
	"AtKey":      true,
	"AtKeyID":    true,
	"After":      true,
	"AfterID":    true,
	"NewTimer":   true,
	"ReserveKey": true,
}

// balancerHookMethods maps each fabric hook interface consulted on the
// per-packet decision path to its method set. BuildTables is absent on
// purpose: table building happens at setup/reconvergence time on the
// barrier, not inside workers.
var balancerHookMethods = map[string][]string{
	"Balancer":       {"Choose"},
	"SendHook":       {"OnSend"},
	"TxObserver":     {"OnTx"},
	"ArriveObserver": {"OnArrive"},
}

func runShardConfine(pass *analysis.Pass) (any, error) {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "shardconfine")
	defer sup.stale()

	// Tests drive shards however they like; the invariant binds the
	// engine, not its proofs.
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, nil
	}

	sc := &shardConfine{
		pass:  pass,
		sup:   sup,
		graph: callgraph.Build(files, pass.TypesInfo, pass.Pkg),
		files: files,
	}
	sc.findFabric()
	sc.findShardFile()
	sc.collectReadOnlyVars()

	reach := sc.graph.Reachable(sc.workerRoots())
	for n := range reach {
		sc.checkWorkerNode(n)
	}
	sc.checkBalancers()
	return nil, nil
}

type shardConfine struct {
	pass  *analysis.Pass
	sup   *suppressor
	graph *callgraph.Graph
	files []*ast.File

	// shardFile is this package's shard.go (nil if absent); domainTypes
	// are the shard-domain types it declares.
	shardFile   *ast.File
	domainTypes map[*types.TypeName]bool

	// shardUnsafe is the fabric.ShardUnsafe marker interface; hookIfaces
	// the per-packet hook interfaces — both resolved from this package or
	// its imports, nil when fabric is not in view.
	shardUnsafe *types.Interface
	hookIfaces  map[string]*types.Interface // interface name -> type
	networkType *types.TypeName             // fabric.Network, for the Sim-handle rule

	// readOnlyVars are this package's package-level variables that are
	// never assigned or address-taken outside their declaration: lookup
	// tables and sentinels that cannot carry cross-shard mutable state.
	readOnlyVars map[*types.Var]bool
}

// fabricPkgSuffix identifies the fabric package, home of the domain
// types, the hook interfaces, and the ShardUnsafe marker.
const fabricPkgSuffix = "internal/fabric"

func isFabricPkg(path string) bool {
	return path == fabricPkgSuffix || strings.HasSuffix(path, "/"+fabricPkgSuffix)
}

// findFabric resolves the ShardUnsafe marker, the hook interfaces, and
// the Network type from this package (when it is fabric) or its imports.
func (sc *shardConfine) findFabric() {
	sc.hookIfaces = make(map[string]*types.Interface)
	lookIn := func(pkg *types.Package) {
		scope := pkg.Scope()
		if tn, ok := scope.Lookup("ShardUnsafe").(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				sc.shardUnsafe = iface
			}
		}
		for name := range balancerHookMethods {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					sc.hookIfaces[name] = iface
				}
			}
		}
		if tn, ok := scope.Lookup("Network").(*types.TypeName); ok {
			sc.networkType = tn
		}
	}
	if isFabricPkg(sc.pass.Pkg.Path()) {
		lookIn(sc.pass.Pkg)
		return
	}
	for _, imp := range sc.pass.Pkg.Imports() {
		if isFabricPkg(imp.Path()) {
			lookIn(imp)
			return
		}
	}
}

// findShardFile locates this package's shard.go and the domain types it
// declares. Only internal/sim and internal/fabric host shard runners.
func (sc *shardConfine) findShardFile() {
	sc.domainTypes = make(map[*types.TypeName]bool)
	path := sc.pass.Pkg.Path()
	if !isSimSchedPkg(path) && !isFabricPkg(path) {
		return
	}
	for _, f := range sc.files {
		name := filepath.Base(sc.pass.Fset.Position(f.Pos()).Filename)
		if name != "shard.go" {
			continue
		}
		sc.shardFile = f
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if tn, ok := sc.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					sc.domainTypes[tn] = true
				}
			}
		}
		return
	}
}

// collectReadOnlyVars marks this package's package-level variables that
// are never written or address-taken outside their own declaration.
// Reading one from a worker is safe: it is immutable for the run.
func (sc *shardConfine) collectReadOnlyVars() {
	sc.readOnlyVars = make(map[*types.Var]bool)
	scope := sc.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok {
			sc.readOnlyVars[v] = true
		}
	}
	info := sc.pass.TypesInfo
	demote := func(e ast.Expr) {
		// Strip to the base identifier: writing weights[0] or table.f
		// mutates the variable's reachable state just the same.
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				if v, ok := info.Uses[x].(*types.Var); ok {
					delete(sc.readOnlyVars, v)
				}
				return
			default:
				return
			}
		}
	}
	for _, f := range sc.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					demote(lhs)
				}
			case *ast.IncDecStmt:
				demote(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					demote(n.X)
				}
			}
			return true
		})
	}
}

// implementsShardUnsafe reports whether t (or *t) carries the marker.
func (sc *shardConfine) implementsShardUnsafe(t types.Type) bool {
	if sc.shardUnsafe == nil {
		return false
	}
	return types.Implements(t, sc.shardUnsafe) || types.Implements(types.NewPointer(t), sc.shardUnsafe)
}

// recvType returns the named receiver type of a method node's function,
// or nil.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// workerRoots collects the shard-worker entry points.
func (sc *shardConfine) workerRoots() []*callgraph.Node {
	var roots []*callgraph.Node
	info := sc.pass.TypesInfo

	// Root 1: go statements in shard.go — the worker loops themselves.
	if sc.shardFile != nil {
		ast.Inspect(sc.shardFile, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				roots = append(roots, sc.graph.LitNode(lit))
				return true
			}
			if fn := typeutil.StaticCallee(info, gs.Call); fn != nil {
				roots = append(roots, sc.graph.NodeOf(fn))
			} else if fn := sc.graph.FuncFor(gs.Call.Fun); fn != nil {
				roots = append(roots, sc.graph.NodeOf(fn))
			}
			return true
		})
	}

	// Root 2: callbacks passed to shard-class scheduling calls.
	for _, f := range sc.files {
		var enclFn *types.Func
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				enclFn, _ = info.Defs[fd.Name].(*types.Func)
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !sc.isWorkerSchedCall(call) {
				return true
			}
			// Closures created inside methods of ShardUnsafe-marked
			// types never run sharded: NewSharded refuses the scheme.
			if enclFn != nil {
				if rt := recvType(enclFn); rt != nil && sc.implementsShardUnsafe(rt) {
					return true
				}
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					roots = append(roots, sc.graph.LitNode(lit))
					continue
				}
				if fn := sc.graph.FuncFor(arg); fn != nil {
					roots = append(roots, sc.graph.NodeOf(fn))
				}
			}
			return true
		})
	}
	return roots
}

// isWorkerSchedCall reports whether call is a shard-class scheduling
// call on a sim.Sim receiver.
func (sc *shardConfine) isWorkerSchedCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !workerSchedMethods[sel.Sel.Name] {
		return false
	}
	s, ok := sc.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	rt := s.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sim" && obj.Pkg() != nil && isSimSchedPkg(obj.Pkg().Path())
}

// inShardFile reports whether pos falls inside this package's shard.go,
// where domain plumbing (ExchangeShards, FoldShards, NewSharded) is
// blessed.
func (sc *shardConfine) inShardFile(pos token.Pos) bool {
	return sc.shardFile != nil && sc.shardFile.FileStart <= pos && pos < sc.shardFile.FileEnd
}

// checkWorkerNode applies the package-state and domain-crossing checks
// to one worker-reachable function.
func (sc *shardConfine) checkWorkerNode(n *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Nested literals are their own nodes, visited via their
			// own reachability.
			return false
		case *ast.Ident:
			if v := sc.packageLevelVar(x); v != nil {
				sc.sup.Reportf(x.Pos(),
					"shard-worker-reachable code (%s) touches package-level variable %s: shard workers may only touch shard-local state",
					n.Name(), v.Name())
			}
		case *ast.SelectorExpr:
			sc.checkDomainSelector(n, x)
		case *ast.IndexExpr:
			sc.checkDomainIndex(n, x)
		}
		return true
	})
}

// packageLevelVar returns the package-level mutable variable used by
// id, or nil. Read-only package variables (never reassigned, never
// address-taken) are immutable for the run and allowed.
func (sc *shardConfine) packageLevelVar(id *ast.Ident) *types.Var {
	obj := sc.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = sc.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if v.Name() == "_" {
		return nil
	}
	if v.Pkg() == sc.pass.Pkg && sc.readOnlyVars[v] {
		return nil
	}
	return v
}

// checkDomainSelector reports worker code outside shard.go that either
// produces a shard-domain value through a non-blessed accessor or grabs
// the global scheduler handle off the Network.
func (sc *shardConfine) checkDomainSelector(n *callgraph.Node, sel *ast.SelectorExpr) {
	if sc.inShardFile(sel.Pos()) {
		return
	}
	info := sc.pass.TypesInfo
	// Global scheduler handle: Network.Sim is the barrier-class sim;
	// worker events schedule on their domain's sim.
	if sc.networkType != nil && sel.Sel.Name == "Sim" {
		xt := info.TypeOf(sel.X)
		if p, ok := xt.(*types.Pointer); ok {
			xt = p.Elem()
		}
		if named, ok := xt.(*types.Named); ok && named.Obj() == sc.networkType {
			sc.sup.Reportf(sel.Pos(),
				"shard-worker-reachable code (%s) selects the global scheduler %s.Sim: worker events must schedule on their domain's sim",
				n.Name(), sc.networkType.Name())
			return
		}
	}
	if len(sc.domainTypes) == 0 || sel.Sel.Name == "dom" {
		// A field named dom is the blessed own-domain handle.
		return
	}
	if sc.isDomainType(info.TypeOf(sel)) {
		sc.sup.Reportf(sel.Pos(),
			"shard-worker-reachable code (%s) reaches a shard domain through %s outside shard.go: domain pointers may only cross shards on the ExchangeShards path",
			n.Name(), sel.Sel.Name)
	}
}

// checkDomainIndex reports worker code outside shard.go that pulls a
// domain value out of a collection (a by-node index is how a pointer
// crosses into another shard's domain).
func (sc *shardConfine) checkDomainIndex(n *callgraph.Node, idx *ast.IndexExpr) {
	if sc.inShardFile(idx.Pos()) || len(sc.domainTypes) == 0 {
		return
	}
	if sc.isDomainType(sc.pass.TypesInfo.TypeOf(idx)) {
		sc.sup.Reportf(idx.Pos(),
			"shard-worker-reachable code (%s) indexes into a shard-domain collection outside shard.go: domain pointers may only cross shards on the ExchangeShards path",
			n.Name())
	}
}

// isDomainType reports whether t is (a pointer to) a type declared in
// this package's shard.go.
func (sc *shardConfine) isDomainType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return sc.domainTypes[named.Obj()]
}

// checkBalancers applies the marker check: every package-local type
// implementing a fabric hook interface without the ShardUnsafe marker
// must have a decision path free of shared state.
func (sc *shardConfine) checkBalancers() {
	if len(sc.hookIfaces) == 0 {
		return
	}
	scope := sc.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
			continue
		}
		t := tn.Type()
		if sc.implementsShardUnsafe(t) {
			continue
		}
		var hookRoots []*callgraph.Node
		for ifaceName, iface := range sc.hookIfaces {
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			for _, m := range balancerHookMethods[ifaceName] {
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, sc.pass.Pkg, m)
				if fn, ok := obj.(*types.Func); ok {
					if node := sc.graph.NodeOf(fn); node != nil {
						hookRoots = append(hookRoots, node)
					}
				}
			}
		}
		if len(hookRoots) == 0 {
			continue
		}
		sc.checkUnmarkedScheme(tn, hookRoots)
	}
}

// checkUnmarkedScheme walks the decision-path-reachable set of one
// unmarked hook implementer and reports every shared-state signal.
func (sc *shardConfine) checkUnmarkedScheme(tn *types.TypeName, roots []*callgraph.Node) {
	info := sc.pass.TypesInfo
	reach := sc.graph.Reachable(roots)
	for n := range reach {
		body := n.Body()
		if body == nil {
			continue
		}
		// Receiver-derived writes only make sense inside the scheme's
		// own methods (and their literals): that is where "receiver"
		// is defined.
		var tainted map[types.Object]bool
		if fn := nodeFunc(n); fn != nil && recvNames(fn, tn) {
			tainted = receiverTaint(info, n)
		}
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // literals are their own reachable nodes
			case *ast.Ident:
				if v := sc.packageLevelVar(x); v != nil {
					sc.sup.Reportf(x.Pos(),
						"%s reaches package-level variable %s on its decision path but does not carry the fabric.ShardUnsafe marker: mark it or confine the state",
						tn.Name(), v.Name())
				}
			case *ast.SelectorExpr:
				if sc.networkType != nil && x.Sel.Name == "Sim" {
					xt := info.TypeOf(x.X)
					if p, ok := xt.(*types.Pointer); ok {
						xt = p.Elem()
					}
					if named, ok := xt.(*types.Named); ok && named.Obj() == sc.networkType {
						sc.sup.Reportf(x.Pos(),
							"%s reaches the global scheduler %s.Sim on its decision path but does not carry the fabric.ShardUnsafe marker: mark it or confine the state",
							tn.Name(), sc.networkType.Name())
					}
				}
			case *ast.AssignStmt:
				if tainted == nil {
					return true
				}
				for _, lhs := range x.Lhs {
					if isThroughWrite(lhs) && exprTainted(info, tainted, lhs) {
						sc.sup.Reportf(lhs.Pos(),
							"%s writes receiver-held state on its decision path but does not carry the fabric.ShardUnsafe marker: engines sharing the scheme would race across shards",
							tn.Name())
					}
				}
			case *ast.IncDecStmt:
				if tainted != nil && isThroughWrite(x.X) && exprTainted(info, tainted, x.X) {
					sc.sup.Reportf(x.X.Pos(),
						"%s writes receiver-held state on its decision path but does not carry the fabric.ShardUnsafe marker: engines sharing the scheme would race across shards",
						tn.Name())
				}
			case *ast.CallExpr:
				if tainted == nil {
					return true
				}
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(x.Args) == 2 {
						if exprTainted(info, tainted, x.Args[0]) {
							sc.sup.Reportf(x.Pos(),
								"%s deletes from receiver-held state on its decision path but does not carry the fabric.ShardUnsafe marker: engines sharing the scheme would race across shards",
								tn.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// nodeFunc returns the declared function behind a node: itself, or the
// lexical encloser of a literal.
func nodeFunc(n *callgraph.Node) *types.Func {
	if n.Fn != nil {
		return n.Fn
	}
	return n.Encl
}

// recvNames reports whether fn is a method whose receiver is tn's type.
func recvNames(fn *types.Func, tn *types.TypeName) bool {
	rt := recvType(fn)
	if rt == nil {
		return false
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj() == tn
}

// receiverTaint computes the objects derived from the method receiver
// inside one node's body: the receiver itself plus locals assigned from
// receiver-derived expressions, to a fixpoint. Writes *through* a
// tainted base (selector, index) mutate state shared by every engine
// holding the scheme.
func receiverTaint(info *types.Info, n *callgraph.Node) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	fn := nodeFunc(n)
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return tainted
	}
	tainted[sig.Recv()] = true

	body := n.Body()
	for {
		changed := false
		ast.Inspect(body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // literal bodies taint on their own visit
			}
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			pairwise := len(as.Lhs) == len(as.Rhs)
			anyRHS := false
			if !pairwise {
				for _, rhs := range as.Rhs {
					if exprTainted(info, tainted, rhs) {
						anyRHS = true
					}
				}
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				src := anyRHS
				if pairwise {
					src = exprTainted(info, tainted, as.Rhs[i])
				}
				if src {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			return tainted
		}
	}
}

// exprTainted reports whether the base identifier of a selector/index
// chain is a tainted object.
func exprTainted(info *types.Info, tainted map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && tainted[obj]
		default:
			return false
		}
	}
}

// isThroughWrite reports whether lhs writes through a chain (selector or
// index) rather than rebinding a plain identifier: `p.pins[k] = v`
// mutates shared state, `p = other` only rebinds a local.
func isThroughWrite(lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
