package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AllocBudget is the per-function allocation accountant for the packet
// hot path. Every //drill:hotpath function has an allocation budget —
// zero by default — and the analyzer statically counts the sites in its
// body that can heap-allocate per call:
//
//   - new(T) and make(...) calls
//   - &T{...} composite literals (conservatively assumed to escape:
//     hot-path constructors hand their result to the caller)
//   - slice and map composite literals (backing storage)
//   - append(...) calls (growth may reallocate the backing array)
//   - capturing function literals (the closure cell)
//   - explicit conversions to interface types (boxing)
//   - string concatenation (also banned outright by the hotpath
//     analyzer; counted here so the bookkeeping is complete)
//
// A function whose count exceeds its budget is a finding. A nonzero
// budget is declared — with a reason — by a //drill:allocs <n> pragma in
// the function's doc comment (validated by drillpragma), and the budget
// must be exact: a pragma claiming more sites than remain is reported as
// stale, the same contract the //drill:allow escape hatch lives under.
// Counting is per call site and static: a site inside a loop still
// counts once, because the check exists to force every allocating
// expression on the hot path to be acknowledged, not to bound dynamic
// allocation totals (the alloc-ceiling benchmarks do that).
//
// Sites inside nested function literals are not charged to the enclosing
// function — the literal allocates when it runs, and the literal itself
// (if it captures) is the enclosing function's cost.
var AllocBudget = &analysis.Analyzer{
	Name: "allocbudget",
	Doc: "count static allocation sites in //drill:hotpath functions against " +
		"their declared //drill:allocs budget (default 0)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAllocBudget,
}

// allocSite is one statically-counted allocation in a hot function.
type allocSite struct {
	pos  token.Pos
	what string
}

func runAllocBudget(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "allocbudget")
	defer sup.stale()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !isHotPathFunc(fd) || fd.Body == nil {
			return
		}
		if isTestFile(pass, fileOf(pass, ins, fd)) {
			return
		}
		checkAllocBudget(pass, sup, fd)
	})
	return nil, nil
}

func checkAllocBudget(pass *analysis.Pass, sup *suppressor, fd *ast.FuncDecl) {
	sites := countAllocSites(pass, fd)
	budget, budgetPos, declared := allocsBudget(fd)

	switch {
	case len(sites) > budget:
		fset := pass.Fset
		var descs []string
		for _, s := range sites {
			descs = append(descs, fmt.Sprintf("%s at line %d", s.what, fset.Position(s.pos).Line))
		}
		const keep = 4
		if len(descs) > keep {
			descs = append(descs[:keep], fmt.Sprintf("and %d more", len(descs)-keep))
		}
		have := "no //drill:allocs budget (default 0)"
		if declared {
			have = fmt.Sprintf("a //drill:allocs budget of %d", budget)
		}
		sup.Reportf(fd.Name.Pos(),
			"//drill:hotpath function %s has %d allocation site(s) — %s — but %s; remove the allocation(s) or declare //drill:allocs %d <reason>",
			fd.Name.Name, len(sites), strings.Join(descs, ", "), have, len(sites))
	case declared && len(sites) < budget:
		// An over-declared budget is the alloc analogue of a stale
		// //drill:allow: the acknowledged cost no longer exists, so the
		// pragma must shrink with the code.
		sup.Reportf(budgetPos,
			"stale //drill:allocs %d: function %s has only %d allocation site(s); tighten the budget to match",
			budget, fd.Name.Name, len(sites))
	}
}

// countAllocSites statically counts the allocation sites in a hot
// function's body, not descending into nested function literals (each
// literal is counted as one site if it captures, and its own body is its
// own cost when it runs).
func countAllocSites(pass *analysis.Pass, fd *ast.FuncDecl) []allocSite {
	info := pass.TypesInfo
	var sites []allocSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, allocSite{pos: pos, what: what})
	}

	// Composite literals consumed by an enclosing &T{...} are counted at
	// the & (one heap object, not two).
	addressed := make(map[*ast.CompositeLit]bool)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesOuterState(info, n) {
				add(n.Pos(), "capturing func literal")
			}
			return false
		case *ast.CallExpr:
			// panic() arguments only run on the crash path; the hotpath
			// analyzer exempts them from the boxing ban for the same
			// reason, and a cold panic message is not a hot allocation.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						return false
					case "new":
						add(n.Pos(), "new")
						return true
					case "make":
						add(n.Pos(), "make")
						return true
					case "append":
						add(n.Pos(), "append (may grow)")
						return true
					}
				}
			}
			// Explicit conversion to an interface type boxes the operand.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) && len(n.Args) == 1 {
				if got := info.TypeOf(n.Args[0]); got != nil && !types.IsInterface(got) {
					add(n.Pos(), "interface conversion")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addressed[cl] = true
					add(n.Pos(), "&composite literal")
				}
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal")
			case *types.Map:
				add(n.Pos(), "map literal")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				add(n.OpPos, "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.TokPos, "string concatenation")
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return sites
}

// capturesOuterState reports whether the literal references a variable
// declared outside itself in some enclosing function scope — the case
// where the closure needs a heap cell. A literal that touches only its
// own parameters, locals, and package-level state is a static function
// value and does not allocate.
func capturesOuterState(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level variables are not captured state.
		if obj.Parent() == nil || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		// Declared inside the literal (param or local): not a capture.
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true
		}
		captures = true
		return false
	})
	return captures
}
