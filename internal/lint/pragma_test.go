package lint

import (
	"strings"
	"testing"

	"drill/internal/lint/linttest"
)

func TestParsePragma(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string // expected analyzer of a valid pragma, "" if invalid/not a directive
		errPart  string // expected substring of the rejection message, "" if accepted
	}{
		// Not directives at all.
		{"// plain comment", "", ""},
		{"// drill:allow units x", "", ""}, // space after // breaks the directive form
		{"//nolint:foo", "", ""},

		// Well-formed.
		{"//drill:allow units milliseconds documented at the call site", "units", ""},
		{"//drill:allow nondeterminism summation commutes", "nondeterminism", ""},
		{"//drill:allow hotpath cold branch", "hotpath", ""},
		{"//drill:allow simtime wall timing", "simtime", ""},
		{"//drill:hotpath", "", ""},

		// Malformed.
		{"//drill:allow", "", "malformed //drill:allow"},
		{"//drill:allow ", "", "malformed //drill:allow"},
		{"//drill:allow units", "", "missing a reason"},
		{"//drill:allow units   ", "", "missing a reason"},
		{"//drill:allow bogus because", "", `unknown analyzer "bogus"`},
		{"//drill:frobnicate", "", "unknown directive //drill:frobnicate"},
		{"//drill:hotpath but with args", "", "takes no arguments"},
	}
	for _, c := range cases {
		p, msg := parsePragma(c.text)
		if c.errPart != "" {
			if msg == "" || !strings.Contains(msg, c.errPart) {
				t.Errorf("parsePragma(%q) error = %q, want containing %q", c.text, msg, c.errPart)
			}
			continue
		}
		if msg != "" {
			t.Errorf("parsePragma(%q) unexpectedly rejected: %s", c.text, msg)
			continue
		}
		if c.analyzer == "" {
			if p != nil {
				t.Errorf("parsePragma(%q) = %+v, want no pragma", c.text, p)
			}
			continue
		}
		if p == nil || p.Analyzer != c.analyzer {
			t.Errorf("parsePragma(%q) = %+v, want analyzer %q", c.text, p, c.analyzer)
		}
	}
}

func TestParsePragmaReason(t *testing.T) {
	p, msg := parsePragma("//drill:allow units  spaces   collapse  at the  edges ")
	if msg != "" || p == nil {
		t.Fatalf("parsePragma rejected a valid pragma: %s", msg)
	}
	if p.Reason == "" || !strings.Contains(p.Reason, "spaces") {
		t.Errorf("Reason = %q, want the free text preserved", p.Reason)
	}
}

// TestPragmaAnalyzer drives the drillpragma analyzer over the fixture
// and asserts each malformed directive is reported with a clear message.
// Assertions live here, not in // want comments: appending a want
// comment to a line comment would change the directive under test.
func TestPragmaAnalyzer(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", Pragma, "fix/pragmafix")
	want := []string{
		"unknown directive //drill:frobnicate",
		"malformed //drill:allow: want //drill:allow <analyzer> <reason>",
		`unknown analyzer "bogus"`,
		"//drill:allow units is missing a reason",
		"//drill:hotpath takes no arguments",
		"//drill:hotpath must appear in a function declaration's doc comment",
		`malformed //drill:allocs: budget "two" is not an integer`,
		"//drill:allocs 0 is the default",
		"//drill:allocs must appear in a function declaration's doc comment",
		"//drill:allocs requires a //drill:hotpath marker on the same declaration",
		"duplicate //drill:allocs on one declaration",
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d.Message)
		}
		t.Fatalf("drillpragma reported %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want containing %q", i, diags[i].Message, w)
		}
	}
}

// TestStalePragma proves the escape hatch cannot rot: a //drill:allow
// that suppresses nothing is itself a finding (asserted via the // want
// in the nondeterminism fixture), and one that does suppress is not.
func TestStalePragma(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", Nondeterminism, "fix/internal/fabric")
	stale := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "stale //drill:allow") {
			stale++
		}
	}
	if stale != 1 {
		t.Fatalf("got %d stale-pragma findings in the nondeterminism fixture, want exactly 1", stale)
	}
}
