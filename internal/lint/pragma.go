package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// allowPragma is one parsed, well-formed //drill:allow comment.
type allowPragma struct {
	Analyzer string // analyzer the pragma addresses
	Reason   string // free-text justification (required)
	Pos      token.Pos
	File     string // filename the pragma appears in
	Line     int    // line the pragma itself is on
	used     bool   // a finding was suppressed by this pragma
}

// pragmaError is a malformed //drill: directive, reported by the pragma
// analyzer.
type pragmaError struct {
	Pos token.Pos
	Msg string
}

// parsePragma parses a single comment's text (including the leading //).
// It returns (nil, nil) for comments that are not //drill: directives,
// a pragma for well-formed //drill:allow comments, and an error message
// for malformed ones. //drill:hotpath is validated separately.
func parsePragma(text string) (*allowPragma, string) {
	const prefix = "//drill:"
	if !strings.HasPrefix(text, prefix) {
		return nil, ""
	}
	body := strings.TrimPrefix(text, prefix)
	directive, rest, _ := strings.Cut(body, " ")
	switch directive {
	case "hotpath":
		if strings.TrimSpace(rest) != "" {
			return nil, "//drill:hotpath takes no arguments"
		}
		return nil, ""
	case "allow":
		name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
		if name == "" {
			return nil, "malformed //drill:allow: want //drill:allow <analyzer> <reason>"
		}
		if !analyzerNames[name] {
			return nil, fmt.Sprintf("//drill:allow names unknown analyzer %q (valid: %s)",
				name, strings.Join(sortedAnalyzerNames(), ", "))
		}
		if strings.TrimSpace(reason) == "" {
			return nil, fmt.Sprintf("//drill:allow %s is missing a reason: want //drill:allow %s <reason>", name, name)
		}
		return &allowPragma{Analyzer: name, Reason: strings.TrimSpace(reason)}, ""
	default:
		return nil, fmt.Sprintf("unknown directive //drill:%s (valid: allow, hotpath)", directive)
	}
}

func sortedAnalyzerNames() []string {
	names := make([]string, 0, len(analyzerNames))
	for n := range analyzerNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// collectPragmas parses every //drill:allow pragma in the package
// (test files included) addressed to the named analyzer. Malformed
// directives are ignored here; the pragma analyzer reports them.
func collectPragmas(pass *analysis.Pass, analyzer string) []*allowPragma {
	var out []*allowPragma
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p, _ := parsePragma(c.Text)
				if p == nil || p.Analyzer != analyzer {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				p.Pos = c.Pos()
				p.File = pos.Filename
				p.Line = pos.Line
				out = append(out, p)
			}
		}
	}
	return out
}

// suppressor routes an analyzer's findings through its //drill:allow
// pragmas: a finding on the pragma's own line or the line immediately
// below it is suppressed (covering both end-of-line and stand-alone
// placement). stale() then reports every pragma that suppressed nothing,
// so obsolete escapes surface instead of rotting.
type suppressor struct {
	pass     *analysis.Pass
	analyzer string
	byLine   map[string]map[int]*allowPragma // file -> line -> pragma
	pragmas  []*allowPragma
}

func newSuppressor(pass *analysis.Pass, analyzer string) *suppressor {
	s := &suppressor{
		pass:     pass,
		analyzer: analyzer,
		byLine:   make(map[string]map[int]*allowPragma),
		pragmas:  collectPragmas(pass, analyzer),
	}
	for _, p := range s.pragmas {
		m := s.byLine[p.File]
		if m == nil {
			m = make(map[int]*allowPragma)
			s.byLine[p.File] = m
		}
		m[p.Line] = p
	}
	return s
}

// Reportf reports a finding at pos unless a pragma allows it.
func (s *suppressor) Reportf(pos token.Pos, format string, args ...any) {
	p := s.pass.Fset.Position(pos)
	if m := s.byLine[p.Filename]; m != nil {
		if pr := m[p.Line]; pr != nil { // pragma at end of the offending line
			pr.used = true
			return
		}
		if pr := m[p.Line-1]; pr != nil { // pragma on its own line above
			pr.used = true
			return
		}
	}
	s.pass.Reportf(pos, format, args...)
}

// stale reports every pragma addressed to this analyzer that suppressed
// no finding. Call it after the analyzer has visited the whole package.
func (s *suppressor) stale() {
	for _, p := range s.pragmas {
		if !p.used {
			s.pass.Reportf(p.Pos, "stale //drill:allow %s pragma: no %s finding on this or the next line (remove it or fix the reason)",
				s.analyzer, s.analyzer)
		}
	}
}

// Pragma validates //drill: directive comments themselves: unknown
// directives, missing analyzer names or reasons, unknown analyzer names,
// and //drill:hotpath markers that are not attached to a function
// declaration's doc comment.
var Pragma = &analysis.Analyzer{
	Name: "drillpragma",
	Doc: "check that //drill: directives are well-formed: " +
		"//drill:allow <analyzer> <reason> and //drill:hotpath on function docs",
	Run: runPragma,
}

func runPragma(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Positions of comments that belong to a FuncDecl doc group,
		// where //drill:hotpath is legitimate.
		funcDoc := make(map[token.Pos]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				funcDoc[c.Pos()] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, msg := parsePragma(c.Text); msg != "" {
					pass.Reportf(c.Pos(), "%s", msg)
					continue
				}
				if strings.HasPrefix(c.Text, "//drill:hotpath") && !funcDoc[c.Pos()] {
					pass.Reportf(c.Pos(), "//drill:hotpath must appear in a function declaration's doc comment")
				}
			}
		}
	}
	return nil, nil
}
