package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// allowPragma is one parsed, well-formed //drill:allow comment.
type allowPragma struct {
	Analyzer string // analyzer the pragma addresses
	Reason   string // free-text justification (required)
	Pos      token.Pos
	File     string // filename the pragma appears in
	Line     int    // line the pragma itself is on
	used     bool   // a finding was suppressed by this pragma
}

// pragmaError is a malformed //drill: directive, reported by the pragma
// analyzer.
type pragmaError struct {
	Pos token.Pos
	Msg string
}

// parsePragma parses a single comment's text (including the leading //).
// It returns (nil, nil) for comments that are not //drill: directives,
// a pragma for well-formed //drill:allow comments, and an error message
// for malformed ones. //drill:hotpath and //drill:allocs carry no
// suppression payload, so well-formed instances also return (nil, "");
// their placement is validated separately by the pragma analyzer.
func parsePragma(text string) (*allowPragma, string) {
	const prefix = "//drill:"
	if !strings.HasPrefix(text, prefix) {
		return nil, ""
	}
	body := strings.TrimPrefix(text, prefix)
	directive, rest, _ := strings.Cut(body, " ")
	switch directive {
	case "hotpath":
		if strings.TrimSpace(rest) != "" {
			return nil, "//drill:hotpath takes no arguments"
		}
		return nil, ""
	case "allocs":
		if _, msg := parseAllocsBudget(rest); msg != "" {
			return nil, msg
		}
		return nil, ""
	case "allow":
		name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
		if name == "" {
			return nil, "malformed //drill:allow: want //drill:allow <analyzer> <reason>"
		}
		if !analyzerNames[name] {
			return nil, fmt.Sprintf("//drill:allow names unknown analyzer %q (valid: %s)",
				name, strings.Join(sortedAnalyzerNames(), ", "))
		}
		if strings.TrimSpace(reason) == "" {
			return nil, fmt.Sprintf("//drill:allow %s is missing a reason: want //drill:allow %s <reason>", name, name)
		}
		return &allowPragma{Analyzer: name, Reason: strings.TrimSpace(reason)}, ""
	default:
		return nil, fmt.Sprintf("unknown directive //drill:%s (valid: allocs, allow, hotpath)", directive)
	}
}

// parseAllocsBudget parses the argument text of a //drill:allocs
// directive ("<n> [reason]") and returns the declared budget, or a
// rejection message. A budget must be a positive integer: zero is the
// default for every //drill:hotpath function, so declaring it is noise.
func parseAllocsBudget(rest string) (int, string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, "malformed //drill:allocs: want //drill:allocs <n> [reason] with n >= 1"
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, fmt.Sprintf("malformed //drill:allocs: budget %q is not an integer (want //drill:allocs <n> [reason])", fields[0])
	}
	if n == 0 {
		return 0, "//drill:allocs 0 is the default for //drill:hotpath functions; remove the pragma"
	}
	if n < 0 {
		return 0, fmt.Sprintf("//drill:allocs budget must be positive, got %d", n)
	}
	return n, ""
}

// allocsBudget scans a function declaration's doc comment for a
// well-formed //drill:allocs directive and returns its budget and
// position. Malformed directives are skipped here (the pragma analyzer
// reports them); if several well-formed directives appear, the first
// wins (duplicates are a pragma-analyzer finding too).
func allocsBudget(fd *ast.FuncDecl) (n int, pos token.Pos, ok bool) {
	if fd.Doc == nil {
		return 0, token.NoPos, false
	}
	for _, c := range fd.Doc.List {
		rest, found := strings.CutPrefix(c.Text, "//drill:allocs")
		if !found {
			continue
		}
		budget, msg := parseAllocsBudget(rest)
		if msg != "" {
			continue
		}
		return budget, c.Pos(), true
	}
	return 0, token.NoPos, false
}

func sortedAnalyzerNames() []string {
	names := make([]string, 0, len(analyzerNames))
	for n := range analyzerNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// collectPragmas parses every //drill:allow pragma in the package
// (test files included) addressed to the named analyzer. Malformed
// directives are ignored here; the pragma analyzer reports them.
func collectPragmas(pass *analysis.Pass, analyzer string) []*allowPragma {
	var out []*allowPragma
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p, _ := parsePragma(c.Text)
				if p == nil || p.Analyzer != analyzer {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				p.Pos = c.Pos()
				p.File = pos.Filename
				p.Line = pos.Line
				out = append(out, p)
			}
		}
	}
	return out
}

// suppressor routes an analyzer's findings through its //drill:allow
// pragmas: a finding on the pragma's own line or the line immediately
// below it is suppressed (covering both end-of-line and stand-alone
// placement). stale() then reports every pragma that suppressed nothing,
// so obsolete escapes surface instead of rotting.
type suppressor struct {
	pass     *analysis.Pass
	analyzer string
	byLine   map[string]map[int]*allowPragma // file -> line -> pragma
	pragmas  []*allowPragma
}

func newSuppressor(pass *analysis.Pass, analyzer string) *suppressor {
	s := &suppressor{
		pass:     pass,
		analyzer: analyzer,
		byLine:   make(map[string]map[int]*allowPragma),
		pragmas:  collectPragmas(pass, analyzer),
	}
	for _, p := range s.pragmas {
		m := s.byLine[p.File]
		if m == nil {
			m = make(map[int]*allowPragma)
			s.byLine[p.File] = m
		}
		m[p.Line] = p
	}
	return s
}

// Reportf reports a finding at pos unless a pragma allows it.
func (s *suppressor) Reportf(pos token.Pos, format string, args ...any) {
	p := s.pass.Fset.Position(pos)
	if m := s.byLine[p.Filename]; m != nil {
		if pr := m[p.Line]; pr != nil { // pragma at end of the offending line
			pr.used = true
			return
		}
		if pr := m[p.Line-1]; pr != nil { // pragma on its own line above
			pr.used = true
			return
		}
	}
	s.pass.Reportf(pos, format, args...)
}

// stale reports every pragma addressed to this analyzer that suppressed
// no finding. Call it after the analyzer has visited the whole package.
func (s *suppressor) stale() {
	for _, p := range s.pragmas {
		if !p.used {
			s.pass.Reportf(p.Pos, "stale //drill:allow %s pragma: no %s finding on this or the next line (remove it or fix the reason)",
				s.analyzer, s.analyzer)
		}
	}
}

// Pragma validates //drill: directive comments themselves: unknown
// directives, missing analyzer names or reasons, unknown analyzer names,
// //drill:hotpath markers that are not attached to a function
// declaration's doc comment, and //drill:allocs budgets that are
// malformed, detached from a function doc, missing the //drill:hotpath
// marker they qualify, or duplicated on one declaration.
var Pragma = &analysis.Analyzer{
	Name: "drillpragma",
	Doc: "check that //drill: directives are well-formed: " +
		"//drill:allow <analyzer> <reason>, //drill:hotpath on function docs, " +
		"and //drill:allocs <n> [reason] qualifying a //drill:hotpath function",
	Run: runPragma,
}

func runPragma(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Map each comment that belongs to a FuncDecl doc group to its
		// declaration: the one placement where //drill:hotpath and
		// //drill:allocs are legitimate.
		funcDoc := make(map[token.Pos]*ast.FuncDecl)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				funcDoc[c.Pos()] = fd
			}
		}
		// allocsSeen counts well-formed //drill:allocs directives per
		// declaration, to flag duplicates (which budget would win?).
		allocsSeen := make(map[*ast.FuncDecl]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, msg := parsePragma(c.Text); msg != "" {
					pass.Reportf(c.Pos(), "%s", msg)
					continue
				}
				if strings.HasPrefix(c.Text, "//drill:hotpath") && funcDoc[c.Pos()] == nil {
					pass.Reportf(c.Pos(), "//drill:hotpath must appear in a function declaration's doc comment")
				}
				if strings.HasPrefix(c.Text, "//drill:allocs") {
					fd := funcDoc[c.Pos()]
					switch {
					case fd == nil:
						pass.Reportf(c.Pos(), "//drill:allocs must appear in a function declaration's doc comment")
					case !isHotPathFunc(fd):
						pass.Reportf(c.Pos(), "//drill:allocs requires a //drill:hotpath marker on the same declaration: only hot-path functions carry allocation budgets")
					case allocsSeen[fd]:
						pass.Reportf(c.Pos(), "duplicate //drill:allocs on one declaration: a function has exactly one allocation budget")
					default:
						allocsSeen[fd] = true
					}
				}
			}
		}
	}
	return nil, nil
}
