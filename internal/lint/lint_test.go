package lint

import (
	"testing"

	"drill/internal/lint/linttest"
)

// Each analyzer is proven against a fixture that fails without its
// check: the // want comments in testdata/src assert both that
// violations are reported and that the sanctioned idioms stay silent.

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, "testdata", Nondeterminism, "fix/internal/fabric")
}

// TestNondeterminismShardRunner proves the concurrency exemption is
// file-granular: goroutines and channels in shard.go inside a package
// ending in internal/sim stay silent, the same constructs in a sibling
// file fire, and the wall-clock/map-order bans still fire in shard.go.
func TestNondeterminismShardRunner(t *testing.T) {
	linttest.Run(t, "testdata", Nondeterminism, "fix/internal/sim")
}

func TestNondeterminismSkipsNonSimPackages(t *testing.T) {
	if diags := linttest.Diagnostics(t, "testdata", Nondeterminism, "fix/plain"); len(diags) != 0 {
		t.Fatalf("nondeterminism fired outside simulation packages: %v", diags)
	}
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, "testdata", HotPath, "fix/hot")
}

func TestSimTime(t *testing.T) {
	linttest.Run(t, "testdata", SimTime, "fix/simtime")
}

func TestUnits(t *testing.T) {
	linttest.Run(t, "testdata", Units, "fix/unitsuse")
}

func TestAllocBudget(t *testing.T) {
	linttest.Run(t, "testdata", AllocBudget, "fix/allocs")
}

// TestShardConfineFabric proves the worker-reachability checks: goroutine
// bodies and shard-scheduled callbacks in the fixture fabric may not
// touch package state, select the global scheduler, or move domain
// pointers outside shard.go.
func TestShardConfineFabric(t *testing.T) {
	linttest.Run(t, "testdata", ShardConfine, "fix/confine/internal/fabric")
}

// TestShardConfineBalancers proves the marker check: schemes whose
// decision path reaches shared state must carry fabric.ShardUnsafe, and
// marked or pure schemes stay silent.
func TestShardConfineBalancers(t *testing.T) {
	linttest.Run(t, "testdata", ShardConfine, "fix/confine/internal/lb")
}

func TestShardConfineSkipsNonSimPackages(t *testing.T) {
	if diags := linttest.Diagnostics(t, "testdata", ShardConfine, "fix/plain"); len(diags) != 0 {
		t.Fatalf("shardconfine fired outside simulation packages: %v", diags)
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	all := Analyzers()
	if len(all) != 7 {
		t.Fatalf("Analyzers() = %d analyzers, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for name := range analyzerNames {
		if !seen[name] {
			t.Errorf("//drill:allow accepts %q but no analyzer has that name", name)
		}
	}
}

func TestIsSimPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"drill/internal/fabric", true},
		{"drill/internal/sim", true},
		{"fix/internal/quiver", true},
		{"internal/lb", true},
		{"drill/internal/metrics", false},
		{"drill/internal/experiments", false},
		{"fabric", false},
		{"drill/internal/fabricx", false},
	}
	for _, c := range cases {
		if got := isSimPackage(c.path); got != c.want {
			t.Errorf("isSimPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
