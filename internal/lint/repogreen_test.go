package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoGreen builds drillvet and runs every analyzer over the real
// tree: the repo must stay clean under its own lint suite, so a change
// that trips an invariant (or strands a stale pragma) fails here before
// it reaches CI. Skipped under -short: it type-checks the whole module.
func TestRepoGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	tool := filepath.Join(t.TempDir(), "drillvet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/drillvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building drillvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Fatalf("drillvet is not green over the repo: %v\n%s", err, out.String())
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
