package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one source string as a package and builds its graph.
func load(t *testing.T, src string) (*Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build([]*ast.File{f}, info, pkg), pkg
}

// node looks up a declared function or method by "Name" or "Recv.Name".
func node(t *testing.T, g *Graph, pkg *types.Package, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Fn != nil && funcLabel(n.Fn) == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func calls(n *Node, m *Node) bool {
	for _, c := range n.Callees() {
		if c == m {
			return true
		}
	}
	return false
}

func TestStaticAndMethodEdges(t *testing.T) {
	g, pkg := load(t, `package p
type S struct{}
func (s *S) m() { helper() }
func helper()  {}
func top()     { var s S; s.m() }
`)
	top, m, helper := node(t, g, pkg, "top"), node(t, g, pkg, "S.m"), node(t, g, pkg, "helper")
	if !calls(top, m) {
		t.Errorf("top should call S.m")
	}
	if !calls(m, helper) {
		t.Errorf("S.m should call helper")
	}
	reach := g.Reachable([]*Node{top})
	if !reach[helper] {
		t.Errorf("helper should be reachable from top")
	}
}

func TestInterfaceCHAEdges(t *testing.T) {
	g, pkg := load(t, `package p
type doer interface{ do() }
type a struct{}
func (a) do() {}
type b struct{}
func (*b) do() {}
type c struct{}
func (c) other() {}
func drive(d doer) { d.do() }
`)
	drive := node(t, g, pkg, "drive")
	ado, bdo := node(t, g, pkg, "a.do"), node(t, g, pkg, "b.do")
	if !calls(drive, ado) || !calls(drive, bdo) {
		t.Errorf("drive should CHA-edge to both a.do and b.do; callees: %v", names(drive))
	}
	if len(drive.Callees()) != 2 {
		t.Errorf("drive has %d callees, want 2: %v", len(drive.Callees()), names(drive))
	}
}

func TestLiteralAndDynamicEdges(t *testing.T) {
	g, pkg := load(t, `package p
var hook func()
func target() {}
func install() { hook = target }
func fire()    { hook() }
func creator() {
	f := func() { target() }
	_ = f
}
`)
	fire, target := node(t, g, pkg, "fire"), node(t, g, pkg, "target")
	if !calls(fire, target) {
		t.Errorf("dynamic call should edge to the address-taken target")
	}
	creator := node(t, g, pkg, "creator")
	reach := g.Reachable([]*Node{creator})
	if !reach[target] {
		t.Errorf("creator should reach target through its literal")
	}
	// The literal node exists and is charged to its creator.
	litSeen := false
	for _, n := range g.Nodes() {
		if n.Lit != nil {
			litSeen = true
			if n.Encl == nil || n.Encl.Name() != "creator" {
				t.Errorf("literal's Encl = %v, want creator", n.Encl)
			}
		}
	}
	if !litSeen {
		t.Errorf("no literal node recorded")
	}
}

func TestMethodValueIsAddressTaken(t *testing.T) {
	g, pkg := load(t, `package p
type w struct{}
func (w *w) tick() {}
type reg struct{ fn func() }
func (r *reg) set(fn func()) { r.fn = fn }
func (r *reg) run()          { r.fn() }
func wire(r *reg, ww *w)     { r.set(ww.tick) }
`)
	run, tick := node(t, g, pkg, "reg.run"), node(t, g, pkg, "w.tick")
	if !calls(run, tick) {
		t.Errorf("run's dynamic call should edge to the method value w.tick")
	}
}

func TestFuncFor(t *testing.T) {
	g, pkg := load(t, `package p
type h struct{}
func (h *h) onTimeout() {}
func free()             {}
func use(hh *h) {
	_ = free
	_ = hh.onTimeout
}
`)
	_ = pkg
	found := map[string]bool{}
	for _, n := range g.Nodes() {
		if n.Decl != nil && n.Fn.Name() == "use" {
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				if as, ok := x.(*ast.AssignStmt); ok {
					if fn := g.FuncFor(as.Rhs[0]); fn != nil {
						found[fn.Name()] = true
					}
				}
				return true
			})
		}
	}
	if !found["free"] || !found["onTimeout"] {
		t.Errorf("FuncFor resolved %v, want free and onTimeout", found)
	}
}

func names(n *Node) []string {
	var out []string
	for _, c := range n.Callees() {
		out = append(out, c.Name())
	}
	return out
}
