// Package callgraph builds a static, types-based call graph of one
// package — the reachability substrate for drillvet's shardconfine
// analyzer. The driver is unitchecker (one compilation unit at a time,
// no SSA, no go/packages), so the graph is deliberately per-package and
// CHA-style:
//
//   - Nodes are declared functions/methods with bodies plus every
//     function literal (literals are their own nodes, not part of the
//     enclosing function: creating a closure does not run it).
//   - Static calls (direct function calls, concrete method calls,
//     promoted methods) edge to the callee when its body is in this
//     package.
//   - Interface method calls edge, class-hierarchy-analysis style, to
//     the corresponding method of every package-local type that
//     implements the interface.
//   - Dynamic calls through function values edge to every address-taken
//     package-local function whose signature matches — plus each literal
//     is conservatively reachable from the function that lexically
//     creates it, so a closure handed to another package (a scheduler, a
//     ticker) is charged to its creator.
//
// Calls whose target lives in another package fall off the graph edge;
// that package is analyzed on its own, so per-package reachability
// composes with the per-package checks built on top of it.
package callgraph

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/types/typeutil"
)

// Node is one function in the graph: either a declared function/method
// (Fn set, Decl set) or a function literal (Lit set, Encl naming the
// declared function lexically containing it, nil at file scope).
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Encl *types.Func

	callees []*Node
	edges   map[*Node]bool
}

// Callees returns the node's outgoing edges in insertion order.
func (n *Node) Callees() []*Node { return n.callees }

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name returns a human-readable name for diagnostics: the function's
// qualified name, or "func literal in <enclosing>" for literals.
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	if n.Encl != nil {
		return "function literal in " + n.Encl.Name()
	}
	return "function literal"
}

// Graph is the package's call graph.
type Graph struct {
	info *types.Info
	pkg  *types.Package

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	nodes  []*Node

	// addrTaken lists declared functions whose value escapes (referenced
	// outside call position); dynamic calls resolve against it.
	addrTaken []*Node
	// localTypes lists the package's named non-interface types, the CHA
	// candidate set for interface dispatch.
	localTypes []types.Type
}

// NodeOf returns the node for a declared function, or nil if its body is
// not in this package.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node for a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Nodes returns every node in file order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Build constructs the call graph of the given files (one type-checked
// package). Files the caller wants excluded (tests) are simply not
// passed in.
func Build(files []*ast.File, info *types.Info, pkg *types.Package) *Graph {
	g := &Graph{
		info:   info,
		pkg:    pkg,
		byFunc: make(map[*types.Func]*Node),
		byLit:  make(map[*ast.FuncLit]*Node),
	}
	g.collectNodes(files)
	g.collectLocalTypes()
	g.collectAddrTaken(files)
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	return g
}

// collectNodes indexes every declared function with a body and every
// function literal.
func (g *Graph) collectNodes(files []*ast.File) {
	for _, f := range files {
		var encl *types.Func
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := g.info.Defs[n.Name].(*types.Func)
				if fn == nil || n.Body == nil {
					return false
				}
				node := &Node{Fn: fn, Decl: n, edges: make(map[*Node]bool)}
				g.byFunc[fn] = node
				g.nodes = append(g.nodes, node)
				encl = fn
			case *ast.FuncLit:
				node := &Node{Lit: n, Encl: encl, edges: make(map[*Node]bool)}
				g.byLit[n] = node
				g.nodes = append(g.nodes, node)
			}
			return true
		})
	}
}

// collectLocalTypes gathers the package's named non-interface types for
// CHA interface dispatch.
func (g *Graph) collectLocalTypes() {
	scope := g.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		g.localTypes = append(g.localTypes, t)
	}
}

// collectAddrTaken marks declared functions referenced outside call
// position (stored, passed, compared): the dynamic-dispatch candidates.
func (g *Graph) collectAddrTaken(files []*ast.File) {
	seen := make(map[*Node]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				// The callee expression itself is a call position, but
				// its arguments are value positions, handled as children.
				for _, arg := range call.Args {
					g.markFuncValues(arg, seen)
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident, *ast.SelectorExpr:
					_ = fun // direct call: not address-taken
				default:
					g.markFuncValues(call.Fun, seen)
				}
				return true
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					g.markFuncValues(rhs, seen)
				}
				return true
			case *ast.ValueSpec:
				for _, v := range n.Values {
					g.markFuncValues(v, seen)
				}
				return true
			case *ast.CompositeLit:
				for _, e := range n.Elts {
					if kv, ok := e.(*ast.KeyValueExpr); ok {
						g.markFuncValues(kv.Value, seen)
					} else {
						g.markFuncValues(e, seen)
					}
				}
				return true
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					g.markFuncValues(r, seen)
				}
				return true
			}
			return true
		})
	}
}

// markFuncValues records declared functions named by expr (an ident or a
// method-value selector) as address-taken. It looks only at the top
// expression; nested uses are visited by the enclosing Inspect.
func (g *Graph) markFuncValues(expr ast.Expr, seen map[*Node]bool) {
	fn := g.FuncFor(expr)
	if fn == nil {
		return
	}
	if node := g.byFunc[fn]; node != nil && !seen[node] {
		seen[node] = true
		g.addrTaken = append(g.addrTaken, node)
	}
}

// FuncFor resolves an expression naming a function value — a function
// identifier or a method value like h.onTimeout — to its *types.Func,
// or nil.
func (g *Graph) FuncFor(expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		fn, _ := g.info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := g.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		fn, _ := g.info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// addEdge records caller→callee once.
func (g *Graph) addEdge(from, to *Node) {
	if to == nil || from.edges[to] {
		return
	}
	from.edges[to] = true
	from.callees = append(from.callees, to)
}

// addEdges walks one node's own body (literals nested inside belong to
// their own nodes) and adds its outgoing edges.
func (g *Graph) addEdges(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	var walk func(ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A literal is conservatively reachable from its creator:
			// whoever builds the closure is on the hook for what it does,
			// wherever it ends up running.
			g.addEdge(n, g.byLit[x])
			return false
		case *ast.CallExpr:
			g.addCallEdges(n, x)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addCallEdges resolves one call expression to zero or more callees.
func (g *Graph) addCallEdges(n *Node, call *ast.CallExpr) {
	// Direct literal invocation: func(){...}().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		g.addEdge(n, g.byLit[lit])
		return
	}
	// Static callee: direct calls, concrete (incl. promoted) methods.
	if fn := typeutil.StaticCallee(g.info, call); fn != nil {
		g.addEdge(n, g.byFunc[fn])
		return
	}
	// Interface method call: CHA over package-local implementers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := g.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				g.addInterfaceEdges(n, s)
				return
			}
		}
	}
	// Conversion, builtin, or a dynamic call through a function value.
	if tv, ok := g.info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	sig, ok := g.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	g.addDynamicEdges(n, sig)
}

// addInterfaceEdges adds CHA edges for an interface method call: every
// package-local type implementing the interface contributes its method.
func (g *Graph) addInterfaceEdges(n *Node, s *types.Selection) {
	iface, ok := s.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	name := s.Obj().Name()
	for _, t := range g.localTypes {
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, g.pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			g.addEdge(n, g.byFunc[fn])
		}
	}
}

// addDynamicEdges adds edges for a call through a function value: every
// address-taken declared function whose value signature matches could be
// the target.
func (g *Graph) addDynamicEdges(n *Node, sig *types.Signature) {
	for _, cand := range g.addrTaken {
		csig, ok := cand.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		// Compare as values: a method value's signature drops the
		// receiver, so match parameter and result tuples.
		if types.Identical(sig.Params(), csig.Params()) && types.Identical(sig.Results(), csig.Results()) {
			g.addEdge(n, cand)
		}
	}
}

// Reachable computes the set of nodes reachable from roots (inclusive).
func (g *Graph) Reachable(roots []*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}
