// Package lint implements drillvet, a go/analysis suite that mechanically
// enforces the simulator's load-bearing invariants:
//
//   - nondeterminism: simulation packages may not consult wall clocks,
//     the global math/rand source, or unsorted map iteration — the
//     byte-identical seeded-run guarantee depends on it.
//   - hotpath: trace emissions must sit behind a nil-tracer guard, and
//     functions marked //drill:hotpath may not allocate via fmt, string
//     concatenation, or interface boxing — the 0-allocs/op proofs of the
//     trace layer depend on it.
//   - simtime: wall-clock values (time.Time, time.Duration) may not flow
//     into simulated units.Time timestamps anywhere in the tree.
//   - units: raw integer literals may not be used where internal/units
//     quantity types (Time, ByteSize, Rate) are expected.
//   - shardconfine: code reachable from the shard-worker entry points
//     (computed over a typed per-package call graph) may only touch
//     shard-local state — no package-level variables, no domain
//     pointers outside the ExchangeShards path, and no balancer whose
//     decision path reaches shared state without the fabric.ShardUnsafe
//     marker — the sharded engine's byte-identity proof depends on it.
//   - allocbudget: //drill:hotpath functions carry a static allocation
//     budget (zero unless a //drill:allocs <n> pragma declares more),
//     counting new/make/composite-literal, append, closure-capture,
//     boxing, and string-concat sites — the allocs/event trajectory
//     depends on it.
//   - pragma: validates //drill: directive comments themselves.
//
// Any finding can be suppressed, with an audit trail, by the escape
// pragma
//
//	//drill:allow <analyzer> <reason>
//
// placed on the offending line or the line above it. Pragmas that
// suppress nothing are themselves reported as stale, so the escape
// hatch cannot rot silently.
//
// The suite is built into cmd/drillvet and composes with the standard
// vet driver: go vet -vettool=$(which drillvet) ./...
package lint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full drillvet suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Pragma,
		Nondeterminism,
		HotPath,
		SimTime,
		Units,
		ShardConfine,
		AllocBudget,
	}
}

// analyzerNames is the set of names //drill:allow may reference.
var analyzerNames = map[string]bool{
	"nondeterminism": true,
	"hotpath":        true,
	"simtime":        true,
	"units":          true,
	"shardconfine":   true,
	"allocbudget":    true,
}

// simPackageSuffixes lists the simulation packages whose code must be
// deterministic given a seed. Matched as path suffixes of the package
// import path, so the module name does not matter.
var simPackageSuffixes = []string{
	"internal/sim",
	"internal/fabric",
	"internal/transport",
	"internal/queueing",
	"internal/lb",
	"internal/core",
	"internal/workload",
	"internal/quiver",
}

// isSimPackage reports whether the import path names one of the
// deterministic simulation packages.
func isSimPackage(path string) bool {
	for _, s := range simPackageSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file was compiled from a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.File(f.Pos()).Name()
	return strings.HasSuffix(name, "_test.go")
}

// unitsPkgSuffix identifies the quantity-types package.
const unitsPkgSuffix = "internal/units"

// isUnitsPkg reports whether path is the internal/units package.
func isUnitsPkg(path string) bool {
	return path == unitsPkgSuffix || strings.HasSuffix(path, "/"+unitsPkgSuffix)
}

// tracePkgSuffix identifies the trace package (exempt from its own
// nil-guard rule: Tracer methods legitimately call t.Emit on themselves).
const tracePkgSuffix = "internal/trace"

// isTracePkg reports whether path is the internal/trace package.
func isTracePkg(path string) bool {
	return path == tracePkgSuffix || strings.HasSuffix(path, "/"+tracePkgSuffix)
}

// simSchedPkgSuffix identifies the scheduler package, whose func()-taking
// schedule entry points are the closure-per-event allocation sites the
// hotpath rule bans.
const simSchedPkgSuffix = "internal/sim"

// isSimSchedPkg reports whether path is the internal/sim package.
func isSimSchedPkg(path string) bool {
	return path == simSchedPkgSuffix || strings.HasSuffix(path, "/"+simSchedPkgSuffix)
}

// obsPkgSuffix identifies the metrics package (exempt from the
// obs-emission guard rule for the same reason as trace: instrument
// methods update their own receivers).
const obsPkgSuffix = "internal/obs"

// isObsPkg reports whether path is the internal/obs package itself (not
// its subpackages, which are servers, not instruments).
func isObsPkg(path string) bool {
	return path == obsPkgSuffix || strings.HasSuffix(path, "/"+obsPkgSuffix)
}
