package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// SimTime keeps the two clocks apart: simulated timestamps (units.Time)
// must derive from the sim clock, never from the machine's. It reports
//
//  1. conversions of wall-clock values (time.Time, time.Duration, or any
//     type from package time) into units.Time, anywhere in the tree, and
//  2. wall-clock reads (time.Now, time.Since, ...) outside the simulation
//     packages — inside them the nondeterminism analyzer already forbids
//     the call outright. Legitimate wall timing of real work (experiment
//     wall-clock reporting, progress meters) is annotated
//     //drill:allow simtime <reason>.
var SimTime = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock time.Time/time.Duration values from flowing into simulated units.Time " +
		"timestamps; wall timing of real work needs //drill:allow simtime <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSimTime,
}

func runSimTime(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "simtime")
	defer sup.stale()
	if isUnitsPkg(pass.Pkg.Path()) {
		return nil, nil // units defines the type; nothing can flow yet
	}
	simPkg := isSimPackage(pass.Pkg.Path())

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	skip := false
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skip = isTestFile(pass, n)
		case *ast.CallExpr:
			if skip {
				return
			}
			// Conversion units.Time(x) where x carries wall-clock type.
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				if isUnitsTime(tv.Type) && len(n.Args) == 1 && isWallClockType(pass.TypesInfo.TypeOf(n.Args[0])) {
					sup.Reportf(n.Pos(),
						"wall-clock %s converted to %s: simulated timestamps must come from the sim clock, not the machine clock",
						pass.TypesInfo.TypeOf(n.Args[0]), tv.Type)
				}
				return
			}
			if simPkg {
				return // nondeterminism owns wall-clock calls in sim packages
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return
			}
			if fn.Type().(*types.Signature).Recv() == nil && wallClockFuncs[fn.Name()] {
				sup.Reportf(n.Pos(),
					"wall-clock read time.%s: simulated time comes from the sim clock; if this times real work, annotate //drill:allow simtime <reason>", fn.Name())
			}
		}
	})
	return nil, nil
}

// isUnitsTime reports whether t is the internal/units.Time type (the
// simulated-time scalar).
func isUnitsTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Time" && isUnitsPkg(named.Obj().Pkg().Path())
}

// isWallClockType reports whether t is declared in package time (Time,
// Duration, or derived), directly or beneath one pointer.
func isWallClockType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time"
}
