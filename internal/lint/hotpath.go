package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// HotPath backs the trace layer's zero-overhead contract with two
// mechanical checks:
//
//  1. Every call to a (*trace.Tracer) emission method (Emit, Packet,
//     Flow, Sample) must be dominated by an `if <recv> != nil` guard on
//     the same receiver expression — the nil check IS the disabled fast
//     path, so an unguarded emission is either a panic (nil tracer) or
//     evidence the guard was refactored away.
//
//  2. Functions marked //drill:hotpath (the per-packet send/enqueue/
//     dequeue/deliver path) may not allocate via fmt calls, string
//     concatenation, or implicit interface boxing, preserving the
//     0-allocs/op benchmarks.
//
//  3. Inside //drill:hotpath functions, calls to internal/obs instrument
//     emission methods (Counter.Inc/Add, Gauge.Set/Add,
//     Histogram.Observe) must sit behind a nil guard on the receiver or
//     on a prefix of its selector chain — `if n.met != nil {
//     n.met.delivered.Inc() }` is the idiom, mirroring the trace rule:
//     metrics off means no pointer chase, no atomic, nothing.
//
//  4. Inside //drill:hotpath functions, function literals may not be
//     passed to internal/sim scheduling calls (After, At, AtKey,
//     NewTimer, ...): a capturing closure heap-allocates per call, which
//     is exactly the per-event allocation the scheduler's Register/FnID
//     interning and reusable Timers exist to avoid. The legacy
//     reference paths keep their closures under //drill:allow pragmas.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "require nil guards on trace and obs emissions and forbid fmt/string-concat/interface-boxing/" +
		"closure-scheduling allocations in //drill:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPath,
}

// tracerEmitMethods are the (*trace.Tracer) methods that emit events.
var tracerEmitMethods = map[string]bool{
	"Emit":   true,
	"Packet": true,
	"Flow":   true,
	"Sample": true,
}

func runHotPath(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "hotpath")
	defer sup.stale()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Check 1: nil-guarded trace emissions, everywhere but the trace
	// package itself (Tracer methods call t.Emit on their own receiver).
	// Check 3: nil-guarded obs emissions inside //drill:hotpath functions,
	// everywhere but the obs package itself (instrument methods update
	// their own receivers).
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if isTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		call := n.(*ast.CallExpr)
		if !isTracePkg(pass.Pkg.Path()) {
			if recv := tracerEmitReceiver(pass, call); recv != nil {
				if !nilGuarded(recv, stack) {
					sup.Reportf(call.Pos(),
						"unguarded trace emission: wrap in `if %s != nil { ... }` — the nil check is the zero-overhead disabled path",
						types.ExprString(recv))
				}
				return true
			}
		}
		if !isObsPkg(pass.Pkg.Path()) && inHotPathFunc(stack) {
			if recv := obsEmitReceiver(pass, call); recv != nil {
				if !nilGuardedPrefix(recv, stack) {
					sup.Reportf(call.Pos(),
						"unguarded metrics emission on the hot path: wrap in `if %s != nil { ... }` (or guard a selector prefix) — the nil check is the zero-overhead disabled path",
						types.ExprString(recv))
				}
			}
		}
		return true
	})

	// Check 2: allocation bans inside //drill:hotpath functions.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !isHotPathFunc(fd) || fd.Body == nil {
			return
		}
		if isTestFile(pass, fileOf(pass, ins, fd)) {
			return
		}
		checkHotFunc(pass, sup, fd)
	})
	return nil, nil
}

// fileOf finds the *ast.File containing the declaration.
func fileOf(pass *analysis.Pass, ins *inspector.Inspector, n ast.Node) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return f
		}
	}
	_ = ins
	return pass.Files[0]
}

// isHotPathFunc reports whether the function's doc comment carries a
// //drill:hotpath marker.
func isHotPathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//drill:hotpath" || strings.HasPrefix(c.Text, "//drill:hotpath ") {
			return true
		}
	}
	return false
}

// tracerEmitReceiver returns the receiver expression of a
// (*trace.Tracer) emission call, or nil if the call is something else.
func tracerEmitReceiver(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || !tracerEmitMethods[fn.Name()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recv := sig.Recv().Type()
	ptr, ok := recv.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Tracer" || named.Obj().Pkg() == nil {
		return nil
	}
	if !isTracePkg(named.Obj().Pkg().Path()) {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// obsEmitMethods maps each internal/obs instrument type to its emission
// methods — the hot-path update entry points whose disabled state is a
// nil receiver somewhere up the selector chain.
var obsEmitMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true, "Add": true},
	"Histogram": {"Observe": true},
}

// obsEmitReceiver returns the receiver expression of an internal/obs
// instrument emission call, or nil if the call is something else.
func obsEmitReceiver(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !isObsPkg(named.Obj().Pkg().Path()) {
		return nil
	}
	methods := obsEmitMethods[named.Obj().Name()]
	if methods == nil || !methods[fn.Name()] {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// inHotPathFunc reports whether the innermost enclosing function
// declaration on the stack carries the //drill:hotpath marker.
func inHotPathFunc(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return isHotPathFunc(fd)
		}
	}
	return false
}

// nilGuarded reports whether some enclosing if-statement's then-branch
// (or else-if chain) contains the innermost node and its condition
// implies recv != nil under &&-conjunction.
func nilGuarded(recv ast.Expr, stack []ast.Node) bool {
	want := types.ExprString(recv)
	for i := len(stack) - 1; i > 0; i-- {
		ifst, ok := stack[i-1].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only a guard if we sit inside the then-branch; being inside
		// Cond, Init, or Else proves nothing.
		if stack[i] == ast.Node(ifst.Body) && condImpliesNonNil(ifst.Cond, want) {
			return true
		}
	}
	return false
}

// condImpliesNonNil reports whether cond being true guarantees that the
// expression printing as want is non-nil: a `want != nil` comparison,
// possibly buried under && conjunctions or parentheses. Disjunctions
// (||) guarantee nothing and are rejected.
func condImpliesNonNil(cond ast.Expr, want string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condImpliesNonNil(e.X, want)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condImpliesNonNil(e.X, want) || condImpliesNonNil(e.Y, want)
		case token.NEQ:
			if isNilIdent(e.Y) && types.ExprString(e.X) == want {
				return true
			}
			if isNilIdent(e.X) && types.ExprString(e.Y) == want {
				return true
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilGuardedPrefix is nilGuarded relaxed to selector prefixes: the obs
// idiom checks the metrics *handle* (`if n.met != nil`) and then touches
// instrument fields hanging off it (`n.met.delivered.Inc()`,
// `n.met.drops[h].Inc()`), which EnableMetrics populates together — so a
// guard on any dotted/indexed prefix of the receiver counts.
func nilGuardedPrefix(recv ast.Expr, stack []ast.Node) bool {
	want := types.ExprString(recv)
	for i := len(stack) - 1; i > 0; i-- {
		ifst, ok := stack[i-1].(*ast.IfStmt)
		if !ok {
			continue
		}
		if stack[i] == ast.Node(ifst.Body) && condImpliesPrefixNonNil(ifst.Cond, want) {
			return true
		}
	}
	return false
}

// condImpliesPrefixNonNil reports whether cond being true guarantees that
// some selector prefix of the expression printing as want is non-nil.
func condImpliesPrefixNonNil(cond ast.Expr, want string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condImpliesPrefixNonNil(e.X, want)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condImpliesPrefixNonNil(e.X, want) || condImpliesPrefixNonNil(e.Y, want)
		case token.NEQ:
			if isNilIdent(e.Y) && isSelectorPrefix(types.ExprString(e.X), want) {
				return true
			}
			if isNilIdent(e.X) && isSelectorPrefix(types.ExprString(e.Y), want) {
				return true
			}
		}
	}
	return false
}

// isSelectorPrefix reports whether guard names expr itself or a prefix of
// its selector/index chain ("n.met" guards "n.met.delivered" and
// "n.met.drops[h]", but not "n.metrics").
func isSelectorPrefix(guard, expr string) bool {
	if guard == expr {
		return true
	}
	return strings.HasPrefix(expr, guard+".") || strings.HasPrefix(expr, guard+"[")
}

// checkHotFunc walks a //drill:hotpath function body and reports the
// three banned allocation shapes.
func checkHotFunc(pass *analysis.Pass, sup *suppressor, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Result types of the enclosing function, for return-boxing checks.
	// Nested function literals push their own result tuples.
	var resultStack []*types.Tuple
	if sig, ok := info.TypeOf(fd.Name).(*types.Signature); ok {
		resultStack = append(resultStack, sig.Results())
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if sig, ok := info.TypeOf(n).(*types.Signature); ok {
				resultStack = append(resultStack, sig.Results())
				ast.Inspect(n.Body, walk)
				resultStack = resultStack[:len(resultStack)-1]
				return false
			}
		case *ast.CallExpr:
			// panic() arguments only evaluate on the crash path, which is
			// cold by definition: a panic message may format and box freely.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			checkHotCall(pass, sup, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				sup.Reportf(n.OpPos, "string concatenation allocates on the packet hot path; emit scalar fields instead")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				sup.Reportf(n.TokPos, "string concatenation allocates on the packet hot path; emit scalar fields instead")
			}
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break // tuple assignment: no conversion happens per-element
				}
				checkBoxing(pass, sup, info.TypeOf(n.Lhs[i]), rhs)
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				want := info.TypeOf(n.Type)
				for _, v := range n.Values {
					checkBoxing(pass, sup, want, v)
				}
			}
		case *ast.ReturnStmt:
			if len(resultStack) == 0 {
				break
			}
			results := resultStack[len(resultStack)-1]
			if results == nil || results.Len() != len(n.Results) {
				break
			}
			for i, r := range n.Results {
				checkBoxing(pass, sup, results.At(i).Type(), r)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkHotCall flags fmt calls and interface-boxing arguments in a hot
// function.
func checkHotCall(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			checkBoxing(pass, sup, tv.Type, call.Args[0])
		}
		return
	}
	if fn := typeutil.StaticCallee(info, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			sup.Reportf(call.Pos(), "fmt.%s allocates on the packet hot path; format off the hot path or emit scalar fields", fn.Name())
			return
		}
		if isSimSchedPkg(fn.Pkg().Path()) {
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					sup.Reportf(lit.Pos(),
						"closure passed to sim.%s allocates per scheduled event on the hot path; intern it with Register/AtID or reuse a Timer",
						fn.Name())
				}
			}
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin or type error
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				param = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param != nil {
			checkBoxing(pass, sup, param, arg)
		}
	}
}

// checkBoxing reports when a concrete-typed expression is implicitly
// converted to an interface type (which heap-allocates the value).
func checkBoxing(pass *analysis.Pass, sup *suppressor, want types.Type, expr ast.Expr) {
	if want == nil || !types.IsInterface(want) {
		return
	}
	got := pass.TypesInfo.TypeOf(expr)
	if got == nil || types.IsInterface(got) {
		return
	}
	if b, ok := got.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	sup.Reportf(expr.Pos(), "value of type %s boxed into interface %s allocates on the packet hot path",
		types.TypeString(got, types.RelativeTo(pass.Pkg)), types.TypeString(want, types.RelativeTo(pass.Pkg)))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
