// Package linttest is a self-contained analysistest replacement: it
// loads a fixture package from a testdata/src tree, type-checks it with
// go/types (resolving fixture-local imports from the same tree and
// standard-library imports from source), runs one analyzer plus its
// Requires closure, and compares the diagnostics against `// want`
// expectations embedded in the fixture.
//
// The real golang.org/x/tools/go/analysis/analysistest needs go/packages
// and a module proxy; this harness needs only the standard library plus
// the vendored analysis framework, so the lint suite's own tests run in
// the same hermetic environment as the simulator's.
//
// Expectation syntax, a subset of analysistest's: a comment containing
//
//	// want `regexp` `regexp` ...
//
// declares that each regexp matches the message of exactly one
// diagnostic reported on that comment's line. Diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgpath>, runs a over it, and checks the
// diagnostics against the fixture's // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	diags, fset, files, err := runAnalyzer(testdata, a, pkgpath)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, fset, files, diags)
}

// Diagnostics runs a over testdata/src/<pkgpath> and returns the raw
// diagnostics, for tests that assert on counts or exact messages.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()
	diags, _, _, err := runAnalyzer(testdata, a, pkgpath)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	return diags
}

func runAnalyzer(testdata string, a *analysis.Analyzer, pkgpath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	imp := &srcImporter{
		fset: fset,
		dir:  filepath.Join(testdata, "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*loaded),
	}
	lp, err := imp.load(pkgpath)
	if err != nil {
		return nil, nil, nil, err
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var run func(an *analysis.Analyzer, top bool) error
	run = func(an *analysis.Analyzer, top bool) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if top {
					diags = append(diags, d)
				}
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, lp.files, nil
}

// loaded is one type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// srcImporter resolves fixture imports from testdata/src and everything
// else (the standard library) from GOROOT source.
type srcImporter struct {
	fset *token.FileSet
	dir  string
	std  types.Importer
	pkgs map[string]*loaded
}

func (imp *srcImporter) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(imp.dir, path)); err == nil && fi.IsDir() {
		lp, err := imp.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return imp.std.Import(path)
}

func (imp *srcImporter) load(path string) (*loaded, error) {
	if lp, ok := imp.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(imp.dir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(imp.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files", path)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	imp.pkgs[path] = lp
	return lp, nil
}

// expectation is one `regexp` from a // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("// want((?: +`[^`]*`)+)")
var wantArgRE = regexp.MustCompile("`([^`]*)`")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed // want comment (regexps must be back-quoted): %s",
							fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Errorf("%s: bad // want regexp %q: %v", pos, arg[1], err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: arg[1]})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
