package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Nondeterminism forbids the classic sources of run-to-run drift inside
// the simulation packages: wall clocks, the process-global math/rand
// source, map iteration order, and ad-hoc concurrency (goroutines and
// channels, which make event order depend on the Go scheduler).
// Everything the simulator does must be a pure function of the
// configured seed, or the byte-identical parallel fan-out (and every
// Fig. 2/3 reproduction on top of it) silently breaks.
//
// The one sanctioned concurrency site is internal/sim's shard-runner
// file (shard.go): the window-barrier protocol there is exactly the
// machinery the conformance harness proves byte-identical, so its
// worker goroutines and command channels are exempt. The wall-clock,
// math/rand, and map-order bans still apply inside it.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall clocks, global math/rand, map-order iteration, and — outside internal/sim's shard runner — goroutines and channels in simulation packages " +
		"(internal/{sim,fabric,transport,queueing,lb,core,workload,quiver})",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNondeterminism,
}

// wallClockFuncs are the time package functions that read or depend on
// the machine's clock. Conversions and constructors that are pure
// (time.Duration arithmetic, time.Unix on a constant) are not listed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// seededRandCtors are the math/rand (and v2) package-level functions that
// build an explicitly seeded generator rather than using the global
// source; they are the sanctioned way to get randomness.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNondeterminism(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "nondeterminism")
	defer sup.stale()
	if !isSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.CallExpr)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.GoStmt)(nil),
		(*ast.SendStmt)(nil),
		(*ast.UnaryExpr)(nil),
	}
	skip := false        // current file is a test file
	shardRunner := false // current file is internal/sim's shard runner
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skip = isTestFile(pass, n)
			shardRunner = isShardRunnerFile(pass, n)
		case *ast.CallExpr:
			if skip {
				return
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			checkNondetCall(sup, n, fn)
		case *ast.RangeStmt:
			if skip {
				return
			}
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Map:
				sup.Reportf(n.Pos(),
					"map iteration order is nondeterministic in simulation code; iterate a sorted key slice, or add //drill:allow nondeterminism <reason> if the loop body is order-independent")
			case *types.Chan:
				if !shardRunner {
					sup.Reportf(n.Pos(), chanRecvMsg)
				}
			}
		case *ast.GoStmt:
			if skip || shardRunner {
				return
			}
			sup.Reportf(n.Pos(),
				"goroutine spawn in simulation code: event order would depend on the Go scheduler; only internal/sim's shard runner (shard.go) may spawn workers")
		case *ast.SendStmt:
			if skip || shardRunner {
				return
			}
			sup.Reportf(n.Pos(),
				"channel send in simulation code: cross-shard traffic must use the window-barrier exchange; only internal/sim's shard runner (shard.go) may use channels")
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || skip || shardRunner {
				return
			}
			sup.Reportf(n.Pos(), chanRecvMsg)
		}
	})
	return nil, nil
}

const chanRecvMsg = "channel receive in simulation code: delivery order would depend on the Go scheduler; only internal/sim's shard runner (shard.go) may use channels"

// isShardRunnerFile reports whether f is internal/sim's shard-runner
// file (shard.go) — the one place goroutines and channels are legal,
// because the window-barrier protocol it hosts is exactly what the
// conformance harness proves byte-identical against the sequential
// engine. The wall-clock, math/rand, and map-order bans still apply.
func isShardRunnerFile(pass *analysis.Pass, f *ast.File) bool {
	if !isSimSchedPkg(pass.Pkg.Path()) {
		return false
	}
	return filepath.Base(pass.Fset.File(f.Pos()).Name()) == "shard.go"
}

func checkNondetCall(sup *suppressor, call *ast.CallExpr, fn *types.Func) {
	// Package-level functions only: methods on *rand.Rand or time.Time
	// values are deterministic given their receiver.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			sup.Reportf(call.Pos(),
				"wall clock in simulation code: time.%s is nondeterministic across runs; use the sim clock (Sim.Now/After/NewTicker)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandCtors[fn.Name()] {
			sup.Reportf(call.Pos(),
				"global math/rand source in simulation code: rand.%s breaks seeded reproducibility; thread a seeded *rand.Rand (Sim.Rand/Stream) instead", fn.Name())
		}
	}
}
