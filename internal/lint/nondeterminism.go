package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Nondeterminism forbids the three classic sources of run-to-run drift
// inside the simulation packages: wall clocks, the process-global
// math/rand source, and map iteration order. Everything the simulator
// does must be a pure function of the configured seed, or the
// byte-identical parallel fan-out (and every Fig. 2/3 reproduction on
// top of it) silently breaks.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall clocks, global math/rand, and map-order iteration in simulation packages " +
		"(internal/{sim,fabric,transport,queueing,lb,core,workload,quiver})",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNondeterminism,
}

// wallClockFuncs are the time package functions that read or depend on
// the machine's clock. Conversions and constructors that are pure
// (time.Duration arithmetic, time.Unix on a constant) are not listed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// seededRandCtors are the math/rand (and v2) package-level functions that
// build an explicitly seeded generator rather than using the global
// source; they are the sanctioned way to get randomness.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNondeterminism(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass, "nondeterminism")
	defer sup.stale()
	if !isSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.CallExpr)(nil),
		(*ast.RangeStmt)(nil),
	}
	skip := false // current file is a test file
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skip = isTestFile(pass, n)
		case *ast.CallExpr:
			if skip {
				return
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			checkNondetCall(sup, n, fn)
		case *ast.RangeStmt:
			if skip {
				return
			}
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				sup.Reportf(n.Pos(),
					"map iteration order is nondeterministic in simulation code; iterate a sorted key slice, or add //drill:allow nondeterminism <reason> if the loop body is order-independent")
			}
		}
	})
	return nil, nil
}

func checkNondetCall(sup *suppressor, call *ast.CallExpr, fn *types.Func) {
	// Package-level functions only: methods on *rand.Rand or time.Time
	// values are deterministic given their receiver.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			sup.Reportf(call.Pos(),
				"wall clock in simulation code: time.%s is nondeterministic across runs; use the sim clock (Sim.Now/After/NewTicker)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandCtors[fn.Name()] {
			sup.Reportf(call.Pos(),
				"global math/rand source in simulation code: rand.%s breaks seeded reproducibility; thread a seeded *rand.Rand (Sim.Rand/Stream) instead", fn.Name())
		}
	}
}
