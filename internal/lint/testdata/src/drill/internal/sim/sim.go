// Package sim is a fixture stub of the scheduler's scheduling surface,
// just enough signature for the hotpath analyzer's closure-scheduling
// rule to resolve callees against.
package sim

// FnID names a callback interned with Register.
type FnID int32

// Sim mirrors the scheduler's scheduling entry points.
type Sim struct{}

func (s *Sim) After(d int64, fn func())             {}
func (s *Sim) At(t int64, fn func())                {}
func (s *Sim) AtSeq(t int64, seq uint64, fn func()) {}
func (s *Sim) AfterID(d int64, id FnID)             {}
func (s *Sim) AtID(t int64, id FnID)                {}
func (s *Sim) Register(fn func()) FnID              { return 0 }
func (s *Sim) NewTimer(fn func()) *Timer            { return &Timer{} }
func (s *Sim) Now() int64                           { return 0 }

// Global/barrier-class scheduling: callbacks run on the global sim
// between shard windows, so they are not shard-worker roots.
func (s *Sim) AtGlobal(t int64, fn func())      {}
func (s *Sim) AfterGlobal(d int64, fn func())   {}
func (s *Sim) AfterDaemon(d int64, fn func())   {}
func (s *Sim) AfterObserver(d int64, fn func()) {}

// Timer mirrors the cancellable timer.
type Timer struct{}

func (t *Timer) Reset(d int64) {}
func (t *Timer) Stop() bool    { return false }
