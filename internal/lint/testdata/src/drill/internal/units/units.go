// Package units is a fixture stand-in for the real internal/units: the
// analyzers match these types by package-path suffix and type name, so
// only the shape matters.
package units

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1000 * Byte
)

// Rate is a link rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Gbps         Rate = 1e9 * BitPerSecond
)
