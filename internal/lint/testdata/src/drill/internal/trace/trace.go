// Package trace is a fixture stand-in for the real internal/trace: the
// hotpath analyzer matches the Tracer type by package-path suffix and
// the emission method names, so only the shape matters.
package trace

// Kind classifies an event.
type Kind uint8

// Send is a sample kind.
const Send Kind = 0

// Event is one telemetry record.
type Event struct {
	Kind Kind
	Seq  int64
}

// Tracer forwards events to a sink; nil means disabled.
type Tracer struct {
	n int64
}

// Emit records one event.
func (t *Tracer) Emit(ev Event) { t.n++ }

// Packet emits a packet-lifecycle event.
func (t *Tracer) Packet(k Kind, seq int64) { t.Emit(Event{Kind: k, Seq: seq}) }

// Flow emits a flow-scoped event.
func (t *Tracer) Flow(k Kind, seq int64) { t.Emit(Event{Kind: k, Seq: seq}) }

// Sample emits a periodic sample.
func (t *Tracer) Sample(k Kind, seq int64) { t.Emit(Event{Kind: k, Seq: seq}) }

// Count is a non-emission method: calls to it need no nil guard from the
// analyzer's point of view.
func (t *Tracer) Count(k Kind) int64 { return t.n }
