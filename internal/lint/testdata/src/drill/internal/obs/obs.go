// Package obs is a fixture stand-in for the real internal/obs: the
// hotpath analyzer matches the instrument types by package-path suffix
// and the emission method names, so only the shape matters.
package obs

// Counter is a monotone metric.
type Counter struct{ v int64 }

// Inc adds one; an emission method.
func (c *Counter) Inc() { c.v++ }

// Add adds n; an emission method.
func (c *Counter) Add(n int64) { c.v += n }

// Value reads the counter; not an emission method.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time metric.
type Gauge struct{ v float64 }

// Set replaces the value; an emission method.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value; an emission method.
func (g *Gauge) Add(d float64) { g.v += d }

// Histogram is a bucketed distribution.
type Histogram struct{ n int64 }

// Observe records one sample; an emission method.
func (h *Histogram) Observe(v float64) { h.n++ }
