// Package allocs exercises the allocbudget analyzer: every
// //drill:hotpath function carries a static allocation budget (zero by
// default), declared — with a reason — by //drill:allocs <n>, and the
// budget must match the sites exactly in both directions.
package allocs

type packet struct {
	seq  int64
	next *packet
}

// unbudgeted has two sites and no budget: finding.
//
//drill:hotpath
func unbudgeted(xs []int) []int { // want `has 2 allocation site\(s\)`
	m := make([]int, 4)
	return append(xs, m...)
}

// budgeted declares its one site: silent.
//
//drill:hotpath
//drill:allocs 1 pool miss allocates one packet
func budgeted() *packet {
	return &packet{}
}

// overBudget declares one but has two: the budget is a floor-to-ceiling
// match, not a cap waiver.
//
//drill:hotpath
//drill:allocs 1 only the packet was acknowledged
func overBudget() *packet { // want `has 2 allocation site\(s\)`
	scratch := []int64{1}
	_ = scratch
	return &packet{}
}

// staleBudget overclaims: the acknowledged cost no longer exists.
//
//drill:hotpath
//drill:allocs 2 one site was since removed // want `stale //drill:allocs 2`
func staleBudget() *packet {
	return &packet{}
}

// closures: a capturing literal is one site, a static literal is free.
//
//drill:hotpath
func closures(x int) (func() int, func() int) { // want `has 1 allocation site\(s\)`
	capturing := func() int { return x }
	static := func() int { return 2 }
	return capturing, static
}

// boxing: an explicit interface conversion is a site; string
// concatenation is a site.
//
//drill:hotpath
func boxing(a, b string) (any, string) { // want `has 2 allocation site\(s\)`
	return any(42), a + b
}

// literals: slice and map literals allocate backing storage; a value
// struct literal does not.
//
//drill:hotpath
func literals() int { // want `has 2 allocation site\(s\)`
	s := []int{1}
	m := map[int]int{1: 1}
	p := packet{seq: 9}
	return s[0] + m[1] + int(p.seq)
}

// coldPanic formats only on the crash path: panic arguments are exempt.
//
//drill:hotpath
func coldPanic(ok bool) {
	if !ok {
		panic("state " + "corrupt")
	}
}

// suppressed documents a deliberate exception via the allow escape.
//
//drill:hotpath
func suppressed() []int { //drill:allow allocbudget scratch slice is amortized by the caller
	return make([]int, 1)
}

// unmarked is not a hot function: allocate freely.
func unmarked() []int {
	return append(make([]int, 1), 2)
}

// engineStats mirrors the engine-telemetry counters: plain field and
// element increments are free — zero allocation sites, so a marked
// function of nothing but counter bumps needs no budget line at all.
type engineStats struct {
	windows, events uint64
}

//drill:hotpath
func bumpCounters(st *engineStats, pairs []uint64, dst int) {
	st.windows++
	st.events += 2
	pairs[dst]++
}

// engineLabel is the registration shape: rendering a per-shard label
// body allocates, so it either stays off the hot path or declares its
// budget like any other acknowledged cost.
//
//drill:hotpath
//drill:allocs 1 one label string per shard, rendered once at registration
func engineLabel(shard string) string {
	return "shard=" + shard
}
