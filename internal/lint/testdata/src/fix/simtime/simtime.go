// Package simtime exercises the simtime analyzer: wall-clock values may
// not flow into simulated units.Time timestamps, and wall-clock reads
// outside simulation packages need a justified pragma.
package simtime

import (
	"time"

	"drill/internal/units"
)

func leak() units.Time {
	t0 := time.Now()     // want `wall-clock read time.Now`
	d := time.Since(t0)  // want `wall-clock read time.Since`
	return units.Time(d) // want `wall-clock time.Duration converted to`
}

func leakDirect(t time.Time) units.Time {
	return units.Time(t.UnixNano()) // int64 in between launders the type, but UnixNano is caught upstream by the read check when called on Now()
}

func wallTimed() time.Duration {
	start := time.Now() //drill:allow simtime wall timing of real work, never a sim timestamp
	work()
	return time.Since(start) //drill:allow simtime wall timing of real work, never a sim timestamp
}

func simClock(now units.Time) units.Time {
	return now + 5*units.Microsecond // sim-clock arithmetic is the sanctioned path
}

func work() {}
