// Package fabric is a fixture model of the real internal/fabric shard
// surface: a Network with per-port domains, worker callbacks registered
// on domain schedulers, and the balancer hook interfaces. It exercises
// every shardconfine check: package-state reads/writes, domain pointers
// escaping shard.go, global-scheduler grabs, the blessed `dom` handle,
// the global-class exemption, and the //drill:allow escape.
package fabric

import "drill/internal/sim"

// totalDrops is package-level mutable state: written in reset below, so
// any worker-reachable touch is a finding.
var totalDrops int

// maxHops is never reassigned or address-taken: a read-only constant in
// var clothing, safe to read from workers.
var maxHops = 12

// Network is the fixture fabric. Sim is the global barrier scheduler.
type Network struct {
	Sim       *sim.Sim
	dom       *domain
	domByNode map[int]*domain
	Ports     []*Port
}

// Port has the blessed own-domain handle and the boundary peer.
type Port struct {
	dom    *domain
	dstDom *domain
	Queue  []int
}

// Engine is one forwarding engine; per-engine state is shard-local.
type Engine struct{ scratch int }

// Balancer picks an output port for a packet.
type Balancer interface {
	Choose(e *Engine, n *Network, flow uint64) int
}

// SendHook sees packets as hosts send them.
type SendHook interface{ OnSend(n *Network, flow uint64) }

// TxObserver sees transmissions.
type TxObserver interface{ OnTx(n *Network, port int) }

// ArriveObserver sees arrivals.
type ArriveObserver interface{ OnArrive(n *Network, port int) }

// runWorker is the worker loop, rooted by the go statement in shard.go.
func (n *Network) runWorker() {
	n.drain()
	n.flush(nil)
}

// drain touches package-level mutable state from worker code: finding.
// The read-only maxHops stays silent.
func (n *Network) drain() {
	totalDrops++ // want `touches package-level variable totalDrops`
	_ = maxHops
}

// build registers the per-port callback on the domain scheduler: the
// literal is a worker root, so txDone and everything below is reachable.
func (n *Network) build(p *Port) {
	n.dom.sim.Register(func() { n.txDone(p) })
}

// txDone grabs the boundary peer's domain outside shard.go: finding.
// The own-domain handle p.dom is the blessed accessor and stays silent.
func (n *Network) txDone(p *Port) {
	d := p.dstDom // want `reaches a shard domain through dstDom`
	_ = d
	own := p.dom
	_ = own
	n.route(p)
	n.lookup(3)
	n.grabGlobal()
	n.allowed(4)
}

// route is clean shard-local work.
func (n *Network) route(p *Port) {
	p.Queue = append(p.Queue, 1)
}

// lookup pulls a domain out of the by-node table: a pointer about to
// cross shards.
func (n *Network) lookup(node int) {
	d := n.domByNode[node] // want `indexes into a shard-domain collection`
	_ = d
}

// grabGlobal schedules on the barrier scheduler from worker code.
func (n *Network) grabGlobal() {
	n.Sim.AfterID(1, 0) // want `selects the global scheduler Network.Sim`
}

// allowed crosses domains with an audit trail.
func (n *Network) allowed(node int) {
	//drill:allow shardconfine destination handoff rides the exchange barrier
	d := n.domByNode[node]
	_ = d
}

// reset runs at barrier time: a global-class callback is not a worker
// root, so its package-state write is legal.
func (n *Network) reset() {
	n.Sim.AtGlobal(0, func() { totalDrops = 0 })
}

// tidy carries a pragma that suppresses nothing.
func (n *Network) tidy(p *Port) {
	q := p.Queue //drill:allow shardconfine nothing to suppress here // want `stale //drill:allow shardconfine pragma`
	_ = q
}
