// shard.go is the blessed file: it declares the shard-domain types,
// hosts the worker launch, and may move domain pointers freely — the
// exchange path lives here.
package fabric

import "drill/internal/sim"

// domain is one shard's private world: scheduler, queues, outbox.
type domain struct {
	sim    *sim.Sim
	outbox []int
}

// ShardUnsafe marks schemes that may not run sharded; NewSharded-style
// constructors refuse them.
type ShardUnsafe interface{ ShardUnsafe() }

// launch starts the worker loop: the go statement roots everything the
// worker can reach.
func launch(n *Network) {
	go n.runWorker()
}

// exchange crosses domains — legal here, and only here.
func exchange(doms []*domain) {
	for _, d := range doms {
		peer := doms[0] // blessed: domain indexing inside shard.go
		peer.outbox = append(peer.outbox, d.outbox...)
	}
}

// flush is shard.go domain plumbing called from worker code: reachable,
// and still blessed by placement.
func (n *Network) flush(doms []*domain) {
	for _, d := range doms {
		d.outbox = d.outbox[:0]
	}
}
