// Package lb is the fixture balancer suite for shardconfine's marker
// check: schemes whose decision path reaches shared state must carry
// fabric.ShardUnsafe. One global-greedy scheme reads package state
// unmarked (the canonical accident this check exists to catch), one
// pins flows in receiver state unmarked, one is a properly-marked
// CONGA-alike, and one is pure and rightly unmarked.
package lb

import "fix/confine/internal/fabric"

// hotPort is package-level mutable state shared by every engine.
var hotPort int

// weights is read-only after initialization: reading it is safe.
var weights = []int{1, 2, 3}

// GlobalGreedy reads and writes global state in Choose without the
// marker — the scheme a future "shard-safe CONGA" must not become by
// accident.
type GlobalGreedy struct{}

// Choose consults the globally-hottest port.
func (GlobalGreedy) Choose(e *fabric.Engine, n *fabric.Network, flow uint64) int {
	hotPort = int(flow) % 4 // want `GlobalGreedy reaches package-level variable hotPort`
	return hotPort          // want `GlobalGreedy reaches package-level variable hotPort`
}

// Sticky pins flows in receiver-held state without the marker: engines
// sharing the scheme would race across shards.
type Sticky struct {
	pins map[uint64]int
}

// Choose pins the flow on first sight.
func (s *Sticky) Choose(e *fabric.Engine, n *fabric.Network, flow uint64) int {
	if p, ok := s.pins[flow]; ok {
		return p
	}
	port := int(flow) % 4
	s.pins[flow] = port // want `Sticky writes receiver-held state`
	return port
}

// OnArrive retires the pin: the hook path is checked too.
func (s *Sticky) OnArrive(n *fabric.Network, port int) {
	delete(s.pins, uint64(port)) // want `Sticky deletes from receiver-held state`
}

// Clocked reads the global scheduler on its decision path unmarked.
type Clocked struct{}

// Choose timestamps its decision off the barrier clock.
func (Clocked) Choose(e *fabric.Engine, n *fabric.Network, flow uint64) int {
	now := n.Sim.Now() // want `Clocked reaches the global scheduler Network.Sim`
	return int(now) % 4
}

// Feedback is the marked CONGA-alike: the same signals are legal
// because NewSharded refuses the scheme and it only runs sequentially.
type Feedback struct {
	dre []float64
}

// ShardUnsafe marks the scheme.
func (*Feedback) ShardUnsafe() {}

// Choose reads the clock and decays receiver state: silent, marked.
func (f *Feedback) Choose(e *fabric.Engine, n *fabric.Network, flow uint64) int {
	now := n.Sim.Now()
	f.dre[0] = float64(now) * 0.5
	hotPort = 0
	return 0
}

// OnTx updates the per-uplink estimator: silent, marked.
func (f *Feedback) OnTx(n *fabric.Network, port int) {
	f.dre[port] += 1.0
}

// Pure is the fix: per-engine state only, reads of read-only package
// tables, no marker needed.
type Pure struct{}

// Choose hashes over the read-only weight table and scratches only
// engine-local state.
func (Pure) Choose(e *fabric.Engine, n *fabric.Network, flow uint64) int {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	local := helperFold(int(flow), sum)
	return local
}

// helperFold proves reachability composes through plain helpers without
// inventing findings.
func helperFold(flow, sum int) int {
	return flow % (sum + 1)
}
