// Package unitsuse exercises the units analyzer: raw integer literals
// may not stand in for internal/units quantity types.
package unitsuse

import "drill/internal/units"

type config struct {
	Delay units.Time
	MTU   units.ByteSize
	Speed units.Rate
}

func delay(d units.Time) {}

func use() {
	delay(500)                    // want `raw integer literal used as .*units.Time`
	delay(0)                      // the zero value carries no unit
	delay(-1)                     // the conventional sentinel is allowed
	delay(500 * units.Nanosecond) // spelled unit: the sanctioned form

	_ = config{Delay: 100} // want `raw integer literal used as .*units.Time`
	_ = config{
		Delay: 2 * units.Microsecond,
		MTU:   1500, // want `raw integer literal used as .*units.ByteSize`
		Speed: 10 * units.Gbps,
	}
	_ = config{0, 1500 * units.Byte, 9} // want `raw integer literal used as .*units.Rate`

	var t units.Time = 9 // want `raw integer literal used as .*units.Time`
	t = 12               // want `raw integer literal used as .*units.Time`
	t = 0                // zero resets carry no unit
	_ = t

	_ = units.Time(5)   // want `raw integer literal used as .*units.Time`
	_ = []units.Time{7} // want `raw integer literal used as .*units.Time`
	_ = map[string]units.ByteSize{
		"mtu": 1500, // want `raw integer literal used as .*units.ByteSize`
	}

	var d units.Time
	_ = int64(d) // converting away from a unit type is fine
}
