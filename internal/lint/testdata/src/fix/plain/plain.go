// Package plain is not a simulation package, so the nondeterminism
// analyzer must stay silent here even for wall clocks and map ranges.
package plain

import "time"

func wall() time.Time {
	for k := range map[int]int{1: 1} {
		_ = k
	}
	return time.Now()
}
