// Package fabric exercises the nondeterminism analyzer: its import path
// ends in internal/fabric, so it counts as a simulation package.
package fabric

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want `wall clock in simulation code: time.Now`
	time.Sleep(1)   // want `wall clock in simulation code: time.Sleep`
	return t.UnixNano()
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand source in simulation code: rand.Shuffle`
	return rand.Intn(n)                // want `global math/rand source in simulation code: rand.Intn`
}

func seeded(n int) int {
	rng := rand.New(rand.NewSource(42)) // explicitly seeded constructors are the sanctioned path
	return rng.Intn(n)                  // methods on a seeded *rand.Rand are fine
}

func iterate(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	keys := make([]string, 0, len(m))
	//drill:allow nondeterminism key collection is order-independent; sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // slices iterate deterministically
		sum += m[k]
	}
	return sum
}

func inlineAllowed(m map[int]int) int {
	sum := 0
	for _, v := range m { //drill:allow nondeterminism summation commutes
		sum += v
	}
	return sum
}

//drill:allow nondeterminism nothing to suppress here // want `stale //drill:allow nondeterminism pragma`
var sorted = sort.Strings
