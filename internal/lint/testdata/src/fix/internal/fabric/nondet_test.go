package fabric

import (
	"testing"
	"time"
)

// Test files are exempt: wall clocks and map ranges here are fine.
func TestExempt(t *testing.T) {
	_ = time.Now()
	for k := range map[int]int{1: 1} {
		_ = k
	}
}
