package fabric

// Concurrency outside internal/sim's shard runner makes event order
// depend on the Go scheduler, so the analyzer bans it wholesale here.

func spawn(work func()) {
	go work() // want `goroutine spawn in simulation code`
}

func send(ch chan int, v int) {
	ch <- v // want `channel send in simulation code`
}

func recv(ch chan int) int {
	return <-ch // want `channel receive in simulation code`
}

func drain(ch chan int) int {
	sum := 0
	for v := range ch { // want `channel receive in simulation code`
		sum += v
	}
	return sum
}

func barrierWait(done chan struct{}) {
	<-done //drill:allow nondeterminism single-producer handoff; order-independent
}
