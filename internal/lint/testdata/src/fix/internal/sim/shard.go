// Package sim mirrors the scheduler package's import-path suffix so the
// shard-runner exemption applies: this file is named shard.go inside a
// package ending in internal/sim, the one place goroutines and channels
// are legal. The wall-clock and map-order bans must still fire here.
package sim

import "time"

type cmd struct{ until int64 }

type worker struct {
	cmds chan cmd
	done chan struct{}
}

func startWorker() *worker {
	w := &worker{cmds: make(chan cmd, 1), done: make(chan struct{})}
	go w.loop() // legal: the shard runner owns its worker goroutines
	return w
}

func (w *worker) loop() {
	for c := range w.cmds { // legal: command-channel receive
		_ = c.until
		w.done <- struct{}{} // legal: barrier acknowledgement
	}
}

func (w *worker) barrier() {
	<-w.done // legal: blocking on the window barrier
}

func (w *worker) merge(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func (w *worker) stamp() int64 {
	return time.Now().UnixNano() // want `wall clock in simulation code: time.Now`
}
