package sim

// The exemption is per-file, not per-package: concurrency in any other
// file of internal/sim is still a violation.

func fanout(fns []func()) {
	for _, fn := range fns {
		go fn() // want `goroutine spawn in simulation code`
	}
}

func relay(in, out chan int) {
	v := <-in // want `channel receive in simulation code`
	out <- v  // want `channel send in simulation code`
}
