// Package pragmafix exercises the drillpragma analyzer: malformed
// //drill: directives are rejected with a diagnostic. The expected
// messages are asserted in pragma_test.go rather than with // want
// comments, because a want comment appended to a line comment would
// become part of the directive text under test.
package pragmafix

//drill:frobnicate
var a int

//drill:allow
var b int

//drill:allow bogus because reasons
var c int

//drill:allow units
var d int

//drill:hotpath with trailing arguments
var e int

//drill:hotpath
var f int

//drill:hotpath
func hot() {}

//drill:allow units the units analyzer judges staleness, not drillpragma
var g int
