// Package pragmafix exercises the drillpragma analyzer: malformed
// //drill: directives are rejected with a diagnostic. The expected
// messages are asserted in pragma_test.go rather than with // want
// comments, because a want comment appended to a line comment would
// become part of the directive text under test.
package pragmafix

//drill:frobnicate
var a int

//drill:allow
var b int

//drill:allow bogus because reasons
var c int

//drill:allow units
var d int

//drill:hotpath with trailing arguments
var e int

//drill:hotpath
var f int

//drill:hotpath
func hot() {}

//drill:allow units the units analyzer judges staleness, not drillpragma
var g int

//drill:allocs two scratch buffers
var h int

//drill:allocs 0 zero is the default budget
func zero() {}

//drill:allocs 2 detached from any function declaration
var i int

//drill:allocs 3 qualifies a function that is not hot
func notHot() {}

//drill:hotpath
//drill:allocs 1 the first budget wins
//drill:allocs 2 the second is a duplicate
func dup() {}

// A well-formed budget on a hot function is silent here; whether it is
// honest is the allocbudget analyzer's business.
//
//drill:hotpath
//drill:allocs 1 one acknowledged site
func honest() *int { return new(int) }
