// Package hot exercises the hotpath analyzer: nil-tracer guards on
// emissions, and allocation bans inside //drill:hotpath functions.
package hot

import (
	"fmt"

	"drill/internal/trace"
)

type port struct {
	tr *trace.Tracer
	q  []int64
}

func (p *port) guarded(seq int64) {
	if p.tr != nil {
		p.tr.Packet(trace.Send, seq) // guarded: this is the idiom
	}
	if seq > 0 && p.tr != nil {
		p.tr.Emit(trace.Event{Seq: seq}) // guard within && conjunction
	}
	tr := p.tr
	if tr != nil {
		tr.Flow(trace.Send, seq) // local alias, same guard
	}
}

func (p *port) unguarded(seq int64) {
	p.tr.Packet(trace.Send, seq) // want `unguarded trace emission`
	if seq > 0 {
		p.tr.Emit(trace.Event{Seq: seq}) // want `unguarded trace emission`
	}
	if p.tr != nil || seq > 0 {
		p.tr.Sample(trace.Send, seq) // want `unguarded trace emission`
	}
	if p.tr != nil {
		_ = seq
	} else {
		p.tr.Emit(trace.Event{}) // want `unguarded trace emission`
	}
}

func (p *port) nonEmission() int64 {
	return p.tr.Count(trace.Send) // not an emission method: no guard required
}

// enqueue is on the per-packet path; it may not allocate.
//
//drill:hotpath
func (p *port) enqueue(seq int64, v int) string {
	s := fmt.Sprintf("pkt %d", seq) // want `fmt.Sprintf allocates on the packet hot path`
	s = s + "!"                     // want `string concatenation allocates`
	s += "?"                        // want `string concatenation allocates`
	var b any = v                   // want `value of type int boxed into interface`
	box(v)                          // want `value of type int boxed into interface`
	_ = b
	p.q = append(p.q, seq) // append to a concrete slice is allowed
	return s
}

//drill:hotpath
func ret(v int) any {
	return v // want `value of type int boxed into interface`
}

//drill:hotpath
func guardedInvariant(p *port, seq int64) {
	if seq < 0 {
		// The crash path is cold: panic messages may format and box.
		panic(fmt.Sprintf("negative seq %d", seq))
	}
}

//drill:hotpath
func clean(p *port, seq int64) int64 {
	if p.tr != nil {
		p.tr.Packet(trace.Send, seq)
	}
	var x any = nil // nil carries no allocation
	_ = x
	return seq + int64(len(p.q))
}

//drill:hotpath
func allowed(v int) {
	_ = fmt.Sprint(v) //drill:allow hotpath cold branch, taken once per run
}

// coldPath is unmarked: allocation is fine off the hot path.
func coldPath(v int) string {
	return fmt.Sprintf("%d", v)
}

func box(x any) {}
