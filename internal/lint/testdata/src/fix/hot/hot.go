// Package hot exercises the hotpath analyzer: nil-tracer guards on
// emissions, and allocation bans inside //drill:hotpath functions.
package hot

import (
	"fmt"

	"drill/internal/obs"
	"drill/internal/sim"
	"drill/internal/trace"
)

type port struct {
	tr *trace.Tracer
	q  []int64
}

func (p *port) guarded(seq int64) {
	if p.tr != nil {
		p.tr.Packet(trace.Send, seq) // guarded: this is the idiom
	}
	if seq > 0 && p.tr != nil {
		p.tr.Emit(trace.Event{Seq: seq}) // guard within && conjunction
	}
	tr := p.tr
	if tr != nil {
		tr.Flow(trace.Send, seq) // local alias, same guard
	}
}

func (p *port) unguarded(seq int64) {
	p.tr.Packet(trace.Send, seq) // want `unguarded trace emission`
	if seq > 0 {
		p.tr.Emit(trace.Event{Seq: seq}) // want `unguarded trace emission`
	}
	if p.tr != nil || seq > 0 {
		p.tr.Sample(trace.Send, seq) // want `unguarded trace emission`
	}
	if p.tr != nil {
		_ = seq
	} else {
		p.tr.Emit(trace.Event{}) // want `unguarded trace emission`
	}
}

func (p *port) nonEmission() int64 {
	return p.tr.Count(trace.Send) // not an emission method: no guard required
}

// enqueue is on the per-packet path; it may not allocate.
//
//drill:hotpath
func (p *port) enqueue(seq int64, v int) string {
	s := fmt.Sprintf("pkt %d", seq) // want `fmt.Sprintf allocates on the packet hot path`
	s = s + "!"                     // want `string concatenation allocates`
	s += "?"                        // want `string concatenation allocates`
	var b any = v                   // want `value of type int boxed into interface`
	box(v)                          // want `value of type int boxed into interface`
	_ = b
	p.q = append(p.q, seq) // append to a concrete slice is allowed
	return s
}

//drill:hotpath
func ret(v int) any {
	return v // want `value of type int boxed into interface`
}

//drill:hotpath
func guardedInvariant(p *port, seq int64) {
	if seq < 0 {
		// The crash path is cold: panic messages may format and box.
		panic(fmt.Sprintf("negative seq %d", seq))
	}
}

//drill:hotpath
func clean(p *port, seq int64) int64 {
	if p.tr != nil {
		p.tr.Packet(trace.Send, seq)
	}
	var x any = nil // nil carries no allocation
	_ = x
	return seq + int64(len(p.q))
}

//drill:hotpath
func allowed(v int) {
	_ = fmt.Sprint(v) //drill:allow hotpath cold branch, taken once per run
}

// coldPath is unmarked: allocation is fine off the hot path.
func coldPath(v int) string {
	return fmt.Sprintf("%d", v)
}

func box(x any) {}

// met mirrors the real per-network Metrics handle: EnableMetrics
// populates every instrument field together, so guarding the handle
// guards them all.
type met struct {
	delivered *obs.Counter
	qdepth    *obs.Gauge
	fct       *obs.Histogram
	drops     []*obs.Counter
}

type sw struct {
	met *met
}

// deliver is on the per-packet path; obs emissions must be nil-guarded.
//
//drill:hotpath
func (s *sw) deliver(hop int, v float64) {
	if s.met != nil {
		s.met.delivered.Inc()   // guarded via the handle prefix
		s.met.drops[hop].Add(1) // indexed instrument, same prefix guard
		s.met.qdepth.Set(v)
		s.met.fct.Observe(v)
	}
	if m := s.met; m != nil {
		m.delivered.Inc() // local alias, same guard
	}
	s.met.delivered.Inc() // want `unguarded metrics emission`
	if v > 0 {
		s.met.qdepth.Add(v) // want `unguarded metrics emission`
	}
	if s.met != nil || v > 0 {
		s.met.fct.Observe(v) // want `unguarded metrics emission`
	}
}

// readback is hot but only reads: non-emission methods need no guard.
//
//drill:hotpath
func (s *sw) readback() int64 {
	return s.met.delivered.Value()
}

// coldEmit is unmarked: the obs guard rule binds only //drill:hotpath
// functions (registration and teardown code may emit unguarded).
func (s *sw) coldEmit() {
	s.met.delivered.Inc()
}

// allowedEmit shows the audited escape hatch.
//
//drill:hotpath
func (s *sw) allowedEmit() {
	s.met.delivered.Inc() //drill:allow hotpath warm-up emission, runs once before the packet loop
}

// Engine-telemetry shape: plain integer counter fields bumped on the
// dispatch path — scheduler tier counters, per-shard stat blocks, the
// exchange matrix — are not emissions and need no guard; only instrument
// and tracer method calls do. The instrument sitting next to them keeps
// its guard obligation.

type schedStats struct {
	near, wheel, far uint64
}

type engine struct {
	sched schedStats
	exch  [][]uint64
	met   *met
}

//drill:hotpath
func (e *engine) route(tier, src, dst int) {
	switch tier {
	case 0:
		e.sched.near++
	case 1:
		e.sched.wheel++
	default:
		e.sched.far++
	}
	e.exch[src][dst]++ // indexed matrix bump: plain integer, no guard, no alloc
	if e.met != nil {
		e.met.delivered.Inc() // the adjacent instrument still needs its guard
	}
	e.met.qdepth.Set(1) // want `unguarded metrics emission`
}

// Closure-scheduling rule: function literals handed to internal/sim
// scheduling calls allocate per event.

type ring struct {
	s  *sim.Sim
	id sim.FnID
	tm *sim.Timer
	n  int64
}

// arm is on the per-packet path; it may not allocate a closure per event.
//
//drill:hotpath
func (r *ring) arm(d int64) {
	r.s.After(d, func() { r.n++ })    // want `closure passed to sim.After allocates per scheduled event`
	r.s.AtSeq(d, 1, func() { r.n++ }) // want `closure passed to sim.AtSeq allocates per scheduled event`
	r.s.AfterID(d, r.id)              // interned id: the sanctioned zero-alloc shape
	r.tm.Reset(d)                     // reusable timer: equally fine
	fire := r.fire
	r.s.After(d, fire)             // method value bound once outside the call: no literal
	r.s.After(d, func() { r.n++ }) //drill:allow hotpath fixture: proves the pragma escape works
}

func (r *ring) fire() { r.n++ }

// setup is unmarked: closures at wiring time are how Register is meant
// to be used.
func setup(s *sim.Sim, r *ring) {
	r.id = s.Register(func() { r.n++ })
	r.tm = s.NewTimer(func() { r.n++ })
}
