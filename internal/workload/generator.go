package workload

import (
	"math/rand"

	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

// Load expresses offered load as a fraction of the fabric's aggregate
// upward core capacity — the "avg. core link offered load" of the paper's
// x-axes.
type Load float64

// CoreUpCapacity sums the rates of all leaf uplinks (leaf → fabric
// channels) that are currently in service.
func CoreUpCapacity(t *topo.Topology) units.Rate {
	var total units.Rate
	for _, leaf := range t.Leaves {
		for _, cid := range t.Out(leaf) {
			c := t.Chan(cid)
			if t.Nodes[c.To].Kind != topo.Host {
				total += c.Rate
			}
		}
	}
	return total
}

// Generator drives flow arrivals with empirical sizes: every flow picks a
// source host and a uniform destination host under a different leaf
// (inter-leaf traffic is what exercises the core).
//
// Arrivals come in bursts of geometrically distributed size (mean
// BurstMean) whose flows share a source leaf, separated by exponential
// gaps — the ON/OFF burstiness datacenter measurements report ([62], [25])
// and the microburst driver the paper's evaluation depends on. BurstMean 1
// degenerates to a plain Poisson process. The long-run offered load always
// equals Load × core capacity.
type Generator struct {
	Reg   *transport.Registry
	Sizes *SizeDist
	Load  Load
	Class string

	// BurstMean is the mean flows per burst (default 8).
	BurstMean int

	// Until stops new arrivals at this time; in-flight flows drain after.
	Until units.Time

	rng       *rand.Rand
	meanGapNs float64 // mean gap between bursts
	hosts     []topo.NodeID
	byLeaf    map[topo.NodeID][]topo.NodeID
	leaves    []topo.NodeID

	// Started counts flows launched.
	Started int64
}

// NewGenerator calibrates arrivals so aggregate demand equals
// load × CoreUpCapacity. Arrivals begin immediately upon Start.
func NewGenerator(reg *transport.Registry, sizes *SizeDist, load Load, until units.Time) *Generator {
	t := reg.Net.Topo
	coreBits := float64(CoreUpCapacity(t))
	demandBits := float64(load) * coreBits
	flowsPerSec := demandBits / (sizes.Mean() * 8)
	g := &Generator{
		Reg: reg, Sizes: sizes, Load: load, Until: until,
		BurstMean: 8,
		rng:       reg.Sim.Stream(0x10ad),
		meanGapNs: float64(units.Second) / flowsPerSec, // per flow; scaled by burst in next()
		hosts:     t.Hosts,
		byLeaf:    map[topo.NodeID][]topo.NodeID{},
		leaves:    t.Leaves,
	}
	for _, h := range t.Hosts {
		l := t.LeafOf(h)
		g.byLeaf[l] = append(g.byLeaf[l], h)
	}
	return g
}

// Start schedules the first arrival.
func (g *Generator) Start() { g.next() }

func (g *Generator) next() {
	burst := g.BurstMean
	if burst < 1 {
		burst = 1
	}
	gap := units.Time(g.rng.ExpFloat64() * g.meanGapNs * float64(burst))
	at := g.Reg.Sim.Now() + gap
	if at > g.Until {
		return
	}
	// Flow arrivals steer hosts in any shard, so they are barrier-class
	// (global) events under the sharded engine.
	g.Reg.Sim.AtGlobal(at, func() {
		g.launch()
		g.next()
	})
}

// launch fires one burst: a geometric number of flows (mean BurstMean)
// whose sources share one leaf.
func (g *Generator) launch() {
	n := 1
	for g.BurstMean > 1 && g.rng.Float64() > 1/float64(g.BurstMean) {
		n++
		if n >= 16*g.BurstMean {
			break
		}
	}
	leaf := g.leaves[g.rng.Intn(len(g.leaves))]
	srcs := g.byLeaf[leaf]
	if len(srcs) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		src := srcs[g.rng.Intn(len(srcs))]
		dst := g.pickRemote(src)
		size := g.Sizes.Sample(g.rng)
		g.Started++
		g.Reg.StartFlow(src, dst, size, g.Class)
	}
}

// pickRemote returns a uniform host under a different leaf than src's.
func (g *Generator) pickRemote(src topo.NodeID) topo.NodeID {
	srcLeaf := g.Reg.Net.Topo.LeafOf(src)
	for {
		leaf := g.leaves[g.rng.Intn(len(g.leaves))]
		if leaf == srcLeaf {
			continue
		}
		hs := g.byLeaf[leaf]
		if len(hs) == 0 {
			continue
		}
		return hs[g.rng.Intn(len(hs))]
	}
}

// Incast runs the Fig. 14 application, the synchronized-read pattern of
// Vasudevan et al. [69]: every Period, a random 10% of hosts act as
// clients, each requesting a FlowSize-byte block from every member of a
// random 10% server set simultaneously — the classic many-to-one fan-in
// that overruns buffers. Response flows are tagged "incast".
type Incast struct {
	Reg      *transport.Registry
	Period   units.Time
	Fraction float64
	FlowSize int64
	Until    units.Time

	rng *rand.Rand

	// Events counts incast rounds fired.
	Events int64
}

// NewIncast returns the paper's configuration: 10% senders, 10KB flows.
func NewIncast(reg *transport.Registry, period, until units.Time) *Incast {
	return &Incast{
		Reg: reg, Period: period, Fraction: 0.10, FlowSize: 10_000,
		Until: until, rng: reg.Sim.Stream(0x1ca57),
	}
}

// Start schedules the first round one period in.
func (i *Incast) Start() {
	i.schedule(i.Reg.Sim.Now() + i.Period)
}

func (i *Incast) schedule(at units.Time) {
	if at > i.Until {
		return
	}
	i.Reg.Sim.AtGlobal(at, func() {
		i.fire()
		i.schedule(at + i.Period)
	})
}

func (i *Incast) fire() {
	i.Events++
	topol := i.Reg.Net.Topo
	hosts := topol.Hosts
	n := len(hosts)
	k := int(float64(n) * i.Fraction)
	if k < 1 {
		k = 1
	}
	perm := i.rng.Perm(n)
	clients := perm[:k]
	servers := perm[k : 2*k]
	if len(servers) == 0 {
		return
	}
	for _, ci := range clients {
		client := hosts[ci]
		for _, si := range servers {
			server := hosts[si]
			if server == client || topol.LeafOf(server) == topol.LeafOf(client) {
				continue // keep it inter-leaf like the rest of the evaluation
			}
			i.Reg.StartFlow(server, client, i.FlowSize, "incast")
		}
	}
}
