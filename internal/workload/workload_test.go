package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"drill/internal/fabric"
	"drill/internal/lb"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

func TestSizeDistSampleWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []*SizeDist{FacebookWeb, FacebookCache, WebSearch, DataMining} {
		lo := int64(d.Points[0].Bytes)
		hi := int64(d.Points[len(d.Points)-1].Bytes)
		for i := 0; i < 10000; i++ {
			s := d.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", d.Name, s, lo, hi)
			}
		}
	}
}

func TestSizeDistEmpiricalMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []*SizeDist{FacebookWeb, FacebookCache} {
		var sum float64
		const n = 400000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		emp := sum / n
		if rel := math.Abs(emp-d.Mean()) / d.Mean(); rel > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f (%.1f%% off)",
				d.Name, emp, d.Mean(), rel*100)
		}
	}
}

func TestSizeDistMedianAnchored(t *testing.T) {
	// P(S <= anchor at F=0.5) ≈ 0.5 for FacebookWeb.
	rng := rand.New(rand.NewSource(7))
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if FacebookWeb.Sample(rng) <= 2000 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("median anchor: P(<=2KB) = %.3f, want ~0.5", frac)
	}
}

func TestSizeDistValidation(t *testing.T) {
	for _, bad := range [][]CDFPoint{
		{{0, 100}},                         // too few
		{{0.1, 100}, {1, 200}},             // doesn't start at 0
		{{0, 100}, {0.9, 200}},             // doesn't end at 1
		{{0, 100}, {0.5, 50}, {1, 200}},    // non-monotone bytes
		{{0, 100}, {0.6, 150}, {0.4, 120}}, // unsorted F
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSizeDist(%v) did not panic", bad)
				}
			}()
			NewSizeDist("bad", bad)
		}()
	}
}

func TestCoreUpCapacity(t *testing.T) {
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 4, Leaves: 16, HostsPerLeaf: 20,
		CoreRate: 40 * units.Gbps})
	want := units.Rate(16*4) * 40 * units.Gbps
	if got := CoreUpCapacity(tp); got != want {
		t.Fatalf("core capacity = %v, want %v", got, want)
	}
	// Failing one uplink removes 40G.
	var spine topo.NodeID
	for _, nd := range tp.Nodes {
		if nd.Kind == topo.Spine {
			spine = nd.ID
			break
		}
	}
	tp.FailLink(tp.LinkBetween(tp.Leaves[0], spine)[0])
	if got := CoreUpCapacity(tp); got != want-40*units.Gbps {
		t.Fatalf("after failure = %v", got)
	}
}

func testbed(t *testing.T) (*sim.Sim, *transport.Registry, *topo.Topology) {
	t.Helper()
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 4, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, CoreRate: 10 * units.Gbps})
	s := sim.New(21)
	n := fabric.New(s, tp, fabric.Config{Balancer: lb.NewDRILL()})
	return s, transport.NewRegistry(s, n, transport.Config{}), tp
}

func TestGeneratorHitsTargetLoad(t *testing.T) {
	s, reg, tp := testbed(t)
	horizon := 10 * units.Millisecond
	g := NewGenerator(reg, FacebookWeb, 0.4, horizon)
	g.Start()
	s.RunUntil(horizon)
	// Offered demand = flows × mean size; compare against 40% of core.
	wantBits := 0.4 * float64(CoreUpCapacity(tp)) * horizon.Seconds()
	gotBits := float64(g.Started) * FacebookWeb.Mean() * 8
	ratio := gotBits / wantBits
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("offered/target = %.2f (started %d flows)", ratio, g.Started)
	}
	if g.Started < 50 {
		t.Fatalf("too few flows for a meaningful test: %d", g.Started)
	}
}

func TestGeneratorInterLeafOnly(t *testing.T) {
	s, reg, tp := testbed(t)
	seen := 0
	reg.OnComplete = func(f *transport.Sender) { seen++ }
	g := NewGenerator(reg, FacebookWeb, 0.2, 5*units.Millisecond)
	// Inspect pickRemote directly.
	for i := 0; i < 1000; i++ {
		src := tp.Hosts[g.rng.Intn(len(tp.Hosts))]
		dst := g.pickRemote(src)
		if tp.LeafOf(src) == tp.LeafOf(dst) {
			t.Fatal("generator picked an intra-leaf destination")
		}
	}
	_ = s
}

func TestIncastFires(t *testing.T) {
	s, reg, _ := testbed(t)
	inc := NewIncast(reg, 1*units.Millisecond, 5*units.Millisecond)
	inc.Start()
	s.Run()
	if inc.Events != 5 {
		t.Fatalf("incast events = %d, want 5", inc.Events)
	}
	d := reg.Stats.FCTByClass["incast"]
	if d == nil || d.Count() == 0 {
		t.Fatal("no incast flows completed")
	}
}

func TestStridePairs(t *testing.T) {
	_, _, tp := testbed(t)
	ps := Stride(tp, 8)
	if len(ps) != len(tp.Hosts) {
		t.Fatalf("pairs = %d", len(ps))
	}
	for i, p := range ps {
		want := tp.Hosts[(i+8)%len(tp.Hosts)]
		if p[1] != want {
			t.Fatalf("stride pair %d = %v, want %v", i, p[1], want)
		}
	}
}

func TestBijectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 4, HostsPerLeaf: 4})
		ps := Bijection(tp, rand.New(rand.NewSource(seed)))
		dsts := map[topo.NodeID]bool{}
		for _, p := range ps {
			if tp.LeafOf(p[0]) == tp.LeafOf(p[1]) {
				return false
			}
			if dsts[p[1]] {
				return false // not one-to-one
			}
			dsts[p[1]] = true
		}
		return len(ps) == len(tp.Hosts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePhases(t *testing.T) {
	_, _, tp := testbed(t)
	// Across all n-1 phases, each server must hit every other server once.
	n := len(tp.Hosts)
	for i, src := range tp.Hosts {
		seen := map[topo.NodeID]bool{}
		for r := 0; r < n-1; r++ {
			ps := ShufflePhase(tp, nil, r)
			if ps[i][0] != src {
				t.Fatal("pair order changed")
			}
			if ps[i][1] == src {
				t.Fatal("self pair in shuffle")
			}
			seen[ps[i][1]] = true
		}
		if len(seen) != n-1 {
			t.Fatalf("server %d reached %d peers, want %d", i, len(seen), n-1)
		}
	}
}

func TestSyntheticElephantsAndMice(t *testing.T) {
	s, reg, tp := testbed(t)
	syn := NewSynthetic(reg, 200*units.Microsecond, 4*units.Millisecond)
	syn.Run(Stride(tp, 4))
	s.RunUntil(4 * units.Millisecond)
	if gp := syn.ElephantGoodput(4 * units.Millisecond); gp <= 0 {
		t.Fatalf("elephant goodput = %v", gp)
	}
	if reg.Stats.FCTByClass["mice"] == nil {
		t.Fatal("no mice completed")
	}
}
