package workload

import (
	"math/rand"

	"drill/internal/topo"
	"drill/internal/transport"
	"drill/internal/units"
)

// Synthetic implements the Table 1 patterns: long-running "elephant" flows
// arranged by a pattern, plus periodic 50KB "mice" probes whose FCT is the
// latency metric.
type Synthetic struct {
	Reg *transport.Registry

	// ElephantSize < 0 runs elephants open-ended (throughput measured via
	// Sender.AckedBytes); the paper uses 1GB which never completes inside
	// a short window, so open-ended is equivalent.
	ElephantSize int64
	MiceSize     int64
	MicePeriod   units.Time
	Until        units.Time

	rng *rand.Rand

	// Elephants lists the long flows started, for throughput accounting.
	Elephants []*transport.Sender
}

// NewSynthetic returns the Table 1 configuration (open-ended elephants,
// 50KB mice).
func NewSynthetic(reg *transport.Registry, micePeriod, until units.Time) *Synthetic {
	return &Synthetic{
		Reg: reg, ElephantSize: -1, MiceSize: 50_000,
		MicePeriod: micePeriod, Until: until,
		rng: reg.Sim.Stream(0x5e7),
	}
}

// pairs returns the (src, dst) host pairs of a pattern.
type pairs [][2]topo.NodeID

// Stride pairs server[i] with server[(i+x) mod n] (Table 1's Stride(8)).
func Stride(t *topo.Topology, x int) pairs {
	n := len(t.Hosts)
	ps := make(pairs, 0, n)
	for i, src := range t.Hosts {
		dst := t.Hosts[(i+x)%n]
		if src == dst {
			continue
		}
		ps = append(ps, [2]topo.NodeID{src, dst})
	}
	return ps
}

// Bijection pairs each server with a random destination under a different
// leaf, one-to-one (Table 1's "Random" permutation workload). It is built
// constructively — a random leaf rotation composed with random in-leaf
// matchings — so it works at any scale where leaves have equal host counts
// (rejection sampling has vanishing success probability past ~20 hosts).
func Bijection(t *topo.Topology, rng *rand.Rand) pairs {
	byLeaf := make([][]topo.NodeID, len(t.Leaves))
	idx := map[topo.NodeID]int{}
	for i, l := range t.Leaves {
		idx[l] = i
	}
	for _, h := range t.Hosts {
		li := idx[t.LeafOf(h)]
		byLeaf[li] = append(byLeaf[li], h)
	}
	per := len(byLeaf[0])
	for _, hs := range byLeaf {
		if len(hs) != per {
			panic("workload: Bijection requires equal hosts per leaf")
		}
	}
	if len(t.Leaves) < 2 {
		panic("workload: Bijection requires >= 2 leaves")
	}
	// Rotate leaves by a random non-zero offset (a derangement of leaves),
	// and match hosts across each leaf pair in shuffled order.
	rot := 1 + rng.Intn(len(t.Leaves)-1)
	var ps pairs
	for li, srcs := range byLeaf {
		dsts := append([]topo.NodeID(nil), byLeaf[(li+rot)%len(byLeaf)]...)
		rng.Shuffle(len(dsts), func(i, j int) { dsts[i], dsts[j] = dsts[j], dsts[i] })
		order := rng.Perm(len(srcs))
		for k, si := range order {
			ps = append(ps, [2]topo.NodeID{srcs[si], dsts[k]})
		}
	}
	return ps
}

// ShufflePhase returns round r of an all-to-all shuffle: server i sends to
// its r-th destination in a per-server random order. The full shuffle is
// n-1 phases; experiments run the first few.
func ShufflePhase(t *topo.Topology, rng *rand.Rand, r int) pairs {
	n := len(t.Hosts)
	ps := make(pairs, 0, n)
	for i, src := range t.Hosts {
		order := rand.New(rand.NewSource(int64(i)*7919 + 13)).Perm(n - 1)
		jRel := order[r%(n-1)]
		j := jRel
		if j >= i {
			j++
		}
		ps = append(ps, [2]topo.NodeID{src, t.Hosts[j]})
	}
	_ = rng
	return ps
}

// Run starts the elephants on the given pairs and the periodic mice probes
// between random inter-leaf host pairs.
func (s *Synthetic) Run(ps pairs) {
	for _, p := range ps {
		s.Elephants = append(s.Elephants,
			s.Reg.StartFlow(p[0], p[1], s.ElephantSize, "elephant"))
	}
	s.scheduleMice(s.Reg.Sim.Now() + s.MicePeriod)
}

func (s *Synthetic) scheduleMice(at units.Time) {
	if at > s.Until {
		return
	}
	s.Reg.Sim.AtGlobal(at, func() {
		t := s.Reg.Net.Topo
		src := t.Hosts[s.rng.Intn(len(t.Hosts))]
		var dst topo.NodeID
		for {
			dst = t.Hosts[s.rng.Intn(len(t.Hosts))]
			if dst != src && t.LeafOf(dst) != t.LeafOf(src) {
				break
			}
		}
		s.Reg.StartFlow(src, dst, s.MiceSize, "mice")
		s.scheduleMice(at + s.MicePeriod)
	})
}

// ElephantGoodput returns the mean per-elephant goodput in Gbps over the
// given window.
func (s *Synthetic) ElephantGoodput(window units.Time) float64 {
	if len(s.Elephants) == 0 || window <= 0 {
		return 0
	}
	var bytes int64
	for _, e := range s.Elephants {
		bytes += e.AckedBytes()
	}
	return float64(bytes) * 8 / window.Seconds() / 1e9 / float64(len(s.Elephants))
}
