// Package workload generates the traffic the DRILL evaluation drives its
// fabrics with: trace-style flow-size distributions with Poisson arrivals
// scaled to a target core load (the paper draws sizes and interarrivals
// from the Facebook measurements of Roy et al. [62]), the incast
// application of Fig. 14, and the Stride/Random(bijection)/Shuffle
// synthetic patterns of Table 1.
//
// The production traces themselves are not public; SizeDist encodes
// piecewise log-linear CDFs fitted to the published percentile summaries,
// preserving the heavy tail (most flows tiny, most bytes in elephants)
// that produces microbursts — the property the evaluation exercises.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// CDFPoint anchors the flow-size CDF: fraction F of flows are <= Bytes.
type CDFPoint struct {
	F     float64
	Bytes float64
}

// SizeDist is a piecewise log-linear empirical flow-size distribution.
type SizeDist struct {
	Name   string
	Points []CDFPoint // strictly increasing in F and Bytes; F ends at 1
	mean   float64
}

// NewSizeDist validates the anchor points and precomputes the mean.
func NewSizeDist(name string, pts []CDFPoint) *SizeDist {
	if len(pts) < 2 {
		panic("workload: size distribution needs >= 2 points")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].F < pts[j].F }) {
		panic("workload: CDF points must be sorted by F")
	}
	if pts[0].F != 0 || pts[len(pts)-1].F != 1 {
		panic("workload: CDF must span F=0..1")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes < pts[i-1].Bytes {
			panic("workload: CDF bytes must be non-decreasing")
		}
	}
	d := &SizeDist{Name: name, Points: pts}
	d.mean = d.computeMean()
	return d
}

// Sample draws one flow size by inverse-transform sampling with log-linear
// interpolation between anchors (sizes span five orders of magnitude).
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := d.Points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].F >= u })
	if i == 0 {
		return int64(pts[0].Bytes)
	}
	lo, hi := pts[i-1], pts[i]
	if hi.F == lo.F || hi.Bytes == lo.Bytes {
		return int64(hi.Bytes)
	}
	frac := (u - lo.F) / (hi.F - lo.F)
	logSize := math.Log(lo.Bytes) + frac*(math.Log(hi.Bytes)-math.Log(lo.Bytes))
	s := int64(math.Exp(logSize))
	if s < 1 {
		s = 1
	}
	return s
}

// Mean returns the distribution's expected flow size in bytes.
func (d *SizeDist) Mean() float64 { return d.mean }

// computeMean integrates E[S] = ∫ s dF over each log-linear segment
// analytically: with s(f) = a·e^{k f}, ∫ s df = (a/k)(e^{k f2} − e^{k f1}).
func (d *SizeDist) computeMean() float64 {
	var mean float64
	pts := d.Points
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		df := hi.F - lo.F
		if df <= 0 {
			continue
		}
		if hi.Bytes == lo.Bytes {
			mean += lo.Bytes * df
			continue
		}
		k := math.Log(hi.Bytes / lo.Bytes)
		// s(t) for t in [0,1] over the segment: lo.Bytes * e^{k t}.
		// ∫0..1 s dt = lo.Bytes (e^k − 1)/k; weight by df.
		mean += df * lo.Bytes * (math.Exp(k) - 1) / k
	}
	return mean
}

// Truncate returns a copy of d with all probability mass above capBytes
// collapsed onto capBytes. Short measurement windows cannot carry the
// multi-megabyte tail's bytes (a 16MB flow needs 13ms of a 10G NIC alone),
// so scaled-down experiments truncate the tail to reach their target
// offered load; full-scale runs use the original distribution.
func Truncate(d *SizeDist, capBytes float64) *SizeDist {
	var pts []CDFPoint
	for _, p := range d.Points {
		if p.Bytes >= capBytes {
			break
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		pts = []CDFPoint{{F: 0, Bytes: capBytes / 2}}
	}
	if pts[len(pts)-1].F < 1 {
		pts = append(pts, CDFPoint{F: 1, Bytes: capBytes})
	}
	return NewSizeDist(d.Name+"-trunc", pts)
}

// FacebookWeb approximates the web-server flow sizes of Roy et al. [62]:
// dominated by tiny request/response flows with a long tail.
var FacebookWeb = NewSizeDist("fb-web", []CDFPoint{
	{0, 64}, {0.15, 256}, {0.5, 2e3}, {0.8, 1e4}, {0.9, 6.4e4},
	{0.97, 2.56e5}, {0.995, 1e6}, {0.9995, 1e7}, {1, 3e7},
})

// FacebookCache approximates the cache-follower flow sizes of [62]:
// larger objects, heavier middle.
var FacebookCache = NewSizeDist("fb-cache", []CDFPoint{
	{0, 512}, {0.4, 4e3}, {0.75, 3.2e4}, {0.9, 1.28e5},
	{0.98, 1e6}, {0.999, 8e6}, {1, 1.6e7},
})

// WebSearch approximates the DCTCP web-search workload often used as a
// datacenter benchmark (query + background mix).
var WebSearch = NewSizeDist("web-search", []CDFPoint{
	{0, 6e3}, {0.15, 1e4}, {0.2, 2e4}, {0.3, 1e5}, {0.53, 1e6},
	{0.6, 2e6}, {0.7, 5e6}, {0.8, 1e7}, {0.9, 2e7}, {1, 3e7},
})

// DataMining approximates the VL2 data-mining workload: an extreme tail
// (most flows < 10KB, yet most bytes in 100MB-class flows, truncated here
// to 100MB to keep single-machine runs bounded).
var DataMining = NewSizeDist("data-mining", []CDFPoint{
	{0, 100}, {0.5, 1e3}, {0.8, 1e4}, {0.95, 1e6}, {0.98, 1e7}, {1, 1e8},
})
