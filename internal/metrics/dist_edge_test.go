package metrics

import (
	"math"
	"testing"
)

// TestDistEmpty pins the zero-value contract: every accessor of an empty
// distribution returns 0 (or nil) rather than panicking or dividing by zero.
func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Count() != 0 {
		t.Errorf("Count() = %d, want 0", d.Count())
	}
	for _, p := range []float64{0, 50, 100} {
		if v := d.Percentile(p); v != 0 {
			t.Errorf("Percentile(%v) = %v, want 0", p, v)
		}
	}
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.StdDev() != 0 {
		t.Errorf("empty stats = mean %v min %v max %v stddev %v, want all 0",
			d.Mean(), d.Min(), d.Max(), d.StdDev())
	}
	if pts := d.CDF(10); pts != nil {
		t.Errorf("CDF(10) = %v, want nil", pts)
	}
}

// TestDistSingleSample: with one sample every order statistic collapses to
// that value and the CDF is the single point (x, 1).
func TestDistSingleSample(t *testing.T) {
	var d Dist
	d.Add(3.5)
	for _, p := range []float64{0, 0.001, 50, 99.9, 100} {
		if v := d.Percentile(p); v != 3.5 {
			t.Errorf("Percentile(%v) = %v, want 3.5", p, v)
		}
	}
	if d.Mean() != 3.5 || d.Min() != 3.5 || d.Max() != 3.5 {
		t.Errorf("stats = mean %v min %v max %v, want all 3.5", d.Mean(), d.Min(), d.Max())
	}
	if d.StdDev() != 0 {
		t.Errorf("StdDev() = %v, want 0", d.StdDev())
	}
	pts := d.CDF(10)
	if len(pts) != 1 || pts[0].X != 3.5 || pts[0].F != 1 {
		t.Errorf("CDF(10) = %v, want [{3.5 1}]", pts)
	}
}

// TestDistPercentileBounds: p=0 clamps to the minimum (nearest-rank's
// rank-0 floor), p=100 is exactly the maximum, and out-of-range p values
// stay clamped instead of indexing out of bounds.
func TestDistPercentileBounds(t *testing.T) {
	var d Dist
	for _, v := range []float64{5, 1, 4, 2, 3} {
		d.Add(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {-10, 1}, {0.001, 1}, {20, 1}, {20.0001, 2},
		{50, 3}, {80, 4}, {99, 5}, {100, 5}, {150, 5},
	}
	for _, c := range cases {
		if v := d.Percentile(c.p); v != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, v, c.want)
		}
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", d.Min(), d.Max())
	}
}

// TestDistCDFMaxPoints covers the downsampling contract: fewer points than
// samples picks evenly spaced ranks ending at the max with F=1; zero,
// negative, or oversized maxPoints fall back to one point per sample.
func TestDistCDFMaxPoints(t *testing.T) {
	var d Dist
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	for _, mp := range []int{3, 4, 7} {
		pts := d.CDF(mp)
		if len(pts) != mp {
			t.Fatalf("CDF(%d) returned %d points", mp, len(pts))
		}
		last := pts[len(pts)-1]
		if last.X != 10 || last.F != 1 {
			t.Errorf("CDF(%d) ends at {%v %v}, want {10 1}", mp, last.X, last.F)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
				t.Errorf("CDF(%d) not increasing at %d: %v", mp, i, pts)
			}
		}
	}
	for _, mp := range []int{0, -1, 10, 11, 1000} {
		if pts := d.CDF(mp); len(pts) != 10 {
			t.Errorf("CDF(%d) returned %d points, want all 10", mp, len(pts))
		}
	}
}

// TestDistAddDistMerge: merging distributions pools samples exactly, and
// merging an empty one is a no-op.
func TestDistAddDistMerge(t *testing.T) {
	var a, b, empty Dist
	a.Add(1)
	a.Add(3)
	b.Add(2)
	a.AddDist(&b)
	a.AddDist(&empty)
	if a.Count() != 3 || a.Mean() != 2 || a.Percentile(50) != 2 {
		t.Errorf("merged count=%d mean=%v p50=%v, want 3/2/2",
			a.Count(), a.Mean(), a.Percentile(50))
	}
}

// FuzzDistOrderStats feeds Dist random sample sets and checks the order
// statistics' internal consistency: percentiles are monotone in p and
// bounded by min/max, the mean lies within [min, max], and the CDF is a
// nondecreasing staircase ending at (max, 1) regardless of maxPoints.
func FuzzDistOrderStats(f *testing.F) {
	f.Add([]byte{}, uint8(5))
	f.Add([]byte{128}, uint8(0))
	f.Add([]byte{1, 2, 3, 250, 250}, uint8(2))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint8(100))

	f.Fuzz(func(t *testing.T, data []byte, mp uint8) {
		var d Dist
		for i, b := range data {
			// Mix of signs and magnitudes, with exact duplicates when bytes
			// repeat; derived purely from the input so failures replay.
			d.Add((float64(b) - 128) * float64(1+i%3))
		}
		n := d.Count()
		if n != len(data) {
			t.Fatalf("Count() = %d after %d Adds", n, len(data))
		}
		if n == 0 {
			if d.Percentile(50) != 0 || d.CDF(int(mp)) != nil {
				t.Fatal("empty Dist must report zeros and a nil CDF")
			}
			return
		}

		lo, hi := d.Min(), d.Max()
		if lo > hi {
			t.Fatalf("Min %v > Max %v", lo, hi)
		}
		if m := d.Mean(); m < lo-1e-9 || m > hi+1e-9 {
			t.Fatalf("Mean %v outside [%v, %v]", m, lo, hi)
		}
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.001, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			v := d.Percentile(p)
			if v < prev {
				t.Fatalf("Percentile(%v) = %v < previous %v: not monotone", p, v, prev)
			}
			if v < lo || v > hi {
				t.Fatalf("Percentile(%v) = %v outside [%v, %v]", p, v, lo, hi)
			}
			prev = v
		}
		if d.Percentile(100) != hi {
			t.Fatalf("Percentile(100) = %v, want max %v", d.Percentile(100), hi)
		}

		pts := d.CDF(int(mp))
		wantLen := n
		if int(mp) > 0 && int(mp) < n {
			wantLen = int(mp)
		}
		if len(pts) != wantLen {
			t.Fatalf("CDF(%d) has %d points, want %d of %d samples", mp, len(pts), wantLen, n)
		}
		for i, pt := range pts {
			if pt.F <= 0 || pt.F > 1 {
				t.Fatalf("CDF point %d has F=%v outside (0,1]", i, pt.F)
			}
			if i > 0 && (pt.X < pts[i-1].X || pt.F <= pts[i-1].F) {
				t.Fatalf("CDF not increasing at point %d: %v", i, pts)
			}
		}
		last := pts[len(pts)-1]
		if last.X != hi || last.F != 1 {
			t.Fatalf("CDF ends at {%v %v}, want {%v 1}", last.X, last.F, hi)
		}
	})
}
