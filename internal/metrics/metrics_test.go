package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"drill/internal/units"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Percentile(50) != 0 || d.Count() != 0 {
		t.Fatal("zero Dist should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.Mean() != 3 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := d.Percentile(1); got != 1 {
		t.Errorf("p1 = %v", got)
	}
}

func TestDistPercentileProperty(t *testing.T) {
	// Percentiles are monotone in p and bounded by min/max.
	f := func(raw []float64, a, b uint8) bool {
		var d Dist
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
			}
		}
		if d.Count() == 0 {
			return true
		}
		p1 := float64(a%100) + 0.5
		p2 := float64(b%100) + 0.5
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := d.Percentile(p1), d.Percentile(p2)
		return v1 <= v2 && v1 >= d.Min() && v2 <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistAddAfterSort(t *testing.T) {
	var d Dist
	d.Add(10)
	_ = d.Percentile(50) // forces sort
	d.Add(1)
	if got := d.Min(); got != 1 {
		t.Errorf("min after post-sort add = %v, want 1", got)
	}
}

func TestAddDist(t *testing.T) {
	var a, b Dist
	a.Add(1)
	a.Add(2)
	b.Add(3)
	a.AddDist(&b)
	if a.Count() != 3 || a.Mean() != 2 {
		t.Errorf("merged count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestCDF(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	pts := d.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("cdf points = %d", len(pts))
	}
	if pts[9].F != 1.0 || pts[9].X != 100 {
		t.Errorf("last point = %+v", pts[9])
	}
	if pts[0].X != 10 || pts[0].F != 0.1 {
		t.Errorf("first point = %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Errorf("cdf not monotone at %d: %+v", i, pts[i])
		}
	}
	if got := d.CDF(1000); len(got) != 100 {
		t.Errorf("oversampled cdf = %d points, want 100", len(got))
	}
}

func TestStdDevInt32(t *testing.T) {
	if got := StdDevInt32(nil); got != 0 {
		t.Errorf("empty stddev = %v", got)
	}
	if got := StdDevInt32([]int32{5, 5, 5}); got != 0 {
		t.Errorf("uniform stddev = %v", got)
	}
	got := StdDevInt32([]int32{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestWelfordMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var d Dist
	var w Welford
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		d.Add(v)
		w.Add(v)
	}
	if math.Abs(d.Mean()-w.Mean()) > 1e-9 {
		t.Errorf("means differ: %v vs %v", d.Mean(), w.Mean())
	}
	if math.Abs(d.StdDev()-w.StdDev()) > 1e-9 {
		t.Errorf("stddevs differ: %v vs %v", d.StdDev(), w.StdDev())
	}
}

func TestHopStats(t *testing.T) {
	var h HopStats
	h.RecordQueueing(Hop1, 10*units.Microsecond)
	h.RecordQueueing(Hop1, 30*units.Microsecond)
	h.RecordDrop(Hop1)
	if got := h.MeanQueueing(Hop1); got != 20 {
		t.Errorf("mean queueing = %v us, want 20", got)
	}
	if got := h.LossRate(Hop1); math.Abs(got-100.0/3) > 1e-9 {
		t.Errorf("loss rate = %v", got)
	}
	if h.MeanQueueing(Hop2) != 0 || h.LossRate(Hop2) != 0 {
		t.Error("untouched hop should be zero")
	}
	if h.TotalDrops() != 1 {
		t.Errorf("total drops = %d", h.TotalDrops())
	}
}

func TestIntHist(t *testing.T) {
	var h IntHist
	for _, v := range []int{0, 0, 0, 1, 3, 3, 10} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.FracExactly(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("frac(0) = %v", got)
	}
	if got := h.FracAtLeast(3); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("frac>=3 = %v", got)
	}
	if got := h.FracAtLeast(11); got != 0 {
		t.Errorf("frac>=11 = %v", got)
	}
	if h.Max() != 10 {
		t.Errorf("max = %d", h.Max())
	}
	h.Add(-5) // clamps to 0
	if got := h.FracExactly(0); math.Abs(got-4.0/8) > 1e-12 {
		t.Errorf("frac(0) after clamp = %v", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// With 10,000 samples 0..9999, p99.99 must be the 9999th value.
	var d Dist
	vals := rand.New(rand.NewSource(2)).Perm(10000)
	for _, v := range vals {
		d.Add(float64(v))
	}
	if got := d.Percentile(99.99); got != 9998 {
		t.Errorf("p99.99 = %v, want 9998", got)
	}
	sorted := make([]int, len(vals))
	copy(sorted, vals)
	sort.Ints(sorted)
	if got := d.Percentile(50); got != float64(sorted[4999]) {
		t.Errorf("p50 = %v", got)
	}
}
