// Package metrics provides the measurement primitives the DRILL evaluation
// reports: exact-percentile sample distributions (flow completion times),
// queue-length standard deviations sampled on microsecond timescales,
// per-hop queueing/loss accounting, and small integer histograms
// (duplicate-ACK counts, GRO batch counts).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"drill/internal/units"
)

// Dist collects float64 samples and answers exact order statistics.
// The zero value is ready to use.
type Dist struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
	d.sum += v
}

// AddDist merges all samples of o into d.
func (d *Dist) AddDist(o *Dist) {
	d.vals = append(d.vals, o.vals...)
	d.sorted = false
	d.sum += o.sum
}

// Count reports the number of samples.
func (d *Dist) Count() int { return len(d.vals) }

// Mean reports the sample mean, or 0 with no samples.
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	return d.sum / float64(len(d.vals))
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Percentile reports the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.sort()
	rank := int(math.Ceil(p/100*float64(len(d.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.vals) {
		rank = len(d.vals) - 1
	}
	return d.vals[rank]
}

// Max reports the largest sample, or 0 with no samples.
func (d *Dist) Max() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.sort()
	return d.vals[len(d.vals)-1]
}

// Min reports the smallest sample, or 0 with no samples.
func (d *Dist) Min() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.sort()
	return d.vals[0]
}

// StdDev reports the population standard deviation of the samples.
func (d *Dist) StdDev() float64 {
	n := len(d.vals)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.vals {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// HashSorted returns an FNV-1a hash over the samples in sorted order —
// an order-insensitive fingerprint of the distribution. Two Dists that
// collected the same multiset of samples hash identically no matter the
// insertion order, which is what lets a conformance test compare a
// sequential run's FCT distribution against a sharded run's per-shard
// fold without depending on fold order (the multiset is identical; the
// insertion-order float sum behind Mean is not).
func (d *Dist) HashSorted() uint64 {
	d.sort()
	h := uint64(14695981039346656037)
	for _, v := range d.vals {
		b := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			h ^= (b >> i) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative fraction in (0, 1]
}

// CDF returns up to maxPoints evenly spaced points of the empirical CDF.
func (d *Dist) CDF(maxPoints int) []CDFPoint {
	n := len(d.vals)
	if n == 0 {
		return nil
	}
	d.sort()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		pts = append(pts, CDFPoint{X: d.vals[idx-1], F: float64(idx) / float64(n)})
	}
	return pts
}

// StdDevInt32 computes the population standard deviation of raw int32
// observations — the queue-length STDV metric of §3.2.3 — without
// allocating.
func StdDevInt32(xs []int32) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += int64(x)
	}
	mean := float64(sum) / float64(n)
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Welford accumulates a running mean without storing samples; used for
// metrics sampled millions of times (queue-STDV time series).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean reports the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev reports the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n == 0 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// HopClass buckets a directed channel by its position in the fabric, for
// the per-hop queueing and loss breakdowns of Figures 6(c) and 14(c).
type HopClass uint8

// Hop classes. HostUp is the sender NIC. In a 2-stage Clos, Hop1 is the
// leaf's upward port, Hop2 the spine's downward port, Hop3 the leaf-to-host
// port. Up2/Down2 appear only in 3-stage fabrics (leaf→agg counts as Hop1,
// agg→core as Up2, core→agg as Down2, agg→leaf as Hop2).
const (
	HostUp HopClass = iota
	Hop1            // leaf upward to spine/agg
	Up2             // agg upward to core
	Down2           // core downward to agg
	Hop2            // spine/agg downward to leaf
	Hop3            // leaf to host
	NumHopClasses
)

func (h HopClass) String() string {
	switch h {
	case HostUp:
		return "host-nic"
	case Hop1:
		return "hop1-up"
	case Up2:
		return "hop-up2"
	case Down2:
		return "hop-down2"
	case Hop2:
		return "hop2-down"
	case Hop3:
		return "hop3-host"
	}
	return fmt.Sprintf("hop(%d)", uint8(h))
}

// HopStats accumulates queueing delay, arrivals and drops per hop class.
// All fields are integer totals, so merging per-shard blocks (Merge) is
// exactly commutative — a sharded run folds to the same bytes a sequential
// run accumulates, which a float total could not promise.
type HopStats struct {
	QueueingNs [NumHopClasses]int64 // total queueing time in nanoseconds
	Packets    [NumHopClasses]int64 // packets transmitted
	Drops      [NumHopClasses]int64 // packets dropped at enqueue
}

// RecordQueueing adds one packet's time-in-queue at a hop.
func (h *HopStats) RecordQueueing(c HopClass, d units.Time) {
	h.QueueingNs[c] += int64(d)
	h.Packets[c]++
}

// RecordDrop counts a drop at a hop.
func (h *HopStats) RecordDrop(c HopClass) { h.Drops[c]++ }

// Merge folds o's totals into h.
func (h *HopStats) Merge(o *HopStats) {
	for c := 0; c < int(NumHopClasses); c++ {
		h.QueueingNs[c] += o.QueueingNs[c]
		h.Packets[c] += o.Packets[c]
		h.Drops[c] += o.Drops[c]
	}
}

// MeanQueueing reports the mean queueing delay at a hop in microseconds.
func (h *HopStats) MeanQueueing(c HopClass) float64 {
	if h.Packets[c] == 0 {
		return 0
	}
	return float64(h.QueueingNs[c]) / float64(h.Packets[c]) / 1000
}

// LossRate reports drops/(drops+delivered) at a hop, as a percentage.
func (h *HopStats) LossRate(c HopClass) float64 {
	tot := h.Drops[c] + h.Packets[c]
	if tot == 0 {
		return 0
	}
	return 100 * float64(h.Drops[c]) / float64(tot)
}

// TotalDrops sums drops across hop classes.
func (h *HopStats) TotalDrops() int64 {
	var n int64
	for _, d := range h.Drops {
		n += d
	}
	return n
}

// IntHist is a histogram over small non-negative integers (duplicate-ACK
// counts per flow, GRO batch sizes).
type IntHist struct {
	counts []int64
	total  int64
}

// Add counts one observation of value v (clamped at 0).
func (h *IntHist) Add(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Count reports the number of observations.
func (h *IntHist) Count() int64 { return h.total }

// Bucket reports how many observations had value exactly v — the exact
// integer behind FracExactly, for fingerprints that must compare
// histograms without float division.
func (h *IntHist) Bucket(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Merge folds o's counts into h. Bucket counts are integers, so merging
// per-shard histograms is exactly commutative.
func (h *IntHist) Merge(o *IntHist) {
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// FracAtLeast reports the fraction of observations with value >= v.
func (h *IntHist) FracAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for i := v; i < len(h.counts); i++ {
		n += h.counts[i]
	}
	return float64(n) / float64(h.total)
}

// FracExactly reports the fraction of observations equal to v.
func (h *IntHist) FracExactly(v int) float64 {
	if h.total == 0 || v < 0 || v >= len(h.counts) {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Max reports the largest observed value.
func (h *IntHist) Max() int {
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return i
		}
	}
	return 0
}
