// Package quiver implements DRILL's control-plane handling of topological
// asymmetry (§3.4): it builds the labeled multidigraph the paper calls the
// Quiver, scores links by their label sets, and decomposes each switch's
// shortest paths toward each destination into symmetric components —
// maximal sets of paths with identical hop-by-hop label scores. The data
// plane then hashes flows to a component (weighted by aggregate capacity)
// and micro-load-balances only inside it, degrading gracefully from pure
// DRILL (one component) to ECMP (every component a single path).
package quiver

import (
	"fmt"
	"hash/fnv"
	"sort"

	"drill/internal/topo"
	"drill/internal/units"
)

// CapFactor is the capacity factor cf(a,b,p) of §3.4.3 as an exact reduced
// rational: the input rate of the path into a divided by the rate of (a,b).
// The source vertex uses the infinity sentinel {1, 0}.
type CapFactor struct {
	Num, Den int64
}

// Infinity is the capacity factor at the path's source vertex.
var Infinity = CapFactor{1, 0}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewCapFactor reduces in/out to lowest terms.
func NewCapFactor(in, out units.Rate) CapFactor {
	n, d := int64(in), int64(out)
	g := gcd(n, d)
	return CapFactor{n / g, d / g}
}

func (c CapFactor) String() string {
	if c.Den == 0 {
		return "inf"
	}
	return fmt.Sprintf("%d/%d", c.Num, c.Den)
}

// Label marks one use of a directed link: it lies on a shortest path from
// leaf Src to leaf Dst with the given capacity factor (§3.4.1, §3.4.3).
type Label struct {
	Src, Dst topo.NodeID
	CF       CapFactor
}

// Quiver is the labeled multidigraph: per directed channel, the set of
// labels of shortest leaf-to-leaf paths traversing it, plus the hash score
// used for fast path-symmetry checks.
type Quiver struct {
	routes *topo.Routes
	labels map[topo.ChanID]map[Label]struct{}
	scores map[topo.ChanID]uint64
}

// Build computes the Quiver for the routing snapshot: for every ordered
// leaf pair and every shortest path between them, each traversed channel
// gains a (src, dst, cf) label.
func Build(r *topo.Routes) *Quiver {
	t := r.Topo()
	q := &Quiver{
		routes: r,
		labels: map[topo.ChanID]map[Label]struct{}{},
		scores: map[topo.ChanID]uint64{},
	}
	for _, src := range t.Leaves {
		for _, dst := range t.Leaves {
			if src == dst {
				continue
			}
			for _, path := range r.Paths(src, dst) {
				// Bottleneck capacity from src up to (but excluding) each hop.
				inCap := units.Rate(0) // 0 = no upstream yet (source vertex)
				for _, cid := range path {
					c := t.Chan(cid)
					cf := Infinity
					if inCap > 0 {
						cf = NewCapFactor(inCap, c.Rate)
					}
					q.addLabel(cid, Label{Src: src, Dst: dst, CF: cf})
					if inCap == 0 || c.Rate < inCap {
						inCap = c.Rate
					}
				}
			}
		}
	}
	q.computeScores()
	return q
}

func (q *Quiver) addLabel(c topo.ChanID, l Label) {
	set := q.labels[c]
	if set == nil {
		set = map[Label]struct{}{}
		q.labels[c] = set
	}
	set[l] = struct{}{}
}

// computeScores hashes each channel's sorted label set to a 64-bit score;
// equal scores ⇔ equal label sets (modulo hash collisions, which the
// 64-bit space makes negligible at datacenter scale).
func (q *Quiver) computeScores() {
	//drill:allow nondeterminism each iteration writes its own scores entry; order-independent
	for c, set := range q.labels {
		labels := make([]Label, 0, len(set))
		//drill:allow nondeterminism label collection is order-independent; sorted below
		for l := range set {
			labels = append(labels, l)
		}
		sortLabels(labels)
		h := fnv.New64a()
		var buf [8]byte
		put := func(v int64) {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		for _, l := range labels {
			put(int64(l.Src))
			put(int64(l.Dst))
			put(l.CF.Num)
			put(l.CF.Den)
		}
		q.scores[c] = h.Sum64()
	}
}

// Score returns the label-set score of a channel (0 if the channel carries
// no shortest-path traffic).
func (q *Quiver) Score(c topo.ChanID) uint64 { return q.scores[c] }

// Labels returns a copy of the channel's label set, sorted, for
// inspection.
func (q *Quiver) Labels(c topo.ChanID) []Label {
	out := make([]Label, 0, len(q.labels[c]))
	//drill:allow nondeterminism label collection is order-independent; sorted below
	for l := range q.labels[c] {
		out = append(out, l)
	}
	sortLabels(out)
	return out
}

// sortLabels orders labels lexicographically by (Src, Dst, CF), the
// canonical order score hashing and inspection share.
func sortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool {
		a, b := labels[i], labels[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.CF.Num != b.CF.Num {
			return a.CF.Num < b.CF.Num
		}
		return a.CF.Den < b.CF.Den
	})
}

// Symmetric reports whether two paths (channel sequences) are symmetric:
// same hop count with pairwise equal link scores (§3.4.1's definition).
func (q *Quiver) Symmetric(p1, p2 []topo.ChanID) bool {
	if len(p1) != len(p2) {
		return false
	}
	for i := range p1 {
		if q.Score(p1[i]) != q.Score(p2[i]) {
			return false
		}
	}
	return true
}

// Component is one symmetric path group from a switch toward a leaf.
type Component struct {
	Paths [][]topo.ChanID
	// FirstHops are the distinct first channels of the component's paths —
	// the ports the data plane micro-load-balances across.
	FirstHops []topo.ChanID
	// Capacity is the sum of the member paths' bottleneck capacities; the
	// data-plane weight is proportional to it.
	Capacity units.Rate
	// Weight is Capacity normalized across the decomposition's components
	// to small coprime integers.
	Weight uint32
}

// Decompose partitions the shortest paths from node src toward leaf dst
// into symmetric components and assigns capacity-proportional weights
// (§3.4.1 step 2). It returns nil when src has no path to dst.
func (q *Quiver) Decompose(src topo.NodeID, dst topo.NodeID) []Component {
	t := q.routes.Topo()
	paths := q.routes.Paths(src, dst)
	if len(paths) == 0 || src == dst {
		return nil
	}
	// Group paths by score vector.
	byScore := map[string]*Component{}
	var order []string
	for _, p := range paths {
		key := make([]byte, 0, 8*len(p))
		for _, cid := range p {
			s := q.Score(cid)
			for i := 0; i < 8; i++ {
				key = append(key, byte(s>>(8*i)))
			}
		}
		k := string(key)
		comp := byScore[k]
		if comp == nil {
			comp = &Component{}
			byScore[k] = comp
			order = append(order, k)
		}
		comp.Paths = append(comp.Paths, p)
		comp.Capacity += pathCapacity(t, p)
	}
	comps := make([]Component, 0, len(byScore))
	for _, k := range order {
		c := byScore[k]
		c.FirstHops = distinctFirstHops(c.Paths)
		comps = append(comps, *c)
	}
	assignWeights(comps)
	return comps
}

func pathCapacity(t *topo.Topology, p []topo.ChanID) units.Rate {
	var capR units.Rate
	for _, cid := range p {
		r := t.Chan(cid).Rate
		if capR == 0 || r < capR {
			capR = r
		}
	}
	return capR
}

func distinctFirstHops(paths [][]topo.ChanID) []topo.ChanID {
	seen := map[topo.ChanID]bool{}
	var out []topo.ChanID
	for _, p := range paths {
		if !seen[p[0]] {
			seen[p[0]] = true
			out = append(out, p[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// assignWeights scales component capacities down to small integers with
// gcd 1, as a hardware WCMP-style table would store them.
func assignWeights(comps []Component) {
	var g int64
	for i := range comps {
		g = gcd(g, int64(comps[i].Capacity))
	}
	if g == 0 {
		g = 1
	}
	for i := range comps {
		comps[i].Weight = uint32(int64(comps[i].Capacity) / g)
		if comps[i].Weight == 0 {
			comps[i].Weight = 1
		}
	}
}
