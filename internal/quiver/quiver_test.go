package quiver

import (
	"testing"

	"drill/internal/topo"
	"drill/internal/units"
)

// fig4 builds the paper's Figure 4 topology: leaves L0..L3, spines S0..S2,
// all leaf-spine pairs linked at 40G, one host per leaf.
func fig4() (*topo.Topology, []topo.NodeID, []topo.NodeID) {
	t := topo.New()
	var spines, leaves []topo.NodeID
	for i := 0; i < 3; i++ {
		spines = append(spines, t.AddNode(topo.Spine, "S"))
	}
	for i := 0; i < 4; i++ {
		l := t.AddNode(topo.Leaf, "L")
		leaves = append(leaves, l)
		for _, s := range spines {
			t.AddLink(l, s, 40*units.Gbps, topo.DefaultProp)
		}
		h := t.AddNode(topo.Host, "h")
		t.AddLink(h, l, 10*units.Gbps, topo.DefaultProp)
	}
	return t, leaves, spines
}

func TestSymmetricTopologySingleComponent(t *testing.T) {
	tp, leaves, _ := fig4()
	q := Build(topo.ComputeRoutes(tp))
	for _, src := range leaves {
		for _, dst := range leaves {
			if src == dst {
				continue
			}
			comps := q.Decompose(src, dst)
			if len(comps) != 1 {
				t.Fatalf("symmetric Clos: %d components, want 1", len(comps))
			}
			if len(comps[0].FirstHops) != 3 {
				t.Fatalf("first hops = %d, want 3 spines", len(comps[0].FirstHops))
			}
			if comps[0].Weight != 1 {
				t.Fatalf("weight = %d, want 1", comps[0].Weight)
			}
		}
	}
}

func TestFig4FailureDecomposition(t *testing.T) {
	// Fail L0-S0. L3→L1 paths: P0 via S0 escapes the L0→L1 collision;
	// P1/P2 via S1/S2 share their second hop labels with L0→L1 traffic.
	// Expect components {P0} and {P1, P2} with weights 1 and 2.
	tp, leaves, spines := fig4()
	link := tp.LinkBetween(leaves[0], spines[0])[0]
	tp.FailLink(link)
	q := Build(topo.ComputeRoutes(tp))

	comps := q.Decompose(leaves[3], leaves[1])
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	var solo, pair *Component
	for i := range comps {
		switch len(comps[i].Paths) {
		case 1:
			solo = &comps[i]
		case 2:
			pair = &comps[i]
		}
	}
	if solo == nil || pair == nil {
		t.Fatalf("bad split: %d and %d paths", len(comps[0].Paths), len(comps[1].Paths))
	}
	// The solo component goes via S0.
	first := tp.Chan(solo.Paths[0][0])
	if first.To != spines[0] {
		t.Errorf("solo component via %v, want S0", first.To)
	}
	if solo.Weight != 1 || pair.Weight != 2 {
		t.Errorf("weights = %d,%d, want 1,2", solo.Weight, pair.Weight)
	}
	if len(pair.FirstHops) != 2 {
		t.Errorf("pair first hops = %d", len(pair.FirstHops))
	}
	// L2→L1 decomposes identically; L3→L2 traffic is untouched by the
	// failure on the downstream side but its spine links now carry
	// different label sets (S0 lost L0's flows), still symmetric for S1,S2.
	comps21 := q.Decompose(leaves[2], leaves[1])
	if len(comps21) != 2 {
		t.Errorf("L2→L1 components = %d, want 2", len(comps21))
	}
}

func TestHostLinkFailureKeepsSymmetry(t *testing.T) {
	// §3.4.1: "suppose a link from a host h to its top-of-rack switch
	// fails. Then symmetry is still satisfied."
	tp, leaves, _ := fig4()
	host := tp.Hosts[0]
	link := tp.LinkBetween(host, tp.LeafOf(host))[0]
	tp.FailLink(link)
	q := Build(topo.ComputeRoutes(tp))
	comps := q.Decompose(leaves[3], leaves[1])
	if len(comps) != 1 {
		t.Fatalf("host-link failure created asymmetry: %d components", len(comps))
	}
}

func TestDecompositionIsPartition(t *testing.T) {
	// Property over several failure patterns: components partition the path
	// set; intra-component paths are symmetric; inter-component are not.
	tp, leaves, spines := fig4()
	tp.FailLink(tp.LinkBetween(leaves[0], spines[0])[0])
	tp.FailLink(tp.LinkBetween(leaves[2], spines[1])[0])
	r := topo.ComputeRoutes(tp)
	q := Build(r)
	for _, src := range leaves {
		for _, dst := range leaves {
			if src == dst {
				continue
			}
			all := r.Paths(src, dst)
			comps := q.Decompose(src, dst)
			n := 0
			for ci := range comps {
				c := &comps[ci]
				n += len(c.Paths)
				for i := 0; i < len(c.Paths); i++ {
					for j := i + 1; j < len(c.Paths); j++ {
						if !q.Symmetric(c.Paths[i], c.Paths[j]) {
							t.Fatalf("asymmetric paths grouped: %v vs %v", c.Paths[i], c.Paths[j])
						}
					}
				}
				for cj := ci + 1; cj < len(comps); cj++ {
					for _, p1 := range c.Paths {
						for _, p2 := range comps[cj].Paths {
							if q.Symmetric(p1, p2) {
								t.Fatalf("symmetric paths split across components")
							}
						}
					}
				}
			}
			if n != len(all) {
				t.Fatalf("partition lost paths: %d vs %d", n, len(all))
			}
		}
	}
}

func TestCapacityFactorRational(t *testing.T) {
	cf1 := NewCapFactor(40*units.Gbps, 10*units.Gbps)
	if cf1.Num != 4 || cf1.Den != 1 {
		t.Errorf("cf = %v, want 4/1", cf1)
	}
	cf2 := NewCapFactor(10*units.Gbps, 40*units.Gbps)
	if cf2.Num != 1 || cf2.Den != 4 {
		t.Errorf("cf = %v, want 1/4", cf2)
	}
	if NewCapFactor(10*units.Gbps, 10*units.Gbps) != (CapFactor{1, 1}) {
		t.Error("equal-rate cf should reduce to 1/1")
	}
	if Infinity.Den != 0 {
		t.Error("infinity sentinel broken")
	}
}

func TestHeterogeneousLinksSplitComponents(t *testing.T) {
	// §3.4.3's example: upgrade L0-S0, L0-S1, L1-S0 to 40G, leave the rest
	// at 10G. The three L0→L1 paths become mutually asymmetric via capacity
	// factors (S0→L1 sees cf 1 vs 1/4 mixes; S1→L1 sees cf 4; S2→L1 cf 1).
	t2 := topo.New()
	var spines, leaves []topo.NodeID
	for i := 0; i < 3; i++ {
		spines = append(spines, t2.AddNode(topo.Spine, "S"))
	}
	for i := 0; i < 4; i++ {
		leaves = append(leaves, t2.AddNode(topo.Leaf, "L"))
	}
	for li, l := range leaves {
		for si, s := range spines {
			rate := 10 * units.Gbps
			if (li == 0 && si <= 1) || (li == 1 && si == 0) {
				rate = 40 * units.Gbps
			}
			t2.AddLink(l, s, rate, topo.DefaultProp)
		}
		h := t2.AddNode(topo.Host, "h")
		t2.AddLink(h, l, 10*units.Gbps, topo.DefaultProp)
	}
	q := Build(topo.ComputeRoutes(t2))
	comps := q.Decompose(leaves[0], leaves[1])
	if len(comps) < 2 {
		t.Fatalf("heterogeneous links produced %d components, want >= 2", len(comps))
	}
	// Total weight must reflect capacities: paths via S0 (40G bottleneck)
	// carry 4x the weight of a 10G path component.
	var hiW, loW uint32
	for _, c := range comps {
		if c.Capacity >= 40*units.Gbps {
			hiW = c.Weight
		} else if loW == 0 {
			loW = c.Weight
		}
	}
	if hiW == 0 || loW == 0 || hiW != 4*loW {
		t.Errorf("capacity weights hi=%d lo=%d, want 4:1", hiW, loW)
	}
}

func TestScoresDistinguishLabeledLinks(t *testing.T) {
	tp, leaves, spines := fig4()
	tp.FailLink(tp.LinkBetween(leaves[0], spines[0])[0])
	q := Build(topo.ComputeRoutes(tp))
	// S0→L1 lacks L0-sourced labels; S1→L1 has them.
	s0l1 := topo.ChanID(-1)
	s1l1 := topo.ChanID(-1)
	for _, cid := range tp.Out(spines[0]) {
		if tp.Chan(cid).To == leaves[1] {
			s0l1 = cid
		}
	}
	for _, cid := range tp.Out(spines[1]) {
		if tp.Chan(cid).To == leaves[1] {
			s1l1 = cid
		}
	}
	if q.Score(s0l1) == q.Score(s1l1) {
		t.Fatal("scores fail to distinguish asymmetric links")
	}
	lbl := q.Labels(s1l1)
	foundL0 := false
	for _, l := range lbl {
		if l.Src == leaves[0] && l.Dst == leaves[1] {
			foundL0 = true
		}
	}
	if !foundL0 {
		t.Fatal("S1→L1 missing the L0→L1 label")
	}
}
