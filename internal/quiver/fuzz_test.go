package quiver

import (
	"fmt"
	"math/rand"
	"testing"

	"drill/internal/topo"
	"drill/internal/units"
)

// fuzzTopo builds a small randomized leaf–spine fabric: 2–5 spines and
// 2–5 leaves, leaf-spine link rates drawn from a heterogeneous set when
// hetero is odd (uniform 40G otherwise), and `fails` randomly chosen
// leaf-spine links failed. Everything derives from the seeded rng, so a
// crashing input reproduces.
func fuzzTopo(seed int64, spinesB, leavesB, hetero, failsB uint8) *topo.Topology {
	spines := int(spinesB%4) + 2
	leaves := int(leavesB%4) + 2
	rng := rand.New(rand.NewSource(seed))
	rates := []units.Rate{10 * units.Gbps, 25 * units.Gbps, 40 * units.Gbps, 100 * units.Gbps}

	tp := topo.New()
	spineIDs := make([]topo.NodeID, spines)
	for s := range spineIDs {
		spineIDs[s] = tp.AddNode(topo.Spine, fmt.Sprintf("s%d", s))
	}
	var core []topo.LinkID
	for l := 0; l < leaves; l++ {
		leaf := tp.AddNode(topo.Leaf, fmt.Sprintf("l%d", l))
		for _, sp := range spineIDs {
			rate := 40 * units.Gbps
			if hetero%2 == 1 {
				rate = rates[rng.Intn(len(rates))]
			}
			core = append(core, tp.AddLink(leaf, sp, rate, 500*units.Nanosecond))
		}
		h := tp.AddNode(topo.Host, fmt.Sprintf("h%d", l))
		tp.AddLink(h, leaf, 10*units.Gbps, 500*units.Nanosecond)
	}
	rng.Shuffle(len(core), func(i, j int) { core[i], core[j] = core[j], core[i] })
	fails := int(failsB) % (len(core)/2 + 1) // never fail a majority
	for i := 0; i < fails; i++ {
		tp.FailLink(core[i])
	}
	return tp
}

// pathKey serializes a channel sequence for multiset bookkeeping.
func pathKey(p []topo.ChanID) string {
	return fmt.Sprint(p)
}

// FuzzDecomposePartition checks the §3.4.1 decomposition invariants on
// random small (possibly asymmetric) topologies: for every leaf pair, the
// components must exactly partition the shortest paths; paths inside a
// component must be pairwise symmetric while component representatives are
// pairwise asymmetric; each component's capacity must equal the sum of its
// paths' bottleneck capacities; and the weights must be the capacities
// scaled to coprime integers.
func FuzzDecomposePartition(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), uint8(0), uint8(0))  // symmetric 2×3, no failures
	f.Add(int64(7), uint8(1), uint8(2), uint8(1), uint8(3))  // heterogeneous rates + failures
	f.Add(int64(42), uint8(3), uint8(0), uint8(0), uint8(5)) // symmetric rates, failures only
	f.Add(int64(-9), uint8(2), uint8(3), uint8(1), uint8(0)) // heterogeneous, intact

	f.Fuzz(func(t *testing.T, seed int64, spines, leaves, hetero, fails uint8) {
		tp := fuzzTopo(seed, spines, leaves, hetero, fails)
		r := topo.ComputeRoutes(tp)
		q := Build(r)

		for _, src := range tp.Leaves {
			for _, dst := range tp.Leaves {
				if src == dst {
					continue
				}
				paths := r.Paths(src, dst)
				comps := q.Decompose(src, dst)
				if len(paths) == 0 {
					if comps != nil {
						t.Fatalf("%d→%d: no paths but %d components", src, dst, len(comps))
					}
					continue
				}
				checkDecomposition(t, q, tp, src, dst, paths, comps)
			}
		}
	})
}

func checkDecomposition(t *testing.T, q *Quiver, tp *topo.Topology,
	src, dst topo.NodeID, paths [][]topo.ChanID, comps []Component) {
	t.Helper()
	if len(comps) == 0 {
		t.Fatalf("%d→%d: %d paths decomposed into zero components", src, dst, len(paths))
	}

	// Partition: every shortest path appears in exactly one component.
	want := map[string]int{}
	for _, p := range paths {
		want[pathKey(p)]++
	}
	got := map[string]int{}
	var totalCap units.Rate
	for ci, c := range comps {
		if len(c.Paths) == 0 {
			t.Fatalf("%d→%d: component %d is empty", src, dst, ci)
		}
		var ccap units.Rate
		firstHops := map[topo.ChanID]bool{}
		for _, p := range c.Paths {
			got[pathKey(p)]++
			ccap += pathCapacity(tp, p)
			firstHops[p[0]] = true
			if !q.Symmetric(c.Paths[0], p) {
				t.Fatalf("%d→%d: component %d holds asymmetric paths %v and %v",
					src, dst, ci, c.Paths[0], p)
			}
		}
		if ccap != c.Capacity {
			t.Fatalf("%d→%d: component %d capacity %v != sum of path bottlenecks %v",
				src, dst, ci, c.Capacity, ccap)
		}
		if len(c.FirstHops) != len(firstHops) {
			t.Fatalf("%d→%d: component %d reports %d first hops, paths use %d",
				src, dst, ci, len(c.FirstHops), len(firstHops))
		}
		for _, fh := range c.FirstHops {
			if !firstHops[fh] {
				t.Fatalf("%d→%d: component %d lists first hop %d no path starts with",
					src, dst, ci, fh)
			}
		}
		totalCap += c.Capacity
	}
	if len(got) != len(want) {
		t.Fatalf("%d→%d: components cover %d distinct paths, routing has %d",
			src, dst, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%d→%d: path %s appears %d times across components, want %d",
				src, dst, k, got[k], n)
		}
	}

	// Maximality: representatives of distinct components are asymmetric —
	// otherwise they should have been one component.
	for i := range comps {
		for j := i + 1; j < len(comps); j++ {
			if q.Symmetric(comps[i].Paths[0], comps[j].Paths[0]) {
				t.Fatalf("%d→%d: components %d and %d are mutually symmetric", src, dst, i, j)
			}
		}
	}

	// Weights: capacity divided by the gcd of all component capacities
	// (floored at 1), hence coprime whenever no flooring occurred.
	var g int64
	for _, c := range comps {
		g = gcd(g, int64(c.Capacity))
	}
	if g == 0 {
		g = 1
	}
	var wg int64
	for ci, c := range comps {
		want := int64(c.Capacity) / g
		if want == 0 {
			want = 1
		}
		if int64(c.Weight) != want {
			t.Fatalf("%d→%d: component %d weight %d, want %v/%d = %d",
				src, dst, ci, c.Weight, c.Capacity, g, want)
		}
		wg = gcd(wg, int64(c.Weight))
	}
	if wg != 1 {
		t.Fatalf("%d→%d: component weights share common factor %d", src, dst, wg)
	}
}
