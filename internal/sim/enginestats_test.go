package sim

import (
	"testing"

	"drill/internal/units"
)

// TestSchedStatsTierRouting pins the scheduler-internals counters against
// a hand-built schedule with one event per tier: routing totals must
// match what was scheduled, every event must be dispatched from exactly
// one of the two dispatch sources, and the far event must cascade inward
// as the wheel horizon advances past it.
func TestSchedStatsTierRouting(t *testing.T) {
	s := New(1)
	nop := func() {}
	s.At(10, nop)              // inside the cursor bucket window → near
	s.At(5<<wheelShift+3, nop) // within the wheel horizon → bucket
	s.At(horizonW+50, nop)     // beyond the horizon → far

	sc := s.Sched()
	if sc.Near != 1 || sc.Wheel != 1 || sc.Far != 1 {
		t.Fatalf("tier routing = near %d wheel %d far %d, want 1/1/1", sc.Near, sc.Wheel, sc.Far)
	}
	if s.WheelOccupancy() != 1 {
		t.Fatalf("wheel occupancy = %d, want 1", s.WheelOccupancy())
	}

	s.Run()
	sc = s.Sched()
	if got := sc.DispatchList + sc.DispatchHeap; got != 3 {
		t.Errorf("dispatches list %d + heap %d = %d, want 3", sc.DispatchList, sc.DispatchHeap, got)
	}
	if sc.Cascades != 1 {
		t.Errorf("cascades = %d, want 1 (the far event re-routed once)", sc.Cascades)
	}
	if sc.Pours == 0 || sc.PouredEvents == 0 {
		t.Errorf("pours = %d poured = %d, want both > 0 (the bucket event was poured)", sc.Pours, sc.PouredEvents)
	}
	if s.WheelOccupancy() != 0 || s.Pending() != 0 {
		t.Errorf("after drain: occupancy %d pending %d, want 0/0", s.WheelOccupancy(), s.Pending())
	}
}

// TestSchedStatsDeterministic runs the same randomized schedule twice and
// requires identical counters: SchedStats is a pure function of the event
// stream, fit for fingerprints and cross-engine comparison.
func TestSchedStatsDeterministic(t *testing.T) {
	build := func() SchedStats {
		s := New(7)
		rng := s.Stream(3)
		var tick func()
		tick = func() {
			if s.Now() < 5*horizonW {
				s.At(s.Now()+units.Time(1+rng.Int63n(int64(horizonW))), tick)
			}
		}
		s.At(1, tick)
		s.At(2, tick)
		s.Run()
		return s.Sched()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("SchedStats differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestWindowStatsQuantile pins the log2-bucket quantile bound: exact for
// the degenerate cases, an upper edge for the rest, monotone in q.
func TestWindowStatsQuantile(t *testing.T) {
	var w WindowStats
	if got := w.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	w.record(0)
	w.record(1)
	w.record(1000)
	if w.Count != 3 || w.SumNs != 1001 {
		t.Fatalf("count %d sum %d, want 3/1001", w.Count, w.SumNs)
	}
	if got := w.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0 (exact: the zero-width window)", got)
	}
	if got := w.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := w.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023 (upper edge of 1000's bucket)", got)
	}
	if w.Quantile(0.5) > w.Quantile(0.9) || w.Quantile(0.9) > w.Quantile(0.99) {
		t.Error("quantile bound is not monotone in q")
	}
}

// TestShardGroupTelemetry drives a real 2-shard group and checks the
// barrier-folded stat blocks: per-shard events match each shard
// scheduler's own count, window/barrier totals line up, critical-shard
// attribution stays within the barrier count — and every deterministic
// field reproduces exactly across runs (wall-clock busy/stall are the
// sanctioned exceptions).
func TestShardGroupTelemetry(t *testing.T) {
	run := func() (stats []ShardStat, win WindowStats, barriers uint64, executed []uint64) {
		g := &ShardGroup{Global: New(1), Lookahead: 64}
		for i := 0; i < 2; i++ {
			s := New(int64(10 + i))
			steps := 150 + 100*i // unequal load → nontrivial critical attribution
			var tick func()
			tick = func() {
				if steps--; steps > 0 {
					s.At(s.Now()+48, tick)
				}
			}
			s.At(units.Time(1+i), tick)
			g.Shards = append(g.Shards, s)
		}
		g.Exchange = func() {}
		g.Start()
		g.RunUntil(20000)
		g.Close()
		for _, s := range g.Shards {
			executed = append(executed, s.Executed)
		}
		return g.ShardStats(), g.WindowStats(), g.Barriers(), executed
	}

	stats, win, barriers, executed := run()
	if len(stats) != 2 {
		t.Fatalf("got %d stat blocks, want 2", len(stats))
	}
	var critical uint64
	for i, st := range stats {
		if st.Events != executed[i] {
			t.Errorf("shard %d: stat events %d, scheduler executed %d", i, st.Events, executed[i])
		}
		if st.Windows == 0 || st.Windows > barriers {
			t.Errorf("shard %d: windows %d outside (0, barriers=%d]", i, st.Windows, barriers)
		}
		critical += st.Critical
	}
	if critical == 0 || critical > barriers {
		t.Errorf("critical windows %d outside (0, barriers=%d]", critical, barriers)
	}
	if win.Count == 0 || win.SumNs == 0 {
		t.Errorf("window distribution empty: %+v", win)
	}
	if win.Quantile(0.5) > win.Quantile(0.99) {
		t.Error("window quantile bound not monotone")
	}

	stats2, win2, barriers2, _ := run()
	for i := range stats {
		a, b := stats[i], stats2[i]
		a.BusyNs, a.StallNs, a.winBusy = 0, 0, 0
		b.BusyNs, b.StallNs, b.winBusy = 0, 0, 0
		if a != b {
			t.Errorf("shard %d deterministic stats differ across runs:\n%+v\n%+v", i, a, b)
		}
	}
	if win != win2 || barriers != barriers2 {
		t.Errorf("window telemetry differs across runs: %d vs %d barriers", barriers, barriers2)
	}
}
