package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"drill/internal/units"
)

// The timing wheel must be a pure representation change: New and
// NewHeapOnly dispatch the same events in the same order with the same
// Pending counts, byte for byte. The tests here drive both schedulers
// through the same scripted operation sequences — spanning the near
// window, the wheel horizon, the far overflow tier, timer churn, and
// mid-run clock advances — and diff the full dispatch transcripts.

// wheelOp is one scripted scheduler operation. Scripts are generated
// (property test) or decoded from fuzz input, then applied identically to
// a wheel Sim and a heap-only Sim.
type wheelOp struct {
	kind  uint8 // 0 After, 1 chained After, 2 AfterDaemon, 3 Reset, 4 Stop, 5 RunUntil
	delay units.Time
	tm    int // timer index for Reset/Stop
}

const wheelScriptTimers = 4

// applyScript runs ops on s and returns the dispatch transcript: one line
// per event in dispatch order, recording the label, the clock, and the
// pending count observed inside the callback, plus a trailer with the
// final clock and pending count after Run drains the queue.
func applyScript(s *Sim, ops []wheelOp) []string {
	var log []string
	rec := func(label int) {
		log = append(log, fmt.Sprintf("%d@%d:p%d", label, s.Now(), s.Pending()))
	}
	var tms [wheelScriptTimers]*Timer
	for i := range tms {
		i := i
		tms[i] = s.NewTimer(func() { rec(-1 - i) })
	}
	for i, op := range ops {
		label := i
		switch op.kind {
		case 0:
			s.After(op.delay, func() { rec(label) })
		case 1:
			// Scheduling from inside a callback lands in the already-open
			// window — the near-heap straggler path.
			child := (op.delay*7919 + 13) % (3 * bucketW)
			s.After(op.delay, func() {
				rec(label)
				s.After(child, func() { rec(label + 1_000_000) })
			})
		case 2:
			s.AfterDaemon(op.delay, func() { rec(label) })
		case 3:
			tms[op.tm%wheelScriptTimers].Reset(op.delay)
		case 4:
			tms[op.tm%wheelScriptTimers].Stop()
		case 5:
			s.RunUntil(s.Now() + op.delay)
			log = append(log, fmt.Sprintf("adv@%d:p%d", s.Now(), s.Pending()))
		}
	}
	s.Run()
	return append(log, fmt.Sprintf("end@%d:p%d", s.Now(), s.Pending()))
}

// diffScript applies ops to a wheel and a heap-only simulator and returns
// the first transcript divergence, or "" if they match exactly.
func diffScript(ops []wheelOp) string {
	w := applyScript(New(42), ops)
	h := applyScript(NewHeapOnly(42), ops)
	if len(w) != len(h) {
		return fmt.Sprintf("transcript lengths differ: wheel %d, heap %d", len(w), len(h))
	}
	for i := range w {
		if w[i] != h[i] {
			return fmt.Sprintf("entry %d: wheel %q, heap %q", i, w[i], h[i])
		}
	}
	return ""
}

// randScript generates an op sequence whose delays cover every tier
// boundary: same-instant ties (0), the open bucket window, the wheel
// horizon, and far-tier overflow, with coarse quantization so distinct
// ops frequently collide on the same timestamp and exercise the FIFO
// tie-break.
func randScript(rng *rand.Rand, n int) []wheelOp {
	ranges := []units.Time{
		0,                // same-instant ties
		bucketW,          // inside the open window
		16 * bucketW,     // short wheel hop
		horizonW,         // anywhere on the wheel
		3 * horizonW / 2, // beyond the horizon: far tier
	}
	ops := make([]wheelOp, n)
	for i := range ops {
		r := ranges[rng.Intn(len(ranges))]
		var d units.Time
		if r > 0 {
			d = units.Time(rng.Int63n(int64(r)))
			if rng.Intn(2) == 0 {
				d &^= 255 // quantize to force timestamp collisions
			}
		}
		ops[i] = wheelOp{kind: uint8(rng.Intn(6)), delay: d, tm: rng.Intn(wheelScriptTimers)}
	}
	return ops
}

// TestWheelMatchesHeapReference is the equivalence property test: random
// schedule/Reset/Stop/advance sequences must dispatch identically — same
// order, same clocks, same Pending counts — on the wheel and the
// reference heap.
func TestWheelMatchesHeapReference(t *testing.T) {
	iters, n := 300, 120
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ops := randScript(rng, n)
		if d := diffScript(ops); d != "" {
			t.Fatalf("seed %d: wheel diverged from heap reference: %s", seed, d)
		}
	}
}

// FuzzWheelVsHeap decodes arbitrary bytes into an op script and asserts
// wheel/heap transcript equality. Three bytes per op: kind, and a 16-bit
// delay seed stretched across the tier ranges by its low bits.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 5, 2, 0, 3, 255, 255})
	f.Add([]byte{1, 0, 4, 3, 12, 0, 5, 0, 64, 4, 0, 0})
	f.Add([]byte{2, 7, 7, 5, 255, 0, 0, 0, 0, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512]
		}
		var ops []wheelOp
		for i := 0; i+2 < len(data); i += 3 {
			raw := units.Time(data[i+1])<<8 | units.Time(data[i+2])
			var d units.Time
			switch data[i] % 4 {
			case 0:
				d = raw % bucketW
			case 1:
				d = (raw * 16) % horizonW
			case 2:
				d = raw * units.Time(1) << 10 // up to ~4 horizons out
			case 3:
				d = (raw &^ 255) % (4 * bucketW) // tie-heavy
			}
			ops = append(ops, wheelOp{kind: data[i] % 6, delay: d, tm: int(data[i+1]) % wheelScriptTimers})
		}
		if d := diffScript(ops); d != "" {
			t.Fatalf("wheel diverged from heap reference: %s", d)
		}
	})
}

// TestWheelScheduleZeroAllocs pins the scheduler's steady-state
// allocation count at zero: events are pointer-free PODs, callbacks park
// in recycled slots, and the wheel's bucket arrays rotate — so once the
// arrays are warm, schedule/dispatch/cancel cycles on every tier must not
// allocate at all.
func TestWheelScheduleZeroAllocs(t *testing.T) {
	s := New(1)
	n := 0
	fn := func() { n++ }
	// Warm every array: buckets, dispatch list, both heaps, the slot table.
	for i := 0; i < 20000; i++ {
		s.After(units.Time(i%4000), fn)
	}
	tm := s.NewTimer(fn)
	tm.Reset(2 * horizonW)
	s.Run()
	tm.Stop()

	if a := testing.AllocsPerRun(2000, func() {
		s.After(100, fn)        // near tier
		s.After(16*bucketW, fn) // wheel tier
		s.After(2*horizonW, fn) // far tier
		s.RunUntil(s.Now() + 3*horizonW)
	}); a != 0 {
		t.Fatalf("schedule/dispatch allocates %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(2000, func() {
		tm.Reset(8 * bucketW)  // wheel: O(1) insert
		tm.Reset(200)          // near heap relocate
		tm.Reset(2 * horizonW) // far heap relocate
		tm.Stop()
	}); a != 0 {
		t.Fatalf("timer reset/stop allocates %v allocs/op, want 0", a)
	}
	id := s.Register(fn)
	if a := testing.AllocsPerRun(2000, func() {
		s.AtKeyID(s.Now()+bucketW, s.ReserveKey(), id)
		s.RunUntil(s.Now() + 2*bucketW)
	}); a != 0 {
		t.Fatalf("AtKeyID arm/dispatch allocates %v allocs/op, want 0", a)
	}
}
