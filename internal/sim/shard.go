// Conservative time-window synchronizer for sharded simulations.
//
// A sharded run partitions the fabric into shards, each owning a private
// Sim, plus one global Sim for everything that observes or steers more
// than one shard (workload generators, failure injection, samplers,
// daemon tickers). Shards interact only through wire propagation across
// shard-boundary links, whose minimum propagation delay L is the
// lookahead bound: an event a shard executes at time t cannot affect
// another shard before t+L. The synchronizer exploits that bound the
// classic conservative-parallel-DES way — pick the earliest pending event
// time m across all schedulers, let every shard run its private events in
// [T, W) with W = min(m+L, next global event, horizon) concurrently, then
// barrier, exchange the cross-shard packets those windows produced, run
// the global events at the barrier instant, and repeat.
//
// Determinism argument. Dispatch order inside every scheduler is
// (time, key), and keys carry a class in their top bits: global < local <
// arrival at the same instant (see the class constants in sim.go). The
// barrier loop realizes exactly that order globally:
//
//   - Global events at the barrier time T run while every shard is parked
//     at T having dispatched strictly less than T — the same pre-local
//     slot the sequential scheduler gives the global class.
//   - Two local events in the same shard dispatch in that shard's
//     (time, seq) order; the scheduling calls that allocated their seqs
//     run in the same relative order in both engines, so the order
//     matches the sequential engine's restriction to that shard.
//   - Local events in different shards touch disjoint state (separate
//     schedulers, packet pools, RNG streams, stat blocks), so their
//     relative order cannot affect results; per-shard results are folded
//     in shard-ID order afterwards.
//   - A cross-shard arrival's key is ArrivalKey(port, n) — a pure
//     function of the destination port index and the port's departure
//     counter, both engine-invariant — so injecting it at a barrier lands
//     it in exactly the slot the sequential scheduler dispatches it.
//
// The lookahead guarantees no window is ever too wide: an event executed
// in [T, W) departs a boundary link no earlier than m and so arrives no
// earlier than m+L >= W, i.e. always in a later window, always injectable
// at a barrier before the destination shard reaches it.
//
// This file is the one place in the simulation core where goroutines and
// channels are legal (the drillvet nondeterminism analyzer exempts it by
// name): shards run on persistent workers, and the coordinator's channel
// send / WaitGroup handshake provides the happens-before edges that make
// each shard's memory visible to the coordinator at every barrier.
package sim

import (
	"sync"

	"drill/internal/units"
)

// shardCmd tells a worker how far to run its shard: events strictly
// before t (a window) or up to and including t (the final drain pass).
type shardCmd struct {
	t         units.Time
	inclusive bool
}

// ShardGroup couples one global scheduler with N shard schedulers under
// the window protocol. Configure the exported fields, call Start, then
// drive it with RunUntil exactly as a sequential run drives Sim.RunUntil;
// Close parks the workers when the run is over.
type ShardGroup struct {
	// Global runs barrier-class events: workload, control plane, daemon
	// tickers, observers. Its clock is the authoritative run clock.
	Global *Sim
	// Shards run the data plane, one goroutine each.
	Shards []*Sim
	// Lookahead is the minimum propagation delay across shard-boundary
	// links; it must be positive or no window could make progress.
	Lookahead units.Time
	// Exchange drains every shard's outbound packet queue into the
	// destination shards' schedulers, in shard-ID order. It is called at
	// barriers only, with all workers parked.
	Exchange func()

	cmds    []chan shardCmd
	wg      sync.WaitGroup
	started bool
}

// Start validates the configuration and launches one persistent worker
// per shard. The workers park between windows; their lifetime spans every
// subsequent RunUntil call until Close.
func (g *ShardGroup) Start() {
	if g.started {
		panic("sim: ShardGroup started twice")
	}
	if g.Global == nil || len(g.Shards) == 0 {
		panic("sim: ShardGroup requires a global sim and at least one shard")
	}
	if g.Lookahead <= 0 {
		panic("sim: ShardGroup requires a positive lookahead bound")
	}
	g.cmds = make([]chan shardCmd, len(g.Shards))
	for i, s := range g.Shards {
		ch := make(chan shardCmd)
		g.cmds[i] = ch
		go g.worker(s, ch)
	}
	g.started = true
}

// worker runs one shard's windows as commands arrive. The channel receive
// orders the coordinator's barrier-time writes before the window runs,
// and wg.Done orders the window's writes before the coordinator resumes.
func (g *ShardGroup) worker(s *Sim, ch chan shardCmd) {
	for cmd := range ch {
		if cmd.inclusive {
			s.RunUntil(cmd.t)
		} else {
			s.RunBefore(cmd.t)
		}
		g.wg.Done()
	}
}

// Close terminates the workers. The group cannot be restarted.
func (g *ShardGroup) Close() {
	if !g.started {
		return
	}
	for _, ch := range g.cmds {
		close(ch)
	}
	g.cmds = nil
}

// runShards dispatches one window to every shard that has work before t
// and parks the idle ones at t. A single busy shard runs inline — the
// common case on small topologies, where a goroutine handoff would cost
// more than the window.
func (g *ShardGroup) runShards(t units.Time, inclusive bool) {
	busy := -1
	nBusy := 0
	for i, s := range g.Shards {
		at, ok := s.NextAt()
		if ok && (at < t || (inclusive && at == t)) {
			busy = i
			nBusy++
		}
	}
	if nBusy <= 1 {
		for i, s := range g.Shards {
			if i == busy {
				if inclusive {
					s.RunUntil(t)
				} else {
					s.RunBefore(t)
				}
			} else {
				s.AdvanceTo(t)
			}
		}
		return
	}
	cmd := shardCmd{t: t, inclusive: inclusive}
	for i, s := range g.Shards {
		at, ok := s.NextAt()
		if ok && (at < t || (inclusive && at == t)) {
			g.wg.Add(1)
			g.cmds[i] <- cmd
		} else {
			s.AdvanceTo(t)
		}
	}
	g.wg.Wait()
}

// RunUntil advances the whole group to t: every global event at or before
// t and every shard event at or before t dispatches, in the canonical
// (time, class, key) order, and all clocks end at t. It is the sharded
// equivalent of Sim.RunUntil and may be called repeatedly (measurement
// horizon, then drain horizon) — cross-shard packets still in flight at t
// stay queued in their outboxes and are exchanged on the next call.
func (g *ShardGroup) RunUntil(until units.Time) {
	if !g.started {
		panic("sim: ShardGroup not started")
	}
	T := g.Global.Now()
	for T < until {
		g.Exchange()
		g.Global.RunUntil(T)

		// Earliest pending event anywhere decides whether a window before
		// `until` remains, and how wide it can safely be.
		m := until
		ok := false
		if at, o := g.Global.NextAt(); o && at < m {
			m, ok = at, true
		}
		mShard := until
		okShard := false
		for _, s := range g.Shards {
			if at, o := s.NextAt(); o && at < mShard {
				mShard, okShard = at, true
			}
		}
		if okShard && mShard < m {
			m, ok = mShard, true
		}
		if !ok {
			break
		}

		// Window end: nothing cross-shard can land before mShard+L, no
		// shard may run past the next global event (it could steer any
		// shard), and the horizon caps everything.
		W := until
		if okShard && mShard+g.Lookahead < W {
			W = mShard + g.Lookahead
		}
		if at, o := g.Global.NextAt(); o && at < W {
			W = at
		}
		g.runShards(W, false)
		T = W
	}

	// Final pass: the loop left every clock at `until` with only events
	// at exactly `until` pending (globals first, then shard events; any
	// arrivals they generate land strictly after `until`).
	g.Exchange()
	g.Global.RunUntil(until)
	g.runShards(until, true)
}

// Executed sums dispatched events across the global and shard schedulers.
// The mapping of events to schedulers is one-to-one with the sequential
// engine, so this total matches Sim.Executed of an equivalent run.
func (g *ShardGroup) Executed() uint64 {
	n := g.Global.Executed
	for _, s := range g.Shards {
		n += s.Executed
	}
	return n
}
