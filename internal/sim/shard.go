// Conservative time-window synchronizer for sharded simulations.
//
// A sharded run partitions the fabric into shards, each owning a private
// Sim, plus one global Sim for everything that observes or steers more
// than one shard (workload generators, failure injection, samplers,
// daemon tickers). Shards interact only through wire propagation across
// shard-boundary links, whose minimum propagation delay L is the
// lookahead bound: an event a shard executes at time t cannot affect
// another shard before t+L. The synchronizer exploits that bound the
// classic conservative-parallel-DES way — pick the earliest pending event
// time m across all schedulers, let every shard run its private events in
// [T, W) with W = min(m+L, next global event, horizon) concurrently, then
// barrier, exchange the cross-shard packets those windows produced, run
// the global events at the barrier instant, and repeat.
//
// Determinism argument. Dispatch order inside every scheduler is
// (time, key), and keys carry a class in their top bits: global < local <
// arrival at the same instant (see the class constants in sim.go). The
// barrier loop realizes exactly that order globally:
//
//   - Global events at the barrier time T run while every shard is parked
//     at T having dispatched strictly less than T — the same pre-local
//     slot the sequential scheduler gives the global class.
//   - Two local events in the same shard dispatch in that shard's
//     (time, seq) order; the scheduling calls that allocated their seqs
//     run in the same relative order in both engines, so the order
//     matches the sequential engine's restriction to that shard.
//   - Local events in different shards touch disjoint state (separate
//     schedulers, packet pools, RNG streams, stat blocks), so their
//     relative order cannot affect results; per-shard results are folded
//     in shard-ID order afterwards.
//   - A cross-shard arrival's key is ArrivalKey(port, n) — a pure
//     function of the destination port index and the port's departure
//     counter, both engine-invariant — so injecting it at a barrier lands
//     it in exactly the slot the sequential scheduler dispatches it.
//
// The lookahead guarantees no window is ever too wide: an event executed
// in [T, W) departs a boundary link no earlier than m and so arrives no
// earlier than m+L >= W, i.e. always in a later window, always injectable
// at a barrier before the destination shard reaches it.
//
// This file is the one place in the simulation core where goroutines and
// channels are legal (the drillvet nondeterminism analyzer exempts it by
// name): shards run on persistent workers, and the coordinator's channel
// send / WaitGroup handshake provides the happens-before edges that make
// each shard's memory visible to the coordinator at every barrier.
package sim

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"drill/internal/units"
)

// shardCmd tells a worker how far to run its shard: events strictly
// before t (a window) or up to and including t (the final drain pass).
type shardCmd struct {
	t         units.Time
	inclusive bool
}

// ShardStat is one shard's window-protocol telemetry. Windows, Events,
// and Critical are pure functions of the event stream, identical across
// runs of the same seed; BusyNs and StallNs are wall-clock attribution
// (plain nanosecond counts, never sim time) and vary with the machine.
// All fields are written only by the shard's own worker or by the
// coordinator with every worker parked, and folded at barriers — reading
// them from an observer tick is race-free by the barrier happens-before.
type ShardStat struct {
	Windows  uint64 // windows in which this shard dispatched at least one event
	Events   uint64 // events dispatched across those windows
	Critical uint64 // windows whose width was bounded by this shard's earliest event
	BusyNs   int64  // wall time spent running windows
	StallNs  int64  // wall time parked while a window ran elsewhere

	winBusy int64 // scratch: the current window's busy ns, read at the barrier
}

// WindowStats is the distribution of synchronizer window widths in
// sim-time nanoseconds, log2-bucketed so recording is a pair of integer
// adds. Widths are sim-time differences, so the whole distribution is
// deterministic for a given seed and shard count.
type WindowStats struct {
	Count uint64     // windows opened
	SumNs uint64     // total width
	Bkt   [65]uint64 // Bkt[i] counts widths w with bits.Len64(w) == i
}

func (w *WindowStats) record(ns uint64) {
	w.Count++
	w.SumNs += ns
	w.Bkt[bits.Len64(ns)]++
}

// Quantile returns an upper bound on the q-quantile window width in
// sim-ns: the upper edge of the log2 bucket holding that rank. q outside
// [0,1) is clamped; an empty distribution reports 0.
func (w *WindowStats) Quantile(q float64) uint64 {
	if w.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(w.Count))
	if rank >= w.Count {
		rank = w.Count - 1
	}
	var seen uint64
	for i, c := range w.Bkt {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 0
}

// ShardGroup couples one global scheduler with N shard schedulers under
// the window protocol. Configure the exported fields, call Start, then
// drive it with RunUntil exactly as a sequential run drives Sim.RunUntil;
// Close parks the workers when the run is over.
type ShardGroup struct {
	// Global runs barrier-class events: workload, control plane, daemon
	// tickers, observers. Its clock is the authoritative run clock.
	Global *Sim
	// Shards run the data plane, one goroutine each.
	Shards []*Sim
	// Lookahead is the minimum propagation delay across shard-boundary
	// links; it must be positive or no window could make progress.
	Lookahead units.Time
	// Exchange drains every shard's outbound packet queue into the
	// destination shards' schedulers, in shard-ID order. It is called at
	// barriers only, with all workers parked.
	Exchange func()

	cmds    []chan shardCmd
	wg      sync.WaitGroup
	started bool

	// Window-protocol telemetry, folded at barriers. None of it feeds
	// back into scheduling decisions (observe, never steer): window
	// sizing reads only NextAt and the lookahead, exactly as before.
	stats      []ShardStat
	dispatched []bool // scratch: which shards received the current window
	win        WindowStats
	barriers   uint64

	// Precomputed pprof label contexts: built once at Start so applying
	// a label on the window path is a single SetGoroutineLabels call
	// with no allocation (pprof.Do would allocate per window).
	ctxBarrier  context.Context
	ctxExchange context.Context
	ctxWindow   []context.Context
}

// Start validates the configuration and launches one persistent worker
// per shard. The workers park between windows; their lifetime spans every
// subsequent RunUntil call until Close.
func (g *ShardGroup) Start() {
	if g.started {
		panic("sim: ShardGroup started twice")
	}
	if g.Global == nil || len(g.Shards) == 0 {
		panic("sim: ShardGroup requires a global sim and at least one shard")
	}
	if g.Lookahead <= 0 {
		panic("sim: ShardGroup requires a positive lookahead bound")
	}
	g.cmds = make([]chan shardCmd, len(g.Shards))
	g.stats = make([]ShardStat, len(g.Shards))
	g.dispatched = make([]bool, len(g.Shards))
	g.ctxBarrier = pprof.WithLabels(context.Background(), pprof.Labels("phase", "barrier"))
	g.ctxExchange = pprof.WithLabels(context.Background(), pprof.Labels("phase", "exchange"))
	g.ctxWindow = make([]context.Context, len(g.Shards))
	for i, s := range g.Shards {
		g.ctxWindow[i] = pprof.WithLabels(context.Background(),
			pprof.Labels("shard", strconv.Itoa(i), "phase", "window"))
		ch := make(chan shardCmd)
		g.cmds[i] = ch
		go g.worker(i, s, ch)
	}
	g.started = true
}

// worker runs one shard's windows as commands arrive. The channel receive
// orders the coordinator's barrier-time writes before the window runs,
// and wg.Done orders the window's writes (including the shard's stat
// block) before the coordinator resumes. The wall reads time only how
// long the window took — the value never becomes a sim timestamp and
// never influences scheduling.
func (g *ShardGroup) worker(i int, s *Sim, ch chan shardCmd) {
	pprof.SetGoroutineLabels(g.ctxWindow[i])
	st := &g.stats[i]
	for cmd := range ch {
		start := time.Now() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
		e0 := s.Executed
		if cmd.inclusive {
			s.RunUntil(cmd.t)
		} else {
			s.RunBefore(cmd.t)
		}
		d := time.Since(start).Nanoseconds() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
		st.Windows++
		st.Events += s.Executed - e0
		st.BusyNs += d
		st.winBusy = d
		g.wg.Done()
	}
}

// Close terminates the workers. The group cannot be restarted.
func (g *ShardGroup) Close() {
	if !g.started {
		return
	}
	for _, ch := range g.cmds {
		close(ch)
	}
	g.cmds = nil
}

// runShards dispatches one window to every shard that has work before t
// and parks the idle ones at t. A single busy shard runs inline — the
// common case on small topologies, where a goroutine handoff would cost
// more than the window.
func (g *ShardGroup) runShards(t units.Time, inclusive bool) {
	busy := -1
	nBusy := 0
	for i, s := range g.Shards {
		at, ok := s.NextAt()
		if ok && (at < t || (inclusive && at == t)) {
			busy = i
			nBusy++
		}
	}
	if nBusy == 0 {
		for _, s := range g.Shards {
			s.AdvanceTo(t)
		}
		return
	}
	if nBusy == 1 {
		start := time.Now() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
		for i, s := range g.Shards {
			if i == busy {
				pprof.SetGoroutineLabels(g.ctxWindow[i])
				e0 := s.Executed
				if inclusive {
					s.RunUntil(t)
				} else {
					s.RunBefore(t)
				}
				g.stats[i].Windows++
				g.stats[i].Events += s.Executed - e0
				pprof.SetGoroutineLabels(g.ctxBarrier)
			} else {
				s.AdvanceTo(t)
			}
		}
		wall := time.Since(start).Nanoseconds() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
		for i := range g.stats {
			if i == busy {
				g.stats[i].BusyNs += wall
			} else {
				g.stats[i].StallNs += wall
			}
		}
		return
	}
	cmd := shardCmd{t: t, inclusive: inclusive}
	start := time.Now() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
	for i, s := range g.Shards {
		at, ok := s.NextAt()
		if ok && (at < t || (inclusive && at == t)) {
			g.dispatched[i] = true
			g.wg.Add(1)
			g.cmds[i] <- cmd
		} else {
			g.dispatched[i] = false
			s.AdvanceTo(t)
		}
	}
	g.wg.Wait()
	wall := time.Since(start).Nanoseconds() //drill:allow nondeterminism wall-time window telemetry; never converted to sim time
	for i := range g.stats {
		st := &g.stats[i]
		if g.dispatched[i] {
			// The shard ran for winBusy of the window; the rest of the
			// wall time it sat parked waiting for the slowest shard.
			if d := wall - st.winBusy; d > 0 {
				st.StallNs += d
			}
		} else {
			st.StallNs += wall
		}
	}
}

// RunUntil advances the whole group to t: every global event at or before
// t and every shard event at or before t dispatches, in the canonical
// (time, class, key) order, and all clocks end at t. It is the sharded
// equivalent of Sim.RunUntil and may be called repeatedly (measurement
// horizon, then drain horizon) — cross-shard packets still in flight at t
// stay queued in their outboxes and are exchanged on the next call.
func (g *ShardGroup) RunUntil(until units.Time) {
	if !g.started {
		panic("sim: ShardGroup not started")
	}
	pprof.SetGoroutineLabels(g.ctxBarrier)
	defer pprof.SetGoroutineLabels(context.Background())
	T := g.Global.Now()
	for T < until {
		g.barriers++
		pprof.SetGoroutineLabels(g.ctxExchange)
		g.Exchange()
		pprof.SetGoroutineLabels(g.ctxBarrier)
		g.Global.RunUntil(T)

		// Earliest pending event anywhere decides whether a window before
		// `until` remains, and how wide it can safely be. The argmin
		// shard is remembered purely for attribution: if its earliest
		// event ends up bounding the window, it is the critical shard.
		m := until
		ok := false
		if at, o := g.Global.NextAt(); o && at < m {
			m, ok = at, true
		}
		mShard := until
		okShard := false
		crit := -1
		for i, s := range g.Shards {
			if at, o := s.NextAt(); o && at < mShard {
				mShard, okShard, crit = at, true, i
			}
		}
		if okShard && mShard < m {
			m, ok = mShard, true
		}
		if !ok {
			break
		}

		// Window end: nothing cross-shard can land before mShard+L, no
		// shard may run past the next global event (it could steer any
		// shard), and the horizon caps everything.
		W := until
		if okShard && mShard+g.Lookahead < W {
			W = mShard + g.Lookahead
		} else {
			crit = -1 // the horizon, not a shard, bounded this window
		}
		if at, o := g.Global.NextAt(); o && at < W {
			W = at
			crit = -1 // a global event bounded this window
		}
		if crit >= 0 {
			g.stats[crit].Critical++
		}
		g.win.record(uint64(W - T))
		g.runShards(W, false)
		T = W
	}

	// Final pass: the loop left every clock at `until` with only events
	// at exactly `until` pending (globals first, then shard events; any
	// arrivals they generate land strictly after `until`).
	g.barriers++
	pprof.SetGoroutineLabels(g.ctxExchange)
	g.Exchange()
	pprof.SetGoroutineLabels(g.ctxBarrier)
	g.Global.RunUntil(until)
	g.runShards(until, true)
}

// Executed sums dispatched events across the global and shard schedulers.
// The mapping of events to schedulers is one-to-one with the sequential
// engine, so this total matches Sim.Executed of an equivalent run.
func (g *ShardGroup) Executed() uint64 {
	n := g.Global.Executed
	for _, s := range g.Shards {
		n += s.Executed
	}
	return n
}

// ShardStats returns a copy of the per-shard window counters. Call it
// only with the workers parked — between RunUntil calls, or from a
// global observer tick, which runs at a barrier — so the barrier
// happens-before makes every worker's writes visible.
func (g *ShardGroup) ShardStats() []ShardStat {
	out := make([]ShardStat, len(g.stats))
	copy(out, g.stats)
	return out
}

// WindowStats returns the window-width distribution recorded so far. The
// same parked-workers caveat as ShardStats applies (the coordinator is
// the only writer, so any caller already serialized with RunUntil is safe).
func (g *ShardGroup) WindowStats() WindowStats { return g.win }

// Barriers reports how many exchange barriers the group has executed.
func (g *ShardGroup) Barriers() uint64 { return g.barriers }
