// Package sim provides the discrete-event simulation engine underlying the
// DRILL fabric models. It offers a nanosecond-resolution virtual clock, a
// binary-heap event scheduler with deterministic FIFO tie-breaking, and
// seeded random-number streams so every run is reproducible.
package sim

import (
	"math/rand"

	"drill/internal/units"
)

type event struct {
	at     units.Time
	seq    uint64
	fn     func()
	daemon bool
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run independent simulations in separate Sim instances.
type Sim struct {
	now     units.Time
	heap    []event
	seq     uint64
	seed    int64
	rng     *rand.Rand
	halted  bool
	daemons int // scheduled daemon events (they never keep Run alive)

	// Executed counts events dispatched since creation, for reporting.
	Executed uint64
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current simulated time.
func (s *Sim) Now() units.Time { return s.now }

// Rand returns the simulator's primary random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Stream returns an independent deterministic random stream identified by id.
// Distinct ids yield decorrelated streams for the same simulator seed, so
// e.g. workload arrivals and switch sampling do not perturb each other.
func (s *Sim) Stream(id int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return rand.New(rand.NewSource(s.seed ^ (id+1)*mix))
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
//
//drill:hotpath
func (s *Sim) At(t units.Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
//
//drill:hotpath
func (s *Sim) After(d units.Time, fn func()) { s.At(s.now+d, fn) }

// AfterDaemon schedules fn like After, but as a daemon event: Run treats a
// queue holding only daemon events as drained. Periodic samplers and
// decay tickers use this so they never keep a finished simulation alive.
func (s *Sim) AfterDaemon(d units.Time, fn func()) {
	t := s.now + d
	if t < s.now {
		panic("sim: daemon event scheduled in the past")
	}
	s.seq++
	s.daemons++
	s.push(event{at: t, seq: s.seq, fn: fn, daemon: true})
}

// Halt stops the run loop after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending reports the number of scheduled events not yet dispatched.
func (s *Sim) Pending() int { return len(s.heap) }

// Run dispatches events in time order until only daemon events remain or
// Halt is called.
func (s *Sim) Run() {
	for len(s.heap) > s.daemons && !s.halted {
		s.step()
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
func (s *Sim) RunUntil(t units.Time) {
	for len(s.heap) > 0 && !s.halted && s.heap[0].at <= t {
		s.step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

//drill:hotpath
func (s *Sim) step() {
	ev := s.pop()
	if ev.daemon {
		s.daemons--
	}
	s.now = ev.at
	s.Executed++
	ev.fn()
}

// push and pop implement a hand-rolled binary min-heap keyed on (at, seq).
// container/heap's interface indirection costs measurably at the tens of
// millions of events a single experiment point dispatches.

//drill:hotpath
func (s *Sim) push(ev event) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

//drill:hotpath
func (s *Sim) pop() event {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // clear the closure so the GC can reclaim captures
	s.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && less(s.heap[l], s.heap[least]) {
			least = l
		}
		if r < last && less(s.heap[r], s.heap[least]) {
			least = r
		}
		if least == i {
			break
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
	return top
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Ticker invokes fn every interval until the simulation drains or stop is
// requested. It is used by periodic samplers (queue-length STDV, DRE decay).
type Ticker struct {
	s        *Sim
	interval units.Time
	stop     bool
	fn       func(now units.Time)
}

// NewTicker starts a periodic callback with the given interval. The first
// tick fires one interval from now.
func NewTicker(s *Sim, interval units.Time, fn func(now units.Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	s.AfterDaemon(interval, t.tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.stop = true }

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn(t.s.Now())
	t.s.AfterDaemon(t.interval, t.tick)
}
