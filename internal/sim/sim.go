// Package sim provides the discrete-event simulation engine underlying the
// DRILL fabric models. It offers a nanosecond-resolution virtual clock, an
// O(1) hierarchical timing-wheel scheduler with deterministic FIFO
// tie-breaking (a binary-heap overflow tier catches far-future events),
// cancellable re-armable Timers whose entries are location-tracked across
// every tier (so a Reset or Stop relocates/deletes the live entry instead
// of abandoning a tombstone), and seeded random-number streams so every
// run is reproducible.
//
// # Scheduler structure
//
// Events live in one of three tiers, picked by how far ahead of the wheel
// cursor they land:
//
//   - near: the current wheel bucket's window, split between a sorted
//     dispatch list (the bucket's untracked events, ordered once at pour
//     time and consumed by a cursor) and a small index-tracked min-heap
//     (Timer-owned entries, plus anything scheduled into the window after
//     it opened). Dispatch interleaves the two by direct (time, seq)
//     comparison, so the exact total order is enforced here.
//   - wheel: a calendar queue of fixed-width buckets covering the short
//     horizon that dominates a packet simulation (tx-done, link-depart,
//     visibility updates, RTO resets). Insertion and timer cancellation
//     are O(1) appends/swap-removes; a bucket's events are poured into
//     the near tier when the cursor reaches it.
//   - far: the index-tracked heap retained from the pre-wheel scheduler,
//     as the overflow tier for events beyond the wheel horizon. Events
//     cascade from far into the wheel as the cursor advances.
//
// Determinism argument: dispatch order is (at, seq) everywhere. The near
// tier compares that key directly, whether an event sits in the sorted
// list or the heap. A wheel bucket only ever holds events of one bucket
// window per revolution (anything nearer goes to the near tier, anything
// farther goes to a later bucket or the far tier), and the whole bucket
// is poured and ordered before any of it dispatches, so intra-bucket
// insertion order never matters. The far tier is a heap on the same key
// and only feeds the wheel. Hence the wheel scheduler dispatches in
// exactly the order the plain heap would — NewHeapOnly exists to assert
// that equivalence in tests, byte for byte.
package sim

import (
	"math/rand"
	"slices"

	"drill/internal/units"
)

// Wheel geometry. Buckets are 1.024µs wide — comparable to one MTU
// serialization at 10Gbps, so back-to-back packet events land a bucket or
// two ahead — and the 4096-bucket span covers ~4.2ms, which swallows RTO
// re-arms (1ms floor) and control-plane reconvergence (1ms) on the O(1)
// path. Only drain horizons and backed-off RTOs overflow to the far tier.
const (
	wheelShift = 10                                  // log2 bucket width in ns
	wheelBits  = 12                                  // log2 bucket count
	wheelSize  = 1 << wheelBits                      // buckets per revolution
	wheelMask  = wheelSize - 1                       // bucket index mask
	bucketW    = units.Nanosecond << wheelShift      // bucket width
	horizonW   = units.Time(wheelSize) << wheelShift // wheel span
)

// Event-key flag bits. The FIFO tie-break sequence number is packed above
// the flag bits, so one uint64 comparison orders same-time events and
// carries the daemon/observer/tracked classification without widening the
// event.
const (
	keyDaemon  uint64 = 1 << 0 // never keeps Run alive
	keySilent  uint64 = 1 << 1 // excluded from Executed accounting
	keyTracked uint64 = 1 << 2 // a Timer owns this entry (location-tracked)
	keyShift          = 3
)

// Event-key class bits. The top two key bits partition same-time events
// into three classes, dispatched in class order: global events (workload
// arrivals, failure injection, daemon tickers — anything a sharded run
// executes at a window barrier), then shard-local events (the data plane's
// tx/visibility/timer events), then wire arrivals (packets landing on a
// port after propagation). The class order is what makes the sharded
// engine byte-identical to the sequential one: a barrier runs all globals
// at time T before any shard touches its local events at T, exactly as a
// single scheduler sorting on these keys would, and a cross-shard arrival
// carries a key derived from engine-invariant state (port index and
// per-port departure sequence, see ArrivalKey) rather than from any one
// scheduler's private counter.
const (
	classShift          = 62
	classGlobal  uint64 = 0 << classShift // barrier-executed: workload, control plane, daemons
	classLocal   uint64 = 1 << classShift // shard-private data-plane events
	classArrival uint64 = 2 << classShift // wire arrivals; key from ArrivalKey
)

// Timer tier tags (Timer.tier, eventHeap.tier).
const (
	tierNone  int8 = iota // not scheduled
	tierNear              // near heap index Timer.idx
	tierFar               // far heap index Timer.idx
	tierWheel             // wheel bucket Timer.bucket, slot Timer.idx
)

// event is deliberately pointer-free: 24 bytes of plain data. The callback
// (and owning Timer, for tracked entries) lives in the Sim's slot table,
// referenced by id. Events are copied constantly — heap sifts, bucket
// pours, dispatch-list sorts — and keeping them POD means those copies are
// raw memmoves with no write barriers, and none of the scheduler's arrays
// (4096 wheel buckets, two heaps, the dispatch list) hold pointers the
// garbage collector has to scan.
//
// id >= 0 indexes Sim.slots (a per-event slot, recycled through a free
// list when the event dispatches or is cancelled); id < 0 is ^id into
// Sim.perms, the registry of permanent callbacks interned once with
// Register and never released — the fabric's per-port callbacks take this
// path, skipping slot churn entirely.
type event struct {
	at  units.Time
	key uint64 // seq<<keyShift | flags; orders same-time events FIFO
	id  int32  // slot index (>= 0) or ^perm index (< 0)
}

// slot parks one scheduled event's pointers outside the event arrays.
// Vacant slots chain through next into Sim.free.
type slot struct {
	fn    func()
	timer *Timer // non-nil for Timer-owned (location-tracked) entries
	next  int32  // free-list link when vacant
}

// less orders events by (time, seq): the flag bits sit below the sequence
// number, so comparing packed keys preserves strict FIFO tie-breaking.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run independent simulations in separate Sim instances.
type Sim struct {
	now     units.Time
	seq     uint64
	seed    int64
	rng     *rand.Rand
	halted  bool
	daemons int // scheduled daemon events (they never keep Run alive)

	near eventHeap // straggler events inside the cursor bucket's window
	far  eventHeap // events beyond the wheel horizon

	// dl is the dispatch list: the cursor bucket's untracked events,
	// sorted once at pour time and consumed by advancing dlHead. Most
	// events take this path — one append at schedule, one sort pass
	// amortized over the bucket, one cursor increment at dispatch —
	// instead of O(log n) heap sifts in and out. Only events that need
	// location tracking (Timer-owned) or that are scheduled into the
	// already-open window (they'd have to merge into a sorted prefix) go
	// through the near heap, and the dispatch loop interleaves the two by
	// (at, seq) comparison.
	dl     []event
	dlHead int

	buckets [][]event  // wheel: wheelSize fixed-width calendar buckets
	base    units.Time // start of the cursor bucket's window (bucketW-aligned)
	cur     int32      // cursor bucket index
	wcount  int        // events currently stored in wheel buckets

	slots []slot   // callback/timer storage for live events, by event id
	free  int32    // head of the vacant-slot free list; -1 when empty
	perms []func() // permanent callbacks interned by Register

	heapOnly bool // route everything through the near heap (reference mode)

	sched SchedStats // scheduler-internal traffic counters

	// Executed counts events dispatched since creation, for reporting.
	Executed uint64
}

// SchedStats counts scheduler-internal traffic: which tier each schedule
// call routed to, which structure each dispatch came from, and how much
// work cursor advancement did. Every count is a pure function of the
// event stream — no wall clock is involved — so two runs of the same seed
// produce identical stats. An event can be routed more than once: a far
// event that cascades into the wheel counts under Far at its original
// schedule and under Wheel (and Cascades) when the horizon reaches it.
type SchedStats struct {
	Near         uint64 // schedule calls routed to the near tier
	Wheel        uint64 // schedule calls routed into a wheel bucket
	Far          uint64 // schedule calls routed to the far overflow heap
	DispatchList uint64 // dispatches consumed from the sorted dispatch list
	DispatchHeap uint64 // dispatches popped from the near heap
	Cascades     uint64 // far-tier events re-routed as the horizon advanced
	Pours        uint64 // non-empty cursor buckets poured at advancement
	PouredEvents uint64 // events moved out of buckets by those pours
}

// Sched returns a copy of the scheduler-internal counters.
func (s *Sim) Sched() SchedStats { return s.sched }

// WheelOccupancy reports the number of events currently stored in wheel
// buckets — the calendar's live population, excluding the near tier and
// the far overflow heap (Pending covers all tiers).
func (s *Sim) WheelOccupancy() int { return s.wcount }

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	s := &Sim{
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		near:    eventHeap{tier: tierNear},
		far:     eventHeap{tier: tierFar},
		buckets: make([][]event, wheelSize),
		free:    -1,
	}
	s.near.s = s
	s.far.s = s
	return s
}

// NewHeapOnly returns a simulator that bypasses the timing wheel and runs
// every event through the plain binary heap — the pre-wheel scheduler.
// Dispatch order is identical to New by construction; this mode exists so
// equivalence tests can prove it (see TestSchedulerIsByteIdentical) and as
// a diagnostic fallback when bisecting scheduler suspicions.
func NewHeapOnly(seed int64) *Sim {
	s := New(seed)
	s.heapOnly = true
	return s
}

// Now returns the current simulated time.
func (s *Sim) Now() units.Time { return s.now }

// Rand returns the simulator's primary random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Stream returns an independent deterministic random stream identified by id.
// Distinct ids yield decorrelated streams for the same simulator seed, so
// e.g. workload arrivals and switch sampling do not perturb each other.
func (s *Sim) Stream(id int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return rand.New(rand.NewSource(s.seed ^ (id+1)*mix))
}

// alloc claims a slot for one scheduled event's callback (and owning
// timer, if any) and returns its id. Slots recycle through a free list, so
// steady-state scheduling never allocates.
//
//drill:hotpath
//drill:allocs 1 slot-table growth amortizes; steady state recycles ids through the free list
func (s *Sim) alloc(fn func(), t *Timer) int32 {
	if id := s.free; id >= 0 {
		sl := &s.slots[id]
		s.free = sl.next
		sl.fn, sl.timer = fn, t
		return id
	}
	s.slots = append(s.slots, slot{fn: fn, timer: t})
	return int32(len(s.slots) - 1)
}

// release vacates an event's slot, dropping its pointers so the GC can
// reclaim the captures.
//
//drill:hotpath
func (s *Sim) release(id int32) {
	sl := &s.slots[id]
	sl.fn, sl.timer = nil, nil
	sl.next = s.free
	s.free = id
}

// FnID names a callback interned with Register. Scheduling by id (AtID,
// AfterID, AtKeyID) skips the per-event slot round-trip; it is the right
// shape for long-lived fire-and-rearm callbacks like the fabric's per-port
// handlers, which are armed millions of times but created once.
type FnID int32

// Register interns a long-lived callback and returns its id. Registered
// callbacks are never released; transient callbacks should use the
// func()-taking schedule calls instead.
func (s *Sim) Register(fn func()) FnID {
	if fn == nil {
		panic("sim: Register requires a callback")
	}
	s.perms = append(s.perms, fn)
	return FnID(len(s.perms) - 1)
}

// ReserveKey allocates and returns the next local-class event key, exactly
// as scheduling a local event now would. It exists for batched event
// sources (the fabric's per-port visibility rings): a producer reserves
// the key at the instant the old one-event-per-packet design would have
// scheduled, hands it to AtKeyID when the entry reaches the head of its
// ring, and dispatch order stays byte-identical to the unbatched path.
//
//drill:hotpath
func (s *Sim) ReserveKey() uint64 {
	s.seq++
	return classLocal | s.seq<<keyShift
}

// ArrivalKey builds the event key for a wire arrival on directed port
// `port`, carrying the port's n-th departure. The key is a pure function
// of topology-invariant state — no scheduler counter — so a packet's
// arrival dispatches in the same slot whether the sending and receiving
// ports live in one scheduler or in two shards exchanging the packet at a
// window barrier. Port indexes fit 25 bits (33M directed channels) and
// per-port departures 34 bits (17G packets per port per run).
//
//drill:hotpath
func ArrivalKey(port, n uint64) uint64 {
	return classArrival | port<<(keyShift+34) | n<<keyShift
}

// At schedules fn to run at absolute time t as a shard-local event.
// Scheduling in the past panics: it would silently reorder causality.
//
//drill:hotpath
func (s *Sim) At(t units.Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.schedule(event{at: t, key: classLocal | s.seq<<keyShift, id: s.alloc(fn, nil)})
}

// AtID schedules the callback registered under id at absolute time t, with
// a fresh tie-break sequence number, exactly as At would.
//
//drill:hotpath
func (s *Sim) AtID(t units.Time, id FnID) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.schedule(event{at: t, key: classLocal | s.seq<<keyShift, id: ^int32(id)})
}

// AfterID schedules the callback registered under id to run d from now.
//
//drill:hotpath
func (s *Sim) AfterID(d units.Time, id FnID) { s.AtID(s.now+d, id) }

// AtKey schedules fn at absolute time t under an event key previously
// allocated with ReserveKey (or built with ArrivalKey). It is the batched
// producers' arm operation: a ring that reserved its entries' keys at the
// instant the unbatched design would have scheduled them re-arms one
// reusable callback per firing, and the (t, key) pair lands every dispatch
// in exactly the slot the unbatched event stream gave it. Arming with a
// stale key is legitimate precisely because the ring preserved FIFO order;
// t must not be in the past.
//
//drill:hotpath
func (s *Sim) AtKey(t units.Time, key uint64, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.schedule(event{at: t, key: key, id: s.alloc(fn, nil)})
}

// AtKeyID is AtKey over a callback registered with Register — the zero-
// alloc arm operation the fabric's per-port rings use.
//
//drill:hotpath
func (s *Sim) AtKeyID(t units.Time, key uint64, id FnID) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.schedule(event{at: t, key: key, id: ^int32(id)})
}

// After schedules fn to run d after the current time.
//
//drill:hotpath
func (s *Sim) After(d units.Time, fn func()) { s.At(s.now+d, fn) }

// AtGlobal schedules fn at absolute time t as a global-class event.
// Global events are the ones a sharded run executes at window barriers —
// workload arrivals, control-plane reconvergence, warmup/end markers —
// and they sort before every same-time local event, which is exactly when
// a barrier runs them. Sequential runs use the same class so the two
// engines dispatch in the same order.
func (s *Sim) AtGlobal(t units.Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.schedule(event{at: t, key: classGlobal | s.seq<<keyShift, id: s.alloc(fn, nil)})
}

// AfterGlobal schedules fn to run d from now as a global-class event.
func (s *Sim) AfterGlobal(d units.Time, fn func()) { s.AtGlobal(s.now+d, fn) }

// AfterDaemon schedules fn like After, but as a daemon event: Run treats a
// queue holding only daemon events as drained. Periodic samplers and
// decay tickers use this so they never keep a finished simulation alive.
// Daemon events are global-class: in a sharded run they execute at window
// barriers (the sampler reads every shard's ports, so every shard must be
// parked), and the class order makes the sequential engine dispatch them
// in the same pre-local slot a barrier gives them.
func (s *Sim) AfterDaemon(d units.Time, fn func()) {
	t := s.now + d
	if t < s.now {
		panic("sim: daemon event scheduled in the past")
	}
	s.seq++
	s.daemons++
	s.schedule(event{at: t, key: s.seq<<keyShift | keyDaemon, id: s.alloc(fn, nil)})
}

// AfterObserver schedules fn like AfterDaemon, but additionally excludes
// the dispatch from Executed accounting. Observer events exist for the
// metrics snapshotter and similar pure-read instrumentation: they may look
// at simulation state but never mutate it, so leaving them out of the
// event count is what keeps a metrics-enabled run byte-identical (same
// RunResult.Events, same fingerprints) to a metrics-free one.
func (s *Sim) AfterObserver(d units.Time, fn func()) {
	t := s.now + d
	if t < s.now {
		panic("sim: observer event scheduled in the past")
	}
	s.seq++
	s.daemons++
	s.schedule(event{at: t, key: s.seq<<keyShift | keyDaemon | keySilent, id: s.alloc(fn, nil)})
}

// schedule routes an event to its tier by distance from the wheel cursor.
//
//drill:hotpath
//drill:allocs 1 bucket growth amortizes; wheel slices retain capacity across laps
func (s *Sim) schedule(ev event) {
	if s.heapOnly || ev.at < s.base+bucketW {
		// Inside the current bucket window (or reference mode): the near
		// heap enforces (at, seq) order directly. Events behind the cursor
		// window — possible after RunUntil advanced the clock into a quiet
		// region — land here too, keeping order exact without rewinding.
		s.sched.Near++
		s.near.push(ev)
		return
	}
	if ev.at < s.base+horizonW {
		s.sched.Wheel++
		b := int32(ev.at>>wheelShift) & wheelMask
		bk := append(s.buckets[b], ev)
		s.buckets[b] = bk
		if ev.key&keyTracked != 0 {
			t := s.slots[ev.id].timer
			t.tier = tierWheel
			t.bucket = b
			t.idx = int32(len(bk) - 1)
		}
		s.wcount++
		return
	}
	s.sched.Far++
	s.far.push(ev)
}

// Halt stops the run loop after the currently executing event returns. A
// halt only affects the run in progress: the next call to Run or RunUntil
// clears it and resumes dispatching from the current simulation state.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt was called during the current/most recent run.
func (s *Sim) Halted() bool { return s.halted }

// Pending reports the number of scheduled events not yet dispatched.
// Cancelled timer events are removed from their tier eagerly, so they
// never count here.
func (s *Sim) Pending() int {
	return len(s.near.ev) + (len(s.dl) - s.dlHead) + s.wcount + len(s.far.ev)
}

// eventCmp is less as a three-way comparison, for sorting poured buckets.
// Two events never compare equal: seqs are unique.
func eventCmp(a, b event) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.key < b.key {
		return -1
	}
	if a.key > b.key {
		return 1
	}
	return 0
}

// ensureNear advances the wheel cursor — cascading overflow events in and
// pouring reached buckets into the dispatch list / near heap — until one
// of them holds the globally earliest pending event. It reports false when
// no events are pending anywhere. Advancing never skips an event: a bucket
// is emptied before the cursor moves past it, and the far tier is drained
// of everything the widened horizon covers at each step.
//
//drill:hotpath
//drill:allocs 1 in-place bucket compaction appends within retained capacity
func (s *Sim) ensureNear() bool {
	for len(s.near.ev) == 0 && s.dlHead == len(s.dl) {
		if s.wcount == 0 {
			if len(s.far.ev) == 0 {
				return false
			}
			// Wheel idle: jump the cursor straight to the earliest far
			// event's bucket instead of stepping through empty buckets.
			at := s.far.ev[0].at
			s.base = at &^ (bucketW - 1)
			s.cur = int32(at>>wheelShift) & wheelMask
		} else {
			s.base += bucketW
			s.cur = (s.cur + 1) & wheelMask
		}
		// Cascade far-tier events the advanced horizon now covers.
		for len(s.far.ev) > 0 && s.far.ev[0].at < s.base+horizonW {
			s.sched.Cascades++
			s.schedule(s.far.popMin())
		}
		// Pour the cursor bucket: Timer-owned entries go through the near
		// heap (they keep index tracking so Reset/Stop can still find
		// them); everything else becomes the new dispatch list, sorted
		// once. The exhausted previous list's backing array is handed back
		// to the bucket, so the two arrays rotate without allocating.
		bk := s.buckets[s.cur]
		if len(bk) > 0 {
			s.sched.Pours++
			s.sched.PouredEvents += uint64(len(bk))
			s.wcount -= len(bk)
			keep := bk[:0]
			for i := range bk {
				if bk[i].key&keyTracked != 0 {
					s.near.push(bk[i])
				} else {
					keep = append(keep, bk[i])
				}
			}
			slices.SortFunc(keep, eventCmp)
			s.buckets[s.cur] = s.dl[:0]
			s.dl, s.dlHead = keep, 0
		}
	}
	return true
}

// Run dispatches events in time order until only daemon events remain or
// Halt is called. Entering Run clears any previous halt, so a Sim halted
// mid-run can be resumed.
func (s *Sim) Run() {
	s.halted = false
	for s.Pending() > s.daemons && !s.halted {
		if !s.ensureNear() {
			return
		}
		s.step()
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Like Run, it clears any previous halt on entry.
func (s *Sim) RunUntil(t units.Time) {
	s.halted = false
	for !s.halted && s.ensureNear() && s.peekAt() <= t {
		s.step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

// RunBefore dispatches events with time strictly less than t, then
// advances the clock to t. It is the shard window primitive: a shard runs
// everything inside the window [now, t) and parks exactly at the barrier,
// leaving events at t itself for the window that opens there (barriers run
// global events at t first). Like Run, it clears any previous halt.
func (s *Sim) RunBefore(t units.Time) {
	s.halted = false
	for !s.halted && s.ensureNear() && s.peekAt() < t {
		s.step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

// NextAt reports the timestamp of the earliest pending event, and whether
// any event is pending at all. The window synchronizer uses it to size the
// next window: min over shards of NextAt plus the lookahead bound is the
// earliest instant any cross-shard effect can land.
func (s *Sim) NextAt() (units.Time, bool) {
	if !s.ensureNear() {
		return 0, false
	}
	return s.peekAt(), true
}

// AdvanceTo moves the clock forward to t without dispatching anything. It
// is only correct when no pending event lies before t — the window
// synchronizer uses it to park idle shards at a barrier without paying a
// goroutine dispatch. Moving backwards is a no-op.
func (s *Sim) AdvanceTo(t units.Time) {
	if t > s.now {
		s.now = t
	}
}

// peekAt returns the earliest pending event time; ensureNear must have
// returned true.
//
//drill:hotpath
func (s *Sim) peekAt() units.Time {
	if s.dlHead < len(s.dl) {
		if len(s.near.ev) > 0 && less(&s.near.ev[0], &s.dl[s.dlHead]) {
			return s.near.ev[0].at
		}
		return s.dl[s.dlHead].at
	}
	return s.near.ev[0].at
}

//drill:hotpath
func (s *Sim) step() {
	var ev event
	if s.dlHead < len(s.dl) {
		if len(s.near.ev) > 0 && less(&s.near.ev[0], &s.dl[s.dlHead]) {
			ev = s.near.popMin()
			s.sched.DispatchHeap++
		} else {
			ev = s.dl[s.dlHead]
			s.dlHead++
			s.sched.DispatchList++
		}
	} else {
		ev = s.near.popMin()
		s.sched.DispatchHeap++
	}
	if ev.key&keyDaemon != 0 {
		s.daemons--
	}
	s.now = ev.at
	if ev.key&keySilent == 0 {
		s.Executed++
	}
	var fn func()
	if ev.id < 0 {
		fn = s.perms[^ev.id]
	} else {
		sl := &s.slots[ev.id]
		fn = sl.fn
		if ev.key&keyTracked != 0 {
			// Disarm before running: the callback may immediately Reset.
			sl.timer.tier = tierNone
		}
		s.release(ev.id)
	}
	fn()
}

// wheelRemove deletes slot i of bucket b (a cancelled timer entry) in O(1)
// by swap-removal; bucket-internal order is irrelevant because a bucket is
// re-ordered through the near heap before dispatch.
//
//drill:hotpath
func (s *Sim) wheelRemove(b, i int32) {
	bk := s.buckets[b]
	if ev := &bk[i]; ev.id >= 0 {
		if ev.key&keyTracked != 0 {
			s.slots[ev.id].timer.tier = tierNone
		}
		s.release(ev.id)
	}
	last := int32(len(bk) - 1)
	if i != last {
		bk[i] = bk[last]
		if ev := &bk[i]; ev.key&keyTracked != 0 {
			s.slots[ev.id].timer.idx = i
		}
	}
	s.buckets[b] = bk[:last]
	s.wcount--
}

// eventHeap is a hand-rolled binary min-heap keyed on (at, seq).
// container/heap's interface indirection costs measurably at the tens of
// millions of events a single experiment point dispatches. Entries owned
// by a Timer are flagged in their key; their owning timer (found through
// the slot table) has its tier and index kept current through every move,
// so Reset/Stop relocate or delete the live entry instead of abandoning
// tombstones. Because events are pointer-free, every sift swap is a plain
// 24-byte copy with no write barrier.
type eventHeap struct {
	ev   []event
	s    *Sim
	tier int8
}

// setIdx records i as the location of the timer owning ev[i], if any.
//
//drill:hotpath
func (h *eventHeap) setIdx(i int) {
	if ev := &h.ev[i]; ev.key&keyTracked != 0 {
		t := h.s.slots[ev.id].timer
		t.tier = h.tier
		t.idx = int32(i)
	}
}

//drill:hotpath
//drill:allocs 1 heap growth amortizes; capacity is retained across pops
func (h *eventHeap) push(ev event) {
	h.ev = append(h.ev, ev)
	i := len(h.ev) - 1
	h.setIdx(i)
	h.siftUp(i)
}

// The heap is 4-ary rather than binary: half the levels per sift, and the
// four children of a node are contiguous (one or two cache lines), which
// profiles measurably faster than a binary heap at this package's event
// rates. Arity changes the tree shape only — extraction order is still
// strictly (at, seq), which is all determinism needs.

//drill:hotpath
func (h *eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&h.ev[i], &h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		h.setIdx(i)
		h.setIdx(parent)
		i = parent
	}
}

//drill:hotpath
func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		least := i
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if less(&h.ev[c], &h.ev[least]) {
				least = c
			}
		}
		if least == i {
			break
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		h.setIdx(i)
		h.setIdx(least)
		i = least
	}
}

//drill:hotpath
func (h *eventHeap) popMin() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	if last > 0 {
		h.setIdx(0)
		h.siftDown(0)
	}
	return top
}

// removeAt deletes ev[i] (a cancelled timer entry) in O(log n).
//
//drill:hotpath
func (h *eventHeap) removeAt(i int) {
	if ev := &h.ev[i]; ev.id >= 0 {
		if ev.key&keyTracked != 0 {
			h.s.slots[ev.id].timer.tier = tierNone
		}
		h.s.release(ev.id)
	}
	last := len(h.ev) - 1
	if i != last {
		h.ev[i] = h.ev[last]
		h.setIdx(i)
	}
	h.ev = h.ev[:last]
	if i != last {
		h.siftUp(i)
		h.siftDown(i)
	}
}

// Timer is a cancellable, re-armable scheduled callback. Unlike At/After —
// which are fire-and-forget — a Timer owns at most one live scheduler
// entry: Reset moves that entry (or creates it) and Stop deletes it, in
// O(1) on the wheel tier and O(log n) on the heap tiers. Re-armed timers
// therefore never accumulate dead events in the scheduler, which is what
// keeps per-flow retransmission timers O(1) in scheduler space no matter
// how many times ACKs re-arm them.
//
// A Timer belongs to the single-threaded Sim that created it; the zero
// value is not usable.
type Timer struct {
	s      *Sim
	fn     func()
	tier   int8  // which tier holds the live entry; tierNone when unarmed
	bucket int32 // wheel bucket (tierWheel only)
	idx    int32 // heap index or bucket slot
}

// NewTimer returns an unarmed timer that runs fn when it fires. The one
// closure allocated here is reused across every Reset for the timer's
// lifetime.
func (s *Sim) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer requires a callback")
	}
	return &Timer{s: s, fn: fn, tier: tierNone, idx: -1}
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.tier != tierNone }

// detach removes the timer's live entry from whichever tier holds it.
//
//drill:hotpath
func (t *Timer) detach() {
	switch t.tier {
	case tierNear:
		t.s.near.removeAt(int(t.idx))
	case tierFar:
		t.s.far.removeAt(int(t.idx))
	case tierWheel:
		t.s.wheelRemove(t.bucket, t.idx)
	}
}

// Reset (re)schedules the timer to fire d from now, cancelling any earlier
// deadline. Like After, the new deadline takes a fresh FIFO tie-break
// sequence number, so a reset timer fires after events already scheduled
// at the same instant.
//
//drill:hotpath
func (t *Timer) Reset(d units.Time) {
	if d < 0 {
		panic("sim: timer reset into the past")
	}
	s := t.s
	if t.tier != tierNone {
		t.detach()
	}
	s.seq++
	s.schedule(event{at: s.now + d, key: classLocal | s.seq<<keyShift | keyTracked, id: s.alloc(t.fn, t)})
}

// ResetAt (re)schedules the timer to fire at absolute time at, under an
// event key previously allocated with ReserveKey or built with ArrivalKey.
// It is the batched producers' arm operation: the (at, key) pair decides
// dispatch order, so an entry that waited in a per-port ring fires in
// exactly the slot the old schedule-at-enqueue design gave it. Arming with
// a stale key is legitimate precisely because the ring preserved FIFO
// order; at must not be in the past.
//
//drill:hotpath
func (t *Timer) ResetAt(at units.Time, key uint64) {
	s := t.s
	if at < s.now {
		panic("sim: timer reset into the past")
	}
	if t.tier != tierNone {
		t.detach()
	}
	s.schedule(event{at: at, key: key | keyTracked, id: s.alloc(t.fn, t)})
}

// Stop cancels the pending firing, if any, removing its scheduler entry
// eagerly. It reports whether a firing was actually cancelled. Stopping an
// unarmed timer is a no-op, so Stop is safe to call unconditionally.
//
//drill:hotpath
func (t *Timer) Stop() bool {
	if t.tier == tierNone {
		return false
	}
	t.detach()
	t.tier = tierNone
	return true
}

// Ticker invokes fn every interval until the simulation drains or stop is
// requested. It is used by periodic samplers (queue-length STDV, DRE decay).
type Ticker struct {
	s        *Sim
	interval units.Time
	stop     bool
	silent   bool
	fn       func(now units.Time)
}

// NewTicker starts a periodic callback with the given interval. The first
// tick fires one interval from now.
func NewTicker(s *Sim, interval units.Time, fn func(now units.Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	s.AfterDaemon(interval, t.tick)
	return t
}

// NewObserverTicker is NewTicker over observer events: ticks never keep the
// simulation alive and never count toward Executed. fn must only read
// simulation state (the observe-never-steer contract); a callback that
// mutated data-plane state or drew from a random stream would break the
// byte-identical guarantee this event class exists to preserve.
func NewObserverTicker(s *Sim, interval units.Time, fn func(now units.Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{s: s, interval: interval, fn: fn, silent: true}
	s.AfterObserver(interval, t.tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.stop = true }

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn(t.s.Now())
	if t.silent {
		t.s.AfterObserver(t.interval, t.tick)
	} else {
		t.s.AfterDaemon(t.interval, t.tick)
	}
}
