// Package sim provides the discrete-event simulation engine underlying the
// DRILL fabric models. It offers a nanosecond-resolution virtual clock, a
// binary-heap event scheduler with deterministic FIFO tie-breaking,
// cancellable re-armable Timers whose heap entries are index-tracked (so a
// Reset or Stop relocates/deletes the live entry instead of abandoning a
// tombstone), and seeded random-number streams so every run is
// reproducible.
package sim

import (
	"math/rand"

	"drill/internal/units"
)

type event struct {
	at     units.Time
	seq    uint64
	fn     func()
	timer  *Timer // non-nil when a Timer owns this entry (index-tracked)
	daemon bool
	silent bool // observer event: excluded from Executed accounting
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run independent simulations in separate Sim instances.
type Sim struct {
	now     units.Time
	heap    []event
	seq     uint64
	seed    int64
	rng     *rand.Rand
	halted  bool
	daemons int // scheduled daemon events (they never keep Run alive)

	// Executed counts events dispatched since creation, for reporting.
	Executed uint64
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current simulated time.
func (s *Sim) Now() units.Time { return s.now }

// Rand returns the simulator's primary random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Stream returns an independent deterministic random stream identified by id.
// Distinct ids yield decorrelated streams for the same simulator seed, so
// e.g. workload arrivals and switch sampling do not perturb each other.
func (s *Sim) Stream(id int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return rand.New(rand.NewSource(s.seed ^ (id+1)*mix))
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
//
//drill:hotpath
func (s *Sim) At(t units.Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
//
//drill:hotpath
func (s *Sim) After(d units.Time, fn func()) { s.At(s.now+d, fn) }

// AfterDaemon schedules fn like After, but as a daemon event: Run treats a
// queue holding only daemon events as drained. Periodic samplers and
// decay tickers use this so they never keep a finished simulation alive.
func (s *Sim) AfterDaemon(d units.Time, fn func()) {
	t := s.now + d
	if t < s.now {
		panic("sim: daemon event scheduled in the past")
	}
	s.seq++
	s.daemons++
	s.push(event{at: t, seq: s.seq, fn: fn, daemon: true})
}

// AfterObserver schedules fn like AfterDaemon, but additionally excludes
// the dispatch from Executed accounting. Observer events exist for the
// metrics snapshotter and similar pure-read instrumentation: they may look
// at simulation state but never mutate it, so leaving them out of the
// event count is what keeps a metrics-enabled run byte-identical (same
// RunResult.Events, same fingerprints) to a metrics-free one.
func (s *Sim) AfterObserver(d units.Time, fn func()) {
	t := s.now + d
	if t < s.now {
		panic("sim: observer event scheduled in the past")
	}
	s.seq++
	s.daemons++
	s.push(event{at: t, seq: s.seq, fn: fn, daemon: true, silent: true})
}

// Halt stops the run loop after the currently executing event returns. A
// halt only affects the run in progress: the next call to Run or RunUntil
// clears it and resumes dispatching from the current simulation state.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt was called during the current/most recent run.
func (s *Sim) Halted() bool { return s.halted }

// Pending reports the number of scheduled events not yet dispatched.
// Cancelled timer events are removed from the heap eagerly, so they never
// count here.
func (s *Sim) Pending() int { return len(s.heap) }

// Run dispatches events in time order until only daemon events remain or
// Halt is called. Entering Run clears any previous halt, so a Sim halted
// mid-run can be resumed.
func (s *Sim) Run() {
	s.halted = false
	for len(s.heap) > s.daemons && !s.halted {
		s.step()
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Like Run, it clears any previous halt on entry.
func (s *Sim) RunUntil(t units.Time) {
	s.halted = false
	for len(s.heap) > 0 && !s.halted && s.heap[0].at <= t {
		s.step()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

//drill:hotpath
func (s *Sim) step() {
	ev := s.pop()
	if ev.daemon {
		s.daemons--
	}
	s.now = ev.at
	if !ev.silent {
		s.Executed++
	}
	ev.fn()
}

// push, pop, siftUp, siftDown, and remove implement a hand-rolled binary
// min-heap keyed on (at, seq). container/heap's interface indirection costs
// measurably at the tens of millions of events a single experiment point
// dispatches. Entries owned by a Timer carry a back-pointer whose heap
// index is kept current through every move, so Reset/Stop relocate or
// delete the live entry in O(log n) instead of abandoning tombstones.

// setIdx records i as the heap position of the timer owning heap[i], if any.
//
//drill:hotpath
func (s *Sim) setIdx(i int) {
	if t := s.heap[i].timer; t != nil {
		t.idx = i
	}
}

//drill:hotpath
func (s *Sim) push(ev event) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	s.setIdx(i)
	s.siftUp(i)
}

//drill:hotpath
func (s *Sim) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		s.setIdx(i)
		s.setIdx(parent)
		i = parent
	}
}

//drill:hotpath
func (s *Sim) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && less(s.heap[l], s.heap[least]) {
			least = l
		}
		if r < n && less(s.heap[r], s.heap[least]) {
			least = r
		}
		if least == i {
			break
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		s.setIdx(i)
		s.setIdx(least)
		i = least
	}
}

// fix restores the heap property after heap[i]'s key changed in place.
//
//drill:hotpath
func (s *Sim) fix(i int) {
	s.siftUp(i)
	s.siftDown(i)
}

//drill:hotpath
func (s *Sim) pop() event {
	h := s.heap
	top := h[0]
	if top.timer != nil {
		top.timer.idx = -1
	}
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // clear the closure so the GC can reclaim captures
	s.heap = h[:last]
	if last > 0 {
		s.setIdx(0)
		s.siftDown(0)
	}
	return top
}

// remove deletes heap[i] (a cancelled timer entry) in O(log n).
//
//drill:hotpath
func (s *Sim) remove(i int) {
	h := s.heap
	if t := h[i].timer; t != nil {
		t.idx = -1
	}
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		s.setIdx(i)
	}
	h[last] = event{}
	s.heap = h[:last]
	if i != last {
		s.fix(i)
	}
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a cancellable, re-armable scheduled callback. Unlike At/After —
// which are fire-and-forget — a Timer owns at most one live heap entry:
// Reset moves that entry (or creates it) and Stop deletes it, both in
// O(log n). Re-armed timers therefore never accumulate dead events in the
// heap, which is what keeps per-flow retransmission timers O(1) in heap
// space no matter how many times ACKs re-arm them.
//
// A Timer belongs to the single-threaded Sim that created it; the zero
// value is not usable.
type Timer struct {
	s   *Sim
	fn  func()
	idx int // position in s.heap, or -1 when not scheduled
}

// NewTimer returns an unarmed timer that runs fn when it fires. The one
// closure allocated here is reused across every Reset for the timer's
// lifetime.
func (s *Sim) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer requires a callback")
	}
	return &Timer{s: s, fn: fn, idx: -1}
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.idx >= 0 }

// Reset (re)schedules the timer to fire d from now, cancelling any earlier
// deadline. Like After, the new deadline takes a fresh FIFO tie-break
// sequence number, so a reset timer fires after events already scheduled
// at the same instant.
//
//drill:hotpath
func (t *Timer) Reset(d units.Time) {
	if d < 0 {
		panic("sim: timer reset into the past")
	}
	s := t.s
	at := s.now + d
	s.seq++
	if t.idx >= 0 {
		s.heap[t.idx].at = at
		s.heap[t.idx].seq = s.seq
		s.fix(t.idx)
		return
	}
	s.push(event{at: at, seq: s.seq, fn: t.fn, timer: t})
}

// Stop cancels the pending firing, if any, removing its heap entry
// eagerly. It reports whether a firing was actually cancelled. Stopping an
// unarmed timer is a no-op, so Stop is safe to call unconditionally.
//
//drill:hotpath
func (t *Timer) Stop() bool {
	if t.idx < 0 {
		return false
	}
	t.s.remove(t.idx)
	return true
}

// Ticker invokes fn every interval until the simulation drains or stop is
// requested. It is used by periodic samplers (queue-length STDV, DRE decay).
type Ticker struct {
	s        *Sim
	interval units.Time
	stop     bool
	silent   bool
	fn       func(now units.Time)
}

// NewTicker starts a periodic callback with the given interval. The first
// tick fires one interval from now.
func NewTicker(s *Sim, interval units.Time, fn func(now units.Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	s.AfterDaemon(interval, t.tick)
	return t
}

// NewObserverTicker is NewTicker over observer events: ticks never keep the
// simulation alive and never count toward Executed. fn must only read
// simulation state (the observe-never-steer contract); a callback that
// mutated data-plane state or drew from a random stream would break the
// byte-identical guarantee this event class exists to preserve.
func NewObserverTicker(s *Sim, interval units.Time, fn func(now units.Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{s: s, interval: interval, fn: fn, silent: true}
	s.AfterObserver(interval, t.tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.stop = true }

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.fn(t.s.Now())
	if t.silent {
		t.s.AfterObserver(t.interval, t.tick)
	} else {
		t.s.AfterDaemon(t.interval, t.tick)
	}
}
