package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"drill/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var trace []units.Time
	s.At(10, func() {
		trace = append(trace, s.Now())
		s.After(5, func() { trace = append(trace, s.Now()) })
		s.At(12, func() { trace = append(trace, s.Now()) })
	})
	s.Run()
	want := []units.Time{10, 12, 15}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := make(map[units.Time]bool)
	for _, at := range []units.Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { fired[at] = true })
	}
	s.RunUntil(12)
	if !fired[5] || !fired[10] || fired[15] {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 12 {
		t.Fatalf("clock = %v, want 12", s.Now())
	}
	s.RunUntil(25)
	if !fired[15] || !fired[20] {
		t.Fatalf("fired = %v", fired)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i), func() {
			n++
			if n == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events after halt, want 3", n)
	}
}

func TestHeapProperty(t *testing.T) {
	// Property: any random multiset of times is dispatched in sorted order.
	f := func(times []uint16) bool {
		s := New(7)
		var got []units.Time
		for _, v := range times {
			at := units.Time(v)
			s.At(at, func() { got = append(got, at) })
		}
		s.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New(42)
		rng := s.Stream(3)
		var got []int
		var rec func()
		n := 0
		rec = func() {
			got = append(got, rng.Intn(1000))
			n++
			if n < 50 {
				s.After(units.Time(rng.Intn(100)+1), rec)
			}
		}
		s.At(0, rec)
		s.Run()
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	s := New(9)
	a, b := s.Stream(1), s.Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1<<30) == b.Intn(1<<30) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams look correlated: %d/100 identical draws", same)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []units.Time
	tick := NewTicker(s, 10, func(now units.Time) { ticks = append(ticks, now) })
	s.RunUntil(55)
	tick.Stop()
	s.Run()
	want := []units.Time{10, 20, 30, 40, 50}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tick *Ticker
	tick = NewTicker(s, 5, func(units.Time) {
		n++
		if n == 2 {
			tick.Stop()
		}
	})
	s.RunUntil(100)
	if n != 2 {
		t.Fatalf("ticks after stop: n = %d, want 2", n)
	}
}

func TestDaemonEventsDoNotBlockDrain(t *testing.T) {
	s := New(1)
	ticks := 0
	NewTicker(s, 5, func(units.Time) { ticks++ })
	ran := false
	s.At(12, func() { ran = true })
	s.Run() // must terminate despite the self-rescheduling ticker
	if !ran {
		t.Fatal("regular event not dispatched")
	}
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2 (at t=5,10 before last event at 12)", ticks)
	}
	if s.Now() != 12 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestHaltClearedOnNextRun(t *testing.T) {
	s := New(1)
	var got []units.Time
	for _, at := range []units.Time{5, 10, 15} {
		at := at
		s.At(at, func() {
			got = append(got, at)
			if at == 5 {
				s.Halt()
			}
		})
	}
	s.Run()
	if len(got) != 1 || !s.Halted() {
		t.Fatalf("first run dispatched %v, halted=%v", got, s.Halted())
	}
	// A halted Sim must resume on the next Run: halt is per-run, not sticky.
	s.Run()
	if len(got) != 3 {
		t.Fatalf("resumed run dispatched %v, want all three events", got)
	}
	if s.Halted() {
		t.Fatal("halt flag still set after a clean resume")
	}
}

func TestHaltClearedOnRunUntil(t *testing.T) {
	s := New(1)
	fired := false
	s.At(10, func() { fired = true })
	s.Halt()
	s.RunUntil(20)
	if !fired {
		t.Fatal("RunUntil after Halt did not dispatch")
	}
	if s.Now() != 20 {
		t.Fatalf("RunUntil after Halt left clock at %v, want 20", s.Now())
	}
}

func TestTimerFires(t *testing.T) {
	s := New(1)
	var at units.Time = -1
	tm := s.NewTimer(func() { at = s.Now() })
	tm.Reset(7)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	s.Run()
	if at != 7 {
		t.Fatalf("timer fired at %v, want 7", at)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerResetMovesSingleEntry(t *testing.T) {
	// The cancellable-timer contract: any number of re-arms holds exactly
	// one live heap entry, and only the final deadline fires.
	s := New(1)
	fires := 0
	tm := s.NewTimer(func() { fires++ })
	for i := 0; i < 1000; i++ {
		tm.Reset(units.Time(10 + i))
		if got := s.Pending(); got != 1 {
			t.Fatalf("after %d resets Pending() = %d, want 1", i+1, got)
		}
	}
	s.Run()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if s.Now() != 1009 {
		t.Fatalf("fired at %v, want the final deadline 1009", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.NewTimer(func() { fired = true })
	if tm.Stop() {
		t.Fatal("stopping an unarmed timer reported a cancellation")
	}
	tm.Reset(5)
	if !tm.Stop() {
		t.Fatal("Stop did not report cancelling an armed timer")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after Stop, want 0 (entry removed eagerly)", s.Pending())
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	// A stopped timer can be re-armed.
	tm.Reset(3)
	s.Run()
	if !fired {
		t.Fatal("re-armed timer did not fire")
	}
}

func TestTimerEarlierReset(t *testing.T) {
	// Resetting to an earlier deadline must sift the entry up, not down.
	s := New(1)
	var got []units.Time
	tm := s.NewTimer(func() { got = append(got, s.Now()) })
	s.At(50, func() { got = append(got, s.Now()) })
	tm.Reset(100)
	tm.Reset(5)
	s.Run()
	if len(got) != 2 || got[0] != 5 || got[1] != 50 {
		t.Fatalf("dispatch order = %v, want [5 50]", got)
	}
}

func TestTimerFIFOTieBreakOnReset(t *testing.T) {
	// A reset takes a fresh sequence number: at an equal deadline the timer
	// fires after events that were scheduled before the reset.
	s := New(1)
	var got []string
	s.At(10, func() { got = append(got, "event") })
	tm := s.NewTimer(func() { got = append(got, "timer") })
	tm.Reset(10)
	s.Run()
	if len(got) != 2 || got[0] != "event" || got[1] != "timer" {
		t.Fatalf("tie-break order = %v, want [event timer]", got)
	}
}

func TestTimerHeapIntegrity(t *testing.T) {
	// Property: interleaving plain events with timer resets/stops preserves
	// dispatch order and never corrupts the index-tracked heap.
	f := func(ops []uint16) bool {
		s := New(11)
		var got []units.Time
		timers := make([]*Timer, 4)
		for i := range timers {
			timers[i] = s.NewTimer(func() { got = append(got, s.Now()) })
		}
		for _, op := range ops {
			tm := timers[int(op)%len(timers)]
			switch d := units.Time(op >> 4); op % 3 {
			case 0:
				s.At(s.Now()+d, func() { got = append(got, s.Now()) })
			case 1:
				tm.Reset(d)
			case 2:
				tm.Stop()
			}
		}
		s.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetAllocs(t *testing.T) {
	// The re-arm path must be allocation-free: Reset moves the existing heap
	// entry (or reuses the timer's one closure) rather than capturing a new
	// closure per arm. Warm the heap first so append growth is excluded.
	s := New(1)
	tm := s.NewTimer(func() {})
	tm.Reset(1)
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(5)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("Reset+Stop allocates %v per op, want 0", allocs)
	}
}

func BenchmarkTimerReset(b *testing.B) {
	s := New(1)
	tm := s.NewTimer(func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Reset(units.Time(i%97 + 1))
	}
	tm.Stop()
}

func BenchmarkScheduler(b *testing.B) {
	s := New(1)
	rng := rand.New(rand.NewSource(2))
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			s.After(units.Time(rng.Intn(50)+1), next)
		}
	}
	b.ResetTimer()
	s.At(0, next)
	s.Run()
}

func TestObserverEventsInvisibleToAccounting(t *testing.T) {
	// The same workload with and without an observer ticker must report the
	// same Executed count: observer dispatches are excluded, which is what
	// lets a metrics-enabled run stay byte-identical to a metrics-free one.
	run := func(observe bool) (executed uint64, ticks int) {
		s := New(7)
		if observe {
			NewObserverTicker(s, 3, func(units.Time) { ticks++ })
		}
		var next func()
		i := 0
		next = func() {
			if i++; i < 50 {
				s.After(2, next)
			}
		}
		s.At(0, next)
		s.RunUntil(120)
		return s.Executed, ticks
	}
	plain, _ := run(false)
	observed, ticks := run(true)
	if plain != observed {
		t.Fatalf("Executed with observer ticker = %d, without = %d; observer events must not count", observed, plain)
	}
	if want := 120 / 3; ticks != want {
		t.Fatalf("observer ticks = %d, want %d", ticks, want)
	}
}

func TestObserverEventsDoNotBlockDrain(t *testing.T) {
	s := New(1)
	NewObserverTicker(s, 5, func(units.Time) {})
	done := false
	s.After(12, func() { done = true })
	s.Run() // must return once only observer ticks remain
	if !done {
		t.Fatal("real event did not run")
	}
	if s.Now() != 12 {
		t.Fatalf("drained at t=%v, want 12 (observer ticks alone must not keep Run alive)", s.Now())
	}
}

func TestObserverTickerStop(t *testing.T) {
	s := New(1)
	ticks := 0
	var tk *Ticker
	tk = NewObserverTicker(s, 2, func(now units.Time) {
		ticks++
		if now >= 6 {
			tk.Stop()
		}
	})
	s.After(40, func() {})
	s.Run()
	if ticks != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", ticks)
	}
}
