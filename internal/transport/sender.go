package transport

import (
	"drill/internal/fabric"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// Sender is one TCP NewReno sender. All state is driven by the simulator's
// single thread; no locking.
type Sender struct {
	reg   *Registry
	agent *Agent
	id    uint64
	hash  uint32
	dst   topo.NodeID
	size  int64 // bytes to transfer; < 0 = unbounded (elephant throughput)
	class string

	sndUna, sndNxt int64
	cwnd           float64 // in segments
	ssthresh       float64
	dupacks        int
	inRecovery     bool
	recover        int64

	srtt, rttvar units.Time
	hasRTT       bool
	rto          units.Time
	backoff      int

	// rtoTimer is the flow's one retransmission timer. Every re-arm Resets
	// this handle in place — one live heap entry per flow, ever — where the
	// pre-cancellation design pushed a fresh generation-checked closure
	// into the sim heap on every ACK and let the stale one rot until its
	// deadline.
	rtoTimer *sim.Timer

	start    units.Time
	fct      units.Time
	done     bool
	measured bool
	txSeq    int32 // emission counter for wire-reorder accounting

	// DCTCP state (active when Cfg.DCTCP): per-window mark fraction α.
	dctcpAlpha  float64
	ackedInWin  int64
	markedInWin int64
	winEnd      int64

	// Retransmits counts segments resent by this flow.
	Retransmits int64
}

// ID returns the flow identifier.
func (s *Sender) ID() uint64 { return s.id }

// Class returns the flow's class tag.
func (s *Sender) Class() string { return s.class }

// Done reports whether the whole transfer has been acknowledged.
func (s *Sender) Done() bool { return s.done }

// AckedBytes reports cumulatively acknowledged payload bytes.
func (s *Sender) AckedBytes() int64 { return s.sndUna }

// Start returns when the flow started.
func (s *Sender) Start() units.Time { return s.start }

// FCT returns the completion time (valid once Done).
func (s *Sender) FCT() units.Time { return s.fct }

func (s *Sender) segLen(seq int64) int32 {
	mss := s.reg.Cfg.MSS
	if s.size < 0 {
		return mss
	}
	rem := s.size - seq
	if rem >= int64(mss) {
		return mss
	}
	return int32(rem)
}

func (s *Sender) inflightSegs() int {
	mss := int64(s.reg.Cfg.MSS)
	return int((s.sndNxt - s.sndUna + mss - 1) / mss)
}

// trySend transmits new segments while the window allows.
//
//drill:hotpath
func (s *Sender) trySend() {
	if s.done {
		return
	}
	for (s.size < 0 || s.sndNxt < s.size) && s.inflightSegs() < int(s.cwnd) {
		l := s.segLen(s.sndNxt)
		if l <= 0 {
			break
		}
		s.emit(s.sndNxt, l)
		s.sndNxt += int64(l)
	}
	if !s.rtoTimer.Armed() && s.sndNxt > s.sndUna {
		s.armTimer()
	}
}

// emit sends one segment covering [seq, seq+l).
//
//drill:hotpath
func (s *Sender) emit(seq int64, l int32) {
	s.txSeq++
	pkt := s.agent.host.AllocPacket()
	pkt.FlowID = s.id
	pkt.Hash = s.hash
	pkt.Kind = fabric.Data
	pkt.Dst = s.dst
	pkt.Size = units.ByteSize(l) + fabric.HeaderBytes
	pkt.Seq = seq
	pkt.Len = l
	pkt.AckNo = s.size // data packets carry the flow size for the receiver
	pkt.EchoTS = s.agent.sim.Now()
	pkt.TxSeq = s.txSeq
	s.agent.host.Send(pkt)
}

// onAck processes a cumulative acknowledgment.
//
//drill:hotpath
func (s *Sender) onAck(pkt *fabric.Packet) {
	if s.done {
		return
	}
	now := s.agent.sim.Now()
	// RTT sample from the echoed per-packet timestamp: valid even for
	// retransmissions, since the echo identifies the copy that arrived.
	s.sampleRTT(now - pkt.EchoTS)

	if s.reg.Cfg.DCTCP {
		s.dctcpOnAck(pkt)
	}

	ack := pkt.AckNo
	switch {
	case ack > s.sndUna:
		s.newAck(ack)
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAck()
	}
	if m := s.reg.met; m != nil {
		m.cwnd.Observe(s.cwnd)
	}
	s.trySend()
	if s.size >= 0 && s.sndUna >= s.size {
		s.finish(now)
	}
}

func (s *Sender) newAck(ack int64) {
	mss := float64(s.reg.Cfg.MSS)
	ackedSegs := float64(ack-s.sndUna) / mss
	s.sndUna = ack
	s.backoff = 0
	if s.inRecovery {
		if ack >= s.recover {
			// Full acknowledgment: leave recovery, deflate.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupacks = 0
		} else {
			// Partial ack (NewReno): retransmit the next hole, deflate by
			// the amount acked, inflate by one for the retransmission.
			s.retransmit()
			s.cwnd -= ackedSegs
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.cwnd++
		}
	} else {
		s.dupacks = 0
		if s.cwnd < s.ssthresh {
			s.cwnd += ackedSegs // slow start
		} else {
			s.cwnd += ackedSegs / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.reg.Cfg.MaxCwnd {
			s.cwnd = s.reg.Cfg.MaxCwnd
		}
	}
	if s.sndNxt > s.sndUna {
		s.armTimer()
	} else {
		s.rtoTimer.Stop() // nothing outstanding: disarm
	}
}

func (s *Sender) dupAck() {
	s.dupacks++
	if s.inRecovery {
		s.cwnd++ // window inflation per extra dup
		return
	}
	if s.dupacks == 3 {
		// Fast retransmit + fast recovery.
		s.ssthresh = maxf(float64(s.inflightSegs())/2, 2)
		s.cwnd = s.ssthresh + 3
		s.recover = s.sndNxt
		s.inRecovery = true
		s.retransmit()
	}
}

// retransmit resends the first unacknowledged segment.
func (s *Sender) retransmit() {
	l := s.segLen(s.sndUna)
	if l <= 0 {
		return
	}
	s.Retransmits++
	s.agent.stats.Retransmits++
	if tr := s.reg.tracer; tr != nil {
		tr.Flow(trace.Retransmit, s.agent.sim.Now(), s.id, s.sndUna, float64(l))
	}
	if m := s.reg.met; m != nil {
		m.retransmits.Inc()
	}
	s.emit(s.sndUna, l)
	s.armTimer()
}

func (s *Sender) sampleRTT(rtt units.Time) {
	if rtt <= 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.hasRTT = true
	} else {
		// RFC 6298 with α=1/8, β=1/4 in integer arithmetic.
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar += (diff - s.rttvar) / 4
		s.srtt += (rtt - s.srtt) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.reg.Cfg.MinRTO {
		rto = s.reg.Cfg.MinRTO
	}
	if rto > s.reg.Cfg.MaxRTO {
		rto = s.reg.Cfg.MaxRTO
	}
	s.rto = rto
}

// armTimer (re)schedules the flow's RTO: a Reset of the one live timer, so
// re-arms move the existing heap entry instead of abandoning it.
//
//drill:hotpath
func (s *Sender) armTimer() {
	d := s.rto << uint(s.backoff)
	if d > s.reg.Cfg.MaxRTO {
		d = s.reg.Cfg.MaxRTO
	}
	s.rtoTimer.Reset(d)
}

func (s *Sender) onTimeout() {
	if s.done {
		return // defensive: finish() stops the timer, so this cannot fire
	}
	s.agent.stats.Timeouts++
	if tr := s.reg.tracer; tr != nil {
		tr.Flow(trace.Timeout, s.agent.sim.Now(), s.id, s.sndUna, float64(s.backoff))
	}
	if m := s.reg.met; m != nil {
		m.timeouts.Inc()
	}
	s.ssthresh = maxf(float64(s.inflightSegs())/2, 2)
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	if s.backoff < 6 {
		s.backoff++
	}
	// Retransmit only the first unacknowledged segment (RFC 6298); the
	// receiver's cumulative ACK over its buffered out-of-order data then
	// advances the window past everything that actually arrived.
	s.retransmit()
}

// dctcpOnAck maintains DCTCP's marked-fraction estimate and applies the
// proportional window reduction once per window of data.
func (s *Sender) dctcpOnAck(pkt *fabric.Packet) {
	if pkt.AckNo <= s.sndUna {
		return // duplicates handled by loss recovery
	}
	acked := pkt.AckNo - s.sndUna
	s.ackedInWin += acked
	if pkt.ECNCE {
		s.markedInWin += acked
	}
	if pkt.AckNo < s.winEnd {
		return
	}
	// Window boundary: fold the observed fraction into α and react.
	g := s.reg.Cfg.DCTCPg
	frac := 0.0
	if s.ackedInWin > 0 {
		frac = float64(s.markedInWin) / float64(s.ackedInWin)
	}
	s.dctcpAlpha = (1-g)*s.dctcpAlpha + g*frac
	if s.markedInWin > 0 && !s.inRecovery {
		s.cwnd *= 1 - s.dctcpAlpha/2
		if s.cwnd < 1 {
			s.cwnd = 1
		}
		s.ssthresh = s.cwnd
	}
	s.ackedInWin, s.markedInWin = 0, 0
	s.winEnd = s.sndNxt
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (s *Sender) finish(now units.Time) {
	s.done = true
	s.rtoTimer.Stop() // remove the pending RTO from the sim heap eagerly
	s.fct = now - s.start
	s.agent.stats.FlowsFinished++
	if m := s.reg.met; m != nil {
		m.flowsDone.Inc()
	}
	if s.measured {
		ms := s.fct.Millis()
		s.agent.stats.FCT.Add(ms)
		if s.class != "" {
			s.agent.stats.ClassDist(s.class).Add(ms)
		}
		if m := s.reg.met; m != nil {
			m.fct.Observe(s.fct.Micros())
		}
	}
	delete(s.agent.senders, s.id)
	if s.reg.OnComplete != nil {
		s.reg.OnComplete(s)
	}
}
