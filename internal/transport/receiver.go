package transport

import (
	"drill/internal/fabric"
	"drill/internal/gro"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// simClock adapts a host agent's shard scheduler to gro.Clock, so shim
// hold timers fire inside the host's shard.
type simClock struct{ a *Agent }

func (c simClock) Now() units.Time               { return c.a.sim.Now() }
func (c simClock) After(d units.Time, fn func()) { c.a.sim.After(d, fn) }

// Receiver is the TCP receive side of one flow: cumulative ACK generation
// with immediate duplicate ACKs on out-of-order arrival (RFC 2581), plus
// the optional reordering shim and the GRO batching model in front of it.
type Receiver struct {
	agent *Agent
	id    uint64
	hash  uint32
	peer  topo.NodeID // the sender host
	size  int64

	rcvNxt    int64
	sacked    []span // received-but-not-contiguous byte ranges, sorted
	lastAck   int64
	ackedOnce bool

	dupAcks  int // duplicate ACKs this receiver generated
	reported bool

	// Wire-reorder accounting: a packet whose emission counter is below
	// the maximum seen arrived out of emission order (retransmissions get
	// fresh counters, so they only count if they genuinely overtake).
	txMax      int32
	inversions int
	prevWaits  [6]int64
	prevArrive units.Time

	// lastDataTS echoes the send-timestamp of the packet that triggered the
	// current ACK (per-packet echo → valid sender RTT samples, even for
	// retransmitted or shim-delayed copies).
	lastDataTS units.Time
	// lastECN echoes the latest data packet's ECN CE mark back to the
	// sender (DCTCP's per-packet accurate echo, simplified past the
	// delayed-ACK state machine since this receiver ACKs every packet).
	lastECN bool

	shim    shimLayer    // nil when the shim is disabled
	batcher *gro.Batcher // nil unless Cfg.TrackGRO
}

// shimLayer abstracts the fixed and adaptive reordering shims.
type shimLayer interface {
	Push(gro.Segment)
	FlushCount() int64
}

type span struct{ lo, hi int64 }

func newReceiver(a *Agent, first *fabric.Packet) *Receiver {
	r := &Receiver{
		agent: a, id: first.FlowID, hash: first.Hash,
		peer: first.Src, size: first.AckNo,
	}
	cfg := a.reg.Cfg
	if cfg.ShimTimeout > 0 {
		if cfg.AdaptiveShim {
			r.shim = gro.NewAdaptiveReorderer(simClock{a},
				cfg.ShimTimeout/4, cfg.ShimTimeout/10, cfg.ShimTimeout, r.tcpRx)
		} else {
			r.shim = gro.NewReorderer(simClock{a}, cfg.ShimTimeout, r.tcpRx)
		}
	}
	if cfg.TrackGRO {
		r.batcher = gro.NewBatcher()
	}
	return r
}

// onData accepts one data packet off the wire.
//
//drill:hotpath
func (r *Receiver) onData(pkt *fabric.Packet) {
	r.lastECN = pkt.ECNCE
	if pkt.TxSeq < r.txMax {
		r.inversions++
		r.agent.stats.OutOfOrder++
		if tr := r.agent.reg.tracer; tr != nil {
			tr.Flow(trace.OutOfOrder, r.agent.sim.Now(), pkt.FlowID, pkt.Seq, float64(r.txMax-pkt.TxSeq))
		}
		if m := r.agent.reg.met; m != nil {
			m.outOfOrder.Inc()
			m.oooDepth.Observe(float64(len(r.sacked)))
		}
		// Blame the hop where the late packet waited longest relative to
		// the packet it arrived behind.
		best, bestD := 0, int64(-1<<63)
		for h := 0; h < 6; h++ {
			if d := pkt.HopWaitNs[h] - r.prevWaits[h]; d > bestD {
				bestD = d
				best = h
			}
		}
		r.agent.stats.InversionBlame[best]++
	} else {
		r.txMax = pkt.TxSeq
	}
	r.prevWaits = pkt.HopWaitNs
	r.prevArrive = r.agent.sim.Now()
	seg := gro.Segment{Seq: pkt.Seq, Len: pkt.Len, Payload: pkt.EchoTS}
	if r.shim != nil {
		r.shim.Push(seg)
		return
	}
	r.tcpRx(seg)
}

// tcpRx is the TCP receive path proper (below it sits the shim, if any).
func (r *Receiver) tcpRx(s gro.Segment) {
	r.lastDataTS = s.Payload
	if r.batcher != nil {
		r.batcher.Push(s.Seq, s.Len)
	}
	end := s.Seq + int64(s.Len)
	switch {
	case end <= r.rcvNxt:
		// Old duplicate; re-ACK.
	case s.Seq <= r.rcvNxt:
		r.rcvNxt = end
		r.mergeSacked()
	default:
		r.addSacked(span{s.Seq, end})
	}
	r.sendAck()
	if r.size >= 0 && r.rcvNxt >= r.size {
		r.close()
	}
}

func (r *Receiver) addSacked(sp span) {
	// Insert keeping order; coalesce overlaps.
	out := r.sacked[:0]
	inserted := false
	for _, e := range r.sacked {
		switch {
		case e.hi < sp.lo:
			out = append(out, e)
		case sp.hi < e.lo:
			if !inserted {
				out = append(out, sp)
				inserted = true
			}
			out = append(out, e)
		default: // overlap: grow sp
			if e.lo < sp.lo {
				sp.lo = e.lo
			}
			if e.hi > sp.hi {
				sp.hi = e.hi
			}
		}
	}
	if !inserted {
		out = append(out, sp)
	}
	r.sacked = out
}

func (r *Receiver) mergeSacked() {
	i := 0
	for i < len(r.sacked) && r.sacked[i].lo <= r.rcvNxt {
		if r.sacked[i].hi > r.rcvNxt {
			r.rcvNxt = r.sacked[i].hi
		}
		i++
	}
	r.sacked = append(r.sacked[:0], r.sacked[i:]...)
}

// sendAck emits a cumulative ACK; a non-advancing ACK while data is
// outstanding is a duplicate ACK (the reordering signal of §3.3).
func (r *Receiver) sendAck() {
	if r.ackedOnce && r.rcvNxt == r.lastAck {
		r.dupAcks++
	}
	r.lastAck = r.rcvNxt
	r.ackedOnce = true
	ack := r.agent.host.AllocPacket()
	ack.FlowID = r.id
	ack.Hash = r.hash
	ack.Kind = fabric.Ack
	ack.Dst = r.peer
	ack.Size = fabric.AckBytes
	ack.AckNo = r.rcvNxt
	ack.EchoTS = r.lastDataTS
	ack.ECNCE = r.lastECN
	r.agent.host.Send(ack)
}

func (r *Receiver) close() {
	if r.reported {
		return
	}
	r.reported = true
	stats := r.agent.stats
	if r.agent.sim.Now() >= r.agent.reg.MeasureFrom {
		stats.DupAcks.Add(r.dupAcks)
		stats.WireReorders.Add(r.inversions)
		if r.batcher != nil {
			r.batcher.Close()
			stats.GROBatches += r.batcher.Batches
			stats.GROSegments += r.batcher.Segments
		}
		if r.shim != nil {
			stats.ShimFlushes += r.shim.FlushCount()
		}
	}
	delete(r.agent.receivers, r.id)
}
