package transport

import (
	"drill/internal/obs"
)

// Metrics is the transport layer's slice of the obs registry: the health
// counters FCT sweeps report (retransmits, RTO fires, wire reordering)
// plus two distributions the aggregate Stats cannot carry — congestion
// window per ACK and out-of-order buffer depth per inversion. Nil by
// default; every hot-path site guards on the pointer, mirroring the
// tracer discipline, so disabled metrics cost one branch per site.
type Metrics struct {
	retransmits *obs.Counter
	timeouts    *obs.Counter
	outOfOrder  *obs.Counter
	flowsDone   *obs.Counter
	cwnd        *obs.Histogram // segments, observed on every processed ACK
	oooDepth    *obs.Histogram // sacked spans buffered when an inversion arrives
	fct         *obs.Histogram // measured flow completion times, microseconds
}

// EnableMetrics registers the transport metric families in reg under the
// given label scope and turns on hot-path emission. Call once per
// Registry, before flows start.
func (r *Registry) EnableMetrics(reg *obs.Registry, scope string) *Metrics {
	m := &Metrics{
		retransmits: reg.Counter("drill_transport_retransmits_total", scope,
			"Segments retransmitted (fast retransmit and RTO)."),
		timeouts: reg.Counter("drill_transport_timeouts_total", scope,
			"Retransmission timeouts fired."),
		outOfOrder: reg.Counter("drill_transport_out_of_order_total", scope,
			"Data packets that arrived out of emission order."),
		flowsDone: reg.Counter("drill_transport_flows_finished_total", scope,
			"Flows completed."),
		cwnd: reg.Histogram("drill_transport_cwnd_segments", scope,
			"Congestion window in segments, sampled on every processed ACK."),
		oooDepth: reg.Histogram("drill_transport_ooo_depth_spans", scope,
			"Out-of-order buffer depth (sacked spans) when an inversion arrives."),
		fct: reg.Histogram("drill_transport_fct_us", scope,
			"Flow completion time in microseconds, measured flows only."),
	}
	r.met = m
	return m
}

// Metrics returns the attached transport metrics, nil when disabled.
func (r *Registry) Metrics() *Metrics { return r.met }
