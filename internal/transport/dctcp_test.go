package transport

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/lb"
	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

// dctcpBed builds a fabric with ECN marking and DCTCP stacks.
func dctcpBed(t *testing.T, dctcp bool, ecnK int) (*sim.Sim, *fabric.Network, *Registry, *topo.Topology) {
	t.Helper()
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 2, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	s := sim.New(17)
	n := fabric.New(s, tp, fabric.Config{Balancer: lb.NewDRILL(), ECNThreshold: ecnK})
	r := NewRegistry(s, n, Config{DCTCP: dctcp})
	return s, n, r, tp
}

func TestDCTCPFlowsComplete(t *testing.T) {
	s, _, r, tp := dctcpBed(t, true, 24)
	var flows []*Sender
	for i := 0; i < 6; i++ {
		flows = append(flows, r.StartFlow(tp.Hosts[i%4], tp.Hosts[4+i%4], 200*1460, ""))
	}
	s.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("DCTCP flow %d incomplete", i)
		}
	}
}

func TestDCTCPKeepsQueuesShorter(t *testing.T) {
	// 4:1 fan-in onto one receiver: DCTCP + ECN must reduce last-hop
	// queueing delay and drops relative to plain Reno on the same fabric.
	run := func(dctcp bool, ecnK int) (float64, int64) {
		s, n, r, tp := dctcpBed(t, dctcp, ecnK)
		dst := tp.Hosts[4]
		for _, src := range []int{0, 1, 2, 3} {
			r.StartFlow(tp.Hosts[src], dst, 400*1460, "")
		}
		s.Run()
		return n.Hops.MeanQueueing(metrics.Hop3), n.Hops.TotalDrops()
	}
	renoQ, renoDrops := run(false, 0)
	dctcpQ, dctcpDrops := run(true, 24)
	if dctcpQ >= renoQ {
		t.Fatalf("DCTCP queueing %.2fus not below Reno %.2fus", dctcpQ, renoQ)
	}
	if dctcpDrops > renoDrops {
		t.Fatalf("DCTCP drops %d exceed Reno %d", dctcpDrops, renoDrops)
	}
	t.Logf("hop3 queueing: reno=%.1fus dctcp=%.1fus; drops reno=%d dctcp=%d",
		renoQ, dctcpQ, renoDrops, dctcpDrops)
}

func TestECNMarkingThreshold(t *testing.T) {
	// Without ECNThreshold no packet is ever marked.
	s, _, r, tp := dctcpBed(t, true, 0)
	f := r.StartFlow(tp.Hosts[0], tp.Hosts[4], 100*1460, "")
	s.Run()
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.dctcpAlpha != 0 {
		t.Fatalf("alpha = %v with marking disabled", f.dctcpAlpha)
	}
}
