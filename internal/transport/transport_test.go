package transport

import (
	"testing"

	"drill/internal/fabric"
	"drill/internal/lb"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/units"
)

func testbed(t *testing.T, bal fabric.Balancer, tcfg Config) (*sim.Sim, *fabric.Network, *Registry, *topo.Topology) {
	t.Helper()
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 2, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	s := sim.New(7)
	n := fabric.New(s, tp, fabric.Config{Balancer: bal})
	r := NewRegistry(s, n, tcfg)
	return s, n, r, tp
}

func TestSingleFlowCompletes(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	f := r.StartFlow(tp.Hosts[0], tp.Hosts[4], 100*1460, "")
	s.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if f.AckedBytes() != 100*1460 {
		t.Fatalf("acked %d bytes", f.AckedBytes())
	}
	if r.Stats.FCT.Count() != 1 {
		t.Fatalf("FCT samples = %d", r.Stats.FCT.Count())
	}
	// Lower bound: 100 packets × 1518B at 10G ≈ 121µs serialization alone.
	fct := f.FCT()
	if fct < 120*units.Microsecond || fct > 5*units.Millisecond {
		t.Fatalf("implausible FCT %v", fct)
	}
	if r.Stats.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", r.Stats.Retransmits)
	}
}

func TestTinyFlow(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	f := r.StartFlow(tp.Hosts[0], tp.Hosts[4], 300, "mice")
	s.Run()
	if !f.Done() {
		t.Fatal("tiny flow did not complete")
	}
	if d := r.Stats.FCTByClass["mice"]; d == nil || d.Count() != 1 {
		t.Fatal("class FCT missing")
	}
}

func TestManyParallelFlowsConserveBytes(t *testing.T) {
	s, n, r, tp := testbed(t, lb.NewDRILL(), Config{})
	var flows []*Sender
	for i := 0; i < 8; i++ {
		src := tp.Hosts[i%4]
		dst := tp.Hosts[4+(i+1)%4]
		flows = append(flows, r.StartFlow(src, dst, int64(5000*(i+1)), ""))
	}
	s.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete: acked %d", i, f.AckedBytes())
		}
	}
	if n.Hops.TotalDrops() > 0 {
		// Light load; drops possible but retransmission must still finish all.
		t.Logf("drops under light load: %d", n.Hops.TotalDrops())
	}
}

func TestIncastRecoversViaRetransmission(t *testing.T) {
	// All 4 hosts under leaf0 + 3 under leaf1 blast one receiver: queue
	// overflow at the last hop forces losses; every flow must still finish.
	s, n, r, tp := testbed(t, lb.NewDRILL(), Config{})
	dst := tp.Hosts[4]
	var flows []*Sender
	for _, src := range []int{0, 1, 2, 3, 5, 6, 7} {
		flows = append(flows, r.StartFlow(tp.Hosts[src], dst, 60*1460, "incast"))
	}
	s.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("incast flow %d incomplete (acked %d)", i, f.AckedBytes())
		}
	}
	if n.Hops.TotalDrops() == 0 {
		t.Log("no drops in incast (queues large enough); retransmission path unexercised")
	} else if r.Stats.Retransmits == 0 {
		t.Fatal("drops occurred but nothing was retransmitted")
	}
}

func TestReorderingCountsDupAcks(t *testing.T) {
	// Per-packet Random over unequal paths creates reordering; ECMP cannot.
	run := func(bal fabric.Balancer) int {
		s, _, r, tp := testbed(t, bal, Config{})
		for i := 0; i < 6; i++ {
			r.StartFlow(tp.Hosts[i%4], tp.Hosts[4+i%4], 200*1460, "")
		}
		s.Run()
		return int(r.Stats.DupAcks.FracAtLeast(1) * float64(r.Stats.DupAcks.Count()))
	}
	ecmpDups := run(lb.ECMP{})
	if ecmpDups != 0 {
		t.Fatalf("ECMP produced %d flows with dup ACKs; must be 0", ecmpDups)
	}
}

func TestShimSuppressesDupAcks(t *testing.T) {
	// Force reordering: random per-packet spraying with concurrent load.
	load := func(shim units.Time) (flowsWithDups float64, finished int) {
		s, _, r, tp := testbed(t, lb.Random{}, Config{ShimTimeout: shim})
		for i := 0; i < 12; i++ {
			r.StartFlow(tp.Hosts[i%4], tp.Hosts[4+(i*3)%4], 300*1460, "")
		}
		s.Run()
		return r.Stats.DupAcks.FracAtLeast(1), int(r.Stats.DupAcks.Count())
	}
	noShim, fin1 := load(0)
	withShim, fin2 := load(300 * units.Microsecond)
	if fin1 != 12 || fin2 != 12 {
		t.Fatalf("flows finished: %d / %d, want 12", fin1, fin2)
	}
	if withShim > noShim {
		t.Fatalf("shim increased dup-ACK flows: %v -> %v", noShim, withShim)
	}
	t.Logf("dup-ack flow fraction: no shim %.3f, shim %.3f", noShim, withShim)
}

func TestRTOFiresWhenAllAcksLost(t *testing.T) {
	// Sever the reverse path mid-flow by failing links is complex; instead
	// rely on incast overload with tiny queues to force RTOs.
	tp := topo.LeafSpine(topo.LeafSpineConfig{Spines: 2, Leaves: 2, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, CoreRate: 40 * units.Gbps})
	s := sim.New(7)
	n := fabric.New(s, tp, fabric.Config{Balancer: lb.ECMP{}, QueueCap: 4})
	r := NewRegistry(s, n, Config{})
	var flows []*Sender
	dst := tp.Hosts[4]
	for _, src := range []int{0, 1, 2, 3} {
		flows = append(flows, r.StartFlow(tp.Hosts[src], dst, 120*1460, ""))
	}
	s.Run()
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d stuck at %d bytes", i, f.AckedBytes())
		}
	}
	if n.Hops.TotalDrops() == 0 {
		t.Fatal("expected drops with cap-4 queues under 4:1 incast")
	}
	t.Logf("drops=%d retx=%d timeouts=%d", n.Hops.TotalDrops(),
		r.Stats.Retransmits, r.Stats.Timeouts)
}

func TestElephantThroughputApproachesLine(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	f := r.StartFlow(tp.Hosts[0], tp.Hosts[4], -1, "elephant")
	horizon := 4 * units.Millisecond
	s.RunUntil(horizon)
	gbps := float64(f.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	// One 10G host link, minus header overhead and slow-start ramp.
	if gbps < 7.5 || gbps > 10.01 {
		t.Fatalf("elephant goodput %.2f Gbps, want ~9.6", gbps)
	}
}

func TestWarmupExclusion(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	r.MeasureFrom = 1 * units.Millisecond
	r.StartFlow(tp.Hosts[0], tp.Hosts[4], 1460, "") // warm-up flow
	s.At(2*units.Millisecond, func() {
		r.StartFlow(tp.Hosts[1], tp.Hosts[5], 1460, "")
	})
	s.Run()
	if r.Stats.FCT.Count() != 1 {
		t.Fatalf("measured FCTs = %d, want 1 (warm-up excluded)", r.Stats.FCT.Count())
	}
}

func TestGROBatchAccounting(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{TrackGRO: true})
	r.StartFlow(tp.Hosts[0], tp.Hosts[4], 200*1460, "")
	s.Run()
	if r.Stats.GROSegments < 200 {
		t.Fatalf("GRO segments = %d", r.Stats.GROSegments)
	}
	if r.Stats.GROBatches == 0 || r.Stats.GROBatches > r.Stats.GROSegments {
		t.Fatalf("GRO batches = %d (segments %d)", r.Stats.GROBatches, r.Stats.GROSegments)
	}
	// In-order delivery: batches ≈ bytes / 64KiB.
	wantMax := int64(200*1460/65536) + 2
	if r.Stats.GROBatches > wantMax {
		t.Fatalf("too many batches for in-order flow: %d > %d", r.Stats.GROBatches, wantMax)
	}
}

func TestFlowToSelfPanics(t *testing.T) {
	_, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for self-flow")
		}
	}()
	r.StartFlow(tp.Hosts[0], tp.Hosts[0], 100, "")
}

func TestFlowHashStable(t *testing.T) {
	h1 := flowHash(5, 2, 9)
	h2 := flowHash(5, 2, 9)
	if h1 != h2 {
		t.Fatal("flow hash not deterministic")
	}
	if flowHash(6, 2, 9) == h1 {
		t.Fatal("flow hash ignores flow id")
	}
}

// TestNoStaleRTOEventsAtCompletion is the regression test for the
// one-timer-per-flow RTO design. Every ACK re-arms the retransmission
// timer; the old arm-by-closure scheme left one dead heap entry per ACK,
// so a 400-packet flow finished with ~400 stale events still pending.
// Reset now moves the flow's single timer entry in place, so the instant a
// flow completes the heap holds only the handful of in-flight data-plane
// events — and the flow's timer is disarmed.
func TestNoStaleRTOEventsAtCompletion(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	const pkts = 400
	var pendingAtDone int
	r.OnComplete = func(f *Sender) {
		if f.rtoTimer.Armed() {
			t.Error("RTO timer still armed at flow completion")
		}
		pendingAtDone = s.Pending()
	}
	f := r.StartFlow(tp.Hosts[0], tp.Hosts[4], pkts*1460, "")
	s.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// Generous bound: port visibility events and the tail of the ACK path
	// may still be in flight, but nothing proportional to the flow length.
	if pendingAtDone > 16 {
		t.Fatalf("%d events pending at flow completion; want O(1), not O(packets) — stale RTO closures are accumulating again", pendingAtDone)
	}
	// With the whole simulation drained, the heap must be empty: Stop()
	// removes timer entries instead of abandoning them.
	if s.Pending() != 0 {
		t.Fatalf("%d events pending after Run drained", s.Pending())
	}
}
