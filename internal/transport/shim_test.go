package transport

import (
	"testing"

	"drill/internal/lb"
	"drill/internal/units"
)

func TestAdaptiveShimIntegration(t *testing.T) {
	// Under forced per-packet Random reordering, the adaptive shim must
	// suppress dup-ACKs at least as well as pass-through, while all flows
	// still finish.
	run := func(adaptive bool, shim units.Time) (float64, int64) {
		s, _, r, tp := testbed(t, lb.Random{}, Config{
			ShimTimeout: shim, AdaptiveShim: adaptive,
		})
		for i := 0; i < 10; i++ {
			r.StartFlow(tp.Hosts[i%4], tp.Hosts[4+(i*3)%4], 200*1460, "")
		}
		s.Run()
		if r.Stats.FlowsFinished != 10 {
			t.Fatalf("finished %d/10 (adaptive=%v)", r.Stats.FlowsFinished, adaptive)
		}
		return r.Stats.DupAcks.FracAtLeast(3), r.Stats.Retransmits
	}
	noneDup, noneRetx := run(false, 0)
	fixedDup, fixedRetx := run(false, 150*units.Microsecond)
	adaptDup, adaptRetx := run(true, 150*units.Microsecond)
	if fixedDup > noneDup || adaptDup > noneDup {
		t.Fatalf("shim increased >=3 dupacks: none=%.3f fixed=%.3f adaptive=%.3f",
			noneDup, fixedDup, adaptDup)
	}
	t.Logf("dup>=3: none=%.3f fixed=%.3f adaptive=%.3f; retx none=%d fixed=%d adaptive=%d",
		noneDup, fixedDup, adaptDup, noneRetx, fixedRetx, adaptRetx)
}

func TestWireReorderZeroForECMP(t *testing.T) {
	s, _, r, tp := testbed(t, lb.ECMP{}, Config{})
	for i := 0; i < 8; i++ {
		r.StartFlow(tp.Hosts[i%4], tp.Hosts[4+i%4], 100*1460, "")
	}
	s.Run()
	if got := r.Stats.WireReorders.FracAtLeast(1); got != 0 {
		t.Fatalf("ECMP wire reorder fraction = %v", got)
	}
}
