// Package transport implements the end-host stack the evaluation runs over
// the fabric: TCP NewReno senders and receivers (slow start, congestion
// avoidance, triple-duplicate-ACK fast retransmit/recovery, RTO with
// SRTT/RTTVAR estimation), flow-completion-time accounting, duplicate-ACK
// accounting for the Fig. 11(a) reordering analysis, and the optional
// receiver-side reordering shim + GRO batching models from internal/gro.
//
// The paper ports Linux 2.6 TCP via the Network Simulation Cradle; NewReno
// reproduces the behaviours the evaluation depends on — the 3-dup-ACK
// retransmission threshold that reordering falsely triggers, and the
// window collapse that follows.
package transport

import (
	"fmt"
	"sort"

	"drill/internal/fabric"
	"drill/internal/metrics"
	"drill/internal/sim"
	"drill/internal/topo"
	"drill/internal/trace"
	"drill/internal/units"
)

// Config parameterizes the host stacks of one experiment.
type Config struct {
	MSS      int32   // payload bytes per segment (default 1460)
	InitCwnd float64 // initial window in segments (default 10)
	MaxCwnd  float64 // window cap in segments, modelling the socket
	//                     buffer / receive window (default 128 ≈ 190KB)
	// MinRTO is the retransmission-timer floor (default 1ms). The paper's
	// NSC Linux 2.6 stack used the stock 200ms floor, which is why its
	// tail-FCT axes reach hundreds of ms on every loss; 1ms preserves the
	// drop→timeout→tail amplification at simulation horizons a single
	// machine can run. Set 200µs for modern datacenter-tuned stacks.
	MinRTO  units.Time
	MaxRTO  units.Time // RTO backoff cap (default 20ms)
	InitRTO units.Time // RTO before the first RTT sample (default 1ms)

	// ShimTimeout > 0 enables the receiver reordering shim with that hold
	// timeout ("DRILL" vs "DRILL w/o shim", Presto's shim).
	ShimTimeout units.Time

	// AdaptiveShim upgrades the shim to the Juggler-style adaptive variant:
	// the hold tracks observed reordering skew between ShimTimeout/10 and
	// ShimTimeout, so losses stall flows for less than the fixed hold would.
	AdaptiveShim bool

	// TrackGRO enables GRO batch accounting.
	TrackGRO bool

	// DCTCP enables DCTCP congestion control on senders: receivers echo
	// per-packet ECN marks and senders scale their window by the marked
	// fraction (α) once per window. Pair with fabric.Config.ECNThreshold.
	DCTCP bool
	// DCTCPg is DCTCP's α EWMA gain (default 1/16).
	DCTCPg float64
}

func (c *Config) defaults() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 128
	}
	if c.MinRTO == 0 {
		c.MinRTO = 1 * units.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 20 * units.Millisecond
	}
	if c.InitRTO == 0 {
		c.InitRTO = 1 * units.Millisecond
	}
	if c.DCTCPg == 0 {
		c.DCTCPg = 1.0 / 16
	}
}

// Stats aggregates transport-level measurements across all hosts.
type Stats struct {
	// FCT collects completion times in milliseconds, overall and per class.
	FCT        metrics.Dist
	FCTByClass map[string]*metrics.Dist

	// DupAcks histograms duplicate ACKs generated per completed flow.
	DupAcks metrics.IntHist

	// WireReorders histograms emission-order inversions observed on the
	// wire per completed flow (reordering proper, untangled from TCP's
	// duplicate-ACK amplification).
	WireReorders metrics.IntHist

	// InversionBlame counts, per hop class, how often that hop contributed
	// the largest wait difference of an inverted packet pair.
	InversionBlame [6]int64

	// GROBatches / GROSegments accumulate batching telemetry.
	GROBatches  int64
	GROSegments int64

	// ShimFlushes counts shim timeouts (order could not be restored in time).
	ShimFlushes int64

	Retransmits   int64
	Timeouts      int64
	FlowsStarted  int64
	FlowsFinished int64

	// OutOfOrder counts data packets that arrived below the highest
	// emission counter seen — the per-arrival total behind the per-flow
	// WireReorders histogram, and the transport-health number FCT sweep
	// reports surface.
	OutOfOrder int64
}

// ClassDist returns (creating if needed) the FCT distribution for a class.
func (s *Stats) ClassDist(class string) *metrics.Dist {
	if s.FCTByClass == nil {
		s.FCTByClass = map[string]*metrics.Dist{}
	}
	d := s.FCTByClass[class]
	if d == nil {
		d = &metrics.Dist{}
		s.FCTByClass[class] = d
	}
	return d
}

// Registry owns the per-host agents of one network and starts flows.
type Registry struct {
	Sim   *sim.Sim
	Net   *fabric.Network
	Cfg   Config
	Stats Stats

	// shardStats holds one Stats block per shard domain under the sharded
	// engine; agents accumulate into their shard's block and Fold merges
	// them into Stats after the run. Nil (and unused) sequentially, where
	// agents write Stats directly.
	shardStats []Stats

	agents   map[topo.NodeID]*Agent
	nextFlow uint64
	tracer   *trace.Tracer // the network's tracer, nil when tracing is off
	met      *Metrics      // obs emission, nil when metrics are off

	// MeasureFrom: flows started before this time are warm-up and excluded
	// from Stats (they still load the network).
	MeasureFrom units.Time

	// OnComplete, when set, is invoked for every finished flow.
	OnComplete func(f *Sender)
}

// NewRegistry attaches a transport agent to every host in the network.
func NewRegistry(s *sim.Sim, net *fabric.Network, cfg Config) *Registry {
	cfg.defaults()
	r := &Registry{Sim: s, Net: net, Cfg: cfg, agents: map[topo.NodeID]*Agent{},
		tracer: net.Tracer()}
	if net.Sharded() {
		r.shardStats = make([]Stats, net.NumDomains())
	}
	for _, h := range net.Topo.Hosts {
		host := net.Host(h)
		a := &Agent{reg: r, host: host,
			sim:       net.DomainSim(h),
			stats:     &r.Stats,
			senders:   map[uint64]*Sender{},
			receivers: map[uint64]*Receiver{},
		}
		if net.Sharded() {
			a.stats = &r.shardStats[net.DomainIndex(h)]
		}
		host.Handler = a
		r.agents[h] = a
	}
	return r
}

// Agent is the per-host transport endpoint; it demultiplexes delivered
// packets to flow senders (ACKs) and receivers (data). Its sim and stats
// belong to the host's shard domain: every timer a flow arms, every clock
// it reads, and every counter it bumps stays inside one shard, which is
// what lets shards run their windows concurrently. Sequentially both
// simply alias the registry's Sim and Stats.
type Agent struct {
	reg       *Registry
	host      *fabric.Host
	sim       *sim.Sim
	stats     *Stats
	senders   map[uint64]*Sender
	receivers map[uint64]*Receiver
}

// HandlePacket implements fabric.PacketHandler.
func (a *Agent) HandlePacket(h *fabric.Host, pkt *fabric.Packet) {
	switch pkt.Kind {
	case fabric.Ack:
		if s := a.senders[pkt.FlowID]; s != nil {
			s.onAck(pkt)
		}
	case fabric.Data:
		rcv := a.receivers[pkt.FlowID]
		if rcv == nil {
			rcv = newReceiver(a, pkt)
			a.receivers[pkt.FlowID] = rcv
		}
		rcv.onData(pkt)
	}
}

// StartFlow begins a TCP transfer of size bytes from src to dst. Class tags
// the flow for per-class FCT reporting ("", "mice", "elephant", "incast").
// Infinite flows (size < 0) never finish; their throughput is read via
// Sender.AckedBytes.
func (r *Registry) StartFlow(src, dst topo.NodeID, size int64, class string) *Sender {
	if src == dst {
		panic("transport: flow to self")
	}
	r.nextFlow++
	r.Stats.FlowsStarted++
	id := r.nextFlow
	a := r.agents[src]
	s := &Sender{
		reg: r, agent: a, id: id, dst: dst,
		size: size, class: class,
		hash:     flowHash(id, src, dst),
		cwnd:     r.Cfg.InitCwnd,
		ssthresh: 1 << 30,
		rto:      r.Cfg.InitRTO,
		start:    r.Sim.Now(),
		measured: r.Sim.Now() >= r.MeasureFrom,
	}
	// The flow's one RTO timer: allocated once here, re-armed in place for
	// the flow's whole lifetime. It lives in the source host's scheduler
	// so retransmission timeouts fire inside the host's shard.
	s.rtoTimer = a.sim.NewTimer(s.onTimeout)
	a.senders[id] = s
	s.trySend()
	return s
}

// flowHash mixes the flow 5-tuple stand-ins into the hash ECMP et al. use.
func flowHash(id uint64, src, dst topo.NodeID) uint32 {
	h := uint64(2166136261)
	for _, x := range [3]uint64{id, uint64(src), uint64(dst)} {
		h ^= x
		h *= 16777619
		h ^= h >> 17
	}
	h *= 0x9e3779b1
	return uint32(h>>32) ^ uint32(h)
}

// Fold merges the per-shard stat blocks into r.Stats, in shard-ID order.
// Every merged quantity is either an integer total or a sample multiset
// (Dist, IntHist), so the folded result carries the same counts, order
// statistics, and sorted-sample hashes as a sequential run — only
// insertion order (and therefore nothing a fingerprint reads) differs.
// Call once after the run drains; a no-op sequentially. FlowsStarted is
// not folded: StartFlow runs in barrier context and counts it on r.Stats
// directly.
func (r *Registry) Fold() {
	for i := range r.shardStats {
		ss := &r.shardStats[i]
		r.Stats.FCT.AddDist(&ss.FCT)
		classes := make([]string, 0, len(ss.FCTByClass))
		//drill:allow nondeterminism collecting map keys before sorting is order-independent
		for c := range ss.FCTByClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			r.Stats.ClassDist(c).AddDist(ss.FCTByClass[c])
		}
		r.Stats.DupAcks.Merge(&ss.DupAcks)
		r.Stats.WireReorders.Merge(&ss.WireReorders)
		for h := range ss.InversionBlame {
			r.Stats.InversionBlame[h] += ss.InversionBlame[h]
		}
		r.Stats.GROBatches += ss.GROBatches
		r.Stats.GROSegments += ss.GROSegments
		r.Stats.ShimFlushes += ss.ShimFlushes
		r.Stats.Retransmits += ss.Retransmits
		r.Stats.Timeouts += ss.Timeouts
		r.Stats.FlowsFinished += ss.FlowsFinished
		r.Stats.OutOfOrder += ss.OutOfOrder
		r.shardStats[i] = Stats{}
	}
}

func (r *Registry) String() string {
	return fmt.Sprintf("transport.Registry{flows=%d finished=%d}",
		r.Stats.FlowsStarted, r.Stats.FlowsFinished)
}
