// Package units defines the value types shared across the simulator:
// simulated time, byte sizes, and link rates. Keeping them as distinct
// types catches unit mix-ups (bits vs bytes, ns vs µs) at compile time.
package units

import "fmt"

// Time is a point in (or span of) simulated time, in nanoseconds.
// The zero Time is the start of the simulation.
type Time int64

// Common durations, expressed as Time spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats t with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1000 * Byte
	MB   ByteSize = 1000 * KB
	GB   ByteSize = 1000 * MB
	KiB  ByteSize = 1024 * Byte
	MiB  ByteSize = 1024 * KiB
)

// String formats s with an auto-selected unit.
func (s ByteSize) String() string {
	switch {
	case s < 0:
		return fmt.Sprintf("-%v", -s)
	case s < KB:
		return fmt.Sprintf("%dB", int64(s))
	case s < MB:
		return fmt.Sprintf("%.4gKB", float64(s)/float64(KB))
	case s < GB:
		return fmt.Sprintf("%.4gMB", float64(s)/float64(MB))
	default:
		return fmt.Sprintf("%.4gGB", float64(s)/float64(GB))
	}
}

// Rate is a link or flow rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1000 * BitPerSecond
	Mbps         Rate = 1000 * Kbps
	Gbps         Rate = 1000 * Mbps
)

// String formats r with an auto-selected unit.
func (r Rate) String() string {
	switch {
	case r < 0:
		return fmt.Sprintf("-%v", -r)
	case r < Mbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	case r < Gbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	default:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	}
}

// TxTime returns the serialization delay of size bytes on a link of rate r,
// rounded up to the next nanosecond so back-to-back packets never overlap.
func TxTime(size ByteSize, r Rate) Time {
	if r <= 0 {
		panic("units: TxTime with non-positive rate")
	}
	bits := int64(size) * 8
	ns := (bits*int64(Second) + int64(r) - 1) / int64(r)
	return Time(ns)
}

// BytesIn returns how many whole bytes a link of rate r carries in span t.
func BytesIn(r Rate, t Time) ByteSize {
	if t < 0 {
		return 0
	}
	return ByteSize(int64(r) * int64(t) / (8 * int64(Second)))
}
