package units

import (
	"testing"
	"testing/quick"
)

func TestTxTime(t *testing.T) {
	cases := []struct {
		size ByteSize
		rate Rate
		want Time
	}{
		{1500, 40 * Gbps, 300},
		{1500, 10 * Gbps, 1200},
		{1500, 1 * Gbps, 12000},
		{40, 10 * Gbps, 32},
		{1, 8 * BitPerSecond, Second},
		{64, 40 * Gbps, 13}, // 12.8ns rounds up
	}
	for _, c := range cases {
		if got := TxTime(c.size, c.rate); got != c.want {
			t.Errorf("TxTime(%v, %v) = %v, want %v", c.size, c.rate, got, c.want)
		}
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// Property: transmitting back-to-back never exceeds line rate, i.e.
	// BytesIn(rate, TxTime(size, rate)) >= size is NOT required (rounding up
	// means the link is slightly underutilized), but TxTime must never be
	// shorter than the exact serialization time.
	f := func(size uint16, rateG uint8) bool {
		s := ByteSize(size%9000 + 1)
		r := Rate(int64(rateG%100+1)) * Gbps
		got := TxTime(s, r)
		exactBitsNs := float64(s) * 8 * 1e9 / float64(r)
		return float64(got) >= exactBitsNs && float64(got) < exactBitsNs+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	TxTime(100, 0)
}

func TestBytesIn(t *testing.T) {
	if got := BytesIn(10*Gbps, Microsecond); got != 1250 {
		t.Errorf("BytesIn(10G, 1us) = %v, want 1250", got)
	}
	if got := BytesIn(10*Gbps, -5); got != 0 {
		t.Errorf("BytesIn negative time = %v, want 0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	if got := ByteSize(1500).String(); got != "1.5KB" {
		t.Errorf("got %q", got)
	}
	if got := ByteSize(64).String(); got != "64B" {
		t.Errorf("got %q", got)
	}
	if got := (2 * GB).String(); got != "2GB" {
		t.Errorf("got %q", got)
	}
}

func TestRateString(t *testing.T) {
	if got := (40 * Gbps).String(); got != "40Gbps" {
		t.Errorf("got %q", got)
	}
	if got := (100 * Mbps).String(); got != "100Mbps" {
		t.Errorf("got %q", got)
	}
}

func TestTimeConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Millis() != 1.5 {
		t.Errorf("Millis = %v", d.Millis())
	}
	if d.Micros() != 1500 {
		t.Errorf("Micros = %v", d.Micros())
	}
	if d.Seconds() != 0.0015 {
		t.Errorf("Seconds = %v", d.Seconds())
	}
}
