package queueing

import (
	"testing"
	"testing/quick"
)

func TestTheorem1Construction(t *testing.T) {
	arr, svc := Theorem1Rates(4, 8, 0.2)
	s := New(4, 8, 1, 0, arr, svc, 1)
	if !s.Admissible() {
		t.Fatal("Theorem 1 rates must be admissible")
	}
}

func TestTheorem1MemorylessUnstable(t *testing.T) {
	// DRILL(1,0) under the Theorem 1 rates: total queue grows roughly
	// linearly in time.
	arr, svc := Theorem1Rates(4, 8, 0.2)
	s := New(4, 8, 1, 0, arr, svc, 1)
	s.Run(20000)
	q1 := s.TotalQueue()
	s.Run(20000)
	q2 := s.TotalQueue()
	if q1 < 500 {
		t.Fatalf("queue after 20k slots = %d; expected unbounded growth", q1)
	}
	if q2 < q1+q1/2 {
		t.Fatalf("growth stalled: %d -> %d", q1, q2)
	}
}

func TestTheorem2MemoryStabilizes(t *testing.T) {
	// DRILL(1,1) under the same adversarial rates stays bounded.
	arr, svc := Theorem1Rates(4, 8, 0.2)
	s := New(4, 8, 1, 1, arr, svc, 1)
	s.Run(40000)
	if q := s.TotalQueue(); q > 200 {
		t.Fatalf("DRILL(1,1) queue = %d after 40k slots; expected bounded", q)
	}
	// Throughput ≈ arrival rate: served ≈ arrived − queued.
	if s.TotalServed < s.TotalArrived-s.TotalQueue() {
		t.Fatal("packet conservation violated")
	}
}

func TestUniformLoadStableEvenMemoryless(t *testing.T) {
	// Theorem 1's proof note: with equal service rates the memoryless
	// argument does not apply; DRILL(d,0) is fine there.
	arr := []float64{0.2, 0.2, 0.2, 0.2}
	svc := []float64{0.15, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15, 0.15}
	s := New(4, 8, 2, 0, arr, svc, 3)
	s.Run(40000)
	if q := s.TotalQueue(); q > 200 {
		t.Fatalf("uniform-rate DRILL(2,0) queue = %d; expected bounded", q)
	}
}

func TestHighLoadThroughput(t *testing.T) {
	// 95% uniform load, DRILL(2,1): served/arrived must approach 1, the
	// 100%-throughput guarantee of Theorem 2.
	m, n := 8, 8
	arr := make([]float64, m)
	svc := make([]float64, n)
	for i := range arr {
		arr[i] = 0.95
	}
	for j := range svc {
		svc[j] = 1.0
	}
	s := New(m, n, 2, 1, arr, svc, 5)
	s.Run(100000)
	frac := float64(s.TotalServed) / float64(s.TotalArrived)
	if frac < 0.99 {
		t.Fatalf("throughput = %.4f of arrivals, want >= 0.99", frac)
	}
	if q := s.TotalQueue(); q > 500 {
		t.Fatalf("queue = %d at 95%% load", q)
	}
}

func TestTimeVaryingServiceRates(t *testing.T) {
	// §3.2.4 emphasizes time-varying service (failures/recoveries): flip
	// capacity between halves of the queues every 5k slots; DRILL(1,1)
	// must remain bounded.
	m, n := 4, 8
	arr := []float64{0.15, 0.15, 0.15, 0.15}
	svc := make([]float64, n)
	s := New(m, n, 1, 1, arr, svc, 9)
	phaseA := []float64{0.2, 0.2, 0.2, 0.2, 0.02, 0.02, 0.02, 0.02}
	phaseB := []float64{0.02, 0.02, 0.02, 0.02, 0.2, 0.2, 0.2, 0.2}
	for phase := 0; phase < 20; phase++ {
		src := phaseA
		if phase%2 == 1 {
			src = phaseB
		}
		copy(s.Service, src)
		s.Run(5000)
	}
	if q := s.TotalQueue(); q > 400 {
		t.Fatalf("time-varying service: queue = %d", q)
	}
}

func TestLyapunovDriftNegativeWhenLarge(t *testing.T) {
	// The stability proof's essence: once V is large, the expected one-step
	// drift is negative. Build a large-V state by running the unstable
	// policy, then switch to DRILL(1,1) and watch V fall.
	arr, svc := Theorem1Rates(4, 8, 0.2)
	s := New(4, 8, 1, 0, arr, svc, 11)
	s.Run(30000)
	vHigh := s.Lyapunov()
	// Swap policies by constructing a memory switch inheriting queues.
	s2 := New(4, 8, 1, 1, arr, svc, 12)
	copy(s2.queues, s.queues)
	s2.Run(30000)
	vLow := s2.Lyapunov()
	if vLow >= vHigh/2 {
		t.Fatalf("V did not contract: %.0f -> %.0f", vHigh, vLow)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2, 4, 1, 1, []float64{0.1}, []float64{1, 1, 1, 1}, 1)
}

func TestConservationProperty(t *testing.T) {
	f := func(seed int64, loadPct uint8) bool {
		load := float64(loadPct%60+10) / 100
		arr := []float64{load / 2, load / 2}
		svc := []float64{0.5, 0.5, 0.5, 0.5}
		s := New(2, 4, 2, 1, arr, svc, seed)
		s.Run(5000)
		return s.TotalArrived-s.TotalServed == s.TotalQueue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
