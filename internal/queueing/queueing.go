// Package queueing is the standalone M×N switch model behind §3.2.4's
// stability results: M forwarding engines feed N FIFO output queues in
// discrete time slots, each engine placing its arrivals with DRILL(d,m).
// It demonstrates Theorem 1 — pure random sampling DRILL(d,0) is unstable
// for admissible traffic with heterogeneous service rates — and Theorem 2 —
// DRILL(1,1) (and any m ≥ 1) is stable with 100% throughput — and measures
// the Lyapunov drift the proof bounds.
package queueing

import (
	"math/rand"

	"drill/internal/core"
)

// Switch is an M-engine, N-output-queue combined input/output queued
// switch in slotted time. Engines decide in parallel: within one slot all
// engines observe the queue lengths of the slot's start (the imprecise-
// counter behaviour of §3.2.1).
type Switch struct {
	M, N int

	// Arrival[i] is engine i's per-slot packet arrival probability.
	Arrival []float64
	// Service[j] is queue j's per-slot departure probability. May be
	// changed between slots (time-varying service).
	Service []float64

	queues    []int64
	snapshot  []int64
	selectors []*core.Selector
	rng       *rand.Rand

	// Slots counts elapsed time slots.
	Slots int64
	// TotalArrived and TotalServed count packets.
	TotalArrived, TotalServed int64
}

// New builds a switch with every engine running DRILL(d,m). Arrival and
// service vectors are copied.
func New(m, n, d, mem int, arrival, service []float64, seed int64) *Switch {
	if len(arrival) != m || len(service) != n {
		panic("queueing: dimension mismatch")
	}
	s := &Switch{
		M: m, N: n,
		Arrival:  append([]float64(nil), arrival...),
		Service:  append([]float64(nil), service...),
		queues:   make([]int64, n),
		snapshot: make([]int64, n),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < m; i++ {
		s.selectors = append(s.selectors,
			core.NewSelector(d, mem, rand.New(rand.NewSource(seed+int64(i)*101+1))))
	}
	return s
}

// Admissible reports whether total arrival rate < total service rate.
func (s *Switch) Admissible() bool {
	var a, mu float64
	for _, x := range s.Arrival {
		a += x
	}
	for _, x := range s.Service {
		mu += x
	}
	return a < mu
}

// Queues returns the current queue lengths (shared slice; do not mutate).
func (s *Switch) Queues() []int64 { return s.queues }

// TotalQueue returns the number of queued packets.
func (s *Switch) TotalQueue() int64 {
	var t int64
	for _, q := range s.queues {
		t += q
	}
	return t
}

// Step advances one slot: parallel engine placements against the slot-start
// snapshot, then services.
func (s *Switch) Step() {
	copy(s.snapshot, s.queues)
	for i := 0; i < s.M; i++ {
		if s.rng.Float64() >= s.Arrival[i] {
			continue
		}
		j := s.selectors[i].Pick(s.N, func(q int) int64 { return s.snapshot[q] })
		s.queues[j]++
		s.TotalArrived++
	}
	for j := 0; j < s.N; j++ {
		if s.queues[j] > 0 && s.rng.Float64() < s.Service[j] {
			s.queues[j]--
			s.TotalServed++
		}
	}
	s.Slots++
}

// Run advances the given number of slots.
func (s *Switch) Run(slots int) {
	for i := 0; i < slots; i++ {
		s.Step()
	}
}

// Lyapunov evaluates the proof's potential function
// V(n) = Σ_k (q_k − q*)² + 2 Σ_k q_k, with q* the shortest queue.
func (s *Switch) Lyapunov() float64 {
	min := s.queues[0]
	for _, q := range s.queues[1:] {
		if q < min {
			min = q
		}
	}
	var v float64
	for _, q := range s.queues {
		d := float64(q - min)
		v += d*d + 2*float64(q)
	}
	return v
}

// Theorem1Rates constructs the adversarial-but-admissible rate vectors from
// Theorem 1's proof: one queue with almost all the service capacity. With
// d < n samples, queue 0 can absorb at most a d/n fraction of arrivals
// under DRILL(d,0), leaving the other queues overloaded.
func Theorem1Rates(m, n int, load float64) (arrival, service []float64) {
	arrival = make([]float64, m)
	for i := range arrival {
		arrival[i] = load
	}
	total := load * float64(m)
	service = make([]float64, n)
	// Queue 0 could serve nearly everything; the rest together serve only
	// half of what random sampling must send their way.
	rest := total * (1 - float64(1)/float64(n)) / 2 / float64(n-1)
	for j := 1; j < n; j++ {
		service[j] = min1(rest)
	}
	// Queue 0 gets 25% headroom so the memory-augmented policy that steers
	// traffic there remains strictly stable. Callers must keep m·load ≤ 0.8
	// so the cap below does not break admissibility.
	service[0] = min1(total * 1.25)
	return arrival, service
}

func min1(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}
